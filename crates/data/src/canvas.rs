//! A tiny software rasterizer producing `[3, H, W]` tensors.
//!
//! All coordinates are in *unit space* (`0.0..1.0` across the canvas) so
//! templates render identically at any resolution; the rasterizer
//! evaluates shape membership per pixel centre.

use fademl_tensor::{Shape, Tensor};

use crate::{DataError, Result};

/// An RGB colour with components in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rgb {
    /// Red component.
    pub r: f32,
    /// Green component.
    pub g: f32,
    /// Blue component.
    pub b: f32,
}

impl Rgb {
    /// Creates a colour (components clamped to `[0, 1]`).
    pub fn new(r: f32, g: f32, b: f32) -> Self {
        Rgb {
            r: r.clamp(0.0, 1.0),
            g: g.clamp(0.0, 1.0),
            b: b.clamp(0.0, 1.0),
        }
    }

    /// Pure white.
    pub const WHITE: Rgb = Rgb {
        r: 1.0,
        g: 1.0,
        b: 1.0,
    };
    /// Near black.
    pub const BLACK: Rgb = Rgb {
        r: 0.05,
        g: 0.05,
        b: 0.05,
    };
    /// Traffic-sign red.
    pub const SIGN_RED: Rgb = Rgb {
        r: 0.80,
        g: 0.10,
        b: 0.12,
    };
    /// Traffic-sign blue.
    pub const SIGN_BLUE: Rgb = Rgb {
        r: 0.10,
        g: 0.25,
        b: 0.75,
    };
    /// Priority-road yellow.
    pub const SIGN_YELLOW: Rgb = Rgb {
        r: 0.95,
        g: 0.80,
        b: 0.15,
    };
    /// End-of-restriction grey.
    pub const SIGN_GREY: Rgb = Rgb {
        r: 0.45,
        g: 0.45,
        b: 0.45,
    };

    /// Linear blend towards `other` by `t ∈ [0, 1]`.
    pub fn lerp(self, other: Rgb, t: f32) -> Rgb {
        let t = t.clamp(0.0, 1.0);
        Rgb::new(
            self.r + (other.r - self.r) * t,
            self.g + (other.g - self.g) * t,
            self.b + (other.b - self.b) * t,
        )
    }

    /// Scales brightness by `f` (clamping each channel).
    pub fn dim(self, f: f32) -> Rgb {
        Rgb::new(self.r * f, self.g * f, self.b * f)
    }
}

/// A square RGB raster with unit-space drawing primitives.
///
/// # Example
///
/// ```
/// use fademl_data::{Canvas, Rgb};
///
/// # fn main() -> Result<(), fademl_data::DataError> {
/// let mut canvas = Canvas::new(32)?;
/// canvas.fill(Rgb::new(0.3, 0.4, 0.3));
/// canvas.disk(0.5, 0.5, 0.4, Rgb::SIGN_RED);
/// let image = canvas.into_tensor(); // [3, 32, 32]
/// assert_eq!(image.dims(), &[3, 32, 32]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Canvas {
    size: usize,
    // Planar RGB, row-major per plane.
    data: Vec<f32>,
}

impl Canvas {
    /// Creates a black square canvas of `size × size` pixels.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidConfig`] for `size == 0`.
    pub fn new(size: usize) -> Result<Self> {
        if size == 0 {
            return Err(DataError::InvalidConfig {
                reason: "canvas size must be positive".into(),
            });
        }
        Ok(Canvas {
            size,
            data: vec![0.0; 3 * size * size],
        })
    }

    /// Edge length in pixels.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Reads the colour at pixel `(x, y)` (origin top-left).
    ///
    /// # Panics
    ///
    /// Panics if `x` or `y` is out of bounds.
    pub fn pixel(&self, x: usize, y: usize) -> Rgb {
        assert!(x < self.size && y < self.size, "pixel out of bounds");
        let plane = self.size * self.size;
        let idx = y * self.size + x;
        Rgb {
            r: self.data[idx],
            g: self.data[plane + idx],
            b: self.data[2 * plane + idx],
        }
    }

    fn put(&mut self, x: usize, y: usize, c: Rgb) {
        let plane = self.size * self.size;
        let idx = y * self.size + x;
        self.data[idx] = c.r;
        self.data[plane + idx] = c.g;
        self.data[2 * plane + idx] = c.b;
    }

    /// Fills the whole canvas with one colour.
    pub fn fill(&mut self, c: Rgb) {
        for y in 0..self.size {
            for x in 0..self.size {
                self.put(x, y, c);
            }
        }
    }

    /// Paints every pixel whose unit-space centre satisfies `predicate`.
    pub fn paint<F: Fn(f32, f32) -> bool>(&mut self, c: Rgb, predicate: F) {
        let inv = 1.0 / self.size as f32;
        for y in 0..self.size {
            let v = (y as f32 + 0.5) * inv;
            for x in 0..self.size {
                let u = (x as f32 + 0.5) * inv;
                if predicate(u, v) {
                    self.put(x, y, c);
                }
            }
        }
    }

    /// Filled disk centred at `(cx, cy)` with radius `r` (unit space).
    pub fn disk(&mut self, cx: f32, cy: f32, r: f32, c: Rgb) {
        self.paint(c, |u, v| {
            let (du, dv) = (u - cx, v - cy);
            du * du + dv * dv <= r * r
        });
    }

    /// Annulus (ring) centred at `(cx, cy)` spanning radii `[r0, r1]`.
    pub fn ring(&mut self, cx: f32, cy: f32, r0: f32, r1: f32, c: Rgb) {
        self.paint(c, |u, v| {
            let d2 = (u - cx) * (u - cx) + (v - cy) * (v - cy);
            d2 >= r0 * r0 && d2 <= r1 * r1
        });
    }

    /// Axis-aligned filled rectangle `[x0, x1] × [y0, y1]` (unit space).
    pub fn rect(&mut self, x0: f32, y0: f32, x1: f32, y1: f32, c: Rgb) {
        self.paint(c, |u, v| u >= x0 && u <= x1 && v >= y0 && v <= y1);
    }

    /// Filled triangle through three unit-space vertices.
    pub fn triangle(&mut self, p0: (f32, f32), p1: (f32, f32), p2: (f32, f32), c: Rgb) {
        let edge = |a: (f32, f32), b: (f32, f32), p: (f32, f32)| {
            (b.0 - a.0) * (p.1 - a.1) - (b.1 - a.1) * (p.0 - a.0)
        };
        self.paint(c, |u, v| {
            let p = (u, v);
            let d0 = edge(p0, p1, p);
            let d1 = edge(p1, p2, p);
            let d2 = edge(p2, p0, p);
            let has_neg = d0 < 0.0 || d1 < 0.0 || d2 < 0.0;
            let has_pos = d0 > 0.0 || d1 > 0.0 || d2 > 0.0;
            !(has_neg && has_pos)
        });
    }

    /// Filled regular octagon centred at `(cx, cy)` with circumradius `r`.
    pub fn octagon(&mut self, cx: f32, cy: f32, r: f32, c: Rgb) {
        // |x| ≤ k, |y| ≤ k, |x|+|y| ≤ √2·k with k = r·cos(π/8) gives the
        // regular octagon.
        let k = r * (std::f32::consts::PI / 8.0).cos();
        let s = std::f32::consts::SQRT_2 * k;
        self.paint(c, |u, v| {
            let (du, dv) = ((u - cx).abs(), (v - cy).abs());
            du <= k && dv <= k && du + dv <= s
        });
    }

    /// Filled diamond (square rotated 45°) centred at `(cx, cy)`.
    pub fn diamond(&mut self, cx: f32, cy: f32, r: f32, c: Rgb) {
        self.paint(c, |u, v| (u - cx).abs() + (v - cy).abs() <= r);
    }

    /// Thick line segment from `a` to `b` with the given half-width.
    pub fn line(&mut self, a: (f32, f32), b: (f32, f32), half_width: f32, c: Rgb) {
        let (dx, dy) = (b.0 - a.0, b.1 - a.1);
        let len2 = dx * dx + dy * dy;
        self.paint(c, |u, v| {
            let t = if len2 == 0.0 {
                0.0
            } else {
                (((u - a.0) * dx + (v - a.1) * dy) / len2).clamp(0.0, 1.0)
            };
            let (px, py) = (a.0 + t * dx, a.1 + t * dy);
            let (du, dv) = (u - px, v - py);
            du * du + dv * dv <= half_width * half_width
        });
    }

    /// Converts into a `[3, size, size]` tensor with values in `[0, 1]`.
    pub fn into_tensor(self) -> Tensor {
        Tensor::from_vec(self.data, Shape::new(vec![3, self.size, self.size]))
            .expect("canvas buffer matches its shape")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_validates_size() {
        assert!(Canvas::new(0).is_err());
        assert!(Canvas::new(8).is_ok());
    }

    #[test]
    fn fill_sets_every_pixel() {
        let mut c = Canvas::new(4).unwrap();
        let green = Rgb::new(0.0, 1.0, 0.0);
        c.fill(green);
        for y in 0..4 {
            for x in 0..4 {
                assert_eq!(c.pixel(x, y), green);
            }
        }
    }

    #[test]
    fn disk_centre_painted_corner_not() {
        let mut c = Canvas::new(16).unwrap();
        c.disk(0.5, 0.5, 0.3, Rgb::WHITE);
        assert_eq!(c.pixel(8, 8), Rgb::WHITE);
        assert_ne!(c.pixel(0, 0), Rgb::WHITE);
    }

    #[test]
    fn ring_has_hole() {
        let mut c = Canvas::new(32).unwrap();
        c.ring(0.5, 0.5, 0.3, 0.45, Rgb::SIGN_RED);
        assert_ne!(c.pixel(16, 16), Rgb::SIGN_RED); // hole
        assert_eq!(c.pixel(16, 3), Rgb::SIGN_RED); // on the ring (top)
    }

    #[test]
    fn rect_bounds() {
        let mut c = Canvas::new(10).unwrap();
        c.rect(0.0, 0.4, 1.0, 0.6, Rgb::WHITE);
        assert_eq!(c.pixel(5, 5), Rgb::WHITE);
        assert_ne!(c.pixel(5, 0), Rgb::WHITE);
    }

    #[test]
    fn triangle_contains_centroid() {
        let mut c = Canvas::new(32).unwrap();
        c.triangle((0.5, 0.1), (0.1, 0.9), (0.9, 0.9), Rgb::SIGN_RED);
        assert_eq!(c.pixel(16, 20), Rgb::SIGN_RED);
        assert_ne!(c.pixel(1, 1), Rgb::SIGN_RED);
    }

    #[test]
    fn triangle_winding_independent() {
        let mut cw = Canvas::new(16).unwrap();
        let mut ccw = Canvas::new(16).unwrap();
        cw.triangle((0.5, 0.1), (0.9, 0.9), (0.1, 0.9), Rgb::WHITE);
        ccw.triangle((0.5, 0.1), (0.1, 0.9), (0.9, 0.9), Rgb::WHITE);
        assert_eq!(cw, ccw);
    }

    #[test]
    fn octagon_inside_circumcircle() {
        let mut c = Canvas::new(32).unwrap();
        c.octagon(0.5, 0.5, 0.4, Rgb::SIGN_RED);
        assert_eq!(c.pixel(16, 16), Rgb::SIGN_RED);
        // The octagon cuts the corners of the bounding square.
        assert_ne!(c.pixel(4, 4), Rgb::SIGN_RED);
    }

    #[test]
    fn diamond_cuts_square_corners() {
        let mut c = Canvas::new(32).unwrap();
        c.diamond(0.5, 0.5, 0.4, Rgb::SIGN_YELLOW);
        assert_eq!(c.pixel(16, 16), Rgb::SIGN_YELLOW);
        assert_ne!(c.pixel(6, 6), Rgb::SIGN_YELLOW);
    }

    #[test]
    fn line_paints_between_endpoints() {
        let mut c = Canvas::new(32).unwrap();
        c.line((0.1, 0.5), (0.9, 0.5), 0.05, Rgb::BLACK);
        assert_eq!(c.pixel(16, 16), Rgb::BLACK);
        assert_ne!(c.pixel(16, 2), Rgb::BLACK);
    }

    #[test]
    fn degenerate_line_is_dot() {
        let mut c = Canvas::new(32).unwrap();
        c.line((0.5, 0.5), (0.5, 0.5), 0.1, Rgb::WHITE);
        assert_eq!(c.pixel(16, 16), Rgb::WHITE);
        assert_ne!(c.pixel(0, 0), Rgb::WHITE);
    }

    #[test]
    fn tensor_layout_is_planar() {
        let mut c = Canvas::new(2).unwrap();
        c.fill(Rgb::new(1.0, 0.5, 0.0));
        let t = c.into_tensor();
        assert_eq!(t.dims(), &[3, 2, 2]);
        assert_eq!(t.get(&[0, 0, 0]).unwrap(), 1.0); // R plane
        assert_eq!(t.get(&[1, 1, 1]).unwrap(), 0.5); // G plane
        assert_eq!(t.get(&[2, 0, 1]).unwrap(), 0.0); // B plane
    }

    #[test]
    fn rgb_helpers() {
        let c = Rgb::new(2.0, -1.0, 0.5);
        assert_eq!(c, Rgb::new(1.0, 0.0, 0.5)); // clamped
        let mid = Rgb::BLACK.lerp(Rgb::WHITE, 0.5);
        assert!((mid.r - 0.525).abs() < 1e-5);
        assert_eq!(Rgb::WHITE.dim(0.5).r, 0.5);
    }
}
