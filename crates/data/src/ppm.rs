//! PPM (portable pixmap) export for visual inspection of rendered
//! signs, noisy acquisitions and adversarial examples.
//!
//! PPM is the simplest raster format that every image viewer and
//! converter understands, and it needs no codec dependency — a natural
//! fit for this workspace's no-external-crates policy.

use std::io::Write;
use std::path::Path;

use fademl_tensor::Tensor;

use crate::{DataError, Result};

/// Encodes a `[3, H, W]` tensor with values in `[0, 1]` as binary PPM
/// (`P6`) bytes.
///
/// Values outside `[0, 1]` are clamped.
///
/// # Errors
///
/// Returns [`DataError::InvalidConfig`] if the tensor is not `[3, H, W]`.
pub fn to_ppm(image: &Tensor) -> Result<Vec<u8>> {
    if image.rank() != 3 || image.dims()[0] != 3 {
        return Err(DataError::InvalidConfig {
            reason: format!("PPM export expects [3, H, W], got {:?}", image.dims()),
        });
    }
    let (h, w) = (image.dims()[1], image.dims()[2]);
    let mut out = Vec::with_capacity(32 + 3 * h * w);
    out.extend_from_slice(format!("P6\n{w} {h}\n255\n").as_bytes());
    let data = image.as_slice();
    let plane = h * w;
    for i in 0..plane {
        for c in 0..3 {
            let v = (data[c * plane + i].clamp(0.0, 1.0) * 255.0).round() as u8;
            out.push(v);
        }
    }
    Ok(out)
}

/// Writes a `[3, H, W]` tensor to a `.ppm` file.
///
/// # Errors
///
/// Returns [`DataError::InvalidConfig`] for a bad shape and
/// [`DataError::Io`] for filesystem failures.
pub fn save_ppm<P: AsRef<Path>>(image: &Tensor, path: P) -> Result<()> {
    let bytes = to_ppm(image)?;
    let mut file = std::fs::File::create(path).map_err(DataError::from_io)?;
    file.write_all(&bytes).map_err(DataError::from_io)?;
    Ok(())
}

/// Decodes binary PPM (`P6`, maxval 255) bytes back into a `[3, H, W]`
/// tensor with values in `[0, 1]` — the inverse of [`to_ppm`], used in
/// round-trip tests and for loading externally edited images.
///
/// # Errors
///
/// Returns [`DataError::InvalidConfig`] for malformed or truncated data.
pub fn from_ppm(bytes: &[u8]) -> Result<Tensor> {
    let bad = |why: &str| DataError::InvalidConfig {
        reason: format!("invalid PPM: {why}"),
    };
    // Parse the three whitespace-separated header fields after "P6".
    if !bytes.starts_with(b"P6") {
        return Err(bad("missing P6 magic"));
    }
    let mut pos = 2usize;
    let mut fields = Vec::with_capacity(3);
    while fields.len() < 3 {
        while pos < bytes.len() && bytes[pos].is_ascii_whitespace() {
            pos += 1;
        }
        if pos < bytes.len() && bytes[pos] == b'#' {
            while pos < bytes.len() && bytes[pos] != b'\n' {
                pos += 1;
            }
            continue;
        }
        let start = pos;
        while pos < bytes.len() && bytes[pos].is_ascii_digit() {
            pos += 1;
        }
        if start == pos {
            return Err(bad("truncated header"));
        }
        let value: usize = std::str::from_utf8(&bytes[start..pos])
            .map_err(|_| bad("non-utf8 header"))?
            .parse()
            .map_err(|_| bad("non-numeric header field"))?;
        fields.push(value);
    }
    let (w, h, maxval) = (fields[0], fields[1], fields[2]);
    if maxval != 255 {
        return Err(bad("only maxval 255 is supported"));
    }
    pos += 1; // single whitespace after maxval
    let plane = w * h;
    if bytes.len() < pos + 3 * plane {
        return Err(bad("truncated pixel data"));
    }
    let mut data = vec![0.0f32; 3 * plane];
    for i in 0..plane {
        for c in 0..3 {
            data[c * plane + i] = bytes[pos + 3 * i + c] as f32 / 255.0;
        }
    }
    Ok(Tensor::from_vec(
        data,
        fademl_tensor::Shape::new(vec![3, h, w]),
    )?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classes::ClassId;
    use crate::templates::{render_sign, RenderJitter};

    #[test]
    fn header_and_size() {
        let img = Tensor::full(&[3, 4, 6], 0.5);
        let ppm = to_ppm(&img).unwrap();
        assert!(ppm.starts_with(b"P6\n6 4\n255\n"));
        assert_eq!(ppm.len(), b"P6\n6 4\n255\n".len() + 3 * 24);
    }

    #[test]
    fn rejects_bad_shapes() {
        assert!(to_ppm(&Tensor::zeros(&[1, 4, 4])).is_err());
        assert!(to_ppm(&Tensor::zeros(&[3, 4])).is_err());
    }

    #[test]
    fn pixel_values_and_clamping() {
        let mut img = Tensor::zeros(&[3, 1, 2]);
        img.set(&[0, 0, 0], 1.0).unwrap(); // red pixel 0
        img.set(&[1, 0, 1], 2.0).unwrap(); // green pixel 1, clamped to 1.0
        img.set(&[2, 0, 1], -1.0).unwrap(); // blue pixel 1, clamped to 0
        let ppm = to_ppm(&img).unwrap();
        let pixels = &ppm[ppm.len() - 6..];
        assert_eq!(pixels, &[255, 0, 0, 0, 255, 0]);
    }

    #[test]
    fn round_trip_is_lossless_at_8_bit() {
        let sign = render_sign(ClassId::STOP, 24, &RenderJitter::default()).unwrap();
        let ppm = to_ppm(&sign).unwrap();
        let back = from_ppm(&ppm).unwrap();
        assert_eq!(back.dims(), sign.dims());
        for (a, b) in sign.as_slice().iter().zip(back.as_slice()) {
            assert!((a - b).abs() <= 0.5 / 255.0 + 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn from_ppm_rejects_malformed() {
        assert!(from_ppm(b"P5\n1 1\n255\nxxx").is_err());
        assert!(from_ppm(b"P6\n2 2\n255\nab").is_err()); // truncated
        assert!(from_ppm(b"P6\n1 1\n65535\n??????").is_err()); // 16-bit
        assert!(from_ppm(b"P6\n").is_err());
    }

    #[test]
    fn from_ppm_skips_comments() {
        let mut bytes = b"P6\n# a comment\n1 1\n255\n".to_vec();
        bytes.extend_from_slice(&[10, 20, 30]);
        let img = from_ppm(&bytes).unwrap();
        assert_eq!(img.dims(), &[3, 1, 1]);
        assert!((img.get(&[0, 0, 0]).unwrap() - 10.0 / 255.0).abs() < 1e-6);
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("fademl_ppm_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sign.ppm");
        let sign = render_sign(ClassId::SPEED_60, 16, &RenderJitter::default()).unwrap();
        save_ppm(&sign, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let back = from_ppm(&bytes).unwrap();
        assert_eq!(back.dims(), sign.dims());
        std::fs::remove_file(&path).ok();
    }
}
