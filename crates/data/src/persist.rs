//! Dataset persistence: a small self-describing binary format so a
//! generated [`SignDataset`](crate::SignDataset) can be frozen to disk
//! and shared between machines/runs without re-deriving it from a seed
//! (mirroring how GTSRB itself ships as fixed files).

use std::io::{BufReader, Read, Write};
use std::path::Path;

use fademl_tensor::io::{atomic_write, ByteWriter};
use fademl_tensor::{Shape, Tensor};

use crate::{DataError, Result, SignDataset};

const MAGIC: &[u8; 8] = b"FADEMLD1";

/// Serializes the dataset to the FAdeML binary dataset format — the
/// single encoder behind both [`save_dataset`] and
/// [`save_dataset_to_path`].
pub fn encode_dataset(dataset: &SignDataset) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_bytes(MAGIC);
    w.put_u64(dataset.len() as u64);
    w.put_u64(dataset.image_size() as u64);
    for &label in dataset.labels() {
        w.put_u32(label as u32);
    }
    for &x in dataset.images().as_slice() {
        w.put_f32(x);
    }
    w.into_bytes()
}

/// Writes the dataset to `writer` in the FAdeML binary dataset format.
///
/// # Errors
///
/// Returns [`DataError::Io`] on write failure.
pub fn save_dataset<W: Write>(dataset: &SignDataset, mut writer: W) -> Result<()> {
    let io = DataError::from_io;
    writer.write_all(&encode_dataset(dataset)).map_err(io)?;
    writer.flush().map_err(io)?;
    Ok(())
}

/// Atomically writes the dataset to a file path (same-directory temp
/// file + rename), so a crash mid-write never leaves a torn dataset.
///
/// # Errors
///
/// Returns [`DataError::Io`] on create/write/rename failure.
pub fn save_dataset_to_path<P: AsRef<Path>>(dataset: &SignDataset, path: P) -> Result<()> {
    atomic_write(path.as_ref(), &encode_dataset(dataset)).map_err(DataError::from_io)
}

/// Reads a dataset previously written by [`save_dataset`].
///
/// # Errors
///
/// Returns [`DataError::Io`] on read failure and
/// [`DataError::InvalidConfig`] for a malformed stream.
pub fn load_dataset<R: Read>(reader: R) -> Result<SignDataset> {
    let mut r = BufReader::new(reader);
    let io = DataError::from_io;
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic).map_err(io)?;
    if &magic != MAGIC {
        return Err(DataError::InvalidConfig {
            reason: "not a FAdeML dataset file (bad magic)".into(),
        });
    }
    let mut u64_buf = [0u8; 8];
    r.read_exact(&mut u64_buf).map_err(io)?;
    let n = u64::from_le_bytes(u64_buf) as usize;
    r.read_exact(&mut u64_buf).map_err(io)?;
    let size = u64::from_le_bytes(u64_buf) as usize;
    // A light sanity cap prevents a corrupt header from triggering a
    // multi-gigabyte allocation.
    if n > 10_000_000 || size == 0 || size > 4096 {
        return Err(DataError::InvalidConfig {
            reason: format!("implausible dataset header: n = {n}, size = {size}"),
        });
    }
    let mut u32_buf = [0u8; 4];
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        r.read_exact(&mut u32_buf).map_err(io)?;
        labels.push(u32::from_le_bytes(u32_buf) as usize);
    }
    let numel = n * 3 * size * size;
    let mut data = vec![0.0f32; numel];
    for x in &mut data {
        r.read_exact(&mut u32_buf).map_err(io)?;
        *x = f32::from_le_bytes(u32_buf);
    }
    let images = Tensor::from_vec(data, Shape::new(vec![n, 3, size, size]))?;
    SignDataset::from_parts(images, labels)
}

/// Reads a dataset from a file path. Refuses leftover staging files
/// from interrupted atomic writes.
///
/// # Errors
///
/// Same conditions as [`load_dataset`].
pub fn load_dataset_from_path<P: AsRef<Path>>(path: P) -> Result<SignDataset> {
    let bytes = fademl_tensor::io::read_artifact(path.as_ref()).map_err(DataError::from_io)?;
    load_dataset(bytes.as_slice())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DatasetConfig, NoiseModel};

    fn dataset() -> SignDataset {
        SignDataset::generate(&DatasetConfig {
            samples_per_class: 2,
            image_size: 12,
            seed: 3,
            noise: NoiseModel::sensor(),
            blur_prob: 0.5,
        })
        .unwrap()
    }

    #[test]
    fn round_trip_is_lossless() {
        let original = dataset();
        let mut buf = Vec::new();
        save_dataset(&original, &mut buf).unwrap();
        let loaded = load_dataset(buf.as_slice()).unwrap();
        assert_eq!(loaded, original);
    }

    #[test]
    fn rejects_bad_magic() {
        let err = load_dataset(&b"NOTADATA\x00\x00\x00\x00\x00\x00\x00\x00"[..]).unwrap_err();
        assert!(matches!(err, DataError::InvalidConfig { .. }));
    }

    #[test]
    fn rejects_truncated_stream() {
        let original = dataset();
        let mut buf = Vec::new();
        save_dataset(&original, &mut buf).unwrap();
        buf.truncate(buf.len() / 3);
        assert!(matches!(
            load_dataset(buf.as_slice()),
            Err(DataError::Io(_))
        ));
    }

    #[test]
    fn rejects_implausible_header() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&u64::MAX.to_le_bytes()); // absurd n
        buf.extend_from_slice(&12u64.to_le_bytes());
        assert!(matches!(
            load_dataset(buf.as_slice()),
            Err(DataError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("fademl_dataset_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("signs.fds");
        let original = dataset();
        save_dataset_to_path(&original, &path).unwrap();
        let loaded = load_dataset_from_path(&path).unwrap();
        assert_eq!(loaded, original);
        // The atomic write leaves no staging files behind, and replacing
        // an existing dataset in place also round-trips.
        save_dataset_to_path(&original, &path).unwrap();
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| fademl_tensor::io::is_staging_file(&e.path()))
            .collect();
        assert!(leftovers.is_empty(), "staging leftovers: {leftovers:?}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn refuses_staging_files() {
        let dir = std::env::temp_dir().join("fademl_dataset_staging_test");
        std::fs::create_dir_all(&dir).unwrap();
        let orphan = dir.join(".signs.fds.tmp.42");
        std::fs::write(&orphan, encode_dataset(&dataset())).unwrap();
        assert!(load_dataset_from_path(&orphan).is_err());
        std::fs::remove_file(&orphan).ok();
    }
}
