//! Dataset persistence: a small self-describing binary format so a
//! generated [`SignDataset`](crate::SignDataset) can be frozen to disk
//! and shared between machines/runs without re-deriving it from a seed
//! (mirroring how GTSRB itself ships as fixed files).

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

use fademl_tensor::{Shape, Tensor};

use crate::{DataError, Result, SignDataset};

const MAGIC: &[u8; 8] = b"FADEMLD1";

/// Writes the dataset to `writer` in the FAdeML binary dataset format.
///
/// # Errors
///
/// Returns [`DataError::Io`] on write failure.
pub fn save_dataset<W: Write>(dataset: &SignDataset, writer: W) -> Result<()> {
    let mut w = BufWriter::new(writer);
    let io = DataError::from_io;
    w.write_all(MAGIC).map_err(io)?;
    let n = dataset.len() as u64;
    let size = dataset.image_size() as u64;
    w.write_all(&n.to_le_bytes()).map_err(io)?;
    w.write_all(&size.to_le_bytes()).map_err(io)?;
    for &label in dataset.labels() {
        w.write_all(&(label as u32).to_le_bytes()).map_err(io)?;
    }
    for &x in dataset.images().as_slice() {
        w.write_all(&x.to_le_bytes()).map_err(io)?;
    }
    w.flush().map_err(io)?;
    Ok(())
}

/// Writes the dataset to a file path.
///
/// # Errors
///
/// Returns [`DataError::Io`] on create/write failure.
pub fn save_dataset_to_path<P: AsRef<Path>>(dataset: &SignDataset, path: P) -> Result<()> {
    save_dataset(dataset, File::create(path).map_err(DataError::from_io)?)
}

/// Reads a dataset previously written by [`save_dataset`].
///
/// # Errors
///
/// Returns [`DataError::Io`] on read failure and
/// [`DataError::InvalidConfig`] for a malformed stream.
pub fn load_dataset<R: Read>(reader: R) -> Result<SignDataset> {
    let mut r = BufReader::new(reader);
    let io = DataError::from_io;
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic).map_err(io)?;
    if &magic != MAGIC {
        return Err(DataError::InvalidConfig {
            reason: "not a FAdeML dataset file (bad magic)".into(),
        });
    }
    let mut u64_buf = [0u8; 8];
    r.read_exact(&mut u64_buf).map_err(io)?;
    let n = u64::from_le_bytes(u64_buf) as usize;
    r.read_exact(&mut u64_buf).map_err(io)?;
    let size = u64::from_le_bytes(u64_buf) as usize;
    // A light sanity cap prevents a corrupt header from triggering a
    // multi-gigabyte allocation.
    if n > 10_000_000 || size == 0 || size > 4096 {
        return Err(DataError::InvalidConfig {
            reason: format!("implausible dataset header: n = {n}, size = {size}"),
        });
    }
    let mut u32_buf = [0u8; 4];
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        r.read_exact(&mut u32_buf).map_err(io)?;
        labels.push(u32::from_le_bytes(u32_buf) as usize);
    }
    let numel = n * 3 * size * size;
    let mut data = vec![0.0f32; numel];
    for x in &mut data {
        r.read_exact(&mut u32_buf).map_err(io)?;
        *x = f32::from_le_bytes(u32_buf);
    }
    let images = Tensor::from_vec(data, Shape::new(vec![n, 3, size, size]))?;
    SignDataset::from_parts(images, labels)
}

/// Reads a dataset from a file path.
///
/// # Errors
///
/// Same conditions as [`load_dataset`].
pub fn load_dataset_from_path<P: AsRef<Path>>(path: P) -> Result<SignDataset> {
    load_dataset(File::open(path).map_err(DataError::from_io)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DatasetConfig, NoiseModel};

    fn dataset() -> SignDataset {
        SignDataset::generate(&DatasetConfig {
            samples_per_class: 2,
            image_size: 12,
            seed: 3,
            noise: NoiseModel::sensor(),
            blur_prob: 0.5,
        })
        .unwrap()
    }

    #[test]
    fn round_trip_is_lossless() {
        let original = dataset();
        let mut buf = Vec::new();
        save_dataset(&original, &mut buf).unwrap();
        let loaded = load_dataset(buf.as_slice()).unwrap();
        assert_eq!(loaded, original);
    }

    #[test]
    fn rejects_bad_magic() {
        let err = load_dataset(&b"NOTADATA\x00\x00\x00\x00\x00\x00\x00\x00"[..]).unwrap_err();
        assert!(matches!(err, DataError::InvalidConfig { .. }));
    }

    #[test]
    fn rejects_truncated_stream() {
        let original = dataset();
        let mut buf = Vec::new();
        save_dataset(&original, &mut buf).unwrap();
        buf.truncate(buf.len() / 3);
        assert!(matches!(
            load_dataset(buf.as_slice()),
            Err(DataError::Io(_))
        ));
    }

    #[test]
    fn rejects_implausible_header() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&u64::MAX.to_le_bytes()); // absurd n
        buf.extend_from_slice(&12u64.to_le_bytes());
        assert!(matches!(
            load_dataset(buf.as_slice()),
            Err(DataError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("fademl_dataset_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("signs.fds");
        let original = dataset();
        save_dataset_to_path(&original, &path).unwrap();
        let loaded = load_dataset_from_path(&path).unwrap();
        assert_eq!(loaded, original);
        std::fs::remove_file(&path).ok();
    }
}
