//! Dataset generation: balanced per-class sampling with jitter and
//! sensor noise, plus deterministic train/test splitting.

use fademl_tensor::{Tensor, TensorRng};
use serde::{Deserialize, Serialize};

use crate::canvas::Rgb;
use crate::classes::{ClassId, CLASS_COUNT};
use crate::noise::NoiseModel;
use crate::templates::{render_sign, RenderJitter};
use crate::{DataError, Result};

/// Parameters for generating a [`SignDataset`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DatasetConfig {
    /// Samples generated per class (balanced dataset).
    pub samples_per_class: usize,
    /// Square image edge length in pixels.
    pub image_size: usize,
    /// Master seed; everything downstream derives from it.
    pub seed: u64,
    /// Acquisition noise applied to every sample.
    pub noise: NoiseModel,
    /// Probability that a sample receives defocus augmentation (one or
    /// two passes of a 3×3 box blur before sensor noise). Models soft
    /// camera optics and makes the classifier tolerant of the deployed
    /// smoothing filters, as a GTSRB-trained VGG is.
    pub blur_prob: f32,
}

impl Default for DatasetConfig {
    fn default() -> Self {
        DatasetConfig {
            samples_per_class: 30,
            image_size: 32,
            seed: 0,
            noise: NoiseModel::sensor(),
            blur_prob: 0.5,
        }
    }
}

/// A generated dataset: images stacked into one `[n, 3, s, s]` tensor
/// plus parallel integer labels.
#[derive(Debug, Clone, PartialEq)]
pub struct SignDataset {
    images: Tensor,
    labels: Vec<usize>,
    image_size: usize,
}

/// A deterministic train/test partition of a [`SignDataset`].
#[derive(Debug, Clone, PartialEq)]
pub struct TrainTestSplit {
    /// The training portion.
    pub train: SignDataset,
    /// The held-out test portion.
    pub test: SignDataset,
}

impl SignDataset {
    /// Generates a balanced dataset according to `config`.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidConfig`] for zero samples or image size.
    pub fn generate(config: &DatasetConfig) -> Result<Self> {
        if config.samples_per_class == 0 {
            return Err(DataError::InvalidConfig {
                reason: "samples_per_class must be positive".into(),
            });
        }
        if config.image_size < 8 {
            return Err(DataError::InvalidConfig {
                reason: format!("image_size {} too small (min 8)", config.image_size),
            });
        }
        let mut rng = TensorRng::seed_from_u64(config.seed);
        let mut images = Vec::with_capacity(CLASS_COUNT * config.samples_per_class);
        let mut labels = Vec::with_capacity(CLASS_COUNT * config.samples_per_class);
        for class in ClassId::all() {
            for _ in 0..config.samples_per_class {
                let jitter = sample_jitter(&mut rng);
                let mut image = render_sign(class, config.image_size, &jitter)?;
                if rng.chance(config.blur_prob) {
                    image = crate::noise::box_blur3(&image);
                    if rng.chance(0.4) {
                        image = crate::noise::box_blur3(&image);
                    }
                }
                let noisy = config.noise.apply(&image, &mut rng);
                images.push(noisy);
                labels.push(class.index());
            }
        }
        // Shuffle images and labels together so batches are class-mixed.
        let mut order: Vec<usize> = (0..images.len()).collect();
        rng.shuffle(&mut order);
        let images: Vec<Tensor> = order.iter().map(|&i| images[i].clone()).collect();
        let labels: Vec<usize> = order.iter().map(|&i| labels[i]).collect();
        Ok(SignDataset {
            images: Tensor::stack(&images)?,
            labels,
            image_size: config.image_size,
        })
    }

    /// Builds a dataset from pre-assembled images and labels.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidConfig`] if `images` is not
    /// `[n, 3, s, s]` or label count differs from `n`.
    pub fn from_parts(images: Tensor, labels: Vec<usize>) -> Result<Self> {
        if images.rank() != 4 || images.dims()[1] != 3 || images.dims()[2] != images.dims()[3] {
            return Err(DataError::InvalidConfig {
                reason: format!("images must be [n, 3, s, s], got {:?}", images.dims()),
            });
        }
        if images.dims()[0] != labels.len() {
            return Err(DataError::InvalidConfig {
                reason: format!("{} labels for {} images", labels.len(), images.dims()[0]),
            });
        }
        let image_size = images.dims()[2];
        Ok(SignDataset {
            images,
            labels,
            image_size,
        })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// `true` if there are no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The stacked images, `[n, 3, s, s]`.
    pub fn images(&self) -> &Tensor {
        &self.images
    }

    /// The integer labels, parallel to the batch axis.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Image edge length in pixels.
    pub fn image_size(&self) -> usize {
        self.image_size
    }

    /// One sample as `([3, s, s], label)`.
    ///
    /// # Errors
    ///
    /// Returns an error if `index >= len()`.
    pub fn sample(&self, index: usize) -> Result<(Tensor, usize)> {
        Ok((self.images.index_batch(index)?, self.labels[index]))
    }

    /// Indices of all samples of one class.
    pub fn indices_of_class(&self, class: ClassId) -> Vec<usize> {
        self.labels
            .iter()
            .enumerate()
            .filter(|(_, &l)| l == class.index())
            .map(|(i, _)| i)
            .collect()
    }

    /// The first sample of `class`, if any.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidConfig`] if the class has no samples.
    pub fn first_of_class(&self, class: ClassId) -> Result<Tensor> {
        let idx = self
            .indices_of_class(class)
            .first()
            .copied()
            .ok_or_else(|| DataError::InvalidConfig {
                reason: format!("no samples of class {class}"),
            })?;
        Ok(self.images.index_batch(idx)?)
    }

    /// Splits deterministically into train/test with the given test
    /// fraction (per the whole shuffled order, so splits stay balanced
    /// in expectation).
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidConfig`] if `test_fraction` is outside
    /// `(0, 1)` or either side would be empty.
    pub fn split(&self, test_fraction: f32) -> Result<TrainTestSplit> {
        if !(0.0..1.0).contains(&test_fraction) || test_fraction == 0.0 {
            return Err(DataError::InvalidConfig {
                reason: format!("test_fraction {test_fraction} must be in (0, 1)"),
            });
        }
        let n = self.len();
        let test_n = ((n as f32) * test_fraction).round() as usize;
        if test_n == 0 || test_n == n {
            return Err(DataError::InvalidConfig {
                reason: "split would leave an empty partition".into(),
            });
        }
        let take = |range: std::ops::Range<usize>| -> Result<SignDataset> {
            let images: Vec<Tensor> = range
                .clone()
                .map(|i| self.images.index_batch(i))
                .collect::<std::result::Result<_, _>>()?;
            Ok(SignDataset {
                images: Tensor::stack(&images)?,
                labels: self.labels[range].to_vec(),
                image_size: self.image_size,
            })
        };
        Ok(TrainTestSplit {
            test: take(0..test_n)?,
            train: take(test_n..n)?,
        })
    }

    /// Splits into train/test with per-class proportions guaranteed:
    /// for every class, `ceil(count · test_fraction)` samples go to the
    /// test side (so no class is ever absent from either side when it
    /// has at least two samples).
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidConfig`] if `test_fraction` is outside
    /// `(0, 1)` or either side would be empty.
    pub fn split_stratified(&self, test_fraction: f32) -> Result<TrainTestSplit> {
        if !(0.0..1.0).contains(&test_fraction) || test_fraction == 0.0 {
            return Err(DataError::InvalidConfig {
                reason: format!("test_fraction {test_fraction} must be in (0, 1)"),
            });
        }
        let mut test_idx = Vec::new();
        let mut train_idx = Vec::new();
        for class in ClassId::all() {
            let members = self.indices_of_class(class);
            if members.is_empty() {
                continue;
            }
            let take = ((members.len() as f32) * test_fraction).ceil() as usize;
            let take = take
                .min(members.len().saturating_sub(1))
                .max(if members.len() > 1 { 1 } else { 0 });
            test_idx.extend_from_slice(&members[..take]);
            train_idx.extend_from_slice(&members[take..]);
        }
        if test_idx.is_empty() || train_idx.is_empty() {
            return Err(DataError::InvalidConfig {
                reason: "stratified split would leave an empty partition".into(),
            });
        }
        let take = |indices: &[usize]| -> Result<SignDataset> {
            let images: Vec<Tensor> = indices
                .iter()
                .map(|&i| self.images.index_batch(i))
                .collect::<std::result::Result<_, _>>()?;
            Ok(SignDataset {
                images: Tensor::stack(&images)?,
                labels: indices.iter().map(|&i| self.labels[i]).collect(),
                image_size: self.image_size,
            })
        };
        Ok(TrainTestSplit {
            test: take(&test_idx)?,
            train: take(&train_idx)?,
        })
    }

    /// A subsample of the first `n` items (useful for fast smoke runs).
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidConfig`] if `n` is zero or exceeds the
    /// dataset size.
    pub fn take(&self, n: usize) -> Result<SignDataset> {
        if n == 0 || n > self.len() {
            return Err(DataError::InvalidConfig {
                reason: format!("cannot take {n} of {} samples", self.len()),
            });
        }
        let images: Vec<Tensor> = (0..n)
            .map(|i| self.images.index_batch(i))
            .collect::<std::result::Result<_, _>>()?;
        Ok(SignDataset {
            images: Tensor::stack(&images)?,
            labels: self.labels[..n].to_vec(),
            image_size: self.image_size,
        })
    }
}

fn sample_jitter(rng: &mut TensorRng) -> RenderJitter {
    RenderJitter {
        offset_x: rng.uniform_scalar(-0.08, 0.08),
        offset_y: rng.uniform_scalar(-0.08, 0.08),
        scale: rng.uniform_scalar(0.75, 1.05),
        brightness: rng.uniform_scalar(0.7, 1.3),
        background: Rgb::new(
            rng.uniform_scalar(0.2, 0.55),
            rng.uniform_scalar(0.3, 0.6),
            rng.uniform_scalar(0.2, 0.55),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> DatasetConfig {
        DatasetConfig {
            samples_per_class: 2,
            image_size: 16,
            seed: 1,
            noise: NoiseModel::sensor(),
            blur_prob: 0.5,
        }
    }

    #[test]
    fn generates_balanced_classes() {
        let ds = SignDataset::generate(&small_config()).unwrap();
        assert_eq!(ds.len(), 2 * CLASS_COUNT);
        for class in ClassId::all() {
            assert_eq!(ds.indices_of_class(class).len(), 2, "class {class}");
        }
    }

    #[test]
    fn images_shape_and_range() {
        let ds = SignDataset::generate(&small_config()).unwrap();
        assert_eq!(ds.images().dims(), &[86, 3, 16, 16]);
        assert!(ds.images().min().unwrap() >= 0.0);
        assert!(ds.images().max().unwrap() <= 1.0);
    }

    #[test]
    fn deterministic_from_seed() {
        let a = SignDataset::generate(&small_config()).unwrap();
        let b = SignDataset::generate(&small_config()).unwrap();
        assert_eq!(a, b);
        let c = SignDataset::generate(&DatasetConfig {
            seed: 99,
            ..small_config()
        })
        .unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn samples_within_class_differ() {
        // Jitter + noise must make two samples of the same class distinct.
        let ds = SignDataset::generate(&small_config()).unwrap();
        let idx = ds.indices_of_class(ClassId::STOP);
        let (a, _) = ds.sample(idx[0]).unwrap();
        let (b, _) = ds.sample(idx[1]).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn split_partitions_everything() {
        let ds = SignDataset::generate(&small_config()).unwrap();
        let split = ds.split(0.25).unwrap();
        assert_eq!(split.train.len() + split.test.len(), ds.len());
        assert!(!split.test.is_empty() && !split.train.is_empty());
        assert_eq!(split.train.image_size(), 16);
    }

    #[test]
    fn split_validates_fraction() {
        let ds = SignDataset::generate(&small_config()).unwrap();
        assert!(ds.split(0.0).is_err());
        assert!(ds.split(1.0).is_err());
        assert!(ds.split(-0.5).is_err());
    }

    #[test]
    fn stratified_split_keeps_every_class_on_both_sides() {
        let ds = SignDataset::generate(&small_config()).unwrap();
        let split = ds.split_stratified(0.5).unwrap();
        assert_eq!(split.train.len() + split.test.len(), ds.len());
        for class in ClassId::all() {
            assert!(
                !split.train.indices_of_class(class).is_empty(),
                "class {class} missing from train"
            );
            assert!(
                !split.test.indices_of_class(class).is_empty(),
                "class {class} missing from test"
            );
        }
        assert!(ds.split_stratified(0.0).is_err());
        assert!(ds.split_stratified(1.0).is_err());
    }

    #[test]
    fn take_prefix() {
        let ds = SignDataset::generate(&small_config()).unwrap();
        let sub = ds.take(10).unwrap();
        assert_eq!(sub.len(), 10);
        assert_eq!(sub.labels(), &ds.labels()[..10]);
        assert!(ds.take(0).is_err());
        assert!(ds.take(10_000).is_err());
    }

    #[test]
    fn first_of_class_matches_label() {
        let ds = SignDataset::generate(&small_config()).unwrap();
        let img = ds.first_of_class(ClassId::SPEED_60).unwrap();
        assert_eq!(img.dims(), &[3, 16, 16]);
    }

    #[test]
    fn from_parts_validates() {
        let images = Tensor::zeros(&[4, 3, 8, 8]);
        assert!(SignDataset::from_parts(images.clone(), vec![0, 1, 2, 3]).is_ok());
        assert!(SignDataset::from_parts(images.clone(), vec![0, 1]).is_err());
        assert!(SignDataset::from_parts(Tensor::zeros(&[4, 1, 8, 8]), vec![0; 4]).is_err());
    }

    #[test]
    fn config_validation() {
        assert!(SignDataset::generate(&DatasetConfig {
            samples_per_class: 0,
            ..small_config()
        })
        .is_err());
        assert!(SignDataset::generate(&DatasetConfig {
            image_size: 4,
            ..small_config()
        })
        .is_err());
    }

    #[test]
    fn labels_are_shuffled() {
        // After shuffling, the first 43 labels should not be 0,0,1,1,…
        let ds = SignDataset::generate(&small_config()).unwrap();
        let sorted: Vec<usize> = {
            let mut l = ds.labels().to_vec();
            l.sort_unstable();
            l
        };
        assert_ne!(ds.labels(), &sorted[..]);
    }
}
