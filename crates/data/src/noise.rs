//! Sensor noise model applied at acquisition time.
//!
//! The pre-processing filters in the pipeline exist to remove exactly
//! this noise, so its parameters shape the rising flank of the paper's
//! accuracy-vs-filter-strength curve (Figs. 7 and 9).

use fademl_tensor::{Tensor, TensorRng};
use serde::{Deserialize, Serialize};

/// Additive/impulse sensor noise applied to a clean rendered sign.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseModel {
    /// Standard deviation of zero-mean Gaussian noise (per channel).
    pub gaussian_std: f32,
    /// Probability a pixel is replaced by salt (1.0) or pepper (0.0).
    pub salt_pepper_prob: f32,
}

impl NoiseModel {
    /// The default camera-noise profile used by the experiments.
    pub fn sensor() -> Self {
        NoiseModel {
            gaussian_std: 0.06,
            salt_pepper_prob: 0.01,
        }
    }

    /// No noise at all.
    pub fn none() -> Self {
        NoiseModel {
            gaussian_std: 0.0,
            salt_pepper_prob: 0.0,
        }
    }

    /// `true` if this model is a no-op.
    pub fn is_none(&self) -> bool {
        self.gaussian_std == 0.0 && self.salt_pepper_prob == 0.0
    }

    /// Applies the noise to an image tensor (any shape, values `[0, 1]`),
    /// clamping the result back into `[0, 1]`.
    pub fn apply(&self, image: &Tensor, rng: &mut TensorRng) -> Tensor {
        if self.is_none() {
            return image.clone();
        }
        let mut out = image.clone();
        let data = out.as_mut_slice();
        if self.gaussian_std > 0.0 {
            for x in data.iter_mut() {
                *x += self.gaussian_std * rng.normal_scalar();
            }
        }
        if self.salt_pepper_prob > 0.0 {
            for x in data.iter_mut() {
                if rng.chance(self.salt_pepper_prob) {
                    *x = if rng.chance(0.5) { 1.0 } else { 0.0 };
                }
            }
        }
        for x in data.iter_mut() {
            *x = x.clamp(0.0, 1.0);
        }
        out
    }
}

impl Default for NoiseModel {
    /// The sensor profile — acquiring an image is noisy by default.
    fn default() -> Self {
        NoiseModel::sensor()
    }
}

/// One pass of a 3×3 box blur over a `[C, H, W]` image, with border
/// renormalization (the out-of-bounds taps are dropped).
///
/// Used as a training-time *defocus augmentation*: cameras deliver
/// slightly soft images, and a classifier trained on them tolerates the
/// pipeline's mild smoothing filters — which is what produces the
/// paper's accuracy-vs-filter-strength hump (DESIGN.md §4).
///
/// # Panics
///
/// Panics if `image` is not rank 3.
pub fn box_blur3(image: &Tensor) -> Tensor {
    assert_eq!(image.rank(), 3, "box_blur3 expects a [C, H, W] image");
    let (c, h, w) = (image.dims()[0], image.dims()[1], image.dims()[2]);
    let src = image.as_slice();
    let mut out = vec![0.0f32; src.len()];
    for ch in 0..c {
        let base = ch * h * w;
        for y in 0..h as i32 {
            for x in 0..w as i32 {
                let mut acc = 0.0f32;
                let mut count = 0u32;
                for dy in -1..=1 {
                    for dx in -1..=1 {
                        let (sy, sx) = (y + dy, x + dx);
                        if sy >= 0 && sy < h as i32 && sx >= 0 && sx < w as i32 {
                            acc += src[base + (sy as usize) * w + sx as usize];
                            count += 1;
                        }
                    }
                }
                out[base + (y as usize) * w + x as usize] = acc / count as f32;
            }
        }
    }
    Tensor::from_vec(out, image.shape().clone()).expect("blur preserves the shape")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_identity() {
        let mut rng = TensorRng::seed_from_u64(0);
        let img = Tensor::full(&[3, 4, 4], 0.5);
        assert_eq!(NoiseModel::none().apply(&img, &mut rng), img);
        assert!(NoiseModel::none().is_none());
        assert!(!NoiseModel::sensor().is_none());
    }

    #[test]
    fn gaussian_perturbs_with_right_magnitude() {
        let mut rng = TensorRng::seed_from_u64(1);
        let model = NoiseModel {
            gaussian_std: 0.05,
            salt_pepper_prob: 0.0,
        };
        let img = Tensor::full(&[3, 32, 32], 0.5);
        let noisy = model.apply(&img, &mut rng);
        let diff = noisy.sub(&img).unwrap();
        let std = (diff.norm_l2_squared() / diff.numel() as f32).sqrt();
        assert!((std - 0.05).abs() < 0.01, "std {std}");
    }

    #[test]
    fn salt_pepper_creates_extremes() {
        let mut rng = TensorRng::seed_from_u64(2);
        let model = NoiseModel {
            gaussian_std: 0.0,
            salt_pepper_prob: 0.1,
        };
        let img = Tensor::full(&[3, 32, 32], 0.5);
        let noisy = model.apply(&img, &mut rng);
        let extremes = noisy
            .as_slice()
            .iter()
            .filter(|&&x| x == 0.0 || x == 1.0)
            .count();
        let frac = extremes as f32 / noisy.numel() as f32;
        assert!((frac - 0.1).abs() < 0.03, "extreme fraction {frac}");
    }

    #[test]
    fn output_stays_in_unit_range() {
        let mut rng = TensorRng::seed_from_u64(3);
        let model = NoiseModel {
            gaussian_std: 0.5,
            salt_pepper_prob: 0.05,
        };
        let img = Tensor::full(&[3, 16, 16], 0.9);
        let noisy = model.apply(&img, &mut rng);
        assert!(noisy.min().unwrap() >= 0.0);
        assert!(noisy.max().unwrap() <= 1.0);
    }

    #[test]
    fn deterministic_given_rng_seed() {
        let img = Tensor::full(&[3, 8, 8], 0.5);
        let model = NoiseModel::sensor();
        let mut r1 = TensorRng::seed_from_u64(7);
        let mut r2 = TensorRng::seed_from_u64(7);
        assert_eq!(model.apply(&img, &mut r1), model.apply(&img, &mut r2));
    }
}
