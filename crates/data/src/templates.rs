//! Per-class sign templates: shape + colours + glyph composited onto a
//! background, with geometric jitter.

use fademl_tensor::Tensor;

use crate::canvas::{Canvas, Rgb};
use crate::classes::{ClassId, SignShape};
use crate::glyphs::draw_glyph;
use crate::Result;

/// Geometric and photometric jitter applied to one rendered sample.
///
/// All fields default to the canonical (centred, full-size, neutral)
/// rendering; the dataset generator randomizes them per sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RenderJitter {
    /// Horizontal centre offset in unit space (±0.1 is realistic).
    pub offset_x: f32,
    /// Vertical centre offset in unit space.
    pub offset_y: f32,
    /// Sign scale relative to the canonical radius (1.0 = full size).
    pub scale: f32,
    /// Global brightness multiplier (1.0 = neutral).
    pub brightness: f32,
    /// Background base colour (roadside scene stand-in).
    pub background: Rgb,
}

impl Default for RenderJitter {
    fn default() -> Self {
        RenderJitter {
            offset_x: 0.0,
            offset_y: 0.0,
            scale: 1.0,
            brightness: 1.0,
            background: Rgb::new(0.35, 0.42, 0.38),
        }
    }
}

impl RenderJitter {
    /// Clamps the jitter into ranges that keep the sign on-canvas.
    pub fn clamped(self) -> Self {
        RenderJitter {
            offset_x: self.offset_x.clamp(-0.12, 0.12),
            offset_y: self.offset_y.clamp(-0.12, 0.12),
            scale: self.scale.clamp(0.6, 1.1),
            brightness: self.brightness.clamp(0.5, 1.5),
            background: self.background,
        }
    }
}

/// Renders a clean (noise-free) sign of class `class` as a
/// `[3, size, size]` tensor in `[0, 1]`.
///
/// # Errors
///
/// Returns [`DataError::InvalidConfig`](crate::DataError::InvalidConfig)
/// for `size == 0`.
pub fn render_sign(class: ClassId, size: usize, jitter: &RenderJitter) -> Result<Tensor> {
    let j = jitter.clamped();
    let mut canvas = Canvas::new(size)?;
    canvas.fill(j.background);

    let cx = 0.5 + j.offset_x;
    let cy = 0.5 + j.offset_y;
    let r = 0.42 * j.scale;
    let info = class.info();

    // Base plate and glyph colour by family.
    let glyph_color = match info.shape {
        SignShape::RedRingCircle => {
            canvas.disk(cx, cy, r, Rgb::SIGN_RED);
            canvas.disk(cx, cy, r * 0.72, Rgb::WHITE);
            Rgb::BLACK
        }
        SignShape::BlueCircle => {
            canvas.disk(cx, cy, r, Rgb::SIGN_BLUE);
            Rgb::WHITE
        }
        SignShape::WarningTriangle => {
            let h = r * 1.25;
            canvas.triangle(
                (cx, cy - h),
                (cx - h, cy + h * 0.8),
                (cx + h, cy + h * 0.8),
                Rgb::SIGN_RED,
            );
            canvas.triangle(
                (cx, cy - h * 0.62),
                (cx - h * 0.66, cy + h * 0.58),
                (cx + h * 0.66, cy + h * 0.58),
                Rgb::WHITE,
            );
            Rgb::BLACK
        }
        SignShape::InvertedTriangle => {
            let h = r * 1.25;
            canvas.triangle(
                (cx, cy + h),
                (cx - h, cy - h * 0.8),
                (cx + h, cy - h * 0.8),
                Rgb::SIGN_RED,
            );
            canvas.triangle(
                (cx, cy + h * 0.62),
                (cx - h * 0.66, cy - h * 0.58),
                (cx + h * 0.66, cy - h * 0.58),
                Rgb::WHITE,
            );
            Rgb::BLACK
        }
        SignShape::Octagon => {
            canvas.octagon(cx, cy, r * 1.05, Rgb::SIGN_RED);
            Rgb::WHITE
        }
        SignShape::Diamond => {
            canvas.diamond(cx, cy, r * 1.1, Rgb::WHITE);
            canvas.diamond(cx, cy, r * 0.85, Rgb::SIGN_YELLOW);
            Rgb::SIGN_YELLOW
        }
        SignShape::RedCircleBar => {
            canvas.disk(cx, cy, r, Rgb::SIGN_RED);
            Rgb::WHITE
        }
        SignShape::GreyStrokeCircle => {
            canvas.disk(cx, cy, r, Rgb::WHITE);
            canvas.line(
                (cx - r * 0.7, cy + r * 0.7),
                (cx + r * 0.7, cy - r * 0.7),
                r * 0.1,
                Rgb::SIGN_GREY,
            );
            Rgb::SIGN_GREY
        }
    };

    let glyph_extent = match info.shape {
        SignShape::WarningTriangle | SignShape::InvertedTriangle => r * 0.75,
        _ => r * 1.0,
    };
    draw_glyph(&mut canvas, info.glyph, cx, cy, glyph_extent, glyph_color);

    let mut image = canvas.into_tensor();
    if (j.brightness - 1.0).abs() > f32::EPSILON {
        image = image.scale(j.brightness).clamp(0.0, 1.0);
    }
    Ok(image)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classes::CLASS_COUNT;

    #[test]
    fn renders_every_class() {
        for class in ClassId::all() {
            let img = render_sign(class, 24, &RenderJitter::default()).unwrap();
            assert_eq!(img.dims(), &[3, 24, 24]);
            assert!(img.min().unwrap() >= 0.0);
            assert!(img.max().unwrap() <= 1.0);
        }
    }

    #[test]
    fn canonical_renders_are_pairwise_distinct() {
        let renders: Vec<Tensor> = ClassId::all()
            .map(|c| render_sign(c, 32, &RenderJitter::default()).unwrap())
            .collect();
        let mut collisions = Vec::new();
        for i in 0..CLASS_COUNT {
            for jj in (i + 1)..CLASS_COUNT {
                let diff = renders[i].sub(&renders[jj]).unwrap().norm_l2();
                if diff < 0.5 {
                    collisions.push((i, jj, diff));
                }
            }
        }
        assert!(
            collisions.is_empty(),
            "visually colliding classes: {collisions:?}"
        );
    }

    #[test]
    fn stop_sign_is_mostly_red() {
        let img = render_sign(ClassId::STOP, 32, &RenderJitter::default()).unwrap();
        // Mean red channel exceeds mean blue channel by a clear margin.
        let red = img.index_batch(0).unwrap().mean();
        let blue = img.index_batch(2).unwrap().mean();
        assert!(red > blue + 0.1, "red {red} vs blue {blue}");
    }

    #[test]
    fn turn_signs_are_mostly_blue() {
        let img = render_sign(ClassId::TURN_LEFT, 32, &RenderJitter::default()).unwrap();
        let red = img.index_batch(0).unwrap().mean();
        let blue = img.index_batch(2).unwrap().mean();
        assert!(blue > red, "blue {blue} vs red {red}");
    }

    #[test]
    fn jitter_moves_the_sign() {
        let base = render_sign(ClassId::STOP, 32, &RenderJitter::default()).unwrap();
        let moved = render_sign(
            ClassId::STOP,
            32,
            &RenderJitter {
                offset_x: 0.1,
                ..RenderJitter::default()
            },
        )
        .unwrap();
        assert_ne!(base, moved);
    }

    #[test]
    fn brightness_scales_image() {
        let dim = render_sign(
            ClassId::SPEED_60,
            32,
            &RenderJitter {
                brightness: 0.5,
                ..RenderJitter::default()
            },
        )
        .unwrap();
        let bright = render_sign(ClassId::SPEED_60, 32, &RenderJitter::default()).unwrap();
        assert!(dim.mean() < bright.mean());
    }

    #[test]
    fn clamp_keeps_jitter_in_range() {
        let wild = RenderJitter {
            offset_x: 5.0,
            offset_y: -5.0,
            scale: 0.01,
            brightness: 100.0,
            background: Rgb::WHITE,
        }
        .clamped();
        assert!(wild.offset_x <= 0.12);
        assert!(wild.offset_y >= -0.12);
        assert!(wild.scale >= 0.6);
        assert!(wild.brightness <= 1.5);
    }

    #[test]
    fn deterministic_rendering() {
        let a = render_sign(ClassId::SPEED_30, 32, &RenderJitter::default()).unwrap();
        let b = render_sign(ClassId::SPEED_30, 32, &RenderJitter::default()).unwrap();
        assert_eq!(a, b);
    }
}
