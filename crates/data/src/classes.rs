//! GTSRB class semantics: the 43 German traffic-sign classes, their
//! geometric families and glyph content.

use serde::{Deserialize, Serialize};

use crate::{DataError, Result};

/// Number of sign classes (GTSRB has 43).
pub const CLASS_COUNT: usize = 43;

/// The geometric family of a sign — the dominant low-frequency feature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum SignShape {
    /// White disc with a red ring (prohibitory: speed limits, no passing…).
    RedRingCircle,
    /// Solid blue disc (mandatory: turn/keep/ahead arrows, roundabout).
    BlueCircle,
    /// White triangle, red border, apex up (warnings).
    WarningTriangle,
    /// White triangle, red border, apex down (yield).
    InvertedTriangle,
    /// Red octagon (stop).
    Octagon,
    /// Yellow diamond (priority road).
    Diamond,
    /// Solid red disc with a white bar (no entry).
    RedCircleBar,
    /// White disc with a grey diagonal (end-of-restriction signs).
    GreyStrokeCircle,
}

/// What is drawn inside the sign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Glyph {
    /// A (possibly multi-digit) number, e.g. a speed limit value.
    Number(u16),
    /// An arrow pointing left.
    ArrowLeft,
    /// An arrow pointing right.
    ArrowRight,
    /// An arrow pointing up.
    ArrowUp,
    /// An up arrow forking right.
    ArrowUpRight,
    /// An up arrow forking left.
    ArrowUpLeft,
    /// A curved circular arrow (roundabout).
    Loop,
    /// A horizontal bar (no entry).
    Bar,
    /// An exclamation mark (general caution).
    Exclamation,
    /// A distinct procedural pictogram, indexed so each class stays
    /// visually unique (stand-in for GTSRB's pedestrian/animal/… icons).
    Pictogram(u8),
    /// Nothing inside (e.g. priority road, which is pure shape+colour).
    None,
}

/// Static metadata for one sign class.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClassInfo {
    /// GTSRB class id, `0..43`.
    pub id: usize,
    /// Short lowercase name, e.g. `"speed limit 60"`.
    pub name: &'static str,
    /// Geometric family.
    pub shape: SignShape,
    /// Inner glyph.
    pub glyph: Glyph,
}

/// A validated GTSRB class id.
///
/// # Example
///
/// ```
/// use fademl_data::ClassId;
///
/// # fn main() -> Result<(), fademl_data::DataError> {
/// let c = ClassId::new(14)?;
/// assert_eq!(c, ClassId::STOP);
/// assert_eq!(c.info().name, "stop");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ClassId(usize);

impl ClassId {
    /// Speed limit 30 km/h (scenario 2 source).
    pub const SPEED_30: ClassId = ClassId(1);
    /// Speed limit 60 km/h (scenarios 1 & 5 target).
    pub const SPEED_60: ClassId = ClassId(3);
    /// Speed limit 80 km/h (scenario 2 target).
    pub const SPEED_80: ClassId = ClassId(5);
    /// Stop (scenario 1 source).
    pub const STOP: ClassId = ClassId(14);
    /// No entry (scenario 5 source).
    pub const NO_ENTRY: ClassId = ClassId(17);
    /// Turn right ahead (scenario 3 target / 4 source).
    pub const TURN_RIGHT: ClassId = ClassId(33);
    /// Turn left ahead (scenario 3 source / 4 target).
    pub const TURN_LEFT: ClassId = ClassId(34);

    /// Validates a raw id.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::UnknownClass`] if `id >= 43`.
    pub fn new(id: usize) -> Result<Self> {
        if id >= CLASS_COUNT {
            return Err(DataError::UnknownClass { id });
        }
        Ok(ClassId(id))
    }

    /// The raw id.
    pub fn index(self) -> usize {
        self.0
    }

    /// The class metadata.
    pub fn info(self) -> &'static ClassInfo {
        &CLASSES[self.0]
    }

    /// Iterator over all 43 classes.
    pub fn all() -> impl Iterator<Item = ClassId> {
        (0..CLASS_COUNT).map(ClassId)
    }
}

impl std::fmt::Display for ClassId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} ({})", self.0, self.info().name)
    }
}

impl From<ClassId> for usize {
    fn from(c: ClassId) -> usize {
        c.0
    }
}

impl TryFrom<usize> for ClassId {
    type Error = DataError;

    fn try_from(id: usize) -> Result<Self> {
        ClassId::new(id)
    }
}

/// The GTSRB class table.
pub static CLASSES: [ClassInfo; CLASS_COUNT] = {
    use Glyph::*;
    use SignShape::*;
    [
        ClassInfo {
            id: 0,
            name: "speed limit 20",
            shape: RedRingCircle,
            glyph: Number(20),
        },
        ClassInfo {
            id: 1,
            name: "speed limit 30",
            shape: RedRingCircle,
            glyph: Number(30),
        },
        ClassInfo {
            id: 2,
            name: "speed limit 50",
            shape: RedRingCircle,
            glyph: Number(50),
        },
        ClassInfo {
            id: 3,
            name: "speed limit 60",
            shape: RedRingCircle,
            glyph: Number(60),
        },
        ClassInfo {
            id: 4,
            name: "speed limit 70",
            shape: RedRingCircle,
            glyph: Number(70),
        },
        ClassInfo {
            id: 5,
            name: "speed limit 80",
            shape: RedRingCircle,
            glyph: Number(80),
        },
        ClassInfo {
            id: 6,
            name: "end speed limit 80",
            shape: GreyStrokeCircle,
            glyph: Number(80),
        },
        ClassInfo {
            id: 7,
            name: "speed limit 100",
            shape: RedRingCircle,
            glyph: Number(100),
        },
        ClassInfo {
            id: 8,
            name: "speed limit 120",
            shape: RedRingCircle,
            glyph: Number(120),
        },
        ClassInfo {
            id: 9,
            name: "no passing",
            shape: RedRingCircle,
            glyph: Pictogram(0),
        },
        ClassInfo {
            id: 10,
            name: "no passing trucks",
            shape: RedRingCircle,
            glyph: Pictogram(1),
        },
        ClassInfo {
            id: 11,
            name: "right of way",
            shape: WarningTriangle,
            glyph: Pictogram(2),
        },
        ClassInfo {
            id: 12,
            name: "priority road",
            shape: Diamond,
            glyph: None,
        },
        ClassInfo {
            id: 13,
            name: "yield",
            shape: InvertedTriangle,
            glyph: None,
        },
        ClassInfo {
            id: 14,
            name: "stop",
            shape: Octagon,
            glyph: Pictogram(3),
        },
        ClassInfo {
            id: 15,
            name: "no vehicles",
            shape: RedRingCircle,
            glyph: None,
        },
        ClassInfo {
            id: 16,
            name: "no trucks",
            shape: RedRingCircle,
            glyph: Pictogram(4),
        },
        ClassInfo {
            id: 17,
            name: "no entry",
            shape: RedCircleBar,
            glyph: Bar,
        },
        ClassInfo {
            id: 18,
            name: "general caution",
            shape: WarningTriangle,
            glyph: Exclamation,
        },
        ClassInfo {
            id: 19,
            name: "curve left",
            shape: WarningTriangle,
            glyph: Pictogram(5),
        },
        ClassInfo {
            id: 20,
            name: "curve right",
            shape: WarningTriangle,
            glyph: Pictogram(6),
        },
        ClassInfo {
            id: 21,
            name: "double curve",
            shape: WarningTriangle,
            glyph: Pictogram(7),
        },
        ClassInfo {
            id: 22,
            name: "bumpy road",
            shape: WarningTriangle,
            glyph: Pictogram(8),
        },
        ClassInfo {
            id: 23,
            name: "slippery road",
            shape: WarningTriangle,
            glyph: Pictogram(9),
        },
        ClassInfo {
            id: 24,
            name: "road narrows right",
            shape: WarningTriangle,
            glyph: Pictogram(10),
        },
        ClassInfo {
            id: 25,
            name: "road work",
            shape: WarningTriangle,
            glyph: Pictogram(11),
        },
        ClassInfo {
            id: 26,
            name: "traffic signals",
            shape: WarningTriangle,
            glyph: Pictogram(12),
        },
        ClassInfo {
            id: 27,
            name: "pedestrians",
            shape: WarningTriangle,
            glyph: Pictogram(13),
        },
        ClassInfo {
            id: 28,
            name: "children crossing",
            shape: WarningTriangle,
            glyph: Pictogram(14),
        },
        ClassInfo {
            id: 29,
            name: "bicycles",
            shape: WarningTriangle,
            glyph: Pictogram(15),
        },
        ClassInfo {
            id: 30,
            name: "ice and snow",
            shape: WarningTriangle,
            glyph: Pictogram(16),
        },
        ClassInfo {
            id: 31,
            name: "wild animals",
            shape: WarningTriangle,
            glyph: Pictogram(17),
        },
        ClassInfo {
            id: 32,
            name: "end all limits",
            shape: GreyStrokeCircle,
            glyph: None,
        },
        ClassInfo {
            id: 33,
            name: "turn right ahead",
            shape: BlueCircle,
            glyph: ArrowRight,
        },
        ClassInfo {
            id: 34,
            name: "turn left ahead",
            shape: BlueCircle,
            glyph: ArrowLeft,
        },
        ClassInfo {
            id: 35,
            name: "ahead only",
            shape: BlueCircle,
            glyph: ArrowUp,
        },
        ClassInfo {
            id: 36,
            name: "straight or right",
            shape: BlueCircle,
            glyph: ArrowUpRight,
        },
        ClassInfo {
            id: 37,
            name: "straight or left",
            shape: BlueCircle,
            glyph: ArrowUpLeft,
        },
        ClassInfo {
            id: 38,
            name: "keep right",
            shape: BlueCircle,
            glyph: Pictogram(18),
        },
        ClassInfo {
            id: 39,
            name: "keep left",
            shape: BlueCircle,
            glyph: Pictogram(19),
        },
        ClassInfo {
            id: 40,
            name: "roundabout",
            shape: BlueCircle,
            glyph: Loop,
        },
        ClassInfo {
            id: 41,
            name: "end no passing",
            shape: GreyStrokeCircle,
            glyph: Pictogram(0),
        },
        ClassInfo {
            id: 42,
            name: "end no passing trucks",
            shape: GreyStrokeCircle,
            glyph: Pictogram(1),
        },
    ]
};

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn table_is_complete_and_ordered() {
        assert_eq!(CLASSES.len(), CLASS_COUNT);
        for (i, info) in CLASSES.iter().enumerate() {
            assert_eq!(info.id, i, "class table out of order at {i}");
            assert!(!info.name.is_empty());
        }
    }

    #[test]
    fn names_are_unique() {
        let names: HashSet<&str> = CLASSES.iter().map(|c| c.name).collect();
        assert_eq!(names.len(), CLASS_COUNT);
    }

    #[test]
    fn visual_signatures_are_unique() {
        // No two classes may share (shape, glyph) — that is what makes
        // them learnable.
        let sigs: HashSet<(SignShape, Glyph)> =
            CLASSES.iter().map(|c| (c.shape, c.glyph)).collect();
        assert_eq!(sigs.len(), CLASS_COUNT);
    }

    #[test]
    fn scenario_classes_match_gtsrb_numbering() {
        assert_eq!(ClassId::STOP.index(), 14);
        assert_eq!(ClassId::STOP.info().name, "stop");
        assert_eq!(ClassId::SPEED_60.index(), 3);
        assert_eq!(ClassId::SPEED_30.index(), 1);
        assert_eq!(ClassId::SPEED_80.index(), 5);
        assert_eq!(ClassId::NO_ENTRY.index(), 17);
        assert_eq!(ClassId::TURN_LEFT.info().name, "turn left ahead");
        assert_eq!(ClassId::TURN_RIGHT.info().name, "turn right ahead");
    }

    #[test]
    fn new_validates_range() {
        assert!(ClassId::new(42).is_ok());
        assert!(matches!(
            ClassId::new(43),
            Err(DataError::UnknownClass { id: 43 })
        ));
    }

    #[test]
    fn conversions() {
        let c = ClassId::new(5).unwrap();
        assert_eq!(usize::from(c), 5);
        assert_eq!(ClassId::try_from(5usize).unwrap(), c);
        assert!(ClassId::try_from(100usize).is_err());
    }

    #[test]
    fn all_iterates_everything() {
        assert_eq!(ClassId::all().count(), CLASS_COUNT);
        assert_eq!(ClassId::all().next().unwrap().index(), 0);
    }

    #[test]
    fn display_includes_name() {
        assert_eq!(ClassId::STOP.to_string(), "14 (stop)");
    }
}
