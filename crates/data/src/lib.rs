//! SynSign-43: a procedural 43-class traffic-sign dataset.
//!
//! The paper evaluates on the German Traffic Sign Recognition Benchmark
//! (GTSRB, 43 classes, 39,209 training samples). GTSRB itself cannot be
//! fetched in this offline environment, so this crate generates a
//! synthetic stand-in that preserves the three properties the FAdeML
//! experiments actually exercise (see `DESIGN.md` §4):
//!
//! 1. **43 discriminable classes** following GTSRB's label semantics —
//!    class 14 *is* the stop sign, class 3 *is* the 60 km/h limit, etc.,
//!    so the paper's misclassification scenarios transfer verbatim.
//! 2. **Spatial, mid-frequency class features** (sign shape, ring colour,
//!    digit/arrow/pictogram glyphs) that heavy smoothing degrades —
//!    producing the paper's accuracy-vs-filter-strength hump.
//! 3. **High-frequency sensor noise** (Gaussian + salt-and-pepper) on
//!    every acquired image, which mild smoothing removes — producing the
//!    rising flank of the same hump.
//!
//! Everything is deterministic from a `u64` seed.
//!
//! # Example
//!
//! ```
//! use fademl_data::{ClassId, DatasetConfig, SignDataset};
//!
//! # fn main() -> Result<(), fademl_data::DataError> {
//! let config = DatasetConfig { samples_per_class: 2, image_size: 32, ..DatasetConfig::default() };
//! let dataset = SignDataset::generate(&config)?;
//! assert_eq!(dataset.len(), 2 * 43);
//! assert_eq!(dataset.images().dims(), &[86, 3, 32, 32]);
//! let stop = ClassId::STOP;
//! assert_eq!(stop.info().name, "stop");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

mod canvas;
mod classes;
mod error;
mod generator;
mod glyphs;
mod noise;
mod persist;
mod ppm;
mod stream;
mod templates;

pub use canvas::{Canvas, Rgb};
pub use classes::{ClassId, ClassInfo, Glyph, SignShape, CLASSES, CLASS_COUNT};
pub use error::DataError;
pub use generator::{DatasetConfig, SignDataset, TrainTestSplit};
pub use noise::{box_blur3, NoiseModel};
pub use persist::{load_dataset, load_dataset_from_path, save_dataset, save_dataset_to_path};
pub use ppm::{from_ppm, save_ppm, to_ppm};
pub use stream::{DriftSpec, FrameStream, StreamConfig};
pub use templates::{render_sign, RenderJitter};

/// Convenient result alias for fallible dataset operations.
pub type Result<T> = std::result::Result<T, DataError>;
