//! Correlated-frame serving workload: a synthetic camera tracking one
//! sign over consecutive frames.
//!
//! Real deployments of the paper's camera → filter → DNN pipeline see
//! *streams*, not i.i.d. samples: consecutive frames show the same sign
//! under slowly drifting pose and exposure, plus fresh per-frame sensor
//! noise. The detection experiments need exactly that workload — a
//! triage detector fitted on clean traffic must not be confusable by
//! ordinary frame-to-frame drift, only by adversarial perturbation.
//!
//! [`FrameStream`] evolves a [`RenderJitter`] by a bounded random walk
//! (temporal correlation) and re-applies the sensor noise model each
//! frame (temporal independence of the noise), all deterministic from
//! one seed. An optional [`DriftSpec`] schedules *covariate shift*
//! mid-stream — an exposure change plus a noise-floor change, ramped in
//! over a configurable window — which is the workload the adaptive
//! detection experiments need: a detector fitted on pre-drift traffic
//! sees its clean-score distribution move under it.

use fademl_tensor::{Tensor, TensorRng};

use crate::classes::ClassId;
use crate::noise::NoiseModel;
use crate::templates::{render_sign, RenderJitter};
use crate::{DataError, Result};

/// Scheduled covariate shift: from frame `at_frame` on, the stream's
/// photometric conditions move away from the opening regime, ramping
/// linearly to full strength over `ramp_frames` frames. Deliberately
/// *benign* — no adversarial perturbation, just the world changing —
/// so it exercises exactly the false-positive inflation a static
/// detector suffers under drift.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftSpec {
    /// Index (0-based, in production order) of the first drifted frame.
    pub at_frame: u64,
    /// Frames over which the shift ramps from 0 to full strength;
    /// `0` means a step change.
    pub ramp_frames: u64,
    /// Additive shift to the brightness multiplier at full strength
    /// (`|x| ≤ 0.5`; the render clamp still applies).
    pub brightness_shift: f32,
    /// Multiplier on the sensor-noise magnitude at full strength
    /// (`[0, 4]`; `1.0` leaves the noise floor unchanged).
    pub noise_gain: f32,
}

impl Default for DriftSpec {
    fn default() -> Self {
        DriftSpec {
            at_frame: 0,
            ramp_frames: 0,
            brightness_shift: -0.3,
            noise_gain: 2.0,
        }
    }
}

impl DriftSpec {
    fn validate(&self) -> Result<()> {
        if !self.brightness_shift.is_finite() || self.brightness_shift.abs() > 0.5 {
            return Err(DataError::InvalidConfig {
                reason: format!(
                    "drift brightness_shift must be finite with |x| <= 0.5, got {}",
                    self.brightness_shift
                ),
            });
        }
        if !self.noise_gain.is_finite() || !(0.0..=4.0).contains(&self.noise_gain) {
            return Err(DataError::InvalidConfig {
                reason: format!(
                    "drift noise_gain must be a finite value in [0, 4], got {}",
                    self.noise_gain
                ),
            });
        }
        Ok(())
    }

    /// Drift strength in `[0, 1]` for the frame with production index
    /// `frame`: zero before `at_frame`, then a linear ramp reaching 1
    /// after `ramp_frames` frames (immediately if the ramp is zero).
    /// Experiments reuse this schedule at coarser granularities (e.g.
    /// per segment) by passing their own index.
    pub fn level(&self, frame: u64) -> f32 {
        if frame < self.at_frame {
            return 0.0;
        }
        if self.ramp_frames == 0 {
            return 1.0;
        }
        let into = (frame - self.at_frame).saturating_add(1);
        ((into as f64 / self.ramp_frames as f64).min(1.0)) as f32
    }
}

/// Configuration of a correlated frame stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamConfig {
    /// The tracked sign's class.
    pub class: ClassId,
    /// Square frame edge length in pixels.
    pub image_size: usize,
    /// Per-frame random-walk step in unit space for the geometric
    /// jitter (position/scale); photometric drift uses `2×` this step.
    pub walk_step: f32,
    /// Whether to apply the per-frame sensor noise model.
    pub sensor_noise: bool,
    /// Optional scheduled covariate shift; `None` leaves the stream
    /// bit-identical to a pre-drift-era stream with the same seed.
    pub drift: Option<DriftSpec>,
    /// Seed for the walk and the noise.
    pub seed: u64,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            class: ClassId::STOP,
            image_size: 32,
            walk_step: 0.02,
            sensor_noise: true,
            drift: None,
            seed: 0,
        }
    }
}

impl StreamConfig {
    fn validate(&self) -> Result<()> {
        if self.image_size == 0 {
            return Err(DataError::InvalidConfig {
                reason: "stream image_size must be positive".into(),
            });
        }
        if !self.walk_step.is_finite() || self.walk_step < 0.0 || self.walk_step > 0.25 {
            return Err(DataError::InvalidConfig {
                reason: format!(
                    "walk_step must be a finite value in [0, 0.25], got {}",
                    self.walk_step
                ),
            });
        }
        if let Some(drift) = &self.drift {
            drift.validate()?;
        }
        Ok(())
    }
}

/// A deterministic stream of temporally correlated `[3, S, S]` frames.
#[derive(Debug)]
pub struct FrameStream {
    config: StreamConfig,
    jitter: RenderJitter,
    noise: NoiseModel,
    rng: TensorRng,
    produced: u64,
}

impl FrameStream {
    /// Opens a stream at the canonical (centred, neutral) pose.
    ///
    /// # Errors
    ///
    /// [`DataError::InvalidConfig`] for a zero frame size or an
    /// unusable walk step.
    pub fn new(config: StreamConfig) -> Result<Self> {
        config.validate()?;
        Ok(FrameStream {
            config,
            jitter: RenderJitter::default(),
            noise: NoiseModel::sensor(),
            rng: TensorRng::seed_from_u64(config.seed),
            produced: 0,
        })
    }

    /// Renders the next frame: one random-walk step of the jitter, a
    /// fresh render (with any scheduled drift applied on top of the
    /// walk, so the walk state itself never absorbs the shift), and
    /// (if configured) fresh sensor noise at the drift-scaled floor.
    ///
    /// # Errors
    ///
    /// Propagates rendering failures (none for a validated config).
    pub fn next_frame(&mut self) -> Result<Tensor> {
        let step = self.config.walk_step;
        self.jitter = RenderJitter {
            offset_x: self.jitter.offset_x + self.rng.uniform_scalar(-step, step),
            offset_y: self.jitter.offset_y + self.rng.uniform_scalar(-step, step),
            scale: self.jitter.scale + self.rng.uniform_scalar(-step, step),
            brightness: self.jitter.brightness + self.rng.uniform_scalar(-2.0 * step, 2.0 * step),
            background: self.jitter.background,
        }
        // Clamp after every step so the walk reflects at the canvas
        // margins instead of wandering off-frame.
        .clamped();
        let level = self.drift_level();
        let mut pose = self.jitter;
        let mut noise = self.noise;
        if let Some(drift) = &self.config.drift {
            if level > 0.0 {
                pose.brightness += level * drift.brightness_shift;
                pose = pose.clamped();
                let gain = 1.0 + level * (drift.noise_gain - 1.0);
                noise.gaussian_std *= gain;
                noise.salt_pepper_prob = (noise.salt_pepper_prob * gain).min(1.0);
            }
        }
        let clean = render_sign(self.config.class, self.config.image_size, &pose)?;
        self.produced += 1;
        if self.config.sensor_noise {
            Ok(noise.apply(&clean, &mut self.rng))
        } else {
            Ok(clean)
        }
    }

    /// Drift strength in `[0, 1]` of the *next* frame
    /// ([`next_frame`](Self::next_frame) will produce it); `0.0` when no
    /// drift is scheduled or the stream has not reached it yet.
    pub fn drift_level(&self) -> f32 {
        self.config
            .drift
            .map(|drift| drift.level(self.produced))
            .unwrap_or(0.0)
    }

    /// Renders the next `n` frames.
    ///
    /// # Errors
    ///
    /// Same as [`next_frame`](Self::next_frame).
    pub fn take_frames(&mut self, n: usize) -> Result<Vec<Tensor>> {
        (0..n).map(|_| self.next_frame()).collect()
    }

    /// Frames produced so far.
    pub fn produced(&self) -> u64 {
        self.produced
    }

    /// The stream's configuration.
    pub fn config(&self) -> &StreamConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l2(a: &Tensor, b: &Tensor) -> f32 {
        a.as_slice()
            .iter()
            .zip(b.as_slice())
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f32>()
            .sqrt()
    }

    #[test]
    fn streams_are_deterministic_from_seed() {
        let config = StreamConfig {
            seed: 7,
            ..StreamConfig::default()
        };
        let a = FrameStream::new(config).unwrap().take_frames(5).unwrap();
        let b = FrameStream::new(config).unwrap().take_frames(5).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.as_slice(), y.as_slice());
        }
        assert_eq!(a[0].dims(), &[3, 32, 32]);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = FrameStream::new(StreamConfig {
            seed: 1,
            ..StreamConfig::default()
        })
        .unwrap();
        let mut b = FrameStream::new(StreamConfig {
            seed: 2,
            ..StreamConfig::default()
        })
        .unwrap();
        assert_ne!(
            a.next_frame().unwrap().as_slice(),
            b.next_frame().unwrap().as_slice()
        );
    }

    #[test]
    fn consecutive_frames_are_more_similar_than_distant_ones() {
        // Noise off isolates the geometric walk: frame t vs t+1 must be
        // closer than frame t vs t+30 on average — the correlation the
        // workload exists to model.
        let mut stream = FrameStream::new(StreamConfig {
            sensor_noise: false,
            seed: 11,
            ..StreamConfig::default()
        })
        .unwrap();
        let frames = stream.take_frames(31).unwrap();
        let near: f32 = (0..10).map(|i| l2(&frames[i], &frames[i + 1])).sum();
        let far: f32 = (0..10).map(|i| l2(&frames[i], &frames[30])).sum();
        assert!(
            near < far,
            "adjacent frames must correlate: near {near}, far {far}"
        );
    }

    #[test]
    fn frames_stay_in_unit_range() {
        let mut stream = FrameStream::new(StreamConfig {
            seed: 3,
            ..StreamConfig::default()
        })
        .unwrap();
        for _ in 0..5 {
            let frame = stream.next_frame().unwrap();
            assert!(frame
                .as_slice()
                .iter()
                .all(|&v| (0.0..=1.0).contains(&v) && v.is_finite()));
        }
        assert_eq!(stream.produced(), 5);
    }

    #[test]
    fn drift_none_is_bit_identical_to_the_undrifted_stream() {
        let base = StreamConfig {
            seed: 21,
            ..StreamConfig::default()
        };
        let plain = FrameStream::new(base).unwrap().take_frames(6).unwrap();
        let with_field = FrameStream::new(StreamConfig {
            drift: None,
            ..base
        })
        .unwrap()
        .take_frames(6)
        .unwrap();
        for (a, b) in plain.iter().zip(&with_field) {
            assert_eq!(a.as_slice(), b.as_slice());
        }
    }

    #[test]
    fn drift_ramps_in_on_schedule_and_darkens_frames() {
        let drift = DriftSpec {
            at_frame: 10,
            ramp_frames: 5,
            brightness_shift: -0.4,
            noise_gain: 1.0,
        };
        let config = StreamConfig {
            sensor_noise: false,
            drift: Some(drift),
            seed: 33,
            ..StreamConfig::default()
        };
        let mut drifted = FrameStream::new(config).unwrap();
        let mut clean = FrameStream::new(StreamConfig {
            drift: None,
            ..config
        })
        .unwrap();
        // Pre-drift: the two streams are the same pixels.
        assert_eq!(drifted.drift_level(), 0.0);
        for _ in 0..10 {
            assert_eq!(
                drifted.next_frame().unwrap().as_slice(),
                clean.next_frame().unwrap().as_slice()
            );
        }
        // Mid-ramp the level is fractional; past it, saturated at 1.
        assert!(drifted.drift_level() > 0.0 && drifted.drift_level() < 1.0);
        let mut last_level = drifted.drift_level();
        for _ in 0..5 {
            let dark = drifted.next_frame().unwrap();
            let bright = clean.next_frame().unwrap();
            assert!(drifted.drift_level() >= last_level, "ramp is monotone");
            last_level = drifted.drift_level();
            let mean = |t: &Tensor| t.as_slice().iter().sum::<f32>() / t.numel() as f32;
            assert!(
                mean(&dark) < mean(&bright),
                "drifted exposure must darken the frame"
            );
        }
        assert_eq!(drifted.drift_level(), 1.0);
    }

    #[test]
    fn drift_raises_the_noise_floor() {
        let config = StreamConfig {
            drift: Some(DriftSpec {
                at_frame: 0,
                ramp_frames: 0,
                brightness_shift: 0.0,
                noise_gain: 4.0,
            }),
            seed: 44,
            ..StreamConfig::default()
        };
        let noisy = FrameStream::new(config).unwrap().take_frames(4).unwrap();
        let calm = FrameStream::new(StreamConfig {
            drift: None,
            ..config
        })
        .unwrap()
        .take_frames(4)
        .unwrap();
        // Same walk, same render; only the noise magnitude differs — so
        // frame-to-frame high-frequency energy must be visibly larger.
        let wiggle = |frames: &[Tensor]| -> f32 {
            frames
                .windows(2)
                .map(|pair| l2(&pair[0], &pair[1]))
                .sum::<f32>()
        };
        assert!(
            wiggle(&noisy) > wiggle(&calm) * 1.2,
            "gain-4 noise floor must dominate: {} vs {}",
            wiggle(&noisy),
            wiggle(&calm)
        );
        for frame in &noisy {
            assert!(frame
                .as_slice()
                .iter()
                .all(|&v| (0.0..=1.0).contains(&v) && v.is_finite()));
        }
    }

    #[test]
    fn invalid_drift_specs_are_refused() {
        for drift in [
            DriftSpec {
                brightness_shift: 0.6,
                ..DriftSpec::default()
            },
            DriftSpec {
                brightness_shift: f32::NAN,
                ..DriftSpec::default()
            },
            DriftSpec {
                noise_gain: -0.5,
                ..DriftSpec::default()
            },
            DriftSpec {
                noise_gain: 4.5,
                ..DriftSpec::default()
            },
        ] {
            assert!(matches!(
                FrameStream::new(StreamConfig {
                    drift: Some(drift),
                    ..StreamConfig::default()
                }),
                Err(DataError::InvalidConfig { .. })
            ));
        }
    }

    #[test]
    fn invalid_configs_are_refused() {
        for config in [
            StreamConfig {
                image_size: 0,
                ..StreamConfig::default()
            },
            StreamConfig {
                walk_step: f32::NAN,
                ..StreamConfig::default()
            },
            StreamConfig {
                walk_step: 0.5,
                ..StreamConfig::default()
            },
        ] {
            assert!(matches!(
                FrameStream::new(config),
                Err(DataError::InvalidConfig { .. })
            ));
        }
    }
}
