//! Correlated-frame serving workload: a synthetic camera tracking one
//! sign over consecutive frames.
//!
//! Real deployments of the paper's camera → filter → DNN pipeline see
//! *streams*, not i.i.d. samples: consecutive frames show the same sign
//! under slowly drifting pose and exposure, plus fresh per-frame sensor
//! noise. The detection experiments need exactly that workload — a
//! triage detector fitted on clean traffic must not be confusable by
//! ordinary frame-to-frame drift, only by adversarial perturbation.
//!
//! [`FrameStream`] evolves a [`RenderJitter`] by a bounded random walk
//! (temporal correlation) and re-applies the sensor noise model each
//! frame (temporal independence of the noise), all deterministic from
//! one seed.

use fademl_tensor::{Tensor, TensorRng};

use crate::classes::ClassId;
use crate::noise::NoiseModel;
use crate::templates::{render_sign, RenderJitter};
use crate::{DataError, Result};

/// Configuration of a correlated frame stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamConfig {
    /// The tracked sign's class.
    pub class: ClassId,
    /// Square frame edge length in pixels.
    pub image_size: usize,
    /// Per-frame random-walk step in unit space for the geometric
    /// jitter (position/scale); photometric drift uses `2×` this step.
    pub walk_step: f32,
    /// Whether to apply the per-frame sensor noise model.
    pub sensor_noise: bool,
    /// Seed for the walk and the noise.
    pub seed: u64,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            class: ClassId::STOP,
            image_size: 32,
            walk_step: 0.02,
            sensor_noise: true,
            seed: 0,
        }
    }
}

impl StreamConfig {
    fn validate(&self) -> Result<()> {
        if self.image_size == 0 {
            return Err(DataError::InvalidConfig {
                reason: "stream image_size must be positive".into(),
            });
        }
        if !self.walk_step.is_finite() || self.walk_step < 0.0 || self.walk_step > 0.25 {
            return Err(DataError::InvalidConfig {
                reason: format!(
                    "walk_step must be a finite value in [0, 0.25], got {}",
                    self.walk_step
                ),
            });
        }
        Ok(())
    }
}

/// A deterministic stream of temporally correlated `[3, S, S]` frames.
#[derive(Debug)]
pub struct FrameStream {
    config: StreamConfig,
    jitter: RenderJitter,
    noise: NoiseModel,
    rng: TensorRng,
    produced: u64,
}

impl FrameStream {
    /// Opens a stream at the canonical (centred, neutral) pose.
    ///
    /// # Errors
    ///
    /// [`DataError::InvalidConfig`] for a zero frame size or an
    /// unusable walk step.
    pub fn new(config: StreamConfig) -> Result<Self> {
        config.validate()?;
        Ok(FrameStream {
            config,
            jitter: RenderJitter::default(),
            noise: NoiseModel::sensor(),
            rng: TensorRng::seed_from_u64(config.seed),
            produced: 0,
        })
    }

    /// Renders the next frame: one random-walk step of the jitter, a
    /// fresh render, and (if configured) fresh sensor noise.
    ///
    /// # Errors
    ///
    /// Propagates rendering failures (none for a validated config).
    pub fn next_frame(&mut self) -> Result<Tensor> {
        let step = self.config.walk_step;
        self.jitter = RenderJitter {
            offset_x: self.jitter.offset_x + self.rng.uniform_scalar(-step, step),
            offset_y: self.jitter.offset_y + self.rng.uniform_scalar(-step, step),
            scale: self.jitter.scale + self.rng.uniform_scalar(-step, step),
            brightness: self.jitter.brightness + self.rng.uniform_scalar(-2.0 * step, 2.0 * step),
            background: self.jitter.background,
        }
        // Clamp after every step so the walk reflects at the canvas
        // margins instead of wandering off-frame.
        .clamped();
        let clean = render_sign(self.config.class, self.config.image_size, &self.jitter)?;
        self.produced += 1;
        if self.config.sensor_noise {
            Ok(self.noise.apply(&clean, &mut self.rng))
        } else {
            Ok(clean)
        }
    }

    /// Renders the next `n` frames.
    ///
    /// # Errors
    ///
    /// Same as [`next_frame`](Self::next_frame).
    pub fn take_frames(&mut self, n: usize) -> Result<Vec<Tensor>> {
        (0..n).map(|_| self.next_frame()).collect()
    }

    /// Frames produced so far.
    pub fn produced(&self) -> u64 {
        self.produced
    }

    /// The stream's configuration.
    pub fn config(&self) -> &StreamConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l2(a: &Tensor, b: &Tensor) -> f32 {
        a.as_slice()
            .iter()
            .zip(b.as_slice())
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f32>()
            .sqrt()
    }

    #[test]
    fn streams_are_deterministic_from_seed() {
        let config = StreamConfig {
            seed: 7,
            ..StreamConfig::default()
        };
        let a = FrameStream::new(config).unwrap().take_frames(5).unwrap();
        let b = FrameStream::new(config).unwrap().take_frames(5).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.as_slice(), y.as_slice());
        }
        assert_eq!(a[0].dims(), &[3, 32, 32]);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = FrameStream::new(StreamConfig {
            seed: 1,
            ..StreamConfig::default()
        })
        .unwrap();
        let mut b = FrameStream::new(StreamConfig {
            seed: 2,
            ..StreamConfig::default()
        })
        .unwrap();
        assert_ne!(
            a.next_frame().unwrap().as_slice(),
            b.next_frame().unwrap().as_slice()
        );
    }

    #[test]
    fn consecutive_frames_are_more_similar_than_distant_ones() {
        // Noise off isolates the geometric walk: frame t vs t+1 must be
        // closer than frame t vs t+30 on average — the correlation the
        // workload exists to model.
        let mut stream = FrameStream::new(StreamConfig {
            sensor_noise: false,
            seed: 11,
            ..StreamConfig::default()
        })
        .unwrap();
        let frames = stream.take_frames(31).unwrap();
        let near: f32 = (0..10).map(|i| l2(&frames[i], &frames[i + 1])).sum();
        let far: f32 = (0..10).map(|i| l2(&frames[i], &frames[30])).sum();
        assert!(
            near < far,
            "adjacent frames must correlate: near {near}, far {far}"
        );
    }

    #[test]
    fn frames_stay_in_unit_range() {
        let mut stream = FrameStream::new(StreamConfig {
            seed: 3,
            ..StreamConfig::default()
        })
        .unwrap();
        for _ in 0..5 {
            let frame = stream.next_frame().unwrap();
            assert!(frame
                .as_slice()
                .iter()
                .all(|&v| (0.0..=1.0).contains(&v) && v.is_finite()));
        }
        assert_eq!(stream.produced(), 5);
    }

    #[test]
    fn invalid_configs_are_refused() {
        for config in [
            StreamConfig {
                image_size: 0,
                ..StreamConfig::default()
            },
            StreamConfig {
                walk_step: f32::NAN,
                ..StreamConfig::default()
            },
            StreamConfig {
                walk_step: 0.5,
                ..StreamConfig::default()
            },
        ] {
            assert!(matches!(
                FrameStream::new(config),
                Err(DataError::InvalidConfig { .. })
            ));
        }
    }
}
