//! Glyph rendering: a 3×5 digit font, arrows and procedural pictograms.

use crate::canvas::{Canvas, Rgb};
use crate::classes::Glyph;

/// 3×5 bitmaps for digits 0-9, row-major, one bit per cell.
const DIGIT_FONT: [[u8; 5]; 10] = [
    [0b111, 0b101, 0b101, 0b101, 0b111], // 0
    [0b010, 0b110, 0b010, 0b010, 0b111], // 1
    [0b111, 0b001, 0b111, 0b100, 0b111], // 2
    [0b111, 0b001, 0b111, 0b001, 0b111], // 3
    [0b101, 0b101, 0b111, 0b001, 0b001], // 4
    [0b111, 0b100, 0b111, 0b001, 0b111], // 5
    [0b111, 0b100, 0b111, 0b101, 0b111], // 6
    [0b111, 0b001, 0b010, 0b010, 0b010], // 7
    [0b111, 0b101, 0b111, 0b101, 0b111], // 8
    [0b111, 0b101, 0b111, 0b001, 0b111], // 9
];

/// Draws one digit into the unit-space box `[x0, x0+w] × [y0, y0+h]`.
fn draw_digit(canvas: &mut Canvas, digit: u8, x0: f32, y0: f32, w: f32, h: f32, color: Rgb) {
    debug_assert!(digit < 10);
    let bitmap = &DIGIT_FONT[digit as usize];
    let cell_w = w / 3.0;
    let cell_h = h / 5.0;
    for (row, bits) in bitmap.iter().enumerate() {
        for col in 0..3 {
            if bits & (0b100 >> col) != 0 {
                canvas.rect(
                    x0 + col as f32 * cell_w,
                    y0 + row as f32 * cell_h,
                    x0 + (col + 1) as f32 * cell_w,
                    y0 + (row + 1) as f32 * cell_h,
                    color,
                );
            }
        }
    }
}

/// Draws a multi-digit number centred at `(cx, cy)` with total height `h`.
pub(crate) fn draw_number(canvas: &mut Canvas, value: u16, cx: f32, cy: f32, h: f32, color: Rgb) {
    let digits: Vec<u8> = value.to_string().bytes().map(|b| b - b'0').collect();
    let digit_w = h * 0.6;
    let gap = digit_w * 0.25;
    let total_w = digits.len() as f32 * digit_w + (digits.len() - 1) as f32 * gap;
    let mut x = cx - total_w / 2.0;
    let y0 = cy - h / 2.0;
    for &d in &digits {
        draw_digit(canvas, d, x, y0, digit_w, h, color);
        x += digit_w + gap;
    }
}

/// Draws an arrow centred at `(cx, cy)` pointing along `(dx, dy)`.
fn draw_arrow(canvas: &mut Canvas, cx: f32, cy: f32, dx: f32, dy: f32, len: f32, color: Rgb) {
    let norm = (dx * dx + dy * dy).sqrt().max(1e-6);
    let (ux, uy) = (dx / norm, dy / norm);
    let tail = (cx - ux * len / 2.0, cy - uy * len / 2.0);
    let head = (cx + ux * len / 2.0, cy + uy * len / 2.0);
    canvas.line(tail, head, len * 0.12, color);
    // Arrowhead: two back-swept barbs.
    let (px, py) = (-uy, ux); // perpendicular
    let barb = len * 0.35;
    for side in [-1.0f32, 1.0] {
        let tip = (
            head.0 - ux * barb + px * side * barb * 0.7,
            head.1 - uy * barb + py * side * barb * 0.7,
        );
        canvas.line(head, tip, len * 0.10, color);
    }
}

/// Draws the pictogram with the given index: a deterministic, distinct
/// arrangement of bars and dots standing in for GTSRB's pictograms.
fn draw_pictogram(canvas: &mut Canvas, index: u8, cx: f32, cy: f32, extent: f32, color: Rgb) {
    // A 3×3 cell pattern: the `index`-th 9-bit mask with exactly four
    // active cells, walked with a stride coprime to C(9,4)=126 so nearby
    // indices look dissimilar. Enumeration guarantees pairwise-distinct
    // pictograms for all indices below 126.
    let all_masks: Vec<u16> = (0u16..512).filter(|m| m.count_ones() == 4).collect();
    let mask = all_masks[(index as usize * 29 + 5) % all_masks.len()];
    let cell = extent / 3.0;
    for row in 0..3 {
        for col in 0..3 {
            if mask & (1 << (row * 3 + col)) != 0 {
                let x0 = cx - extent / 2.0 + col as f32 * cell;
                let y0 = cy - extent / 2.0 + row as f32 * cell;
                canvas.rect(
                    x0 + cell * 0.1,
                    y0 + cell * 0.1,
                    x0 + cell * 0.9,
                    y0 + cell * 0.9,
                    color,
                );
            }
        }
    }
}

/// Renders any [`Glyph`] centred at `(cx, cy)` with characteristic size
/// `extent` (unit space).
pub(crate) fn draw_glyph(
    canvas: &mut Canvas,
    glyph: Glyph,
    cx: f32,
    cy: f32,
    extent: f32,
    color: Rgb,
) {
    match glyph {
        Glyph::Number(v) => draw_number(canvas, v, cx, cy, extent, color),
        Glyph::ArrowLeft => draw_arrow(canvas, cx, cy, -1.0, 0.0, extent, color),
        Glyph::ArrowRight => draw_arrow(canvas, cx, cy, 1.0, 0.0, extent, color),
        Glyph::ArrowUp => draw_arrow(canvas, cx, cy, 0.0, -1.0, extent, color),
        Glyph::ArrowUpRight => {
            draw_arrow(
                canvas,
                cx - extent * 0.15,
                cy,
                0.0,
                -1.0,
                extent * 0.8,
                color,
            );
            draw_arrow(
                canvas,
                cx + extent * 0.2,
                cy,
                0.6,
                -1.0,
                extent * 0.6,
                color,
            );
        }
        Glyph::ArrowUpLeft => {
            draw_arrow(
                canvas,
                cx + extent * 0.15,
                cy,
                0.0,
                -1.0,
                extent * 0.8,
                color,
            );
            draw_arrow(
                canvas,
                cx - extent * 0.2,
                cy,
                -0.6,
                -1.0,
                extent * 0.6,
                color,
            );
        }
        Glyph::Loop => {
            canvas.ring(cx, cy, extent * 0.25, extent * 0.42, color);
        }
        Glyph::Bar => {
            canvas.rect(
                cx - extent * 0.5,
                cy - extent * 0.14,
                cx + extent * 0.5,
                cy + extent * 0.14,
                color,
            );
        }
        Glyph::Exclamation => {
            canvas.rect(
                cx - extent * 0.08,
                cy - extent * 0.45,
                cx + extent * 0.08,
                cy + extent * 0.1,
                color,
            );
            canvas.disk(cx, cy + extent * 0.32, extent * 0.1, color);
        }
        Glyph::Pictogram(i) => draw_pictogram(canvas, i, cx, cy, extent, color),
        Glyph::None => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn painted_fraction(canvas: &Canvas, color: Rgb) -> f32 {
        let size = canvas.size();
        let mut hits = 0usize;
        for y in 0..size {
            for x in 0..size {
                if canvas.pixel(x, y) == color {
                    hits += 1;
                }
            }
        }
        hits as f32 / (size * size) as f32
    }

    #[test]
    fn digits_have_distinct_footprints() {
        let mut renders = Vec::new();
        for d in 0..10u8 {
            let mut c = Canvas::new(24).unwrap();
            draw_digit(&mut c, d, 0.2, 0.2, 0.6, 0.6, Rgb::WHITE);
            renders.push(c);
        }
        for i in 0..10 {
            for j in (i + 1)..10 {
                assert_ne!(
                    renders[i], renders[j],
                    "digits {i} and {j} render identically"
                );
            }
        }
    }

    #[test]
    fn number_renders_all_digits() {
        let mut one = Canvas::new(32).unwrap();
        draw_number(&mut one, 8, 0.5, 0.5, 0.5, Rgb::WHITE);
        let mut three = Canvas::new(32).unwrap();
        draw_number(&mut three, 888, 0.5, 0.5, 0.5, Rgb::WHITE);
        // Three digits cover strictly more area than one.
        assert!(painted_fraction(&three, Rgb::WHITE) > painted_fraction(&one, Rgb::WHITE));
    }

    #[test]
    fn arrows_left_right_are_mirrored_not_equal() {
        let mut left = Canvas::new(32).unwrap();
        let mut right = Canvas::new(32).unwrap();
        draw_glyph(&mut left, Glyph::ArrowLeft, 0.5, 0.5, 0.5, Rgb::WHITE);
        draw_glyph(&mut right, Glyph::ArrowRight, 0.5, 0.5, 0.5, Rgb::WHITE);
        assert_ne!(left, right);
        // Similar total ink (mirror symmetry).
        let (fl, fr) = (
            painted_fraction(&left, Rgb::WHITE),
            painted_fraction(&right, Rgb::WHITE),
        );
        assert!((fl - fr).abs() < 0.05);
    }

    #[test]
    fn pictograms_are_pairwise_distinct() {
        let mut renders = Vec::new();
        for i in 0..20u8 {
            let mut c = Canvas::new(24).unwrap();
            draw_pictogram(&mut c, i, 0.5, 0.5, 0.6, Rgb::BLACK);
            renders.push(c);
        }
        for i in 0..renders.len() {
            for j in (i + 1)..renders.len() {
                assert_ne!(renders[i], renders[j], "pictograms {i} and {j} identical");
            }
        }
    }

    #[test]
    fn pictograms_are_deterministic() {
        let render = |i| {
            let mut c = Canvas::new(24).unwrap();
            draw_pictogram(&mut c, i, 0.5, 0.5, 0.6, Rgb::BLACK);
            c
        };
        assert_eq!(render(7), render(7));
    }

    #[test]
    fn none_glyph_draws_nothing() {
        let mut c = Canvas::new(16).unwrap();
        let before = c.clone();
        draw_glyph(&mut c, Glyph::None, 0.5, 0.5, 0.5, Rgb::WHITE);
        assert_eq!(c, before);
    }

    #[test]
    fn every_glyph_kind_paints_something() {
        for glyph in [
            Glyph::Number(60),
            Glyph::ArrowLeft,
            Glyph::ArrowRight,
            Glyph::ArrowUp,
            Glyph::ArrowUpRight,
            Glyph::ArrowUpLeft,
            Glyph::Loop,
            Glyph::Bar,
            Glyph::Exclamation,
            Glyph::Pictogram(3),
        ] {
            let mut c = Canvas::new(32).unwrap();
            draw_glyph(&mut c, glyph, 0.5, 0.5, 0.5, Rgb::WHITE);
            assert!(
                painted_fraction(&c, Rgb::WHITE) > 0.01,
                "glyph {glyph:?} painted nothing"
            );
        }
    }
}
