use std::error::Error;
use std::fmt;

use fademl_tensor::TensorError;

/// Error type for dataset generation.
#[derive(Debug)]
#[non_exhaustive]
pub enum DataError {
    /// An underlying tensor operation failed.
    Tensor(TensorError),
    /// A class id outside `0..43` was requested.
    UnknownClass {
        /// The offending id.
        id: usize,
    },
    /// A generation parameter was invalid.
    InvalidConfig {
        /// Human-readable description of the invalid value.
        reason: String,
    },
    /// Reading or writing image files failed.
    Io(std::io::Error),
}

impl DataError {
    /// Wraps an I/O error (named constructor rather than `From` so the
    /// conversion stays explicit at call sites).
    pub fn from_io(e: std::io::Error) -> Self {
        DataError::Io(e)
    }
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::Tensor(e) => write!(f, "tensor error: {e}"),
            DataError::UnknownClass { id } => {
                write!(f, "class id {id} out of range (0..{})", crate::CLASS_COUNT)
            }
            DataError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            DataError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl Error for DataError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DataError::Tensor(e) => Some(e),
            DataError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for DataError {
    fn from(e: TensorError) -> Self {
        DataError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = DataError::UnknownClass { id: 99 };
        assert!(e.to_string().contains("99"));
        assert!(e.source().is_none());
        let e = DataError::from(TensorError::EmptyTensor { op: "x" });
        assert!(e.source().is_some());
    }
}
