//! Bounded reservoir of served-clean feature vectors, feeding online
//! detector refits.
//!
//! The serving engine offers every *clean-verdict* frame's feature
//! vector to a [`FeatureReservoir`]; Algorithm R (Vitter) keeps a
//! uniform sample of everything seen so far in bounded memory, driven
//! by the same deterministic [`TensorRng`] stream the trainer uses —
//! same seed + same offer sequence ⇒ bit-identical reservoir, which is
//! what makes refits reproducible and the resumable experiments exact.
//!
//! The admission-path half ([`FeatureReservoir::offer`]) is
//! allocation-free: storage is reserved up front and replacement
//! copies in place. The cold half (refit, persistence) may allocate.
//!
//! Persistence follows the workspace artifact discipline: magic
//! `FADEMLR1`, little-endian fields, the full RNG state (so a reloaded
//! reservoir continues the *exact* sampling stream), a CRC-32 trailer,
//! and every structural field cap-checked before any allocation. The
//! write path goes through [`fademl_tensor::io::atomic_write`], so a
//! crash mid-persist leaves the previous snapshot intact — never a
//! torn sample set.

use std::path::Path;

use fademl_tensor::io::{atomic_write, crc32, read_artifact, ByteReader, ByteWriter};
use fademl_tensor::TensorRng;

use crate::error::{corrupt, DetectError, Result};
use crate::features::{feature_dim, FEATURES_PER_SCALE, MAX_SCALES};
use crate::forest::{Detector, DetectorConfig};

/// Magic bytes of the serialized reservoir format.
pub const RESERVOIR_MAGIC: &[u8; 8] = b"FADEMLR1";

/// Most samples a reservoir may be configured to hold.
pub const MAX_RESERVOIR: usize = 1 << 16;

/// Longest feature vector a reservoir may carry (the deepest pyramid).
pub const MAX_RESERVOIR_DIM: usize = MAX_SCALES * FEATURES_PER_SCALE;

/// A bounded, deterministic uniform sample of offered feature vectors.
#[derive(Debug, Clone)]
pub struct FeatureReservoir {
    capacity: usize,
    feature_dim: usize,
    seen: u64,
    rng: TensorRng,
    /// Flat row-major storage, `len() / feature_dim` filled slots; the
    /// full `capacity * feature_dim` is reserved at construction so
    /// the offer path never reallocates.
    samples: Vec<f32>,
}

impl FeatureReservoir {
    /// An empty reservoir for `capacity` vectors of `feature_dim`
    /// floats, sampling off the deterministic stream seeded by `seed`.
    ///
    /// # Errors
    ///
    /// [`DetectError::InvalidConfig`] for a capacity outside
    /// `2..=MAX_RESERVOIR` (a forest needs at least two samples) or a
    /// feature dimension outside `1..=MAX_RESERVOIR_DIM`.
    pub fn new(capacity: usize, feature_dim: usize, seed: u64) -> Result<Self> {
        if !(2..=MAX_RESERVOIR).contains(&capacity) {
            return Err(DetectError::InvalidConfig {
                reason: format!(
                    "reservoir capacity must be in 2..={MAX_RESERVOIR}, got {capacity}"
                ),
            });
        }
        if feature_dim == 0 || feature_dim > MAX_RESERVOIR_DIM {
            return Err(DetectError::InvalidConfig {
                reason: format!(
                    "reservoir feature_dim must be in 1..={MAX_RESERVOIR_DIM}, got {feature_dim}"
                ),
            });
        }
        let mut samples = Vec::default();
        samples.reserve_exact(capacity * feature_dim);
        Ok(FeatureReservoir {
            capacity,
            feature_dim,
            seen: 0,
            rng: TensorRng::seed_from_u64(seed),
            samples,
        })
    }

    /// Offers one feature vector to the sample (Algorithm R). Returns
    /// `true` if the vector was admitted (kept), `false` if the stream
    /// position rolled past it. Allocation-free: storage was reserved
    /// at construction and replacement copies in place.
    ///
    /// # Errors
    ///
    /// [`DetectError::InvalidInput`] on a feature-length mismatch.
    pub fn offer(&mut self, features: &[f32]) -> Result<bool> {
        if features.len() != self.feature_dim {
            return Err(DetectError::InvalidInput {
                reason: format!(
                    "offered vector has length {}, reservoir holds {}-dim features",
                    features.len(),
                    self.feature_dim
                ),
            });
        }
        self.seen = self.seen.saturating_add(1);
        if self.len() < self.capacity {
            self.samples.extend_from_slice(features);
            return Ok(true);
        }
        // Replacement slot j uniform over everything seen so far; the
        // offered vector survives iff j lands inside the reservoir.
        let bound = usize::try_from(self.seen).unwrap_or(usize::MAX).max(1);
        let j = self.rng.index(bound);
        if j < self.capacity {
            if let Some(slot) = self.samples.chunks_exact_mut(self.feature_dim).nth(j) {
                slot.copy_from_slice(features);
            }
            return Ok(true);
        }
        Ok(false)
    }

    /// Filled sample slots.
    pub fn len(&self) -> usize {
        self.samples.len() / self.feature_dim
    }

    /// `true` if no sample has been admitted yet.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Total vectors offered over the reservoir's lifetime.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Length of the feature vectors held.
    pub fn feature_dim(&self) -> usize {
        self.feature_dim
    }

    /// The current sample set, one feature vector per item.
    pub fn samples(&self) -> impl Iterator<Item = &[f32]> {
        self.samples.chunks_exact(self.feature_dim)
    }

    /// Trains a replacement forest from the current sample set. The
    /// cold half of the refit loop — allocates freely.
    ///
    /// # Errors
    ///
    /// [`DetectError::InvalidConfig`] if `config` is out of envelope
    /// or its pyramid depth disagrees with the reservoir's feature
    /// dimension; [`DetectError::InvalidInput`] if fewer than two
    /// samples have been collected.
    pub fn refit(&self, config: &DetectorConfig) -> Result<Detector> {
        config.validate()?;
        if feature_dim(config.scales) != self.feature_dim {
            return Err(DetectError::InvalidConfig {
                reason: format!(
                    "refit config wants {}-dim features ({} scales), reservoir holds {}-dim",
                    feature_dim(config.scales),
                    config.scales,
                    self.feature_dim
                ),
            });
        }
        if self.len() < 2 {
            return Err(DetectError::InvalidInput {
                reason: format!("reservoir too cold to refit: {} sample(s)", self.len()),
            });
        }
        let mut rows = Vec::default();
        rows.reserve_exact(self.len());
        for sample in self.samples() {
            let mut row: Vec<f32> = Vec::default();
            row.reserve_exact(self.feature_dim);
            row.extend_from_slice(sample);
            rows.push(row);
        }
        Detector::fit(&rows, config)
    }

    /// Serializes to the `FADEMLR1` byte format (CRC-32 trailer
    /// included), capturing the full RNG state so a reloaded reservoir
    /// continues the exact sampling stream.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_bytes(RESERVOIR_MAGIC);
        w.put_u32(u32::try_from(self.capacity).unwrap_or(u32::MAX));
        w.put_u32(u32::try_from(self.feature_dim).unwrap_or(u32::MAX));
        w.put_u32(u32::try_from(self.len()).unwrap_or(u32::MAX));
        w.put_u64(self.seen);
        for word in self.rng.state() {
            w.put_u64(word);
        }
        for &v in &self.samples {
            w.put_f32(v);
        }
        let mut bytes = w.into_bytes();
        let crc = crc32(&bytes);
        bytes.extend_from_slice(&crc.to_le_bytes());
        bytes
    }

    /// Parses and fully validates a `FADEMLR1` artifact. Truncations,
    /// bit flips, and over-cap structural fields are typed
    /// [`DetectError::Corrupt`] — never a panic or an over-allocation.
    pub fn from_bytes(bytes: &[u8]) -> Result<FeatureReservoir> {
        if bytes.len() < RESERVOIR_MAGIC.len() + 4 {
            return Err(corrupt(format!(
                "reservoir artifact too short ({} bytes)",
                bytes.len()
            )));
        }
        let (body, tail) = bytes.split_at(bytes.len() - 4);
        let stored = tail
            .try_into()
            .map(u32::from_le_bytes)
            .map_err(|_| corrupt("missing crc trailer"))?;
        let actual = crc32(body);
        if stored != actual {
            return Err(corrupt(format!(
                "crc mismatch: stored {stored:#010x}, computed {actual:#010x}"
            )));
        }
        let mut r = ByteReader::new(body);
        let magic = r
            .get_bytes(RESERVOIR_MAGIC.len())
            .map_err(|_| corrupt("truncated magic"))?;
        if magic != RESERVOIR_MAGIC {
            return Err(corrupt("bad magic"));
        }
        let capacity = read_field(&mut r, "capacity")?;
        let dim = read_field(&mut r, "feature_dim")?;
        let filled = read_field(&mut r, "filled count")?;
        let seen = r.get_u64().map_err(|_| corrupt("truncated seen count"))?;
        let mut state = [0u64; 4];
        for word in state.iter_mut() {
            *word = r.get_u64().map_err(|_| corrupt("truncated rng state"))?;
        }
        if !(2..=MAX_RESERVOIR).contains(&capacity) {
            return Err(corrupt(format!("capacity {capacity} out of range")));
        }
        if dim == 0 || dim > MAX_RESERVOIR_DIM {
            return Err(corrupt(format!("feature_dim {dim} out of range")));
        }
        if filled > capacity {
            return Err(corrupt(format!(
                "filled count {filled} exceeds capacity {capacity}"
            )));
        }
        if seen < filled as u64 {
            return Err(corrupt(format!(
                "seen count {seen} below filled count {filled}"
            )));
        }
        let mut reservoir = FeatureReservoir::new(capacity, dim, 0)?;
        reservoir.rng = TensorRng::from_state(state);
        reservoir.seen = seen;
        for _ in 0..filled * dim {
            let v = r.get_f32().map_err(|_| corrupt("truncated sample data"))?;
            reservoir.samples.push(v);
        }
        if r.remaining() != 0 {
            return Err(corrupt(format!("{} trailing bytes", r.remaining())));
        }
        Ok(reservoir)
    }

    /// Persists the artifact via the workspace atomic write path: the
    /// previous snapshot survives any crash mid-write.
    ///
    /// # Errors
    ///
    /// [`DetectError::Io`]-mapped failures from the tensor IO layer.
    pub fn save(&self, path: &Path) -> Result<()> {
        atomic_write(path, &self.to_bytes())?;
        Ok(())
    }

    /// Loads and validates an artifact written by
    /// [`FeatureReservoir::save`].
    ///
    /// # Errors
    ///
    /// Typed IO or [`DetectError::Corrupt`] errors; never a panic.
    pub fn load(path: &Path) -> Result<FeatureReservoir> {
        let bytes = read_artifact(path)?;
        FeatureReservoir::from_bytes(&bytes)
    }
}

fn read_field(r: &mut ByteReader<'_>, what: &str) -> Result<usize> {
    let v = r
        .get_u32()
        .map_err(|_| corrupt(format!("truncated {what}")))?;
    Ok(usize::try_from(v).unwrap_or(usize::MAX))
}

/// Area under the ROC curve of `detector` separating `adversarial`
/// from `clean` feature vectors — the Mann–Whitney rank form with
/// average-rank tie handling. Used by the swap validator: a candidate
/// refit must not regress this on the held-out slice.
///
/// # Errors
///
/// [`DetectError::InvalidInput`] if either side is empty, or any
/// scoring error from the detector (e.g. a dimension mismatch).
pub fn holdout_auc(
    detector: &Detector,
    clean: &[Vec<f32>],
    adversarial: &[Vec<f32>],
) -> Result<f32> {
    if clean.is_empty() || adversarial.is_empty() {
        return Err(DetectError::InvalidInput {
            reason: format!(
                "holdout AUC needs both sides: {} clean, {} adversarial",
                clean.len(),
                adversarial.len()
            ),
        });
    }
    let mut scored: Vec<(f32, bool)> = Vec::default();
    scored.reserve_exact(clean.len() + adversarial.len());
    for sample in clean {
        scored.push((detector.score(sample)?, false));
    }
    for sample in adversarial {
        scored.push((detector.score(sample)?, true));
    }
    scored.sort_by(|a, b| a.0.total_cmp(&b.0));
    // Average-rank walk over tie groups: ranks are 1-based.
    let mut rank_sum_adv = 0.0f64;
    let mut processed = 0usize;
    let mut iter = scored.iter().peekable();
    while let Some(&(score, _)) = iter.peek().copied() {
        let mut group_adv = 0usize;
        let mut group_len = 0usize;
        while let Some(&&(s, adv)) = iter.peek() {
            if s.to_bits() != score.to_bits() {
                break;
            }
            group_len += 1;
            if adv {
                group_adv += 1;
            }
            iter.next();
        }
        // Ranks processed+1 ..= processed+group_len share the average.
        let avg_rank = processed as f64 + (group_len as f64 + 1.0) / 2.0;
        rank_sum_adv += avg_rank * group_adv as f64;
        processed += group_len;
    }
    let n_adv = adversarial.len() as f64;
    let n_clean = clean.len() as f64;
    let auc = (rank_sum_adv - n_adv * (n_adv + 1.0) / 2.0) / (n_adv * n_clean);
    Ok(auc as f32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fademl_tensor::TensorRng;

    fn vector(rng: &mut TensorRng, dim: usize, base: f32) -> Vec<f32> {
        (0..dim)
            .map(|_| base + rng.uniform_scalar(-0.05, 0.05))
            .collect()
    }

    #[test]
    fn fills_then_samples_uniformly_and_deterministically() {
        let dim = 12;
        let mut a = FeatureReservoir::new(16, dim, 7).unwrap();
        let mut b = FeatureReservoir::new(16, dim, 7).unwrap();
        let mut rng = TensorRng::seed_from_u64(3);
        for i in 0..200 {
            let v = vector(&mut rng, dim, i as f32 / 200.0);
            let ka = a.offer(&v).unwrap();
            let kb = b.offer(&v).unwrap();
            assert_eq!(ka, kb, "same seed + stream must make same decisions");
        }
        assert_eq!(a.len(), 16);
        assert_eq!(a.seen(), 200);
        let av: Vec<&[f32]> = a.samples().collect();
        let bv: Vec<&[f32]> = b.samples().collect();
        assert_eq!(av, bv);
        // A different seed diverges.
        let mut c = FeatureReservoir::new(16, dim, 8).unwrap();
        let mut rng = TensorRng::seed_from_u64(3);
        for i in 0..200 {
            let v = vector(&mut rng, dim, i as f32 / 200.0);
            c.offer(&v).unwrap();
        }
        let cv: Vec<&[f32]> = c.samples().collect();
        assert_ne!(av, cv);
    }

    #[test]
    fn offer_rejects_wrong_dim_and_validates_config() {
        let mut r = FeatureReservoir::new(4, 6, 0).unwrap();
        assert!(matches!(
            r.offer(&[0.0; 5]),
            Err(DetectError::InvalidInput { .. })
        ));
        assert!(matches!(
            FeatureReservoir::new(1, 6, 0),
            Err(DetectError::InvalidConfig { .. })
        ));
        assert!(matches!(
            FeatureReservoir::new(4, 0, 0),
            Err(DetectError::InvalidConfig { .. })
        ));
        assert!(matches!(
            FeatureReservoir::new(4, MAX_RESERVOIR_DIM + 1, 0),
            Err(DetectError::InvalidConfig { .. })
        ));
        assert!(matches!(
            FeatureReservoir::new(MAX_RESERVOIR + 1, 6, 0),
            Err(DetectError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn offer_never_reallocates_after_construction() {
        let dim = 12;
        let mut r = FeatureReservoir::new(32, dim, 1).unwrap();
        let cap_before = r.samples.capacity();
        let mut rng = TensorRng::seed_from_u64(5);
        for i in 0..500 {
            let v = vector(&mut rng, dim, i as f32 / 500.0);
            r.offer(&v).unwrap();
        }
        assert_eq!(
            r.samples.capacity(),
            cap_before,
            "offer must stay allocation-free"
        );
    }

    #[test]
    fn persistence_round_trips_and_resumes_the_exact_stream() {
        let dim = 12;
        let mut live = FeatureReservoir::new(8, dim, 42).unwrap();
        let mut rng = TensorRng::seed_from_u64(9);
        for i in 0..50 {
            live.offer(&vector(&mut rng, dim, i as f32 / 50.0)).unwrap();
        }
        let bytes = live.to_bytes();
        let mut restored = FeatureReservoir::from_bytes(&bytes).unwrap();
        assert_eq!(restored.len(), live.len());
        assert_eq!(restored.seen(), live.seen());
        // Continuing both must make bit-identical sampling decisions.
        for i in 0..100 {
            let v = vector(&mut rng, dim, i as f32 / 100.0);
            assert_eq!(live.offer(&v).unwrap(), restored.offer(&v).unwrap());
        }
        let lv: Vec<&[f32]> = live.samples().collect();
        let rv: Vec<&[f32]> = restored.samples().collect();
        assert_eq!(lv, rv);
    }

    #[test]
    fn every_truncation_and_byte_flip_is_refused() {
        let dim = 6;
        let mut r = FeatureReservoir::new(4, dim, 3).unwrap();
        let mut rng = TensorRng::seed_from_u64(2);
        for i in 0..10 {
            r.offer(&vector(&mut rng, dim, i as f32 * 0.1)).unwrap();
        }
        let bytes = r.to_bytes();
        for len in 0..bytes.len() {
            assert!(
                FeatureReservoir::from_bytes(&bytes[..len]).is_err(),
                "truncation to {len} bytes must be refused"
            );
        }
        for i in 0..bytes.len() {
            let mut mutated = bytes.clone();
            mutated[i] ^= 0x20;
            assert!(
                FeatureReservoir::from_bytes(&mutated).is_err(),
                "bit flip at byte {i} must be refused"
            );
        }
    }

    #[test]
    fn oversized_structural_fields_are_refused_before_allocation() {
        let mut w = ByteWriter::new();
        w.put_bytes(RESERVOIR_MAGIC);
        w.put_u32(u32::MAX); // capacity: hostile
        w.put_u32(6);
        w.put_u32(0);
        w.put_u64(0);
        for _ in 0..4 {
            w.put_u64(0);
        }
        let mut bytes = w.into_bytes();
        let crc = crc32(&bytes);
        bytes.extend_from_slice(&crc.to_le_bytes());
        match FeatureReservoir::from_bytes(&bytes) {
            Err(DetectError::Corrupt { reason }) => {
                assert!(reason.contains("capacity"), "{reason}")
            }
            other => panic!("expected corrupt, got {other:?}"),
        }
    }

    #[test]
    fn save_load_round_trips_on_disk() {
        let dir = std::env::temp_dir().join(format!("fademl-reservoir-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("clean.frsv");
        let dim = 12;
        let mut r = FeatureReservoir::new(8, dim, 11).unwrap();
        let mut rng = TensorRng::seed_from_u64(4);
        for i in 0..30 {
            r.offer(&vector(&mut rng, dim, i as f32 / 30.0)).unwrap();
        }
        r.save(&path).unwrap();
        let back = FeatureReservoir::load(&path).unwrap();
        assert_eq!(back.to_bytes(), r.to_bytes());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn refit_trains_a_working_detector() {
        let config = DetectorConfig {
            trees: 16,
            subsample: 24,
            scales: 2,
            seed: 77,
        };
        let dim = feature_dim(config.scales);
        let mut r = FeatureReservoir::new(32, dim, 5).unwrap();
        let mut rng = TensorRng::seed_from_u64(6);
        for _ in 0..100 {
            r.offer(&vector(&mut rng, dim, 0.4)).unwrap();
        }
        let det = r.refit(&config).unwrap();
        assert_eq!(det.feature_dim(), dim);
        // In-distribution scores low, far-off vectors score high.
        let inlier = det.score(&vector(&mut rng, dim, 0.4)).unwrap();
        let outlier = det.score(&vec![7.0; dim]).unwrap();
        assert!(outlier > inlier, "outlier {outlier} vs inlier {inlier}");
        // Refit is deterministic from the reservoir + config.
        let again = r.refit(&config).unwrap();
        assert_eq!(again.to_bytes(), det.to_bytes());
    }

    #[test]
    fn refit_rejects_mismatched_scales_and_cold_reservoirs() {
        let config = DetectorConfig {
            trees: 8,
            subsample: 8,
            scales: 3,
            seed: 1,
        };
        let r = FeatureReservoir::new(8, 12, 0).unwrap(); // 12-dim = 2 scales
        assert!(matches!(
            r.refit(&config),
            Err(DetectError::InvalidConfig { .. })
        ));
        let cold = FeatureReservoir::new(8, 18, 0).unwrap();
        assert!(matches!(
            cold.refit(&DetectorConfig {
                scales: 3,
                ..config
            }),
            Err(DetectError::InvalidInput { .. })
        ));
    }

    #[test]
    fn holdout_auc_separates_and_handles_edges() {
        let config = DetectorConfig {
            trees: 16,
            subsample: 32,
            scales: 2,
            seed: 13,
        };
        let dim = feature_dim(config.scales);
        let mut rng = TensorRng::seed_from_u64(21);
        let train: Vec<Vec<f32>> = (0..64).map(|_| vector(&mut rng, dim, 0.5)).collect();
        let det = Detector::fit(&train, &config).unwrap();
        let clean: Vec<Vec<f32>> = (0..16).map(|_| vector(&mut rng, dim, 0.5)).collect();
        let adversarial: Vec<Vec<f32>> = (0..16).map(|_| vector(&mut rng, dim, 3.0)).collect();
        let auc = holdout_auc(&det, &clean, &adversarial).unwrap();
        assert!(auc > 0.9, "separable sets must give high AUC, got {auc}");
        // Identical sets land at chance.
        let auc_same = holdout_auc(&det, &clean, &clean).unwrap();
        assert!((auc_same - 0.5).abs() < 1e-3, "got {auc_same}");
        assert!(matches!(
            holdout_auc(&det, &[], &adversarial),
            Err(DetectError::InvalidInput { .. })
        ));
    }
}
