//! Typed error surface of the detector crate.
//!
//! The detector sits admission-adjacent on the serving hot path, so
//! every failure mode here is a value the triage stage can route on —
//! never a panic. Corruption of a persisted detector artifact is a
//! distinct variant from a malformed input image because the serving
//! layer reacts differently: a corrupt artifact refuses to load at
//! startup, while a bad input fails open at score time.

use std::fmt;
use std::io;

/// Everything `fademl-detect` can refuse to do, as a value.
#[derive(Debug)]
pub enum DetectError {
    /// The image (or feature vector) handed to the detector does not
    /// match what it was fitted on.
    InvalidInput {
        /// Human-readable description of the mismatch.
        reason: String,
    },
    /// The detector configuration is out of the supported envelope.
    InvalidConfig {
        /// Which knob is out of range and why.
        reason: String,
    },
    /// A serialized detector artifact failed validation: bad magic,
    /// CRC mismatch, over-cap structural field, or an inconsistent
    /// tree topology.
    Corrupt {
        /// What the decoder tripped over.
        reason: String,
    },
    /// The underlying filesystem failed while persisting or loading.
    Io(io::Error),
}

impl fmt::Display for DetectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DetectError::InvalidInput { reason } => write!(f, "invalid detector input: {reason}"),
            DetectError::InvalidConfig { reason } => write!(f, "invalid detector config: {reason}"),
            DetectError::Corrupt { reason } => write!(f, "corrupt detector artifact: {reason}"),
            DetectError::Io(e) => write!(f, "detector io error: {e}"),
        }
    }
}

impl std::error::Error for DetectError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DetectError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for DetectError {
    fn from(e: io::Error) -> Self {
        DetectError::Io(e)
    }
}

/// Shorthand used throughout the crate.
pub type Result<T> = std::result::Result<T, DetectError>;

/// Builds the `Corrupt` variant; the decoder uses this everywhere so
/// the call sites stay one line.
pub fn corrupt(reason: impl Into<String>) -> DetectError {
    DetectError::Corrupt {
        reason: reason.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_every_variant() {
        let cases: Vec<(DetectError, &str)> = vec![
            (
                DetectError::InvalidInput {
                    reason: "rank".into(),
                },
                "invalid detector input",
            ),
            (
                DetectError::InvalidConfig {
                    reason: "trees".into(),
                },
                "invalid detector config",
            ),
            (corrupt("crc"), "corrupt detector artifact"),
            (
                DetectError::Io(io::Error::other("disk")),
                "detector io error",
            ),
        ];
        for (err, needle) in cases {
            assert!(err.to_string().contains(needle), "{err}");
        }
    }
}
