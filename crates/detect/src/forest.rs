//! Deterministic isolation forest over multi-scale image features.
//!
//! An isolation forest scores how *easy* a point is to separate from
//! the training distribution: random axis-aligned splits isolate
//! anomalies in few cuts, so a short average path length over the
//! ensemble ⇒ high anomaly score `s = 2^(−E[h(x)]/c(ψ))` in `(0, 1)`.
//! Fitting is fully deterministic from a single `u64` seed through the
//! workspace [`TensorRng`] stream — same seed + same samples ⇒
//! bit-identical trees and scores at every compute-thread count
//! (scoring is serial scalar code, no parallel kernels involved).
//!
//! Persistence follows the workspace artifact discipline
//! (`FADEMLC1`/`FADEMLW2`): magic `FADEMLD1`, little-endian fields via
//! [`fademl_tensor::io::ByteWriter`], a CRC-32 trailer over everything
//! before it, and **every structural field cap-checked before any
//! allocation** so hostile bytes produce typed [`DetectError::Corrupt`]
//! instead of panics or over-allocation. Tree topology is validated on
//! load: children strictly follow their parent (preorder), so a loaded
//! tree cannot cycle and scoring always terminates.

use std::path::Path;

use fademl_tensor::io::{atomic_write, crc32, read_artifact, ByteReader, ByteWriter};
use fademl_tensor::{Tensor, TensorRng};
use serde::{Deserialize, Serialize};

use crate::error::{corrupt, DetectError, Result};
use crate::features::{
    extract_into, feature_dim, pyramid_features, with_thread_scratch, PlanCache,
    FEATURES_PER_SCALE, MAX_SCALES,
};

/// Magic bytes of the serialized detector format.
pub const DETECTOR_MAGIC: &[u8; 8] = b"FADEMLD1";

/// Most trees a detector artifact may carry.
pub const MAX_TREES: usize = 1024;

/// Most nodes a single tree may carry (a tree over ψ samples has at
/// most `2ψ − 1` nodes; this cap is far above any legal fit).
pub const MAX_NODES: usize = 1 << 20;

/// Largest per-tree subsample size.
pub const MAX_SUBSAMPLE: usize = 1 << 20;

/// Euler–Mascheroni constant, for the harmonic-number approximation in
/// the average-path normalizer.
const EULER_GAMMA: f64 = 0.577_215_664_901_532_9;

/// Fit-time knobs of the detector.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DetectorConfig {
    /// Ensemble size. More trees ⇒ smoother scores, linear cost.
    pub trees: usize,
    /// Per-tree subsample size ψ (clamped to the training-set size).
    pub subsample: usize,
    /// Pyramid depth for feature extraction.
    pub scales: usize,
    /// Seed for the deterministic tree construction stream.
    pub seed: u64,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            trees: 50,
            subsample: 96,
            scales: 3,
            seed: 0xFADE_0007,
        }
    }
}

impl DetectorConfig {
    /// Rejects out-of-envelope knobs with a typed error.
    pub fn validate(&self) -> Result<()> {
        if self.trees == 0 || self.trees > MAX_TREES {
            return Err(DetectError::InvalidConfig {
                reason: format!("trees must be in 1..={MAX_TREES}, got {}", self.trees),
            });
        }
        if self.subsample < 2 || self.subsample > MAX_SUBSAMPLE {
            return Err(DetectError::InvalidConfig {
                reason: format!(
                    "subsample must be in 2..={MAX_SUBSAMPLE}, got {}",
                    self.subsample
                ),
            });
        }
        if self.scales == 0 || self.scales > MAX_SCALES {
            return Err(DetectError::InvalidConfig {
                reason: format!("scales must be in 1..={MAX_SCALES}, got {}", self.scales),
            });
        }
        Ok(())
    }
}

/// One node of an isolation tree, preorder-stored in a flat arena.
#[derive(Debug, Clone, PartialEq)]
enum Node {
    /// Terminal node holding `size` training samples.
    Leaf {
        /// Number of subsample points that reached this node.
        size: u32,
    },
    /// Binary split on one feature.
    Split {
        /// Feature index into the multi-scale vector.
        feature: u32,
        /// Values strictly below go left; `NaN` comparisons go right.
        threshold: f32,
        /// Arena index of the left child (always > the node's own).
        left: u32,
        /// Arena index of the right child (always > the node's own).
        right: u32,
    },
}

#[derive(Debug, Clone, PartialEq)]
struct Tree {
    nodes: Vec<Node>,
}

/// A fitted multi-scale isolation forest.
#[derive(Debug)]
pub struct Detector {
    scales: usize,
    feature_dim: usize,
    /// Effective per-tree subsample ψ (normalizes path lengths).
    subsample: u32,
    seed: u64,
    trees: Vec<Tree>,
    /// Per-geometry scale plans, built lazily on first score of each
    /// `[C, H, W]` shape and reused for every later frame of it.
    plans: PlanCache,
}

impl Clone for Detector {
    fn clone(&self) -> Self {
        let mut trees = Vec::default();
        trees.extend_from_slice(&self.trees);
        Detector {
            scales: self.scales,
            feature_dim: self.feature_dim,
            subsample: self.subsample,
            seed: self.seed,
            trees,
            // The plan cache is per-instance warm-up state, rebuilt on
            // demand; sharing it would entangle detector lifetimes.
            plans: PlanCache::default(),
        }
    }
}

impl PartialEq for Detector {
    fn eq(&self, other: &Self) -> bool {
        // The plan cache is derived state and never part of identity.
        self.scales == other.scales
            && self.feature_dim == other.feature_dim
            && self.subsample == other.subsample
            && self.seed == other.seed
            && self.trees == other.trees
    }
}

impl Detector {
    /// Fits a forest over pre-extracted feature vectors. Every sample
    /// must have length `feature_dim(config.scales)`.
    pub fn fit(samples: &[Vec<f32>], config: &DetectorConfig) -> Result<Detector> {
        config.validate()?;
        let dim = feature_dim(config.scales);
        if samples.len() < 2 {
            return Err(DetectError::InvalidInput {
                reason: format!("need at least 2 training samples, got {}", samples.len()),
            });
        }
        if let Some(bad) = samples.iter().find(|s| s.len() != dim) {
            return Err(DetectError::InvalidInput {
                reason: format!(
                    "feature vector length {} does not match {} ({} scales x {})",
                    bad.len(),
                    dim,
                    config.scales,
                    FEATURES_PER_SCALE
                ),
            });
        }
        let psi = config.subsample.min(samples.len());
        let depth_limit = ceil_log2(psi).max(1);
        let mut rng = TensorRng::seed_from_u64(config.seed);
        let mut indices: Vec<usize> = (0..samples.len()).collect();
        let mut trees = Vec::with_capacity(config.trees);
        for _ in 0..config.trees {
            rng.shuffle(&mut indices);
            let members: Vec<usize> = indices.iter().take(psi).copied().collect();
            let mut nodes = Vec::new();
            build_node(&mut nodes, samples, &members, 0, depth_limit, &mut rng)?;
            trees.push(Tree { nodes });
        }
        Ok(Detector {
            scales: config.scales,
            feature_dim: dim,
            subsample: u32::try_from(psi).unwrap_or(u32::MAX),
            seed: config.seed,
            trees,
            plans: PlanCache::default(),
        })
    }

    /// Convenience fit over `[C, H, W]` images: extracts the
    /// multi-scale features of each, then fits.
    pub fn fit_images(images: &[Tensor], config: &DetectorConfig) -> Result<Detector> {
        config.validate()?;
        let mut feats = fademl_tensor::plan::alloc::fresh_with(images.len());
        for image in images {
            feats.push(pyramid_features(image, config.scales)?);
        }
        Detector::fit(&feats, config)
    }

    /// Anomaly score of a pre-extracted feature vector, in `(0, 1)`.
    /// Higher ⇒ more isolated from the training distribution.
    pub fn score(&self, features: &[f32]) -> Result<f32> {
        if features.len() != self.feature_dim {
            return Err(DetectError::InvalidInput {
                reason: format!(
                    "feature vector length {} does not match fitted dim {}",
                    features.len(),
                    self.feature_dim
                ),
            });
        }
        let mut total = 0.0f64;
        for tree in &self.trees {
            total += path_length(tree, features);
        }
        let mean_path = total / self.trees.len().max(1) as f64;
        let norm = c_norm(f64::from(self.subsample)).max(f64::MIN_POSITIVE);
        let score = 2.0f64.powf(-mean_path / norm);
        Ok(score as f32)
    }

    /// Anomaly score of a `[C, H, W]` image (feature extraction at the
    /// detector's fitted pyramid depth, then [`Detector::score`]).
    ///
    /// Geometry derivation is memoized per shape and pixel buffers are
    /// reused per thread, so a stream of same-sized frames scores
    /// without heap allocation.
    pub fn score_image(&self, image: &Tensor) -> Result<f32> {
        let plan = self.plans.plan_for(self.scales, image.dims())?;
        with_thread_scratch(|scratch| {
            extract_into(&plan, image, scratch)?;
            self.score(scratch.features())
        })
    }

    /// Like [`Detector::score_image`], but also leaves the extracted
    /// feature vector in `features_out` (cleared and refilled) so the
    /// caller can reuse it — e.g. to offer the frame to a refit
    /// reservoir — without a second extraction pass.
    ///
    /// # Errors
    ///
    /// Same as [`Detector::score_image`].
    pub fn score_image_with_features(
        &self,
        image: &Tensor,
        features_out: &mut Vec<f32>,
    ) -> Result<f32> {
        let plan = self.plans.plan_for(self.scales, image.dims())?;
        with_thread_scratch(|scratch| {
            extract_into(&plan, image, scratch)?;
            features_out.clear();
            features_out.extend_from_slice(scratch.features());
            self.score(scratch.features())
        })
    }

    /// Number of distinct frame geometries planned so far (test hook).
    pub fn cached_scale_plans(&self) -> usize {
        self.plans.cached_geometries()
    }

    /// Pyramid depth the detector was fitted with.
    pub fn scales(&self) -> usize {
        self.scales
    }

    /// Length of the feature vectors the detector scores.
    pub fn feature_dim(&self) -> usize {
        self.feature_dim
    }

    /// Ensemble size.
    pub fn num_trees(&self) -> usize {
        self.trees.len()
    }

    /// Seed the forest was fitted from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Serializes to the `FADEMLD1` byte format (CRC-32 trailer
    /// included). The encoding is canonical: equal detectors produce
    /// equal bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_bytes(DETECTOR_MAGIC);
        w.put_u32(u32::try_from(self.scales).unwrap_or(u32::MAX));
        w.put_u32(u32::try_from(self.feature_dim).unwrap_or(u32::MAX));
        w.put_u32(self.subsample);
        w.put_u32(u32::try_from(self.trees.len()).unwrap_or(u32::MAX));
        w.put_u64(self.seed);
        for tree in &self.trees {
            w.put_u32(u32::try_from(tree.nodes.len()).unwrap_or(u32::MAX));
            for node in &tree.nodes {
                match *node {
                    Node::Leaf { size } => {
                        w.put_u8(0);
                        w.put_u32(size);
                    }
                    Node::Split {
                        feature,
                        threshold,
                        left,
                        right,
                    } => {
                        w.put_u8(1);
                        w.put_u32(feature);
                        w.put_f32(threshold);
                        w.put_u32(left);
                        w.put_u32(right);
                    }
                }
            }
        }
        let mut bytes = w.into_bytes();
        let crc = crc32(&bytes);
        bytes.extend_from_slice(&crc.to_le_bytes());
        bytes
    }

    /// Parses and fully validates a `FADEMLD1` artifact. Any
    /// truncation, bit flip, over-cap field, dangling feature/child
    /// reference, or non-finite threshold is a typed
    /// [`DetectError::Corrupt`] — never a panic or a large allocation.
    pub fn from_bytes(bytes: &[u8]) -> Result<Detector> {
        if bytes.len() < DETECTOR_MAGIC.len() + 4 {
            return Err(corrupt(format!(
                "artifact too short ({} bytes)",
                bytes.len()
            )));
        }
        let (body, tail) = bytes.split_at(bytes.len() - 4);
        let stored = tail
            .try_into()
            .map(u32::from_le_bytes)
            .map_err(|_| corrupt("missing crc trailer"))?;
        let actual = crc32(body);
        if stored != actual {
            return Err(corrupt(format!(
                "crc mismatch: stored {stored:#010x}, computed {actual:#010x}"
            )));
        }
        let mut r = ByteReader::new(body);
        let magic = r
            .get_bytes(DETECTOR_MAGIC.len())
            .map_err(|_| corrupt("truncated magic"))?;
        if magic != DETECTOR_MAGIC {
            return Err(corrupt("bad magic"));
        }
        let scales = read_usize(&mut r, "scales")?;
        let dim = read_usize(&mut r, "feature_dim")?;
        let subsample = r.get_u32().map_err(|_| corrupt("truncated subsample"))?;
        let tree_count = read_usize(&mut r, "tree count")?;
        let seed = r.get_u64().map_err(|_| corrupt("truncated seed"))?;
        if scales == 0 || scales > MAX_SCALES {
            return Err(corrupt(format!("scales {scales} out of range")));
        }
        if dim != feature_dim(scales) {
            return Err(corrupt(format!(
                "feature dim {dim} inconsistent with {scales} scales"
            )));
        }
        let psi = usize::try_from(subsample).unwrap_or(usize::MAX);
        if !(2..=MAX_SUBSAMPLE).contains(&psi) {
            return Err(corrupt(format!("subsample {subsample} out of range")));
        }
        if tree_count == 0 || tree_count > MAX_TREES {
            return Err(corrupt(format!("tree count {tree_count} out of range")));
        }
        let mut trees = Vec::with_capacity(tree_count);
        for t in 0..tree_count {
            let node_count = read_usize(&mut r, "node count")?;
            if node_count == 0 || node_count > MAX_NODES {
                return Err(corrupt(format!(
                    "tree {t}: node count {node_count} out of range"
                )));
            }
            let mut nodes = Vec::with_capacity(node_count);
            for i in 0..node_count {
                let tag = r.get_u8().map_err(|_| corrupt("truncated node tag"))?;
                let node = match tag {
                    0 => {
                        let size = r.get_u32().map_err(|_| corrupt("truncated leaf size"))?;
                        if size == 0 || usize::try_from(size).unwrap_or(usize::MAX) > MAX_SUBSAMPLE
                        {
                            return Err(corrupt(format!("tree {t} node {i}: leaf size {size}")));
                        }
                        Node::Leaf { size }
                    }
                    1 => {
                        let feature = r.get_u32().map_err(|_| corrupt("truncated feature"))?;
                        let threshold = r.get_f32().map_err(|_| corrupt("truncated threshold"))?;
                        let left = r.get_u32().map_err(|_| corrupt("truncated left child"))?;
                        let right = r.get_u32().map_err(|_| corrupt("truncated right child"))?;
                        if usize::try_from(feature).unwrap_or(usize::MAX) >= dim {
                            return Err(corrupt(format!(
                                "tree {t} node {i}: feature {feature} out of range"
                            )));
                        }
                        if !threshold.is_finite() {
                            return Err(corrupt(format!(
                                "tree {t} node {i}: non-finite threshold"
                            )));
                        }
                        // Preorder invariant: children strictly follow
                        // their parent, so walks terminate.
                        let (lu, ru) = (
                            usize::try_from(left).unwrap_or(usize::MAX),
                            usize::try_from(right).unwrap_or(usize::MAX),
                        );
                        if lu <= i || ru <= i || lu >= node_count || ru >= node_count || lu == ru {
                            return Err(corrupt(format!(
                                "tree {t} node {i}: bad children {left}/{right}"
                            )));
                        }
                        Node::Split {
                            feature,
                            threshold,
                            left,
                            right,
                        }
                    }
                    other => return Err(corrupt(format!("tree {t} node {i}: bad tag {other}"))),
                };
                nodes.push(node);
            }
            trees.push(Tree { nodes });
        }
        if r.remaining() != 0 {
            return Err(corrupt(format!("{} trailing bytes", r.remaining())));
        }
        Ok(Detector {
            scales,
            feature_dim: dim,
            subsample,
            seed,
            trees,
            plans: PlanCache::default(),
        })
    }

    /// Persists the artifact via the workspace atomic write path.
    pub fn save(&self, path: &Path) -> Result<()> {
        atomic_write(path, &self.to_bytes())?;
        Ok(())
    }

    /// Loads and validates an artifact written by [`Detector::save`].
    pub fn load(path: &Path) -> Result<Detector> {
        let bytes = read_artifact(path)?;
        Detector::from_bytes(&bytes)
    }
}

fn read_usize(r: &mut ByteReader<'_>, what: &str) -> Result<usize> {
    let v = r
        .get_u32()
        .map_err(|_| corrupt(format!("truncated {what}")))?;
    Ok(usize::try_from(v).unwrap_or(usize::MAX))
}

/// Smallest `d` with `2^d >= n`.
fn ceil_log2(n: usize) -> usize {
    let mut d = 0;
    let mut reach = 1usize;
    while reach < n {
        reach = reach.saturating_mul(2);
        d += 1;
    }
    d
}

/// Average unsuccessful-search path length of a BST over `n` points —
/// the standard isolation-forest normalizer `c(n)`.
fn c_norm(n: f64) -> f64 {
    if n <= 1.0 {
        0.0
    } else if n <= 2.0 {
        1.0
    } else {
        2.0 * ((n - 1.0).ln() + EULER_GAMMA) - 2.0 * (n - 1.0) / n
    }
}

/// Recursively grows one isolation tree in preorder. Returns the arena
/// index of the node it created.
fn build_node(
    nodes: &mut Vec<Node>,
    samples: &[Vec<f32>],
    members: &[usize],
    depth: usize,
    limit: usize,
    rng: &mut TensorRng,
) -> Result<u32> {
    if nodes.len() >= MAX_NODES {
        return Err(DetectError::InvalidConfig {
            reason: format!("tree exceeded {MAX_NODES} nodes"),
        });
    }
    let here = u32::try_from(nodes.len()).unwrap_or(u32::MAX);
    let size = u32::try_from(members.len()).unwrap_or(u32::MAX).max(1);
    if members.len() <= 1 || depth >= limit {
        nodes.push(Node::Leaf { size });
        return Ok(here);
    }
    let dim = samples.first().map(Vec::len).unwrap_or(0);
    // Pick a random feature; if it has no spread among the members,
    // scan forward (deterministically) for one that does.
    let start = rng.index(dim.max(1));
    let mut split = None;
    for off in 0..dim {
        let f = start
            .checked_add(off)
            .map(|s| s % dim)
            .unwrap_or(off % dim.max(1));
        let mut lo = f32::INFINITY;
        let mut hi = f32::NEG_INFINITY;
        for &m in members {
            let v = samples
                .get(m)
                .and_then(|s| s.get(f))
                .copied()
                .unwrap_or(f32::NAN);
            if v.is_finite() {
                lo = lo.min(v);
                hi = hi.max(v);
            }
        }
        if hi > lo {
            split = Some((f, lo, hi));
            break;
        }
    }
    let Some((f, lo, hi)) = split else {
        // All members identical on every feature: nothing isolates them.
        nodes.push(Node::Leaf { size });
        return Ok(here);
    };
    let threshold = rng.uniform_scalar(lo, hi);
    let mut left_members = Vec::new();
    let mut right_members = Vec::new();
    for &m in members {
        let v = samples
            .get(m)
            .and_then(|s| s.get(f))
            .copied()
            .unwrap_or(f32::NAN);
        if v < threshold {
            left_members.push(m);
        } else {
            right_members.push(m);
        }
    }
    if left_members.is_empty() || right_members.is_empty() {
        // uniform_scalar may land on the exact minimum; degenerate
        // splits become leaves rather than infinite recursion.
        nodes.push(Node::Leaf { size });
        return Ok(here);
    }
    nodes.push(Node::Split {
        feature: u32::try_from(f).unwrap_or(u32::MAX),
        threshold,
        left: 0,
        right: 0,
    });
    let left = build_node(nodes, samples, &left_members, depth + 1, limit, rng)?;
    let right = build_node(nodes, samples, &right_members, depth + 1, limit, rng)?;
    let here_usize = usize::try_from(here).unwrap_or(usize::MAX);
    if let Some(Node::Split {
        left: l, right: r, ..
    }) = nodes.get_mut(here_usize)
    {
        *l = left;
        *r = right;
    }
    Ok(here)
}

/// Path length of one feature vector through one tree, including the
/// `c(size)` adjustment at the terminal leaf. The preorder child
/// invariant guarantees termination; a hop counter bounds the walk
/// defensively anyway.
fn path_length(tree: &Tree, features: &[f32]) -> f64 {
    let mut idx = 0usize;
    let mut depth = 0.0f64;
    let mut hops = 0usize;
    loop {
        let Some(node) = tree.nodes.get(idx) else {
            return depth;
        };
        match *node {
            Node::Leaf { size } => return depth + c_norm(f64::from(size)),
            Node::Split {
                feature,
                threshold,
                left,
                right,
            } => {
                let fi = usize::try_from(feature).unwrap_or(usize::MAX);
                let v = features.get(fi).copied().unwrap_or(f32::NAN);
                // NaN comparisons are false ⇒ NaN goes right, totally.
                let next = if v < threshold { left } else { right };
                idx = usize::try_from(next).unwrap_or(usize::MAX);
                depth += 1.0;
                hops += 1;
                if hops > tree.nodes.len() {
                    return depth;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn training_images(n: usize, seed: u64) -> Vec<Tensor> {
        // Smooth-ish images: low-frequency ramps plus mild sensor noise.
        let mut rng = TensorRng::seed_from_u64(seed);
        let side = 16usize;
        (0..n)
            .map(|_| {
                let base = rng.uniform_scalar(0.2, 0.8);
                let tilt = rng.uniform_scalar(-0.3, 0.3);
                let mut data = Vec::with_capacity(3 * side * side);
                for _ in 0..3 {
                    for y in 0..side {
                        for x in 0..side {
                            let v = base
                                + tilt * (y + x) as f32 / (2 * side) as f32
                                + 0.01 * rng.normal_scalar();
                            data.push(v.clamp(0.0, 1.0));
                        }
                    }
                }
                Tensor::from_vec(data, fademl_tensor::Shape::new(vec![3, side, side])).unwrap()
            })
            .collect()
    }

    fn small_config() -> DetectorConfig {
        DetectorConfig {
            trees: 25,
            subsample: 32,
            scales: 2,
            seed: 99,
        }
    }

    #[test]
    fn fit_is_deterministic_from_the_seed() {
        let images = training_images(48, 5);
        let a = Detector::fit_images(&images, &small_config()).unwrap();
        let b = Detector::fit_images(&images, &small_config()).unwrap();
        assert_eq!(a.to_bytes(), b.to_bytes());
        let mut other = small_config();
        other.seed = 100;
        let c = Detector::fit_images(&images, &other).unwrap();
        assert_ne!(a.to_bytes(), c.to_bytes());
    }

    #[test]
    fn scores_are_in_unit_interval_and_anomalies_score_higher() {
        let images = training_images(64, 7);
        let det = Detector::fit_images(&images, &small_config()).unwrap();
        let mut rng = TensorRng::seed_from_u64(1234);
        let clean_mean: f32 = images
            .iter()
            .take(16)
            .map(|img| det.score_image(img).unwrap())
            .sum::<f32>()
            / 16.0;
        let noise_mean: f32 = (0..16)
            .map(|_| {
                let img = rng.uniform(&[3, 16, 16], 0.0, 1.0);
                det.score_image(&img).unwrap()
            })
            .sum::<f32>()
            / 16.0;
        assert!(clean_mean > 0.0 && clean_mean < 1.0);
        assert!(noise_mean > 0.0 && noise_mean < 1.0);
        assert!(
            noise_mean > clean_mean + 0.05,
            "iid noise should be anomalous: clean {clean_mean} vs noise {noise_mean}"
        );
    }

    #[test]
    fn round_trip_is_byte_exact_and_score_preserving() {
        let images = training_images(40, 21);
        let det = Detector::fit_images(&images, &small_config()).unwrap();
        let bytes = det.to_bytes();
        let back = Detector::from_bytes(&bytes).unwrap();
        assert_eq!(back, det);
        assert_eq!(back.to_bytes(), bytes);
        let probe = images.first().unwrap();
        assert_eq!(
            det.score_image(probe).unwrap().to_bits(),
            back.score_image(probe).unwrap().to_bits()
        );
    }

    #[test]
    fn every_truncation_is_refused() {
        let images = training_images(16, 2);
        let cfg = DetectorConfig {
            trees: 4,
            subsample: 8,
            scales: 2,
            seed: 1,
        };
        let bytes = Detector::fit_images(&images, &cfg).unwrap().to_bytes();
        for len in 0..bytes.len() {
            let truncated = &bytes[..len];
            assert!(
                Detector::from_bytes(truncated).is_err(),
                "truncation to {len} bytes must be refused"
            );
        }
    }

    #[test]
    fn every_single_byte_flip_is_refused_or_revalidated() {
        let images = training_images(16, 3);
        let cfg = DetectorConfig {
            trees: 2,
            subsample: 8,
            scales: 1,
            seed: 4,
        };
        let bytes = Detector::fit_images(&images, &cfg).unwrap().to_bytes();
        for i in 0..bytes.len() {
            let mut mutated = bytes.clone();
            mutated[i] ^= 0x40;
            // CRC catches every single-byte flip (including flips in
            // the trailer itself).
            assert!(
                Detector::from_bytes(&mutated).is_err(),
                "bit flip at byte {i} must be refused"
            );
        }
    }

    #[test]
    fn oversized_structural_fields_are_refused_before_allocation() {
        // Hand-build a header claiming u32::MAX trees with a valid CRC:
        // the cap check must fire, not an allocation.
        let mut w = ByteWriter::new();
        w.put_bytes(DETECTOR_MAGIC);
        w.put_u32(2); // scales
        w.put_u32(12); // feature dim
        w.put_u32(8); // subsample
        w.put_u32(u32::MAX); // tree count
        w.put_u64(0); // seed
        let mut bytes = w.into_bytes();
        let crc = crc32(&bytes);
        bytes.extend_from_slice(&crc.to_le_bytes());
        match Detector::from_bytes(&bytes) {
            Err(DetectError::Corrupt { reason }) => {
                assert!(reason.contains("tree count"), "{reason}")
            }
            other => panic!("expected corrupt, got {other:?}"),
        }
    }

    #[test]
    fn dangling_children_are_refused() {
        let mut w = ByteWriter::new();
        w.put_bytes(DETECTOR_MAGIC);
        w.put_u32(1); // scales
        w.put_u32(6); // feature dim
        w.put_u32(4); // subsample
        w.put_u32(1); // tree count
        w.put_u64(0); // seed
        w.put_u32(3); // node count
                      // Split whose left child points at itself.
        w.put_u8(1);
        w.put_u32(0); // feature
        w.put_f32(0.5);
        w.put_u32(0); // left == self: cycle
        w.put_u32(2);
        w.put_u8(0);
        w.put_u32(1);
        w.put_u8(0);
        w.put_u32(1);
        let mut bytes = w.into_bytes();
        let crc = crc32(&bytes);
        bytes.extend_from_slice(&crc.to_le_bytes());
        match Detector::from_bytes(&bytes) {
            Err(DetectError::Corrupt { reason }) => {
                assert!(reason.contains("children"), "{reason}")
            }
            other => panic!("expected corrupt, got {other:?}"),
        }
    }

    #[test]
    fn score_rejects_wrong_feature_dim() {
        let images = training_images(16, 9);
        let det = Detector::fit_images(&images, &small_config()).unwrap();
        assert!(matches!(
            det.score(&[0.0; 3]),
            Err(DetectError::InvalidInput { .. })
        ));
    }

    #[test]
    fn save_load_round_trips_on_disk() {
        let dir = std::env::temp_dir().join(format!("fademl-detect-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("det.fdet");
        let images = training_images(24, 13);
        let det = Detector::fit_images(&images, &small_config()).unwrap();
        det.save(&path).unwrap();
        let back = Detector::load(&path).unwrap();
        assert_eq!(back, det);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn config_envelope_is_enforced() {
        for bad in [
            DetectorConfig {
                trees: 0,
                ..Default::default()
            },
            DetectorConfig {
                trees: MAX_TREES + 1,
                ..Default::default()
            },
            DetectorConfig {
                subsample: 1,
                ..Default::default()
            },
            DetectorConfig {
                scales: 0,
                ..Default::default()
            },
            DetectorConfig {
                scales: MAX_SCALES + 1,
                ..Default::default()
            },
        ] {
            assert!(matches!(
                bad.validate(),
                Err(DetectError::InvalidConfig { .. })
            ));
        }
        assert!(DetectorConfig::default().validate().is_ok());
    }
}
