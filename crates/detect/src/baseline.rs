//! Per-tenant score baselines: streaming quantile sketches that make
//! the triage threshold relative to each tenant's clean distribution.
//!
//! A single global threshold lets one tenant's traffic shape poison
//! everyone's triage rate: a tenant whose clean frames naturally score
//! high eats the hardened budget, a tenant who scores low gets a free
//! evasion margin. Instead we track a streaming quantile of clean
//! scores per tenant (the P² algorithm — five markers, fixed arrays,
//! no sample buffer) alongside a global sketch, and shift each
//! tenant's effective threshold by the clamped difference between its
//! quantile and the global one.
//!
//! The tenant table is cap-checked: at most [`BaselineConfig::max_tenants`]
//! entries, with least-recently-used eviction, so an attacker spraying
//! tenant IDs bounds memory instead of growing it. The steady-state
//! observe path (known tenant) is allocation-free; only first contact
//! with a new tenant allocates its table entry.

use std::collections::HashMap;

use crate::error::{DetectError, Result};

/// Hard cap on [`BaselineConfig::max_tenants`].
pub const MAX_TENANT_TABLE: usize = 1 << 16;

/// Knobs for the per-tenant baseline table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BaselineConfig {
    /// Which clean-score quantile anchors the baseline (e.g. `0.9`).
    pub quantile: f64,
    /// Most tenants tracked before LRU eviction kicks in.
    pub max_tenants: usize,
    /// Observations a sketch needs before its quantile is trusted.
    pub min_samples: u64,
    /// Largest absolute threshold shift a tenant baseline may apply.
    pub max_shift: f32,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        BaselineConfig {
            quantile: 0.9,
            max_tenants: 256,
            min_samples: 32,
            max_shift: 0.1,
        }
    }
}

impl BaselineConfig {
    /// Checks every knob against its envelope.
    ///
    /// # Errors
    ///
    /// [`DetectError::InvalidConfig`] naming the offending knob.
    pub fn validate(&self) -> Result<()> {
        if !(self.quantile > 0.0 && self.quantile < 1.0) {
            return Err(DetectError::InvalidConfig {
                reason: format!("baseline quantile must be in (0, 1), got {}", self.quantile),
            });
        }
        if self.max_tenants == 0 || self.max_tenants > MAX_TENANT_TABLE {
            return Err(DetectError::InvalidConfig {
                reason: format!(
                    "baseline max_tenants must be in 1..={MAX_TENANT_TABLE}, got {}",
                    self.max_tenants
                ),
            });
        }
        if self.min_samples < 5 {
            return Err(DetectError::InvalidConfig {
                reason: format!(
                    "baseline min_samples must be at least 5 (the P\u{b2} marker count), got {}",
                    self.min_samples
                ),
            });
        }
        if !(self.max_shift >= 0.0 && self.max_shift <= 0.5) {
            return Err(DetectError::InvalidConfig {
                reason: format!(
                    "baseline max_shift must be in [0, 0.5], got {}",
                    self.max_shift
                ),
            });
        }
        Ok(())
    }
}

/// Streaming quantile estimate via the P² algorithm (Jain & Chlamtac,
/// 1985): five markers whose heights track the min, the target
/// quantile and its midpoints, and the max. Fixed-size state, no
/// sample buffer, one parabolic adjustment per observation.
#[derive(Debug, Clone, PartialEq)]
struct QuantileSketch {
    /// Target quantile in (0, 1).
    q: f64,
    /// Marker heights (sorted ascending once primed).
    heights: [f64; 5],
    /// Actual marker positions, 1-based.
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Per-observation increments of the desired positions.
    increments: [f64; 5],
    /// Observations absorbed so far.
    count: u64,
}

fn at(a: &[f64; 5], i: usize) -> f64 {
    a.get(i).copied().unwrap_or(0.0)
}

fn set(a: &mut [f64; 5], i: usize, v: f64) {
    if let Some(slot) = a.get_mut(i) {
        *slot = v;
    }
}

impl QuantileSketch {
    fn new(q: f64) -> QuantileSketch {
        QuantileSketch {
            q,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            count: 0,
        }
    }

    fn observe(&mut self, value: f64) {
        if self.count < 5 {
            // Priming: sorted insertion of the first five observations.
            let n = usize::try_from(self.count).unwrap_or(0);
            let mut i = n;
            while i > 0 && at(&self.heights, i - 1) > value {
                let shifted = at(&self.heights, i - 1);
                set(&mut self.heights, i, shifted);
                i -= 1;
            }
            set(&mut self.heights, i, value);
            self.count += 1;
            return;
        }
        // Locate the cell the new value falls into, adjusting extremes.
        let k = if value < at(&self.heights, 0) {
            set(&mut self.heights, 0, value);
            0
        } else if value >= at(&self.heights, 4) {
            set(&mut self.heights, 4, value);
            3
        } else {
            let mut cell = 0;
            for i in 1..4 {
                if value < at(&self.heights, i) {
                    break;
                }
                cell = i;
            }
            cell
        };
        for i in (k + 1)..5 {
            let p = at(&self.positions, i);
            set(&mut self.positions, i, p + 1.0);
        }
        for i in 0..5 {
            let d = at(&self.desired, i);
            set(&mut self.desired, i, d + at(&self.increments, i));
        }
        // Nudge the three interior markers toward their desired spots.
        for i in 1..4 {
            let n_i = at(&self.positions, i);
            let d = at(&self.desired, i) - n_i;
            let n_prev = at(&self.positions, i - 1);
            let n_next = at(&self.positions, i + 1);
            if (d >= 1.0 && n_next - n_i > 1.0) || (d <= -1.0 && n_prev - n_i < -1.0) {
                let step = if d >= 1.0 { 1.0 } else { -1.0 };
                let h_i = at(&self.heights, i);
                let h_prev = at(&self.heights, i - 1);
                let h_next = at(&self.heights, i + 1);
                // Parabolic (P²) interpolation; fall back to linear if
                // it would break marker ordering.
                let parabolic = h_i
                    + step / (n_next - n_prev)
                        * ((n_i - n_prev + step) * (h_next - h_i) / (n_next - n_i)
                            + (n_next - n_i - step) * (h_i - h_prev) / (n_i - n_prev));
                let candidate = if h_prev < parabolic && parabolic < h_next {
                    parabolic
                } else if step > 0.0 {
                    h_i + (h_next - h_i) / (n_next - n_i)
                } else {
                    h_i - (h_prev - h_i) / (n_prev - n_i)
                };
                set(&mut self.heights, i, candidate);
                set(&mut self.positions, i, n_i + step);
            }
        }
        self.count += 1;
    }

    /// The current quantile estimate, or `None` while priming.
    fn quantile(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        if self.count < 5 {
            // Not enough for the marker machinery: nearest-rank over
            // the primed prefix.
            let n = usize::try_from(self.count).unwrap_or(1);
            let rank = usize::try_from((self.q * n as f64).ceil() as u64)
                .unwrap_or(n)
                .clamp(1, n);
            return Some(at(&self.heights, rank - 1));
        }
        Some(at(&self.heights, 2))
    }

    fn count(&self) -> u64 {
        self.count
    }
}

#[derive(Debug, Clone)]
struct TenantEntry {
    sketch: QuantileSketch,
    last_used: u64,
}

/// Cap-checked table of per-tenant clean-score sketches plus the
/// global sketch they are measured against.
#[derive(Debug, Clone)]
pub struct TenantBaselines {
    config: BaselineConfig,
    global: QuantileSketch,
    tenants: HashMap<String, TenantEntry>,
    /// Logical clock driving LRU eviction; bumps per observation.
    clock: u64,
}

impl TenantBaselines {
    /// An empty baseline table.
    ///
    /// # Errors
    ///
    /// [`DetectError::InvalidConfig`] if the config is out of envelope.
    pub fn new(config: BaselineConfig) -> Result<TenantBaselines> {
        config.validate()?;
        Ok(TenantBaselines {
            config,
            global: QuantileSketch::new(config.quantile),
            tenants: HashMap::default(),
            clock: 0,
        })
    }

    /// Feeds one clean-verdict score into the global sketch and the
    /// tenant's. Steady state (tenant already tracked) is
    /// allocation-free; first contact with a new tenant allocates its
    /// entry, evicting the least-recently-used one at the cap.
    pub fn observe(&mut self, tenant: &str, score: f32) {
        self.clock = self.clock.wrapping_add(1);
        self.global.observe(f64::from(score));
        if let Some(entry) = self.tenants.get_mut(tenant) {
            entry.sketch.observe(f64::from(score));
            entry.last_used = self.clock;
            return;
        }
        if self.tenants.len() >= self.config.max_tenants {
            let coldest = self
                .tenants
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.to_string());
            if let Some(key) = coldest {
                self.tenants.remove(&key);
            }
        }
        let mut sketch = QuantileSketch::new(self.config.quantile);
        sketch.observe(f64::from(score));
        self.tenants.insert(
            tenant.to_string(),
            TenantEntry {
                sketch,
                last_used: self.clock,
            },
        );
    }

    /// The threshold shift for `tenant`: the difference between its
    /// clean-score quantile and the global one, clamped to
    /// `±max_shift`. Zero until both sketches are warm — an unknown or
    /// cold tenant gets the global threshold, never a guess.
    pub fn shift(&self, tenant: &str) -> f32 {
        let global_warm = self.global.count() >= self.config.min_samples;
        let Some(entry) = self.tenants.get(tenant) else {
            return 0.0;
        };
        if !global_warm || entry.sketch.count() < self.config.min_samples {
            return 0.0;
        }
        match (entry.sketch.quantile(), self.global.quantile()) {
            (Some(tq), Some(gq)) => {
                ((tq - gq) as f32).clamp(-self.config.max_shift, self.config.max_shift)
            }
            _ => 0.0,
        }
    }

    /// Tenants currently tracked.
    pub fn tenants(&self) -> usize {
        self.tenants.len()
    }

    /// Total clean scores absorbed (all tenants).
    pub fn observations(&self) -> u64 {
        self.global.count()
    }

    /// The configuration this table was built with.
    pub fn config(&self) -> &BaselineConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fademl_tensor::TensorRng;

    #[test]
    fn config_validation_names_each_knob() {
        let bad = [
            BaselineConfig {
                quantile: 0.0,
                ..BaselineConfig::default()
            },
            BaselineConfig {
                quantile: 1.0,
                ..BaselineConfig::default()
            },
            BaselineConfig {
                max_tenants: 0,
                ..BaselineConfig::default()
            },
            BaselineConfig {
                max_tenants: MAX_TENANT_TABLE + 1,
                ..BaselineConfig::default()
            },
            BaselineConfig {
                min_samples: 4,
                ..BaselineConfig::default()
            },
            BaselineConfig {
                max_shift: -0.01,
                ..BaselineConfig::default()
            },
            BaselineConfig {
                max_shift: 0.6,
                ..BaselineConfig::default()
            },
        ];
        for config in bad {
            assert!(
                matches!(
                    TenantBaselines::new(config),
                    Err(DetectError::InvalidConfig { .. })
                ),
                "{config:?} should be rejected"
            );
        }
        assert!(TenantBaselines::new(BaselineConfig::default()).is_ok());
    }

    #[test]
    fn sketch_tracks_known_quantiles_of_uniform_data() {
        let mut sketch = QuantileSketch::new(0.9);
        let mut rng = TensorRng::seed_from_u64(17);
        for _ in 0..20_000 {
            sketch.observe(f64::from(rng.uniform_scalar(0.0, 1.0)));
        }
        let q = sketch.quantile().unwrap();
        assert!(
            (q - 0.9).abs() < 0.02,
            "p90 of U(0,1) should be ~0.9, got {q}"
        );

        let mut median = QuantileSketch::new(0.5);
        let mut rng = TensorRng::seed_from_u64(18);
        for _ in 0..20_000 {
            median.observe(f64::from(rng.uniform_scalar(-1.0, 1.0)));
        }
        let m = median.quantile().unwrap();
        assert!(m.abs() < 0.03, "median of U(-1,1) should be ~0, got {m}");
    }

    #[test]
    fn sketch_handles_tiny_counts_without_panicking() {
        let mut sketch = QuantileSketch::new(0.9);
        assert!(sketch.quantile().is_none());
        for v in [3.0, 1.0, 2.0] {
            sketch.observe(v);
        }
        // Nearest-rank over the primed prefix; must be one of the
        // observed values.
        let q = sketch.quantile().unwrap();
        assert!([1.0, 2.0, 3.0].contains(&q), "got {q}");
    }

    #[test]
    fn shift_is_zero_until_warm_then_tracks_tenant_offset() {
        let config = BaselineConfig {
            min_samples: 32,
            max_shift: 0.2,
            ..BaselineConfig::default()
        };
        let mut table = TenantBaselines::new(config).unwrap();
        let mut rng = TensorRng::seed_from_u64(5);
        assert_eq!(table.shift("unknown"), 0.0);
        // A dominant "mid" tenant anchors the global sketch near 0.45;
        // "hot" runs ~0.1 above it, "cool" ~0.1 below.
        for _ in 0..500 {
            for _ in 0..8 {
                table.observe("mid", 0.45 + rng.uniform_scalar(-0.02, 0.02));
            }
            table.observe("cool", 0.35 + rng.uniform_scalar(-0.02, 0.02));
            table.observe("hot", 0.55 + rng.uniform_scalar(-0.02, 0.02));
        }
        let hot = table.shift("hot");
        let cool = table.shift("cool");
        assert!(hot > 0.02, "hot tenant should shift up, got {hot}");
        assert!(cool < -0.02, "cool tenant should shift down, got {cool}");
        assert!(hot <= config.max_shift && cool >= -config.max_shift);
        assert_eq!(table.shift("never-seen"), 0.0);
    }

    #[test]
    fn shift_clamps_to_max_shift() {
        let config = BaselineConfig {
            min_samples: 32,
            max_shift: 0.05,
            ..BaselineConfig::default()
        };
        let mut table = TenantBaselines::new(config).unwrap();
        // The global p90 sits at 0.5 (dominant mid tenant); the outlier
        // tenants are far enough off that both shifts saturate.
        for _ in 0..100 {
            for _ in 0..10 {
                table.observe("mid", 0.5);
            }
            table.observe("low", 0.1);
            table.observe("high", 0.9);
        }
        assert_eq!(table.shift("high"), 0.05);
        assert_eq!(table.shift("low"), -0.05);
    }

    #[test]
    fn tenant_table_is_capped_with_lru_eviction() {
        let config = BaselineConfig {
            max_tenants: 4,
            ..BaselineConfig::default()
        };
        let mut table = TenantBaselines::new(config).unwrap();
        for i in 0..4 {
            table.observe(&format!("t{i}"), 0.5);
        }
        assert_eq!(table.tenants(), 4);
        // Touch t0 so t1 becomes the LRU victim.
        table.observe("t0", 0.5);
        table.observe("t9", 0.5);
        assert_eq!(table.tenants(), 4);
        // t1 evicted; observing it again re-admits (evicting t2).
        table.observe("t1", 0.5);
        assert_eq!(table.tenants(), 4);
        // An attacker spraying tenant IDs never grows the table.
        for i in 0..1000 {
            table.observe(&format!("spray-{i}"), 0.5);
        }
        assert_eq!(table.tenants(), 4);
    }

    #[test]
    fn steady_state_observe_does_not_touch_the_tenant_map_size() {
        let mut table = TenantBaselines::new(BaselineConfig::default()).unwrap();
        table.observe("a", 0.5);
        let cap = table.tenants.capacity();
        for _ in 0..10_000 {
            table.observe("a", 0.5);
        }
        assert_eq!(table.tenants.capacity(), cap);
        assert_eq!(table.tenants(), 1);
        assert_eq!(table.observations(), 10_001);
    }
}
