//! Budget-driven threshold control for the triage stage.
//!
//! PR 7's triage threshold was a magic score. The right operational
//! target is *hardened-path load*: the fraction of traffic routed to
//! the expensive hardened pipeline must stay inside a capacity budget
//! (e.g. ≤ 5%) regardless of what the detector's score distribution
//! does under drift or attack. [`ThresholdController`] closes that
//! loop: it watches the flagged fraction over fixed windows and nudges
//! the threshold up when the hardened path runs hot, down when it runs
//! cold, with hysteresis so a fraction near the budget does not make
//! the threshold oscillate.
//!
//! Two hard rails bound the feedback:
//!
//! - a **floor** the threshold never drops below, so a long quiet
//!   stretch cannot talk the controller into flagging everything;
//! - a **ceiling** it never exceeds, so an attacker flooding
//!   high-score inputs cannot push the threshold up until the detector
//!   is blind. Past the ceiling the serving layer *load-sheds* excess
//!   hardened traffic instead (see [`ControllerConfig::shed_cap`]) —
//!   flooding degrades to shed requests with a typed error, never to a
//!   detector that waves attacks through.
//!
//! The controller is plain sequential state — no locks, no
//! allocation. Callers (the serve triage stage, the adaptive
//! experiment) wrap it in whatever synchronization they already hold.

use crate::error::{DetectError, Result};

/// Knobs for the budget feedback loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControllerConfig {
    /// Target hardened-path load as a fraction of traffic, in (0, 1).
    pub budget: f32,
    /// Dead band around the budget, as a fraction of it: no adjustment
    /// while the observed load is within `budget * (1 ± hysteresis)`.
    pub hysteresis: f32,
    /// Threshold step per adjustment, in score units.
    pub step: f32,
    /// Hard floor the threshold never drops below.
    pub floor: f32,
    /// Hard ceiling the threshold never exceeds (anti-blinding rail).
    pub ceiling: f32,
    /// Scored frames per observation window.
    pub window: u32,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            budget: 0.05,
            hysteresis: 0.25,
            step: 0.01,
            floor: 0.5,
            ceiling: 0.85,
            window: 64,
        }
    }
}

impl ControllerConfig {
    /// Checks every knob against its envelope.
    ///
    /// # Errors
    ///
    /// [`DetectError::InvalidConfig`] naming the offending knob.
    pub fn validate(&self) -> Result<()> {
        if !(self.budget > 0.0 && self.budget < 1.0) {
            return Err(DetectError::InvalidConfig {
                reason: format!("controller budget must be in (0, 1), got {}", self.budget),
            });
        }
        if !(self.hysteresis >= 0.0 && self.hysteresis < 1.0) {
            return Err(DetectError::InvalidConfig {
                reason: format!(
                    "controller hysteresis must be in [0, 1), got {}",
                    self.hysteresis
                ),
            });
        }
        if !(self.step > 0.0 && self.step <= 0.5) {
            return Err(DetectError::InvalidConfig {
                reason: format!("controller step must be in (0, 0.5], got {}", self.step),
            });
        }
        if !(self.floor >= 0.0 && self.floor <= 1.0) {
            return Err(DetectError::InvalidConfig {
                reason: format!("controller floor must be in [0, 1], got {}", self.floor),
            });
        }
        if !(self.ceiling >= self.floor && self.ceiling <= 1.0) {
            return Err(DetectError::InvalidConfig {
                reason: format!(
                    "controller ceiling must be in [floor, 1], got {} (floor {})",
                    self.ceiling, self.floor
                ),
            });
        }
        if self.window == 0 {
            return Err(DetectError::InvalidConfig {
                reason: "controller window must be positive".to_string(),
            });
        }
        Ok(())
    }

    /// Most hardened dispatches tolerated per window before the
    /// serving layer sheds the excess: twice the budget, never below
    /// one so legitimate flags always have a path through.
    pub fn shed_cap(&self) -> u32 {
        let cap = (2.0 * self.budget * self.window as f32).ceil();
        let cap = u32::try_from(cap as u64).unwrap_or(u32::MAX);
        cap.max(1)
    }
}

/// Feedback controller holding hardened-path load at the budget.
#[derive(Debug, Clone, PartialEq)]
pub struct ThresholdController {
    config: ControllerConfig,
    threshold: f32,
    window_scored: u32,
    window_flagged: u32,
}

impl ThresholdController {
    /// A controller starting at `initial`, clamped into `[floor, ceiling]`.
    ///
    /// # Errors
    ///
    /// [`DetectError::InvalidConfig`] if the config is out of envelope.
    pub fn new(config: ControllerConfig, initial: f32) -> Result<ThresholdController> {
        config.validate()?;
        Ok(ThresholdController {
            config,
            threshold: initial.clamp(config.floor, config.ceiling),
            window_scored: 0,
            window_flagged: 0,
        })
    }

    /// The current triage threshold.
    pub fn threshold(&self) -> f32 {
        self.threshold
    }

    /// The configuration driving the loop.
    pub fn config(&self) -> &ControllerConfig {
        &self.config
    }

    /// Hardened dispatches flagged so far in the open window — the
    /// serving layer compares this against [`ControllerConfig::shed_cap`]
    /// to decide whether to shed.
    pub fn window_flagged(&self) -> u32 {
        self.window_flagged
    }

    /// Records one scored frame. On a window boundary, compares the
    /// flagged fraction against the budget (with hysteresis) and steps
    /// the threshold inside `[floor, ceiling]`. Returns the new
    /// threshold when it changed, `None` otherwise. Allocation-free.
    pub fn observe(&mut self, flagged: bool) -> Option<f32> {
        self.window_scored += 1;
        if flagged {
            self.window_flagged += 1;
        }
        if self.window_scored < self.config.window {
            return None;
        }
        let fraction = self.window_flagged as f32 / self.window_scored as f32;
        self.window_scored = 0;
        self.window_flagged = 0;
        let high = self.config.budget * (1.0 + self.config.hysteresis);
        let low = self.config.budget * (1.0 - self.config.hysteresis);
        let before = self.threshold;
        if fraction > high {
            self.threshold = (self.threshold + self.config.step).min(self.config.ceiling);
        } else if fraction < low {
            self.threshold = (self.threshold - self.config.step).max(self.config.floor);
        }
        if self.threshold.to_bits() != before.to_bits() {
            Some(self.threshold)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation_names_each_knob() {
        let base = ControllerConfig::default();
        let bad = [
            ControllerConfig {
                budget: 0.0,
                ..base
            },
            ControllerConfig {
                budget: 1.0,
                ..base
            },
            ControllerConfig {
                hysteresis: -0.1,
                ..base
            },
            ControllerConfig {
                hysteresis: 1.0,
                ..base
            },
            ControllerConfig { step: 0.0, ..base },
            ControllerConfig { step: 0.6, ..base },
            ControllerConfig {
                floor: -0.1,
                ..base
            },
            ControllerConfig {
                floor: 0.9,
                ceiling: 0.8,
                ..base
            },
            ControllerConfig {
                ceiling: 1.1,
                ..base
            },
            ControllerConfig { window: 0, ..base },
        ];
        for config in bad {
            assert!(config.validate().is_err(), "{config:?} should be rejected");
        }
        assert!(base.validate().is_ok());
    }

    #[test]
    fn initial_threshold_is_clamped_into_the_rails() {
        let config = ControllerConfig::default();
        let low = ThresholdController::new(config, 0.0).unwrap();
        assert_eq!(low.threshold(), config.floor);
        let high = ThresholdController::new(config, 1.0).unwrap();
        assert_eq!(high.threshold(), config.ceiling);
    }

    #[test]
    fn hot_load_steps_threshold_up_to_the_ceiling_and_stops() {
        let config = ControllerConfig {
            window: 8,
            ..ControllerConfig::default()
        };
        let mut ctl = ThresholdController::new(config, 0.6).unwrap();
        // Every frame flagged: far over budget, each window steps up.
        let mut changes = 0;
        for _ in 0..(8 * 100) {
            if ctl.observe(true).is_some() {
                changes += 1;
            }
        }
        assert_eq!(ctl.threshold(), config.ceiling);
        // The windows it took to travel 0.6 -> ceiling (one extra step
        // possible when float accumulation lands just under it).
        assert!((25..=26).contains(&changes), "got {changes}");
        // Pinned at the ceiling, further floods change nothing: the
        // anti-blinding rail. Excess load is shed, not absorbed.
        for _ in 0..(8 * 10) {
            assert!(ctl.observe(true).is_none());
        }
        assert_eq!(ctl.threshold(), config.ceiling);
    }

    #[test]
    fn cold_load_steps_down_to_the_floor_and_stops() {
        let config = ControllerConfig {
            window: 8,
            ..ControllerConfig::default()
        };
        let mut ctl = ThresholdController::new(config, 0.6).unwrap();
        for _ in 0..(8 * 100) {
            ctl.observe(false);
        }
        assert_eq!(ctl.threshold(), config.floor);
    }

    #[test]
    fn load_inside_the_dead_band_holds_steady() {
        let config = ControllerConfig {
            budget: 0.25,
            hysteresis: 0.5,
            window: 8,
            ..ControllerConfig::default()
        };
        // 2/8 = 0.25 flagged: exactly on budget, inside the band.
        let mut ctl = ThresholdController::new(config, 0.7).unwrap();
        for round in 0..50 {
            for i in 0..8 {
                let changed = ctl.observe(i < 2);
                assert!(changed.is_none(), "round {round} moved the threshold");
            }
        }
        assert_eq!(ctl.threshold(), 0.7);
    }

    #[test]
    fn adjustments_happen_only_on_window_boundaries() {
        let config = ControllerConfig {
            window: 16,
            ..ControllerConfig::default()
        };
        let mut ctl = ThresholdController::new(config, 0.6).unwrap();
        for i in 1..16 {
            assert!(ctl.observe(true).is_none(), "frame {i} adjusted early");
        }
        assert!(ctl.observe(true).is_some());
    }

    #[test]
    fn shed_cap_is_twice_budget_with_a_floor_of_one() {
        let config = ControllerConfig {
            budget: 0.05,
            window: 64,
            ..ControllerConfig::default()
        };
        // 2 * 0.05 * 64 = 6.4 -> 7
        assert_eq!(config.shed_cap(), 7);
        let tiny = ControllerConfig {
            budget: 0.01,
            window: 8,
            ..ControllerConfig::default()
        };
        assert_eq!(tiny.shed_cap(), 1);
    }

    #[test]
    fn window_flagged_resets_each_window() {
        let config = ControllerConfig {
            window: 4,
            ..ControllerConfig::default()
        };
        let mut ctl = ThresholdController::new(config, 0.6).unwrap();
        ctl.observe(true);
        ctl.observe(true);
        assert_eq!(ctl.window_flagged(), 2);
        ctl.observe(false);
        ctl.observe(false);
        assert_eq!(ctl.window_flagged(), 0);
    }
}
