//! # fademl-detect — multi-scale isolation-forest adversarial detection
//!
//! FAdeML's central finding is that a pre-processing filter alone is a
//! brittle defense: a filter-aware attacker (the FAdeML loop) walks
//! straight through it. This crate adds the *detection* leg of a
//! defense-in-depth serving stack: a real-time anomaly detector that
//! scores every admitted image against the clean-input distribution, so
//! the serving engine can route suspicious inputs to a hardened path
//! instead of either trusting the filter or shedding load.
//!
//! The detector follows the multi-scale isolation-forest shape of
//! Abhulimhen et al. (see PAPERS.md): each image is summarized as a
//! short vector of per-pyramid-level statistics
//! ([`features::pyramid_features`]) and an isolation forest
//! ([`Detector`]) fitted on clean frames turns that vector into an
//! anomaly score in `(0, 1)`. FGSM-style perturbations — small per
//! pixel, incoherent across pixels — inflate the fine-scale gradient
//! and Laplacian statistics far off the clean manifold and isolate in
//! very few random cuts.
//!
//! Design invariants, shared with the rest of the workspace:
//!
//! - **Deterministic**: fitting and scoring are reproducible from a
//!   single `u64` seed through [`fademl_tensor::TensorRng`], and
//!   scoring is serial scalar code, so scores are bit-identical at
//!   every compute-thread count.
//! - **Typed failure surface**: every refusal is a [`DetectError`];
//!   nothing in this crate panics on hostile input. The serving triage
//!   stage additionally wraps scoring in `catch_unwind` and fails
//!   *open* — detection is advisory, never a request-killer.
//! - **Durable artifacts**: detectors persist in the `FADEMLD1` format
//!   (magic + CRC-32 trailer, every structural field cap-checked
//!   before allocation) via `fademl_tensor::io`, like `FADEMLC1`
//!   checkpoints and `FADEMLW2` weights.
//!
//! On top of the static detector, the crate carries the *adaptive*
//! building blocks the serving layer composes into online refit:
//! a bounded deterministic sample of served-clean features
//! ([`FeatureReservoir`], persisted as `FADEMLR1`), per-tenant
//! score baselines over streaming quantile sketches
//! ([`TenantBaselines`]), and a budget-feedback threshold controller
//! ([`ThresholdController`]) that holds hardened-path load at a
//! configured fraction of capacity instead of trusting a magic score.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod controller;
pub mod error;
pub mod features;
pub mod forest;
pub mod reservoir;

pub use baseline::{BaselineConfig, TenantBaselines, MAX_TENANT_TABLE};
pub use controller::{ControllerConfig, ThresholdController};
pub use error::{DetectError, Result};
pub use features::{
    feature_dim, min_side, pyramid_features, with_thread_scratch, PlanCache, PyramidScratch,
    ScalePlan, FEATURES_PER_SCALE, MAX_SCALES,
};
pub use forest::{Detector, DetectorConfig, DETECTOR_MAGIC, MAX_NODES, MAX_SUBSAMPLE, MAX_TREES};
pub use reservoir::{
    holdout_auc, FeatureReservoir, MAX_RESERVOIR, MAX_RESERVOIR_DIM, RESERVOIR_MAGIC,
};
