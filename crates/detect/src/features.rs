//! Multi-scale feature extraction over image pyramids.
//!
//! The detector never looks at raw pixels: each image is summarized as
//! a short vector of per-scale statistics and the isolation forest is
//! fitted over those. The scales are a mean pyramid — each level is a
//! 2×2 box average of the previous one — so a perturbation that is
//! *small per pixel but incoherent across pixels* (the FGSM / FAdeML
//! signature) shows up as inflated gradient and Laplacian energy at the
//! fine scales while the coarse-scale statistics stay near the clean
//! manifold. Six statistics are computed per scale:
//!
//! | # | statistic | what it captures |
//! |---|-----------|------------------|
//! | 0 | mean      | global brightness |
//! | 1 | variance  | contrast |
//! | 2 | gradient energy (mean abs 1-pixel diff, H+V) | local roughness |
//! | 3 | Laplacian energy (mean abs 4-neighbour residual) | per-pixel noise |
//! | 4 | dynamic range (max − min) | clipping / saturation |
//! | 5 | channel-mean variance | color cast consistency |
//!
//! Everything here is **serial, allocation-free scalar code** on the
//! steady state: scoring runs on the request-submission thread inside
//! the serving engine, and the bit-exactness invariant (identical
//! scores at every `fademl_tensor::par` thread count) holds trivially
//! because no parallel kernel is involved.
//!
//! Geometry work is planned once, not per frame. A [`ScalePlan`]
//! derives and validates the pyramid level dimensions for one
//! `[C, H, W]` shape; a [`PlanCache`] memoizes plans per geometry the
//! same way the filter kernels cache their renormalization sums, so a
//! serving stream of same-sized frames re-derives nothing. Pixel
//! buffers live in a per-thread [`PyramidScratch`] that is reused
//! across frames — after the first frame of a geometry the admission
//! path performs no heap allocation.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Arc;

use fademl_tensor::Tensor;
use parking_lot::Mutex;

use crate::error::{DetectError, Result};

/// Statistics computed per pyramid level.
pub const FEATURES_PER_SCALE: usize = 6;

/// Most pyramid levels a detector may be configured with. At 8 scales
/// the coarsest level of even a 4K frame is down to a handful of
/// pixels; anything beyond is a corrupt artifact, not a configuration.
pub const MAX_SCALES: usize = 8;

/// Length of the feature vector for a given pyramid depth.
pub fn feature_dim(scales: usize) -> usize {
    scales * FEATURES_PER_SCALE
}

/// Smallest image side that supports `scales` pyramid levels: the
/// coarsest level must keep at least 2×2 pixels so the gradient
/// statistics remain defined.
pub fn min_side(scales: usize) -> usize {
    2usize << scales.saturating_sub(1)
}

/// Dimensions of one pyramid level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LevelGeom {
    /// Plane height in pixels.
    pub height: usize,
    /// Plane width in pixels.
    pub width: usize,
}

/// A validated per-geometry extraction plan: the pyramid level
/// dimensions for one `[C, H, W]` input shape, derived (and the shape
/// envelope checked) exactly once. Frames of the same geometry reuse
/// the plan instead of re-deriving and re-validating per frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScalePlan {
    scales: usize,
    channels: usize,
    levels: [LevelGeom; MAX_SCALES],
}

impl ScalePlan {
    /// Builds and validates a plan for `scales` pyramid levels over an
    /// image of shape `dims`.
    ///
    /// # Errors
    ///
    /// [`DetectError::InvalidConfig`] for an unsupported scale count;
    /// [`DetectError::InvalidInput`] for a non-`[C, H, W]` shape, an
    /// empty image, or an image too small for the requested depth.
    pub fn build(scales: usize, dims: &[usize]) -> Result<ScalePlan> {
        if scales == 0 || scales > MAX_SCALES {
            return Err(DetectError::InvalidConfig {
                reason: format!("scales must be in 1..={MAX_SCALES}, got {scales}"),
            });
        }
        let (channels, height, width) = match dims {
            &[c, h, w] => (c, h, w),
            _ => {
                return Err(DetectError::InvalidInput {
                    reason: format!("expected a [C, H, W] image, got shape {dims:?}"),
                })
            }
        };
        if channels == 0 || height == 0 || width == 0 {
            return Err(DetectError::InvalidInput {
                reason: format!("empty image {dims:?}"),
            });
        }
        let need = min_side(scales);
        if height < need || width < need {
            return Err(DetectError::InvalidInput {
                reason: format!(
                    "image {height}x{width} too small for {scales} scales (need {need})"
                ),
            });
        }
        let mut levels = [LevelGeom::default(); MAX_SCALES];
        let (mut h, mut w) = (height, width);
        for geom in levels.iter_mut().take(scales) {
            *geom = LevelGeom {
                height: h,
                width: w,
            };
            h /= 2;
            w /= 2;
        }
        Ok(ScalePlan {
            scales,
            channels,
            levels,
        })
    }

    /// Pyramid depth of the plan.
    pub fn scales(&self) -> usize {
        self.scales
    }

    /// The `[C, H, W]` geometry the plan was built for.
    pub fn geometry(&self) -> (usize, usize, usize) {
        let base = self.levels.first().copied().unwrap_or_default();
        (self.channels, base.height, base.width)
    }

    /// Whether `dims` matches the planned geometry.
    fn matches(&self, dims: &[usize]) -> bool {
        let (c, h, w) = self.geometry();
        matches!(dims, &[dc, dh, dw] if dc == c && dh == h && dw == w)
    }
}

/// Geometry-keyed memo of [`ScalePlan`]s, mirroring the filter kernels'
/// renormalization-sum cache: one plan per distinct `[C, H, W]` shape,
/// shared via `Arc` so concurrent scoring threads hold the lock only
/// for the map probe.
#[derive(Debug, Default)]
pub struct PlanCache {
    plans: Mutex<HashMap<(usize, usize, usize), Arc<ScalePlan>>>,
}

impl PlanCache {
    /// The plan for `dims` at the given pyramid depth, building and
    /// memoizing it on first sight of the geometry.
    ///
    /// # Errors
    ///
    /// Same envelope checks as [`ScalePlan::build`].
    pub fn plan_for(&self, scales: usize, dims: &[usize]) -> Result<Arc<ScalePlan>> {
        let key = match dims {
            &[c, h, w] => (c, h, w),
            _ => {
                return Err(DetectError::InvalidInput {
                    reason: format!("expected a [C, H, W] image, got shape {dims:?}"),
                })
            }
        };
        {
            let plans = self.plans.lock();
            if let Some(plan) = plans.get(&key) {
                return Ok(Arc::clone(plan));
            }
        }
        // Build outside the lock: construction is cheap but fallible,
        // and a failed build must not poison concurrent lookups.
        let plan = Arc::new(ScalePlan::build(scales, dims)?);
        let mut plans = self.plans.lock();
        Ok(Arc::clone(plans.entry(key).or_insert(plan)))
    }

    /// Number of distinct geometries planned so far (test hook, same
    /// role as the kernel cache's geometry counter).
    pub fn cached_geometries(&self) -> usize {
        self.plans.lock().len()
    }
}

/// Reusable pixel buffers for pyramid extraction. One instance per
/// thread (see [`with_thread_scratch`]) keeps the steady-state
/// admission path allocation-free: the buffers grow to the largest
/// geometry seen and are then reused verbatim.
#[derive(Debug, Default)]
pub struct PyramidScratch {
    planes: Vec<f32>,
    next: Vec<f32>,
    features: Vec<f32>,
}

impl PyramidScratch {
    /// The feature vector produced by the last [`extract_into`] call.
    pub fn features(&self) -> &[f32] {
        &self.features
    }
}

thread_local! {
    static SCRATCH: RefCell<PyramidScratch> = RefCell::new(PyramidScratch::default());
}

/// Runs `f` with this thread's reusable extraction scratch. Do not
/// re-enter from inside `f` — the scratch is a single per-thread cell.
pub fn with_thread_scratch<T>(f: impl FnOnce(&mut PyramidScratch) -> T) -> T {
    SCRATCH.with(|cell| f(&mut cell.borrow_mut()))
}

/// Extracts the multi-scale features of `image` under a prebuilt plan,
/// leaving the result in `scratch.features()`. Allocation-free once the
/// scratch has warmed to the plan's geometry.
///
/// Non-finite pixels are tolerated (the forest treats `NaN`
/// comparisons as "right branch"), because the caller on the serving
/// path has already validated finiteness and the experiment path wants
/// scoring to be total.
///
/// # Errors
///
/// [`DetectError::InvalidInput`] if the image shape does not match the
/// plan's geometry.
pub fn extract_into(plan: &ScalePlan, image: &Tensor, scratch: &mut PyramidScratch) -> Result<()> {
    let dims = image.dims();
    if !plan.matches(dims) {
        let (c, h, w) = plan.geometry();
        return Err(DetectError::InvalidInput {
            reason: format!("image shape {dims:?} does not match planned [{c}, {h}, {w}]"),
        });
    }
    scratch.features.clear();
    scratch.planes.clear();
    scratch.planes.extend_from_slice(image.as_slice());
    for (level, geom) in plan.levels.iter().take(plan.scales).enumerate() {
        let stats = scale_stats(&scratch.planes, geom.height, geom.width);
        scratch.features.extend_from_slice(&stats);
        if level + 1 < plan.scales {
            downsample_into(&scratch.planes, geom.height, geom.width, &mut scratch.next);
            std::mem::swap(&mut scratch.planes, &mut scratch.next);
        }
    }
    Ok(())
}

/// Extracts the multi-scale feature vector of a `[C, H, W]` image.
///
/// One-shot convenience over [`ScalePlan::build`] + [`extract_into`]:
/// the experiment and fitting paths use this; the serving path goes
/// through a [`PlanCache`] and the thread scratch instead.
///
/// # Errors
///
/// Same envelope checks as [`ScalePlan::build`].
pub fn pyramid_features(image: &Tensor, scales: usize) -> Result<Vec<f32>> {
    let plan = ScalePlan::build(scales, image.dims())?;
    with_thread_scratch(|scratch| {
        extract_into(&plan, image, scratch)?;
        let mut out = Vec::default();
        out.extend_from_slice(&scratch.features);
        Ok(out)
    })
}

/// The six per-scale statistics over `channels` planes of `h*w` pixels.
/// Pure streaming scalar code: no allocation, no indexing.
fn scale_stats(planes: &[f32], h: usize, w: usize) -> [f32; FEATURES_PER_SCALE] {
    let plane_len = h * w;
    let total = planes.len() as f64;

    let mut sum = 0.0f64;
    let mut sum_sq = 0.0f64;
    let mut min = f32::INFINITY;
    let mut max = f32::NEG_INFINITY;
    for &v in planes {
        sum += f64::from(v);
        sum_sq += f64::from(v) * f64::from(v);
        min = min.min(v);
        max = max.max(v);
    }
    let mean = sum / total;
    let var = (sum_sq / total - mean * mean).max(0.0);

    let mut grad_sum = 0.0f64;
    let mut grad_n = 0.0f64;
    let mut lap_sum = 0.0f64;
    let mut lap_n = 0.0f64;
    // Streaming mean/second-moment of the per-channel means replaces a
    // collected vector; channel-count is a divisor, never an index.
    let mut chan_mean_sum = 0.0f64;
    let mut chan_mean_sq_sum = 0.0f64;
    let mut chan_n = 0.0f64;
    for plane in planes.chunks_exact(plane_len) {
        let psum: f64 = plane.iter().map(|&v| f64::from(v)).sum();
        let pmean = psum / plane_len as f64;
        chan_mean_sum += pmean;
        chan_mean_sq_sum += pmean * pmean;
        chan_n += 1.0;

        // Horizontal neighbours, per row so pairs never wrap rows.
        for row in plane.chunks_exact(w) {
            for pair in row.windows(2) {
                if let &[a, b] = pair {
                    grad_sum += f64::from((b - a).abs());
                    grad_n += 1.0;
                }
            }
        }
        // Vertical neighbours: offset-by-one-row zip over the flat plane.
        for (&a, &b) in plane.iter().zip(plane.iter().skip(w)) {
            grad_sum += f64::from((b - a).abs());
            grad_n += 1.0;
        }
        // 4-neighbour Laplacian over the interior: three row cursors
        // offset by one row each walk the plane in lockstep.
        if h >= 3 && w >= 3 {
            let above_rows = plane.chunks_exact(w);
            let center_rows = plane.chunks_exact(w).skip(1);
            let below_rows = plane.chunks_exact(w).skip(2);
            for ((above, center), below) in above_rows.zip(center_rows).zip(below_rows) {
                for ((aw, cw), bw) in above
                    .windows(3)
                    .zip(center.windows(3))
                    .zip(below.windows(3))
                {
                    if let (&[_, up, _], &[left, mid, right], &[_, down, _]) = (aw, cw, bw) {
                        lap_sum += f64::from((4.0 * mid - up - down - left - right).abs());
                        lap_n += 1.0;
                    }
                }
            }
        }
    }
    let grad = if grad_n > 0.0 { grad_sum / grad_n } else { 0.0 };
    let lap = if lap_n > 0.0 { lap_sum / lap_n } else { 0.0 };
    let chan_var = if chan_n > 1.0 {
        let m = chan_mean_sum / chan_n;
        (chan_mean_sq_sum / chan_n - m * m).max(0.0)
    } else {
        0.0
    };

    [
        mean as f32,
        var as f32,
        grad as f32,
        lap as f32,
        max - min,
        chan_var as f32,
    ]
}

/// 2×2 box-average downsampling of every plane into `out`; odd
/// trailing rows and columns are dropped (floor semantics). `out` is
/// cleared and refilled — reusing its capacity across frames.
fn downsample_into(planes: &[f32], h: usize, w: usize, out: &mut Vec<f32>) {
    let (oh, ow) = (h / 2, w / 2);
    out.clear();
    for plane in planes.chunks_exact(h * w) {
        for row_pair in plane.chunks_exact(2 * w).take(oh) {
            let (top, bottom) = row_pair.split_at(w);
            for (tp, bp) in top.chunks_exact(2).zip(bottom.chunks_exact(2)).take(ow) {
                if let (&[a, b], &[c, d]) = (tp, bp) {
                    out.push((a + b + c + d) * 0.25);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fademl_tensor::TensorRng;

    fn image(rng: &mut TensorRng, side: usize) -> Tensor {
        rng.uniform(&[3, side, side], 0.0, 1.0)
    }

    #[test]
    fn feature_vector_has_expected_length() {
        let mut rng = TensorRng::seed_from_u64(7);
        let img = image(&mut rng, 16);
        for scales in 1..=3 {
            let f = pyramid_features(&img, scales).unwrap();
            assert_eq!(f.len(), feature_dim(scales));
            assert!(f.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn wrong_rank_and_tiny_images_are_typed_errors() {
        let mut rng = TensorRng::seed_from_u64(7);
        let flat = rng.uniform(&[16, 16], 0.0, 1.0);
        assert!(matches!(
            pyramid_features(&flat, 2),
            Err(DetectError::InvalidInput { .. })
        ));
        let small = rng.uniform(&[3, 4, 4], 0.0, 1.0);
        assert!(matches!(
            pyramid_features(&small, 3),
            Err(DetectError::InvalidInput { .. })
        ));
        assert!(matches!(
            pyramid_features(&small, 0),
            Err(DetectError::InvalidConfig { .. })
        ));
        assert!(matches!(
            pyramid_features(&small, MAX_SCALES + 1),
            Err(DetectError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn constant_image_has_zero_texture_features() {
        let img = Tensor::from_vec(
            vec![0.5; 3 * 8 * 8],
            fademl_tensor::Shape::new(vec![3, 8, 8]),
        )
        .unwrap();
        let f = pyramid_features(&img, 2).unwrap();
        // mean is preserved, variance / gradients / laplacian / range /
        // channel spread all vanish at every scale.
        for level in f.chunks_exact(FEATURES_PER_SCALE) {
            if let &[mean, var, grad, lap, range, chan] = level {
                assert!((mean - 0.5).abs() < 1e-6);
                for v in [var, grad, lap, range, chan] {
                    assert!(v.abs() < 1e-6);
                }
            }
        }
    }

    #[test]
    fn iid_noise_inflates_fine_scale_texture() {
        let mut rng = TensorRng::seed_from_u64(11);
        // Smooth image: constant gradient ramp.
        let side = 16;
        let mut data = Vec::new();
        for _ in 0..3 {
            for y in 0..side {
                for x in 0..side {
                    data.push((y + x) as f32 / (2 * side) as f32);
                }
            }
        }
        let smooth =
            Tensor::from_vec(data, fademl_tensor::Shape::new(vec![3, side, side])).unwrap();
        let noise = rng.uniform(&[3, side, side], -0.1, 0.1);
        let noisy_data: Vec<f32> = smooth
            .as_slice()
            .iter()
            .zip(noise.as_slice())
            .map(|(a, b)| a + b)
            .collect();
        let noisy =
            Tensor::from_vec(noisy_data, fademl_tensor::Shape::new(vec![3, side, side])).unwrap();
        let fs = pyramid_features(&smooth, 2).unwrap();
        let fnz = pyramid_features(&noisy, 2).unwrap();
        // Laplacian energy at the finest scale (index 3) must jump.
        assert!(!fnz.is_empty());
        let lap_smooth = fs.get(3).copied().unwrap_or(0.0);
        let lap_noisy = fnz.get(3).copied().unwrap_or(0.0);
        assert!(
            lap_noisy > 4.0 * lap_smooth + 1e-3,
            "laplacian should explode under iid noise: {lap_smooth} vs {lap_noisy}"
        );
    }

    #[test]
    fn downsample_halves_dims_with_floor() {
        let mut rng = TensorRng::seed_from_u64(3);
        let img = image(&mut rng, 9);
        let mut next = Vec::new();
        downsample_into(img.as_slice(), 9, 9, &mut next);
        assert_eq!(next.len(), 3 * 4 * 4);
        // Each output is the mean of a 2x2 block, so bounded by input range.
        assert!(next.iter().all(|v| (0.0..=1.0).contains(v)));
    }

    #[test]
    fn plan_levels_match_manual_derivation() {
        let plan = ScalePlan::build(3, &[3, 32, 20]).unwrap();
        assert_eq!(plan.scales(), 3);
        assert_eq!(plan.geometry(), (3, 32, 20));
        let levels: Vec<LevelGeom> = plan.levels.iter().take(3).copied().collect();
        assert_eq!(
            levels,
            vec![
                LevelGeom {
                    height: 32,
                    width: 20
                },
                LevelGeom {
                    height: 16,
                    width: 10
                },
                LevelGeom {
                    height: 8,
                    width: 5
                },
            ]
        );
    }

    #[test]
    fn plan_cache_memoizes_per_geometry() {
        let cache = PlanCache::default();
        let a = cache.plan_for(2, &[3, 16, 16]).unwrap();
        let b = cache.plan_for(2, &[3, 16, 16]).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "same geometry must share one plan");
        assert_eq!(cache.cached_geometries(), 1);
        let c = cache.plan_for(2, &[3, 24, 24]).unwrap();
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.cached_geometries(), 2);
        // Invalid geometries never enter the cache.
        assert!(cache.plan_for(2, &[16, 16]).is_err());
        assert!(cache.plan_for(4, &[3, 4, 4]).is_err());
        assert_eq!(cache.cached_geometries(), 2);
    }

    #[test]
    fn planned_extraction_matches_one_shot_path() {
        let mut rng = TensorRng::seed_from_u64(42);
        let cache = PlanCache::default();
        for _ in 0..4 {
            let img = image(&mut rng, 16);
            let expected = pyramid_features(&img, 3).unwrap();
            let plan = cache.plan_for(3, img.dims()).unwrap();
            let mut scratch = PyramidScratch::default();
            extract_into(&plan, &img, &mut scratch).unwrap();
            assert_eq!(scratch.features(), expected.as_slice());
        }
        assert_eq!(cache.cached_geometries(), 1);
    }

    #[test]
    fn extract_rejects_geometry_mismatch() {
        let mut rng = TensorRng::seed_from_u64(5);
        let plan = ScalePlan::build(2, &[3, 16, 16]).unwrap();
        let wrong = rng.uniform(&[3, 8, 8], 0.0, 1.0);
        let mut scratch = PyramidScratch::default();
        assert!(matches!(
            extract_into(&plan, &wrong, &mut scratch),
            Err(DetectError::InvalidInput { .. })
        ));
    }
}
