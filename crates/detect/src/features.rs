//! Multi-scale feature extraction over image pyramids.
//!
//! The detector never looks at raw pixels: each image is summarized as
//! a short vector of per-scale statistics and the isolation forest is
//! fitted over those. The scales are a mean pyramid — each level is a
//! 2×2 box average of the previous one — so a perturbation that is
//! *small per pixel but incoherent across pixels* (the FGSM / FAdeML
//! signature) shows up as inflated gradient and Laplacian energy at the
//! fine scales while the coarse-scale statistics stay near the clean
//! manifold. Six statistics are computed per scale:
//!
//! | # | statistic | what it captures |
//! |---|-----------|------------------|
//! | 0 | mean      | global brightness |
//! | 1 | variance  | contrast |
//! | 2 | gradient energy (mean abs 1-pixel diff, H+V) | local roughness |
//! | 3 | Laplacian energy (mean abs 4-neighbour residual) | per-pixel noise |
//! | 4 | dynamic range (max − min) | clipping / saturation |
//! | 5 | channel-mean variance | color cast consistency |
//!
//! Everything here is **serial, allocation-light scalar code** on
//! purpose: scoring runs on the request-submission thread inside the
//! serving engine, and the bit-exactness invariant (identical scores at
//! every `fademl_tensor::par` thread count) holds trivially because no
//! parallel kernel is involved.

use fademl_tensor::Tensor;

use crate::error::{DetectError, Result};

/// Statistics computed per pyramid level.
pub const FEATURES_PER_SCALE: usize = 6;

/// Most pyramid levels a detector may be configured with. At 8 scales
/// the coarsest level of even a 4K frame is down to a handful of
/// pixels; anything beyond is a corrupt artifact, not a configuration.
pub const MAX_SCALES: usize = 8;

/// Length of the feature vector for a given pyramid depth.
pub fn feature_dim(scales: usize) -> usize {
    scales * FEATURES_PER_SCALE
}

/// Smallest image side that supports `scales` pyramid levels: the
/// coarsest level must keep at least 2×2 pixels so the gradient
/// statistics remain defined.
pub fn min_side(scales: usize) -> usize {
    2usize << scales.saturating_sub(1)
}

/// Extracts the multi-scale feature vector of a `[C, H, W]` image.
///
/// Fails with a typed error on wrong rank, an empty tensor, an
/// unsupported scale count, or an image too small for the requested
/// pyramid depth. Non-finite pixels are tolerated (the forest treats
/// `NaN` comparisons as "right branch"), because the caller on the
/// serving path has already validated finiteness and the experiment
/// path wants scoring to be total.
pub fn pyramid_features(image: &Tensor, scales: usize) -> Result<Vec<f32>> {
    if scales == 0 || scales > MAX_SCALES {
        return Err(DetectError::InvalidConfig {
            reason: format!("scales must be in 1..={MAX_SCALES}, got {scales}"),
        });
    }
    let dims = image.dims();
    let (channels, height, width) = match dims {
        &[c, h, w] => (c, h, w),
        _ => {
            return Err(DetectError::InvalidInput {
                reason: format!("expected a [C, H, W] image, got shape {dims:?}"),
            })
        }
    };
    if channels == 0 || height == 0 || width == 0 {
        return Err(DetectError::InvalidInput {
            reason: format!("empty image {dims:?}"),
        });
    }
    let need = min_side(scales);
    if height < need || width < need {
        return Err(DetectError::InvalidInput {
            reason: format!("image {height}x{width} too small for {scales} scales (need {need})"),
        });
    }

    let mut features = Vec::with_capacity(feature_dim(scales));
    let mut planes: Vec<f32> = image.as_slice().to_vec();
    let (mut h, mut w) = (height, width);
    for level in 0..scales {
        features.extend_from_slice(&scale_stats(&planes, h, w));
        if level + 1 < scales {
            let (next, nh, nw) = downsample(&planes, h, w);
            planes = next;
            h = nh;
            w = nw;
        }
    }
    Ok(features)
}

/// The six per-scale statistics over `channels` planes of `h*w` pixels.
fn scale_stats(planes: &[f32], h: usize, w: usize) -> [f32; FEATURES_PER_SCALE] {
    let plane_len = h * w;
    let total = planes.len() as f64;

    let mut sum = 0.0f64;
    let mut sum_sq = 0.0f64;
    let mut min = f32::INFINITY;
    let mut max = f32::NEG_INFINITY;
    for &v in planes {
        sum += f64::from(v);
        sum_sq += f64::from(v) * f64::from(v);
        min = min.min(v);
        max = max.max(v);
    }
    let mean = sum / total;
    let var = (sum_sq / total - mean * mean).max(0.0);

    let mut grad_sum = 0.0f64;
    let mut grad_n = 0.0f64;
    let mut lap_sum = 0.0f64;
    let mut lap_n = 0.0f64;
    let mut chan_means: Vec<f64> = Vec::new();
    for plane in planes.chunks_exact(plane_len) {
        let psum: f64 = plane.iter().map(|&v| f64::from(v)).sum();
        chan_means.push(psum / plane_len as f64);

        // Horizontal neighbours, per row so pairs never wrap rows.
        for row in plane.chunks_exact(w) {
            for pair in row.windows(2) {
                if let &[a, b] = pair {
                    grad_sum += f64::from((b - a).abs());
                    grad_n += 1.0;
                }
            }
        }
        // Vertical neighbours: offset-by-one-row zip over the flat plane.
        for (&a, &b) in plane.iter().zip(plane.iter().skip(w)) {
            grad_sum += f64::from((b - a).abs());
            grad_n += 1.0;
        }
        // 4-neighbour Laplacian over the interior.
        if h >= 3 && w >= 3 {
            let rows: Vec<&[f32]> = plane.chunks_exact(w).collect();
            for triple in rows.windows(3) {
                if let &[above, center, below] = triple {
                    for ((aw, cw), bw) in above
                        .windows(3)
                        .zip(center.windows(3))
                        .zip(below.windows(3))
                    {
                        if let (&[_, up, _], &[left, mid, right], &[_, down, _]) = (aw, cw, bw) {
                            lap_sum += f64::from((4.0 * mid - up - down - left - right).abs());
                            lap_n += 1.0;
                        }
                    }
                }
            }
        }
    }
    let grad = if grad_n > 0.0 { grad_sum / grad_n } else { 0.0 };
    let lap = if lap_n > 0.0 { lap_sum / lap_n } else { 0.0 };

    let chan_var = if chan_means.len() > 1 {
        let m = chan_means.iter().sum::<f64>() / chan_means.len() as f64;
        chan_means.iter().map(|c| (c - m) * (c - m)).sum::<f64>() / chan_means.len() as f64
    } else {
        0.0
    };

    [
        mean as f32,
        var as f32,
        grad as f32,
        lap as f32,
        max - min,
        chan_var as f32,
    ]
}

/// 2×2 box-average downsampling of every plane; odd trailing rows and
/// columns are dropped (floor semantics).
fn downsample(planes: &[f32], h: usize, w: usize) -> (Vec<f32>, usize, usize) {
    let (oh, ow) = (h / 2, w / 2);
    let channels = planes.len() / (h * w);
    let mut out = Vec::with_capacity(channels * oh * ow);
    for plane in planes.chunks_exact(h * w) {
        for row_pair in plane.chunks_exact(2 * w).take(oh) {
            let (top, bottom) = row_pair.split_at(w);
            for (tp, bp) in top.chunks_exact(2).zip(bottom.chunks_exact(2)).take(ow) {
                if let (&[a, b], &[c, d]) = (tp, bp) {
                    out.push((a + b + c + d) * 0.25);
                }
            }
        }
    }
    (out, oh, ow)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fademl_tensor::TensorRng;

    fn image(rng: &mut TensorRng, side: usize) -> Tensor {
        rng.uniform(&[3, side, side], 0.0, 1.0)
    }

    #[test]
    fn feature_vector_has_expected_length() {
        let mut rng = TensorRng::seed_from_u64(7);
        let img = image(&mut rng, 16);
        for scales in 1..=3 {
            let f = pyramid_features(&img, scales).unwrap();
            assert_eq!(f.len(), feature_dim(scales));
            assert!(f.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn wrong_rank_and_tiny_images_are_typed_errors() {
        let mut rng = TensorRng::seed_from_u64(7);
        let flat = rng.uniform(&[16, 16], 0.0, 1.0);
        assert!(matches!(
            pyramid_features(&flat, 2),
            Err(DetectError::InvalidInput { .. })
        ));
        let small = rng.uniform(&[3, 4, 4], 0.0, 1.0);
        assert!(matches!(
            pyramid_features(&small, 3),
            Err(DetectError::InvalidInput { .. })
        ));
        assert!(matches!(
            pyramid_features(&small, 0),
            Err(DetectError::InvalidConfig { .. })
        ));
        assert!(matches!(
            pyramid_features(&small, MAX_SCALES + 1),
            Err(DetectError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn constant_image_has_zero_texture_features() {
        let img = Tensor::from_vec(
            vec![0.5; 3 * 8 * 8],
            fademl_tensor::Shape::new(vec![3, 8, 8]),
        )
        .unwrap();
        let f = pyramid_features(&img, 2).unwrap();
        // mean is preserved, variance / gradients / laplacian / range /
        // channel spread all vanish at every scale.
        for level in f.chunks_exact(FEATURES_PER_SCALE) {
            if let &[mean, var, grad, lap, range, chan] = level {
                assert!((mean - 0.5).abs() < 1e-6);
                for v in [var, grad, lap, range, chan] {
                    assert!(v.abs() < 1e-6);
                }
            }
        }
    }

    #[test]
    fn iid_noise_inflates_fine_scale_texture() {
        let mut rng = TensorRng::seed_from_u64(11);
        // Smooth image: constant gradient ramp.
        let side = 16;
        let mut data = Vec::new();
        for _ in 0..3 {
            for y in 0..side {
                for x in 0..side {
                    data.push((y + x) as f32 / (2 * side) as f32);
                }
            }
        }
        let smooth =
            Tensor::from_vec(data, fademl_tensor::Shape::new(vec![3, side, side])).unwrap();
        let noise = rng.uniform(&[3, side, side], -0.1, 0.1);
        let noisy_data: Vec<f32> = smooth
            .as_slice()
            .iter()
            .zip(noise.as_slice())
            .map(|(a, b)| a + b)
            .collect();
        let noisy =
            Tensor::from_vec(noisy_data, fademl_tensor::Shape::new(vec![3, side, side])).unwrap();
        let fs = pyramid_features(&smooth, 2).unwrap();
        let fnz = pyramid_features(&noisy, 2).unwrap();
        // Laplacian energy at the finest scale (index 3) must jump.
        assert!(!fnz.is_empty());
        let lap_smooth = fs.get(3).copied().unwrap_or(0.0);
        let lap_noisy = fnz.get(3).copied().unwrap_or(0.0);
        assert!(
            lap_noisy > 4.0 * lap_smooth + 1e-3,
            "laplacian should explode under iid noise: {lap_smooth} vs {lap_noisy}"
        );
    }

    #[test]
    fn downsample_halves_dims_with_floor() {
        let mut rng = TensorRng::seed_from_u64(3);
        let img = image(&mut rng, 9);
        let (next, h, w) = downsample(img.as_slice(), 9, 9);
        assert_eq!((h, w), (4, 4));
        assert_eq!(next.len(), 3 * 4 * 4);
        // Each output is the mean of a 2x2 block, so bounded by input range.
        assert!(next.iter().all(|v| (0.0..=1.0).contains(v)));
    }
}
