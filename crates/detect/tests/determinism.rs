//! Detector determinism under the workspace thread-count sweep.
//!
//! The triage stage's scores feed ROC thresholds, wire responses and
//! resumable experiment ledgers, so they must be **bit-identical** for
//! the same seed and frames regardless of how many compute threads the
//! process runs — scoring is serial scalar code by design, and this
//! suite pins that property the same way `par_invariance` pins the
//! kernels.

use std::sync::Mutex;

use fademl_detect::{pyramid_features, Detector, DetectorConfig};
use fademl_tensor::{par, Tensor, TensorRng};
use proptest::{prop_assert, prop_assert_eq, proptest, ProptestConfig};

static THREADS_GUARD: Mutex<()> = Mutex::new(());

const SWEEP: [usize; 3] = [1, 2, 4];

fn frames(seed: u64, n: usize, side: usize) -> Vec<Tensor> {
    let mut rng = TensorRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let base = rng.uniform_scalar(0.1, 0.9);
            let noise = rng.uniform(&[3, side, side], -0.05, 0.05);
            let data: Vec<f32> = noise
                .as_slice()
                .iter()
                .map(|v| (base + v).clamp(0.0, 1.0))
                .collect();
            Tensor::from_vec(data, fademl_tensor::Shape::new(vec![3, side, side])).unwrap()
        })
        .collect()
}

/// Fits on `train`, scores `probe`, at each thread count in the sweep;
/// returns (detector bytes, score bits) per run.
fn sweep(seed: u64, train: &[Tensor], probe: &[Tensor]) -> Vec<(Vec<u8>, Vec<u32>)> {
    let _guard = THREADS_GUARD.lock().unwrap_or_else(|e| e.into_inner());
    let config = DetectorConfig {
        trees: 16,
        subsample: 16,
        scales: 2,
        seed,
    };
    let runs = SWEEP
        .iter()
        .map(|&t| {
            par::set_threads(t);
            let det = Detector::fit_images(train, &config).expect("fit");
            let scores = probe
                .iter()
                .map(|img| det.score_image(img).expect("score").to_bits())
                .collect();
            (det.to_bytes(), scores)
        })
        .collect();
    par::set_threads(1);
    runs
}

#[test]
fn fit_and_score_are_bit_identical_at_1_2_4_threads() {
    let train = frames(11, 24, 16);
    let probe = frames(12, 8, 16);
    let runs = sweep(7, &train, &probe);
    let (base_bytes, base_scores) = runs.first().expect("sweep ran");
    for (i, (bytes, scores)) in runs.iter().enumerate().skip(1) {
        assert_eq!(
            bytes, base_bytes,
            "detector bytes at {} threads diverged from serial",
            SWEEP[i]
        );
        assert_eq!(
            scores, base_scores,
            "scores at {} threads diverged from serial",
            SWEEP[i]
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Same seed + same frames ⇒ bit-identical scores at every thread
    /// count, for arbitrary seeds and frame counts.
    #[test]
    fn scoring_is_thread_count_invariant(seed in 0u64..1_000, n in 8usize..20) {
        let train = frames(seed ^ 0xA5A5, n, 16);
        let probe = frames(seed ^ 0x5A5A, 4, 16);
        let runs = sweep(seed, &train, &probe);
        let (base_bytes, base_scores) = runs.first().expect("sweep ran");
        for (bytes, scores) in runs.iter().skip(1) {
            prop_assert_eq!(bytes, base_bytes);
            prop_assert_eq!(scores, base_scores);
        }
    }

    /// Feature extraction itself is deterministic and finite for valid
    /// shapes at any pyramid depth the image supports.
    #[test]
    fn features_are_deterministic(seed in 0u64..1_000, scales in 1usize..4) {
        let mut rng = TensorRng::seed_from_u64(seed);
        let img = rng.uniform(&[3, 16, 16], 0.0, 1.0);
        let a = pyramid_features(&img, scales).expect("features");
        let b = pyramid_features(&img, scales).expect("features");
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        prop_assert_eq!(bits(&a), bits(&b));
        prop_assert!(a.iter().all(|v| v.is_finite()));
    }
}
