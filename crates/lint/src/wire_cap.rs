//! Pass — `wire-cap-check`: every length/count decoded from an
//! untrusted byte stream must be compared against a cap before it
//! flows into an allocation.
//!
//! Scope: the four framed codecs (`FADEMLN` wire frames, `FADEMLC1`
//! checkpoints, `FADEMLW2` weights, `FADEMLD1` detector artifacts) and
//! the dataset cache — the files in [`CODEC_FILES`]. `ByteReader`
//! itself (`crates/tensor/src/io.rs`) is the blessed primitive: its
//! `get_bytes`/`get_str` validate against the remaining buffer
//! internally and are not allocation sinks here.
//!
//! Per-function taint dataflow over the IR statement list:
//!
//! * **Sources** — `let` bindings whose initialiser calls a raw
//!   integer decode (`get_u8`/`get_u16`/`get_u32`/`get_u64`) or a
//!   file-local `read_*` helper (e.g. `read_usize` in the detector
//!   codec).
//! * **Propagation** — a `let` whose right-hand side mentions a
//!   tainted variable taints its bindings (`let bytes =
//!   numel.checked_mul(4)…`).
//! * **Guards** — a statement comparing the variable (`<`, `>`, `<=`,
//!   `>=`, `==`, `!=` adjacent to it), clamping it (`.min(`,
//!   `.clamp(`), or range-checking it (`…contains(&var)`) clears the
//!   taint: the decode has been checked against *something*, and the
//!   existing codecs all bail on the failing branch.
//! * **Sinks** — `with_capacity(…)`, `vec![…]`, or `.reserve(…)` in a
//!   statement still mentioning a tainted variable is a finding.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use crate::callgraph::is_test_fn;
use crate::ir::{FnItem, Ir};
use crate::report::Finding;
use crate::source::{word_bounded, SourceFile};

/// The codec files under the cap-check contract.
pub const CODEC_FILES: &[&str] = &[
    "crates/net/src/wire.rs",
    "crates/nn/src/checkpoint.rs",
    "crates/nn/src/serialize.rs",
    "crates/detect/src/forest.rs",
    "crates/data/src/persist.rs",
];

const INT_DECODES: &[&str] = &["get_u8()", "get_u16()", "get_u32()", "get_u64()"];

/// Runs the cap-check pass over the codec files.
pub fn check(ir: &Ir, files: &[SourceFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (fi, file) in ir.files.iter().enumerate() {
        if !CODEC_FILES.contains(&file.path.as_str()) {
            continue;
        }
        // File-local decode helpers (`read_usize` style) are taint
        // sources just like the raw integer getters.
        let local_readers: BTreeSet<&str> = file
            .fns
            .iter()
            .map(|f| f.name.as_str())
            .filter(|n| n.starts_with("read_"))
            .collect();
        for f in &file.fns {
            if is_test_fn(&files[fi], f) {
                continue;
            }
            check_fn(f, &file.path, &files[fi], &local_readers, &mut findings);
        }
    }
    findings
}

fn check_fn(
    f: &FnItem,
    path: &str,
    file: &SourceFile,
    local_readers: &BTreeSet<&str>,
    findings: &mut Vec<Finding>,
) {
    // var → line it was decoded on.
    let mut tainted: BTreeMap<String, usize> = BTreeMap::new();
    for stmt in f.stmts() {
        let text = stmt.text.as_str();
        // Guards clear taint before sinks are checked, so
        // `with_capacity(count.min(CAP))` is clean in one statement.
        let guarded: Vec<String> = tainted
            .keys()
            .filter(|v| is_guarded(text, v))
            .cloned()
            .collect();
        for v in guarded {
            tainted.remove(&v);
        }
        if has_alloc_sink(text) {
            let excerpt = file
                .lines
                .get(stmt.line.wrapping_sub(1))
                .map_or("", |l| l.raw.as_str());
            if let Some((var, decode_line)) = tainted.iter().find(|(v, _)| mentions(text, v)) {
                findings.push(Finding::new(
                    "wire-cap-check",
                    path,
                    stmt.line,
                    format!(
                        "`{var}` decoded from the wire at line {decode_line} reaches an \
                         allocation without a cap comparison — clamp or reject before \
                         reserving"
                    ),
                    excerpt,
                ));
            } else if INT_DECODES.iter().any(|p| text.contains(p)) {
                findings.push(Finding::new(
                    "wire-cap-check",
                    path,
                    stmt.line,
                    "wire decode flows directly into an allocation in one statement — \
                     bind it, cap-check it, then reserve",
                    excerpt,
                ));
            }
        }
        // New bindings taint last: the sink statement's own binding
        // (`let v = Vec::with_capacity(n)`) is a vector, not a length.
        if stmt.has_let {
            let is_source = INT_DECODES.iter().any(|p| text.contains(p))
                || stmt
                    .calls
                    .iter()
                    .any(|c| local_readers.contains(c.name.as_str()));
            let propagates = tainted.keys().any(|v| mentions(text, v));
            if is_source || propagates {
                for name in &stmt.lets {
                    if name != "_" {
                        tainted.insert(name.clone(), stmt.line);
                    }
                }
            }
        }
    }
}

fn has_alloc_sink(text: &str) -> bool {
    text.contains("with_capacity(") || text.contains("vec![") || text.contains(".reserve(")
}

/// Word-boundary mention of `var` in the flattened statement text.
fn mentions(text: &str, var: &str) -> bool {
    let mut from = 0;
    while let Some(rel) = text[from..].find(var) {
        let idx = from + rel;
        if word_bounded(text, idx, var.len()) {
            return true;
        }
        from = idx + var.len();
    }
    false
}

/// Whether `text` compares/clamps/range-checks `var`.
fn is_guarded(text: &str, var: &str) -> bool {
    let mut from = 0;
    while let Some(rel) = text[from..].find(var) {
        let idx = from + rel;
        if word_bounded(text, idx, var.len()) {
            let after = &text[idx + var.len()..];
            let before = &text[..idx];
            if after.starts_with("==")
                || after.starts_with("!=")
                || after.starts_with("<")
                || (after.starts_with('>') && !after.starts_with(">>"))
                || after.starts_with(".min(")
                || after.starts_with(".clamp(")
            {
                return true;
            }
            if before.ends_with("==")
                || before.ends_with("!=")
                || before.ends_with("<=")
                || before.ends_with(">=")
                || (before.ends_with('<') && !before.ends_with("<<"))
                || (before.ends_with('>') && !before.ends_with("->") && !before.ends_with(">>"))
                || before.ends_with("contains(&")
                || before.ends_with("contains(")
            {
                return true;
            }
        }
        from = idx + var.len();
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Finding> {
        let files = [SourceFile::from_source("crates/net/src/wire.rs", src)];
        let ir = Ir::parse(&files);
        check(&ir, &files)
    }

    #[test]
    fn unchecked_decode_into_allocation_is_flagged() {
        let found = run(
            "fn decode(r: &mut ByteReader) {\n    let count = r.get_u32() as usize;\n    let mut v = Vec::with_capacity(count);\n}\n",
        );
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].rule, "wire-cap-check");
        assert_eq!(found[0].line, 3);
    }

    #[test]
    fn cap_comparison_before_allocation_is_clean() {
        let found = run(
            "fn decode(r: &mut ByteReader) -> Result<()> {\n    let count = r.get_u32() as usize;\n    if count > MAX_TENSORS {\n        return Err(bad());\n    }\n    let mut v = Vec::with_capacity(count);\n    Ok(())\n}\n",
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn min_clamp_in_the_sink_statement_is_clean() {
        let found = run(
            "fn decode(r: &mut ByteReader) {\n    let count = r.get_u32() as usize;\n    let mut v = Vec::with_capacity(count.min(1024));\n}\n",
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn taint_propagates_through_derived_lets() {
        let found = run(
            "fn decode(r: &mut ByteReader) {\n    let n = r.get_u16() as usize;\n    let bytes = n * 4;\n    let mut v = vec![0u8; bytes];\n}\n",
        );
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("bytes"));
    }

    #[test]
    fn range_contains_guard_is_recognized() {
        let found = run(
            "fn decode(r: &mut ByteReader) -> Result<()> {\n    let psi = r.get_u32() as usize;\n    if !(2..=MAX).contains(&psi) {\n        return Err(bad());\n    }\n    let mut v = Vec::with_capacity(psi);\n    Ok(())\n}\n",
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn local_read_helper_is_a_source() {
        let found = run(
            "fn read_usize(r: &mut ByteReader) -> usize { r.get_u64() as usize }\nfn decode(r: &mut ByteReader) {\n    let trees = read_usize(r);\n    let mut v = Vec::with_capacity(trees);\n}\n",
        );
        assert_eq!(found.len(), 1, "{found:?}");
    }

    #[test]
    fn out_of_scope_files_are_ignored() {
        let files = [SourceFile::from_source(
            "crates/core/src/report.rs",
            "fn f(r: &mut ByteReader) {\n    let n = r.get_u32() as usize;\n    let v = Vec::with_capacity(n);\n}\n",
        )];
        let ir = Ir::parse(&files);
        assert!(check(&ir, &files).is_empty());
    }
}
