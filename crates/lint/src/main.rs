//! CLI for fademl-lint.
//!
//! ```text
//! cargo run -p fademl-lint --release [-- --root DIR] [--json FILE] [--update-baseline]
//! ```
//!
//! Exit codes: `0` clean, `1` new findings beyond `lint.allow`,
//! `2` usage / IO / malformed-baseline error.

#![forbid(unsafe_code)]

use std::env;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use fademl_lint::baseline::Baseline;
use fademl_lint::{collect_findings_with_stats, render_stats, source};

const BASELINE_FILE: &str = "lint.allow";
const DEFAULT_JSON: &str = "results/lint.json";
const STATS_FILE: &str = "results/lint_stats.txt";

const BASELINE_HEADER: &str = "\
# fademl-lint allowlist — the panic/lock/invariant ratchet.
#
# One budget per line: <rule> <path> <count>   # justification
# Missing entries allow nothing. Counts may only go DOWN: lower them
# when sites are fixed (`--update-baseline` regenerates this file,
# keeping justifications). Never raise a budget without a justification
# reviewed in the same PR.
";

struct Options {
    root: Option<PathBuf>,
    json: Option<PathBuf>,
    update_baseline: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        root: None,
        json: None,
        update_baseline: false,
    };
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                let v = args.next().ok_or("--root needs a directory")?;
                opts.root = Some(PathBuf::from(v));
            }
            "--json" => {
                let v = args.next().ok_or("--json needs a file path")?;
                opts.json = Some(PathBuf::from(v));
            }
            "--update-baseline" => opts.update_baseline = true,
            "--help" | "-h" => {
                return Err(
                    "usage: fademl-lint [--root DIR] [--json FILE] [--update-baseline]".to_string(),
                );
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(opts)
}

/// Walks up from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`, so the tool runs correctly from any subdirectory.
fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn real_main() -> Result<bool, String> {
    let opts = parse_args()?;
    let root = match opts.root {
        Some(r) => r,
        None => {
            let cwd = env::current_dir().map_err(|e| format!("cwd: {e}"))?;
            find_workspace_root(&cwd)
                .ok_or("no workspace root found above the current directory (try --root)")?
        }
    };

    let baseline_path = root.join(BASELINE_FILE);
    let baseline = match fs::read_to_string(&baseline_path) {
        Ok(text) => Baseline::parse(&text)?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Baseline::default(),
        Err(e) => return Err(format!("{}: {e}", baseline_path.display())),
    };

    let files = source::load_workspace(&root).map_err(|e| format!("workspace walk: {e}"))?;
    let started = std::time::Instant::now();
    let (findings, stats) = collect_findings_with_stats(&files);
    let total_micros = started.elapsed().as_micros();

    if opts.update_baseline {
        let text = baseline.regenerate(&findings, BASELINE_HEADER);
        fs::write(&baseline_path, text).map_err(|e| format!("write lint.allow: {e}"))?;
        println!(
            "fademl-lint: regenerated {} covering {} finding(s)",
            baseline_path.display(),
            findings.len()
        );
        return Ok(true);
    }

    let report = baseline.apply(findings, files.len());

    let json_path = root.join(opts.json.unwrap_or_else(|| PathBuf::from(DEFAULT_JSON)));
    if let Some(parent) = json_path.parent() {
        fs::create_dir_all(parent).map_err(|e| format!("mkdir {}: {e}", parent.display()))?;
    }
    fs::write(&json_path, report.to_json()).map_err(|e| format!("write report: {e}"))?;

    // Per-pass wall-clock + finding volume. Timings are inherently
    // non-deterministic, so this file is emitted next to lint.json but
    // never freshness-checked.
    let stats_path = root.join(STATS_FILE);
    fs::write(&stats_path, render_stats(&stats, files.len(), total_micros))
        .map_err(|e| format!("write stats: {e}"))?;

    print!("{}", report.render());
    Ok(report.is_clean())
}

fn main() -> ExitCode {
    match real_main() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(msg) => {
            eprintln!("fademl-lint: {msg}");
            ExitCode::from(2)
        }
    }
}
