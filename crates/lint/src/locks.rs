//! Pass 1 — lock-order deadlock detection over `crates/serve` and
//! `crates/net`.
//!
//! Every `Mutex`/`RwLock` acquisition site (`.lock()` / `.read()` /
//! `.write()`, parking_lot and std alike) is extracted per function.
//! A guard bound with `let` is treated as held until the end of its
//! function (a deliberate over-approximation); a temporary guard is
//! held for the rest of its source line. Acquiring lock B while A is
//! held adds the order edge `A → B`; calls to intra-crate functions
//! (free functions, `Type::fn`, and `self.method(…)`) propagate the
//! callee's transitively-acquired locks under the caller's held set.
//! Any cycle in the resulting lock-order graph is a potential deadlock
//! and is reported with the source location of every edge.
//!
//! Known limitations (see DESIGN.md §11): locks are identified by
//! field/variable name, method calls through non-`self` receivers are
//! not resolved, and guards dropped early (`drop(g)`, inner scopes)
//! still count as held.

use std::collections::{BTreeMap, BTreeSet};

use crate::report::Finding;
use crate::source::{is_ident_byte, SourceFile};

/// Default lock-analysis scope: the admission detector, the serving
/// engine and the network front (router health state, connection
/// registry, quota buckets).
pub const LOCK_SCOPE: &[&str] = &["crates/detect/src/", "crates/serve/src/", "crates/net/src/"];

/// One lock acquisition site.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Acquire {
    lock: String,
    path: String,
    line: usize,
    binds_guard: bool,
}

/// One intra-crate call site.
#[derive(Debug, Clone)]
struct Call {
    callee: String,
    path: String,
    line: usize,
}

#[derive(Debug, Clone)]
enum Event {
    Acquire(Acquire),
    Call(Call),
}

/// One function with its ordered acquisition/call events.
#[derive(Debug, Clone)]
struct FnBody {
    name: String,
    events: Vec<Event>,
}

/// A directed lock-order edge with provenance.
#[derive(Debug, Clone)]
struct Edge {
    from: String,
    to: String,
    /// Where `from` was acquired.
    held_at: (String, usize),
    /// Where `to` was acquired (or the call that reaches it).
    taken_at: (String, usize),
    via: Option<String>,
}

/// Runs the lock-order analysis over every file inside `scope`.
pub fn analyze(files: &[SourceFile], scope: &[&str]) -> Vec<Finding> {
    let in_scope: Vec<&SourceFile> = files
        .iter()
        .filter(|f| scope.iter().any(|p| f.path.starts_with(p)))
        .collect();
    let mut functions: Vec<FnBody> = Vec::new();
    for file in &in_scope {
        extract_functions(file, &mut functions);
    }
    let fn_names: BTreeSet<&str> = functions.iter().map(|f| f.name.as_str()).collect();

    // Transitive lock set per function name (names merged across
    // impls — a conservative over-approximation).
    let mut reach: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for f in &functions {
        let entry = reach.entry(f.name.clone()).or_default();
        for e in &f.events {
            if let Event::Acquire(a) = e {
                entry.insert(a.lock.clone());
            }
        }
    }
    loop {
        let mut changed = false;
        for f in &functions {
            let mut add: BTreeSet<String> = BTreeSet::new();
            for e in &f.events {
                if let Event::Call(c) = e {
                    if let Some(locks) = reach.get(&c.callee) {
                        add.extend(locks.iter().cloned());
                    }
                }
            }
            let entry = reach.entry(f.name.clone()).or_default();
            for lock in add {
                changed |= entry.insert(lock);
            }
        }
        if !changed {
            break;
        }
    }

    let mut findings = Vec::new();
    let mut edges: Vec<Edge> = Vec::new();
    for f in &functions {
        collect_edges(f, &fn_names, &reach, &mut edges, &mut findings);
    }
    report_cycles(&edges, &mut findings);
    findings
}

/// Walks one file, attributing events to the innermost enclosing `fn`.
fn extract_functions(file: &SourceFile, out: &mut Vec<FnBody>) {
    // (fn name, body-open depth) — a stack for nested fns/closures.
    let mut stack: Vec<(String, usize, Vec<Event>)> = Vec::new();
    // A `fn` header seen, waiting for its body `{` at paren depth 0.
    let mut pending: Option<String> = None;
    let mut brace_depth: usize = 0;
    let mut paren_depth: usize = 0;
    let mut prev_code = String::new();
    // Whether the statement continuing onto the current line opened
    // with `let` (so a `.lock()` further down the chain binds a guard).
    let mut stmt_let = false;
    for (line_no, line) in file.code_lines() {
        let code = line.code.as_str();
        scan_events(file, line_no, code, &prev_code, stmt_let, &mut stack);
        let trimmed = code.trim_end();
        if !trimmed.trim().is_empty() {
            prev_code = code.to_string();
            if trimmed.ends_with(';') || trimmed.ends_with('{') || trimmed.ends_with('}') {
                stmt_let = false;
            } else if code.contains("let ") {
                stmt_let = true;
            }
        }
        let bytes = code.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            if bytes[i] == b'f'
                && code[i..].starts_with("fn ")
                && (i == 0 || !is_ident_byte(bytes[i - 1]))
            {
                let name: String = code[i + 3..]
                    .chars()
                    .take_while(|c| is_ident_byte(*c as u8))
                    .collect();
                if !name.is_empty() {
                    pending = Some(name);
                    paren_depth = 0;
                }
                i += 3;
                continue;
            }
            match bytes[i] {
                b'(' => paren_depth += 1,
                b')' => paren_depth = paren_depth.saturating_sub(1),
                b'{' => {
                    brace_depth += 1;
                    if paren_depth == 0 {
                        if let Some(name) = pending.take() {
                            stack.push((name, brace_depth, Vec::new()));
                        }
                    }
                }
                b'}' => {
                    if stack.last().is_some_and(|(_, d, _)| *d == brace_depth) {
                        if let Some((name, _, events)) = stack.pop() {
                            out.push(FnBody { name, events });
                        }
                    }
                    brace_depth = brace_depth.saturating_sub(1);
                }
                b';' if paren_depth == 0 => {
                    // `fn f();` in a trait — no body follows.
                    pending = None;
                }
                _ => {}
            }
            i += 1;
        }
    }
    // Unbalanced braces (shouldn't happen on valid code): flush.
    while let Some((name, _, events)) = stack.pop() {
        out.push(FnBody { name, events });
    }
}

/// Finds acquisition and call sites on one line, attributing them to
/// the innermost open function.
fn scan_events(
    file: &SourceFile,
    line_no: usize,
    code: &str,
    prev_code: &str,
    stmt_let: bool,
    stack: &mut [(String, usize, Vec<Event>)],
) {
    let Some((_, _, events)) = stack.last_mut() else {
        return;
    };
    let bytes = code.as_bytes();
    for method in ["lock", "read", "write"] {
        let pat = format!(".{method}()");
        let mut from = 0;
        while let Some(rel) = code[from..].find(&pat) {
            let idx = from + rel;
            // Receiver on this line, or — for rustfmt'd chains like
            // `self.outcome\n    .lock()` — the tail of the previous line.
            let binds_guard = stmt_let || code[..idx].contains("let ");
            let receiver = match receiver_name(code, idx) {
                Some(name) => Some(name),
                None if code[..idx].trim().is_empty() => trailing_ident(prev_code),
                None => None,
            };
            if let Some(lock) = receiver {
                events.push(Event::Acquire(Acquire {
                    lock,
                    path: file.path.clone(),
                    line: line_no,
                    binds_guard,
                }));
            }
            from = idx + pat.len();
        }
    }
    // Call sites: `name(` where name is a plain identifier reached via
    // a path (`Type::name`), `self.name`, or nothing (free function).
    let mut i = 0;
    while i < bytes.len() {
        if is_ident_byte(bytes[i]) && (i == 0 || !is_ident_byte(bytes[i - 1])) {
            let start = i;
            while i < bytes.len() && is_ident_byte(bytes[i]) {
                i += 1;
            }
            if bytes.get(i) == Some(&b'(') {
                let name = &code[start..i];
                let qualifier_ok = if start >= 1 && bytes[start - 1] == b'.' {
                    // Method call: only `self.name(…)` is resolvable.
                    code[..start - 1].ends_with("self") && !code[..start - 1].ends_with("_self")
                } else {
                    // Free or path call (`::` and bare both resolve
                    // within the crate); macros (`name!(`) never reach
                    // here because `!` breaks the ident+paren adjacency.
                    true
                };
                if qualifier_ok && !["lock", "read", "write"].contains(&name) {
                    events.push(Event::Call(Call {
                        callee: name.to_string(),
                        path: file.path.clone(),
                        line: line_no,
                    }));
                }
            }
        } else {
            i += 1;
        }
    }
}

/// The last identifier of a line (`self.outcome` → `outcome`) — the
/// receiver of a method chain continued on the next line.
fn trailing_ident(code: &str) -> Option<String> {
    let trimmed = code.trim_end();
    let bytes = trimmed.as_bytes();
    let mut start = trimmed.len();
    while start > 0 && is_ident_byte(bytes[start - 1]) {
        start -= 1;
    }
    if start == trimmed.len() {
        return None;
    }
    let name = &trimmed[start..];
    (name != "self").then(|| name.to_string())
}

/// The identifier immediately owning `.lock()` — e.g. `latencies_us`
/// for `self.latencies_us.lock()`, `m` for `m.lock()`.
fn receiver_name(code: &str, dot_idx: usize) -> Option<String> {
    let bytes = code.as_bytes();
    let mut end = dot_idx;
    // Skip back over one balanced `(...)` group (e.g. `guard().lock()`).
    if end > 0 && bytes[end - 1] == b')' {
        let mut depth = 0;
        while end > 0 {
            end -= 1;
            match bytes[end] {
                b')' => depth += 1,
                b'(' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
        }
    }
    let mut start = end;
    while start > 0 && is_ident_byte(bytes[start - 1]) {
        start -= 1;
    }
    if start == end {
        return None;
    }
    let name = &code[start..end];
    if name == "self" {
        return None;
    }
    Some(name.to_string())
}

/// Produces order edges (and held-twice findings) for one function.
fn collect_edges(
    f: &FnBody,
    fn_names: &BTreeSet<&str>,
    reach: &BTreeMap<String, BTreeSet<String>>,
    edges: &mut Vec<Edge>,
    findings: &mut Vec<Finding>,
) {
    let mut held: Vec<Acquire> = Vec::new();
    let mut temps: Vec<Acquire> = Vec::new();
    let mut last_line = 0;
    for event in &f.events {
        let line = match event {
            Event::Acquire(a) => a.line,
            Event::Call(c) => c.line,
        };
        if line != last_line {
            temps.clear();
            last_line = line;
        }
        match event {
            Event::Acquire(site) => {
                for h in held.iter().chain(temps.iter()) {
                    if h.lock == site.lock {
                        findings.push(Finding::new(
                            "lock-held-twice",
                            &site.path,
                            site.line,
                            format!(
                                "`{}` re-acquired in `{}` while already held since {}:{} — \
                                 self-deadlock (std) or UB-adjacent (parking_lot)",
                                site.lock, f.name, h.path, h.line
                            ),
                            "",
                        ));
                    } else {
                        edges.push(Edge {
                            from: h.lock.clone(),
                            to: site.lock.clone(),
                            held_at: (h.path.clone(), h.line),
                            taken_at: (site.path.clone(), site.line),
                            via: None,
                        });
                    }
                }
                if site.binds_guard {
                    held.push(site.clone());
                } else {
                    temps.push(site.clone());
                }
            }
            Event::Call(call) => {
                if !fn_names.contains(call.callee.as_str()) {
                    continue;
                }
                let Some(locks) = reach.get(&call.callee) else {
                    continue;
                };
                for h in held.iter().chain(temps.iter()) {
                    for lock in locks {
                        if *lock == h.lock {
                            findings.push(Finding::new(
                                "lock-held-twice",
                                &call.path,
                                call.line,
                                format!(
                                    "call to `{}` (re)acquires `{}` already held in `{}` \
                                     since {}:{}",
                                    call.callee, lock, f.name, h.path, h.line
                                ),
                                "",
                            ));
                        } else {
                            edges.push(Edge {
                                from: h.lock.clone(),
                                to: lock.clone(),
                                held_at: (h.path.clone(), h.line),
                                taken_at: (call.path.clone(), call.line),
                                via: Some(call.callee.clone()),
                            });
                        }
                    }
                }
            }
        }
    }
}

/// DFS cycle detection over the lock-order graph; one finding per
/// distinct cycle (canonicalised by its sorted lock set).
fn report_cycles(edges: &[Edge], findings: &mut Vec<Finding>) {
    let mut adj: BTreeMap<&str, Vec<&Edge>> = BTreeMap::new();
    for e in edges {
        adj.entry(e.from.as_str()).or_default().push(e);
    }
    let mut seen_cycles: BTreeSet<Vec<String>> = BTreeSet::new();
    for start in adj.keys().copied().collect::<Vec<_>>() {
        let mut path: Vec<&Edge> = Vec::new();
        let mut on_path: Vec<&str> = vec![start];
        dfs(
            start,
            &adj,
            &mut on_path,
            &mut path,
            &mut seen_cycles,
            findings,
        );
    }
}

fn dfs<'a>(
    node: &'a str,
    adj: &BTreeMap<&'a str, Vec<&'a Edge>>,
    on_path: &mut Vec<&'a str>,
    path: &mut Vec<&'a Edge>,
    seen: &mut BTreeSet<Vec<String>>,
    findings: &mut Vec<Finding>,
) {
    // Bounded depth: lock graphs here are tiny; this guards pathology.
    if path.len() > 32 {
        return;
    }
    let Some(nexts) = adj.get(node) else { return };
    for edge in nexts {
        if let Some(pos) = on_path.iter().position(|n| *n == edge.to) {
            let cycle_edges: Vec<&Edge> = path[pos..].iter().copied().chain([*edge]).collect();
            let mut key: Vec<String> = cycle_edges.iter().map(|e| e.from.clone()).collect();
            key.sort();
            if seen.insert(key) {
                let locks: Vec<&str> = cycle_edges
                    .iter()
                    .map(|e| e.from.as_str())
                    .chain([edge.to.as_str()])
                    .collect();
                let mut detail = String::new();
                for e in &cycle_edges {
                    let via = e
                        .via
                        .as_ref()
                        .map(|v| format!(" via call to `{v}`"))
                        .unwrap_or_default();
                    detail.push_str(&format!(
                        " `{}` (held at {}:{}) then `{}` (taken at {}:{}{});",
                        e.from, e.held_at.0, e.held_at.1, e.to, e.taken_at.0, e.taken_at.1, via
                    ));
                }
                findings.push(Finding::new(
                    "lock-cycle",
                    &edge.taken_at.0,
                    edge.taken_at.1,
                    format!(
                        "potential deadlock: lock-order cycle {} —{}",
                        locks.join(" → "),
                        detail
                    ),
                    "",
                ));
            }
            continue;
        }
        on_path.push(edge.to.as_str());
        path.push(edge);
        dfs(edge.to.as_str(), adj, on_path, path, seen, findings);
        path.pop();
        on_path.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn run(src: &str) -> Vec<Finding> {
        let files = [SourceFile::from_source("crates/serve/src/x.rs", src)];
        analyze(&files, LOCK_SCOPE)
    }

    fn rules(findings: &[Finding]) -> Vec<&str> {
        findings.iter().map(|f| f.rule.as_str()).collect()
    }

    #[test]
    fn seeded_two_lock_cycle_is_detected_with_both_locations() {
        let src = "\
impl S {
    fn ab(&self) {
        let g1 = self.m1.lock();
        let g2 = self.m2.lock();
    }
    fn ba(&self) {
        let g2 = self.m2.lock();
        let g1 = self.m1.lock();
    }
}
";
        let found = run(src);
        assert_eq!(rules(&found), vec!["lock-cycle"]);
        let msg = &found[0].message;
        assert!(msg.contains("m1"), "{msg}");
        assert!(msg.contains("m2"), "{msg}");
        // Both acquisition locations are reported.
        assert!(msg.contains(":3") || msg.contains(":4"), "{msg}");
        assert!(msg.contains(":7") || msg.contains(":8"), "{msg}");
    }

    #[test]
    fn consistent_order_is_clean() {
        let src = "\
impl S {
    fn a(&self) {
        let g1 = self.m1.lock();
        let g2 = self.m2.lock();
    }
    fn b(&self) {
        let g1 = self.m1.lock();
        let g2 = self.m2.lock();
    }
}
";
        assert!(run(src).is_empty());
    }

    #[test]
    fn interprocedural_cycle_through_self_call() {
        let src = "\
impl S {
    fn outer(&self) {
        let g = self.a.lock();
        self.inner();
    }
    fn inner(&self) {
        let g = self.b.lock();
    }
    fn reverse(&self) {
        let g = self.b.lock();
        let h = self.a.lock();
    }
}
";
        let found = run(src);
        assert_eq!(rules(&found), vec!["lock-cycle"]);
        assert!(found[0].message.contains("via call to `inner`"));
    }

    #[test]
    fn relock_while_held_is_flagged() {
        let src = "\
fn f(m: &Mutex<u32>) {
    let a = m.lock();
    let b = m.lock();
}
";
        let found = run(src);
        assert_eq!(rules(&found), vec!["lock-held-twice"]);
    }

    #[test]
    fn condvar_wait_on_guard_is_not_a_self_cycle() {
        // Mirrors request.rs: a crate fn named `wait` locks `outcome`;
        // `self.ready.wait(guard)` must not create outcome → outcome.
        let src = "\
impl Slot {
    fn wait(&self) {
        let mut guard = self.outcome.lock();
        loop {
            guard = self.ready.wait(guard);
        }
    }
}
";
        assert!(run(src).is_empty());
    }

    #[test]
    fn temporary_guard_does_not_order_across_statements() {
        let src = "\
impl S {
    fn a(&self) {
        self.m1.lock().push(1);
        let g = self.m2.lock();
    }
    fn b(&self) {
        self.m2.lock().push(1);
        let g = self.m1.lock();
    }
}
";
        assert!(run(src).is_empty());
    }

    #[test]
    fn chained_multiline_receiver_is_resolved() {
        let src = "\
impl S {
    fn a(&self) {
        let g = self
            .m1
            .lock();
        let h = self.m2.lock();
    }
    fn b(&self) {
        let g = self.m2.lock();
        let h = self.m1.lock();
    }
}
";
        let found = run(src);
        assert_eq!(rules(&found), vec!["lock-cycle"]);
    }

    #[test]
    fn test_code_is_ignored() {
        let src = "\
#[cfg(test)]
mod tests {
    fn ab(&self) {
        let g1 = self.m1.lock();
        let g2 = self.m2.lock();
    }
    fn ba(&self) {
        let g2 = self.m2.lock();
        let g1 = self.m1.lock();
    }
}
";
        assert!(run(src).is_empty());
    }
}
