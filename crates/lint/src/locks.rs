//! Pass 1 — lock-order deadlock detection over the detector, the
//! serving engine, and the network front.
//!
//! Rebuilt on the shared IR ([`crate::ir`]) and call graph
//! ([`crate::callgraph`]): every `Mutex`/`RwLock` acquisition site
//! (`.lock()` / `.read()` / `.write()`, parking_lot and std alike) is
//! found by the guard-liveness walker in [`crate::guards`] — a
//! `let`-bound guard is held until the end of its enclosing block (or
//! an explicit `drop(g)`), a temporary guard for its statement. While
//! A is held, acquiring B adds the order edge `A → B`; calls resolved
//! under [`Policy::Strict`] propagate the callee's transitively-
//! acquired locks under the caller's held set. Any cycle in the
//! resulting lock-order graph is a potential deadlock and is reported
//! with the source location of every edge; re-acquiring a held lock is
//! `lock-held-twice`.
//!
//! Known limitations (see DESIGN.md §11/§16): locks are identified by
//! field/variable name, and method calls through non-`self` receivers
//! are not resolved (deliberately — see the condvar notes in
//! [`crate::callgraph`]).

use std::collections::{BTreeMap, BTreeSet};

use crate::callgraph::{is_test_fn, resolves, CallGraph, Policy};
use crate::guards::{walk_fn, Event, ACQUIRE_METHODS};
use crate::ir::Ir;
use crate::report::Finding;
use crate::source::SourceFile;

/// Default lock-analysis scope: the admission detector, the serving
/// engine and the network front (router health state, connection
/// registry, quota buckets).
pub const LOCK_SCOPE: &[&str] = &["crates/detect/src/", "crates/serve/src/", "crates/net/src/"];

/// A directed lock-order edge with provenance.
#[derive(Debug, Clone)]
struct Edge {
    from: String,
    to: String,
    /// Where `from` was acquired.
    held_at: (String, usize),
    /// Where `to` was acquired (or the call that reaches it).
    taken_at: (String, usize),
    via: Option<String>,
}

/// Runs the lock-order analysis over every file inside `scope`.
pub fn analyze(ir: &Ir, files: &[SourceFile], scope: &[&str]) -> Vec<Finding> {
    let graph = CallGraph::build(ir, files, scope, Policy::Strict);

    // Transitive lock set per function name (names merged across
    // impls — a conservative over-approximation).
    let mut seed: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for_each_fn(ir, files, scope, |_, f| {
        let entry = seed.entry(f.name.clone()).or_default();
        walk_fn(f, &mut |_, ev| {
            if let Event::Acquire(h) = ev {
                entry.insert(h.lock.clone());
            }
        });
    });
    let reach = graph.propagate(seed);

    let mut findings = Vec::new();
    let mut edges: Vec<Edge> = Vec::new();
    for_each_fn(ir, files, scope, |path, f| {
        walk_fn(f, &mut |held, ev| match ev {
            Event::Acquire(site) => {
                for h in held {
                    if h.lock == site.lock {
                        findings.push(Finding::new(
                            "lock-held-twice",
                            path,
                            site.line,
                            format!(
                                "`{}` re-acquired in `{}` while already held since {}:{} — \
                                 self-deadlock (std) or UB-adjacent (parking_lot)",
                                site.lock, f.name, path, h.line
                            ),
                            "",
                        ));
                    } else {
                        edges.push(Edge {
                            from: h.lock.clone(),
                            to: site.lock.clone(),
                            held_at: (path.to_string(), h.line),
                            taken_at: (path.to_string(), site.line),
                            via: None,
                        });
                    }
                }
            }
            Event::Call(call) => {
                if held.is_empty()
                    || !resolves(&call.recv, Policy::Strict)
                    || ACQUIRE_METHODS.contains(&call.name.as_str())
                    || !graph.defs.contains_key(&call.name)
                {
                    return;
                }
                let Some(locks) = reach.get(&call.name) else {
                    return;
                };
                for h in held {
                    for lock in locks {
                        if *lock == h.lock {
                            findings.push(Finding::new(
                                "lock-held-twice",
                                path,
                                call.line,
                                format!(
                                    "call to `{}` (re)acquires `{}` already held in `{}` \
                                     since {}:{}",
                                    call.name, lock, f.name, path, h.line
                                ),
                                "",
                            ));
                        } else {
                            edges.push(Edge {
                                from: h.lock.clone(),
                                to: lock.clone(),
                                held_at: (path.to_string(), h.line),
                                taken_at: (path.to_string(), call.line),
                                via: Some(call.name.clone()),
                            });
                        }
                    }
                }
            }
        });
    });
    report_cycles(&edges, &mut findings);
    findings
}

/// Calls `visit(path, fn)` for every non-test function in scope.
fn for_each_fn<'a>(
    ir: &'a Ir,
    files: &[SourceFile],
    scope: &[&str],
    mut visit: impl FnMut(&'a str, &'a crate::ir::FnItem),
) {
    for (fi, file) in ir.files.iter().enumerate() {
        if !scope.is_empty() && !scope.iter().any(|p| file.path.starts_with(p)) {
            continue;
        }
        for f in &file.fns {
            if is_test_fn(&files[fi], f) {
                continue;
            }
            visit(&file.path, f);
        }
    }
}

/// DFS cycle detection over the lock-order graph; one finding per
/// distinct cycle (canonicalised by its sorted lock set).
fn report_cycles(edges: &[Edge], findings: &mut Vec<Finding>) {
    let mut adj: BTreeMap<&str, Vec<&Edge>> = BTreeMap::new();
    for e in edges {
        adj.entry(e.from.as_str()).or_default().push(e);
    }
    let mut seen_cycles: BTreeSet<Vec<String>> = BTreeSet::new();
    for start in adj.keys().copied().collect::<Vec<_>>() {
        let mut path: Vec<&Edge> = Vec::new();
        let mut on_path: Vec<&str> = vec![start];
        dfs(
            start,
            &adj,
            &mut on_path,
            &mut path,
            &mut seen_cycles,
            findings,
        );
    }
}

fn dfs<'a>(
    node: &'a str,
    adj: &BTreeMap<&'a str, Vec<&'a Edge>>,
    on_path: &mut Vec<&'a str>,
    path: &mut Vec<&'a Edge>,
    seen: &mut BTreeSet<Vec<String>>,
    findings: &mut Vec<Finding>,
) {
    // Bounded depth: lock graphs here are tiny; this guards pathology.
    if path.len() > 32 {
        return;
    }
    let Some(nexts) = adj.get(node) else { return };
    for edge in nexts {
        if let Some(pos) = on_path.iter().position(|n| *n == edge.to) {
            let cycle_edges: Vec<&Edge> = path[pos..].iter().copied().chain([*edge]).collect();
            let mut key: Vec<String> = cycle_edges.iter().map(|e| e.from.clone()).collect();
            key.sort();
            if seen.insert(key) {
                let locks: Vec<&str> = cycle_edges
                    .iter()
                    .map(|e| e.from.as_str())
                    .chain([edge.to.as_str()])
                    .collect();
                let mut detail = String::new();
                for e in &cycle_edges {
                    let via = e
                        .via
                        .as_ref()
                        .map(|v| format!(" via call to `{v}`"))
                        .unwrap_or_default();
                    detail.push_str(&format!(
                        " `{}` (held at {}:{}) then `{}` (taken at {}:{}{});",
                        e.from, e.held_at.0, e.held_at.1, e.to, e.taken_at.0, e.taken_at.1, via
                    ));
                }
                findings.push(Finding::new(
                    "lock-cycle",
                    &edge.taken_at.0,
                    edge.taken_at.1,
                    format!(
                        "potential deadlock: lock-order cycle {} —{}",
                        locks.join(" → "),
                        detail
                    ),
                    "",
                ));
            }
            continue;
        }
        on_path.push(edge.to.as_str());
        path.push(edge);
        dfs(edge.to.as_str(), adj, on_path, path, seen, findings);
        path.pop();
        on_path.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn run(src: &str) -> Vec<Finding> {
        let files = [SourceFile::from_source("crates/serve/src/x.rs", src)];
        let ir = Ir::parse(&files);
        analyze(&ir, &files, LOCK_SCOPE)
    }

    fn rules(findings: &[Finding]) -> Vec<&str> {
        findings.iter().map(|f| f.rule.as_str()).collect()
    }

    #[test]
    fn seeded_two_lock_cycle_is_detected_with_both_locations() {
        let src = "\
impl S {
    fn ab(&self) {
        let g1 = self.m1.lock();
        let g2 = self.m2.lock();
    }
    fn ba(&self) {
        let g2 = self.m2.lock();
        let g1 = self.m1.lock();
    }
}
";
        let found = run(src);
        assert_eq!(rules(&found), vec!["lock-cycle"]);
        let msg = &found[0].message;
        assert!(msg.contains("m1"), "{msg}");
        assert!(msg.contains("m2"), "{msg}");
        // Both acquisition locations are reported.
        assert!(msg.contains(":3") || msg.contains(":4"), "{msg}");
        assert!(msg.contains(":7") || msg.contains(":8"), "{msg}");
    }

    #[test]
    fn consistent_order_is_clean() {
        let src = "\
impl S {
    fn a(&self) {
        let g1 = self.m1.lock();
        let g2 = self.m2.lock();
    }
    fn b(&self) {
        let g1 = self.m1.lock();
        let g2 = self.m2.lock();
    }
}
";
        assert!(run(src).is_empty());
    }

    #[test]
    fn interprocedural_cycle_through_self_call() {
        let src = "\
impl S {
    fn outer(&self) {
        let g = self.a.lock();
        self.inner();
    }
    fn inner(&self) {
        let g = self.b.lock();
    }
    fn reverse(&self) {
        let g = self.b.lock();
        let h = self.a.lock();
    }
}
";
        let found = run(src);
        assert_eq!(rules(&found), vec!["lock-cycle"]);
        assert!(found[0].message.contains("via call to `inner`"));
    }

    #[test]
    fn relock_while_held_is_flagged() {
        let src = "\
fn f(m: &Mutex<u32>) {
    let a = m.lock();
    let b = m.lock();
}
";
        let found = run(src);
        assert_eq!(rules(&found), vec!["lock-held-twice"]);
    }

    #[test]
    fn condvar_wait_on_guard_is_not_a_self_cycle() {
        // Mirrors request.rs: a crate fn named `wait` locks `outcome`;
        // `self.ready.wait(guard)` must not create outcome → outcome.
        let src = "\
impl Slot {
    fn wait(&self) {
        let mut guard = self.outcome.lock();
        loop {
            guard = self.ready.wait(guard);
        }
    }
}
";
        assert!(run(src).is_empty());
    }

    #[test]
    fn temporary_guard_does_not_order_across_statements() {
        let src = "\
impl S {
    fn a(&self) {
        self.m1.lock().push(1);
        let g = self.m2.lock();
    }
    fn b(&self) {
        self.m2.lock().push(1);
        let g = self.m1.lock();
    }
}
";
        assert!(run(src).is_empty());
    }

    #[test]
    fn chained_multiline_receiver_is_resolved() {
        let src = "\
impl S {
    fn a(&self) {
        let g = self
            .m1
            .lock();
        let h = self.m2.lock();
    }
    fn b(&self) {
        let g = self.m2.lock();
        let h = self.m1.lock();
    }
}
";
        let found = run(src);
        assert_eq!(rules(&found), vec!["lock-cycle"]);
    }

    #[test]
    fn test_code_is_ignored() {
        let src = "\
#[cfg(test)]
mod tests {
    fn ab(&self) {
        let g1 = self.m1.lock();
        let g2 = self.m2.lock();
    }
    fn ba(&self) {
        let g2 = self.m2.lock();
        let g1 = self.m1.lock();
    }
}
";
        assert!(run(src).is_empty());
    }

    #[test]
    fn guard_dropped_early_releases_the_order() {
        // New precision over the line-level pass: drop(g) ends the
        // guard, so no a→b edge forms in `a` and no cycle exists.
        let src = "\
impl S {
    fn a(&self) {
        let g = self.m1.lock();
        drop(g);
        let h = self.m2.lock();
    }
    fn b(&self) {
        let g = self.m2.lock();
        let h = self.m1.lock();
    }
}
";
        assert!(run(src).is_empty());
    }

    #[test]
    fn inner_scope_guard_does_not_leak_order() {
        // New precision: a guard confined to an inner block is not
        // held when the sibling statement acquires the second lock.
        let src = "\
impl S {
    fn a(&self) {
        {
            let g = self.m1.lock();
        }
        let h = self.m2.lock();
    }
    fn b(&self) {
        let g = self.m2.lock();
        let h = self.m1.lock();
    }
}
";
        assert!(run(src).is_empty());
    }
}
