//! Pass — `unsafe-confinement`: the policy gate that lets ROADMAP
//! item 1 relax the workspace-wide `#![forbid(unsafe_code)]` without
//! losing the guarantee everywhere else.
//!
//! The contract:
//!
//! * The `unsafe` keyword (blocks, `unsafe fn`, `unsafe impl`, traits)
//!   and the `allow(unsafe_code)` attribute may appear **only** under
//!   [`ALLOWED_MODULE`] (`crates/tensor/src/simd.rs` or
//!   `crates/tensor/src/simd/…`). Anywhere else — test code included,
//!   since `unsafe` in a test is still unsafe — is a finding.
//! * Inside the permitted module, every line carrying `unsafe` must be
//!   justified by a `// SAFETY:` comment within the
//!   [`SAFETY_COMMENT_WINDOW`] lines above it (or on the line itself).
//!
//! Detection runs on the blanked source model, so `unsafe` inside
//! strings or comments never matches, and uses word-boundary matching,
//! so `forbid(unsafe_code)` / `#![forbid(unsafe_code)]` headers do not
//! trip the keyword check (`unsafe_code` is a single word).

use crate::report::Finding;
use crate::source::{word_bounded, SourceFile};

/// The only module path allowed to contain `unsafe`.
pub const ALLOWED_MODULE: &str = "crates/tensor/src/simd";

/// How many raw lines above an `unsafe` occurrence may carry its
/// `// SAFETY:` justification.
pub const SAFETY_COMMENT_WINDOW: usize = 3;

/// Runs the confinement check over every workspace file.
pub fn check(files: &[SourceFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in files {
        let allowed = file.path.starts_with(ALLOWED_MODULE);
        for (idx, info) in file.lines.iter().enumerate() {
            let line_no = idx + 1;
            let code = info.code.as_str();
            if contains_word(code, "unsafe") {
                if !allowed {
                    findings.push(Finding::new(
                        "unsafe-confinement",
                        &file.path,
                        line_no,
                        format!(
                            "`unsafe` outside the designated SIMD module \
                             (`{ALLOWED_MODULE}`) — the rest of the workspace \
                             stays `forbid(unsafe_code)`"
                        ),
                        &info.raw,
                    ));
                } else if !has_safety_comment(file, idx) {
                    findings.push(Finding::new(
                        "unsafe-confinement",
                        &file.path,
                        line_no,
                        format!(
                            "`unsafe` in the permitted module without a \
                             `// SAFETY:` comment within {SAFETY_COMMENT_WINDOW} \
                             lines above"
                        ),
                        &info.raw,
                    ));
                }
            }
            if code.contains("allow(unsafe_code)") && !allowed {
                findings.push(Finding::new(
                    "unsafe-confinement",
                    &file.path,
                    line_no,
                    format!(
                        "`allow(unsafe_code)` outside the designated SIMD module \
                         (`{ALLOWED_MODULE}`)"
                    ),
                    &info.raw,
                ));
            }
        }
    }
    findings
}

/// Word-boundary scan of one blanked line.
fn contains_word(code: &str, needle: &str) -> bool {
    let mut from = 0;
    while let Some(rel) = code[from..].find(needle) {
        let idx = from + rel;
        if word_bounded(code, idx, needle.len()) {
            return true;
        }
        from = idx + needle.len();
    }
    false
}

/// Whether line `idx` (0-based) or any of the raw lines in the window
/// above it carries a `SAFETY:` justification comment.
fn has_safety_comment(file: &SourceFile, idx: usize) -> bool {
    let lo = idx.saturating_sub(SAFETY_COMMENT_WINDOW);
    file.lines[lo..=idx]
        .iter()
        .any(|l| l.raw.contains("SAFETY:"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &str, src: &str) -> Vec<Finding> {
        check(&[SourceFile::from_source(path, src)])
    }

    #[test]
    fn unsafe_outside_the_module_is_flagged() {
        let found = run(
            "crates/nn/src/model.rs",
            "fn f() {\n    unsafe { std::hint::unreachable_unchecked() }\n}\n",
        );
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, "unsafe-confinement");
        assert_eq!(found[0].line, 2);
    }

    #[test]
    fn allow_attr_outside_the_module_is_flagged() {
        let found = run("crates/serve/src/server.rs", "#![allow(unsafe_code)]\n");
        assert_eq!(found.len(), 1);
    }

    #[test]
    fn forbid_header_is_not_the_keyword() {
        assert!(run("crates/nn/src/lib.rs", "#![forbid(unsafe_code)]\n").is_empty());
    }

    #[test]
    fn unsafe_in_strings_and_comments_is_invisible() {
        assert!(run(
            "crates/core/src/report.rs",
            "// this code is unsafe to refactor\nfn f() { let s = \"unsafe\"; }\n",
        )
        .is_empty());
    }

    #[test]
    fn permitted_module_requires_safety_comments() {
        let ok = run(
            "crates/tensor/src/simd/kernels.rs",
            "fn f() {\n    // SAFETY: len checked against lane width above\n    unsafe { load(ptr) }\n}\n",
        );
        assert!(ok.is_empty(), "{ok:?}");
        let missing = run(
            "crates/tensor/src/simd/kernels.rs",
            "fn f() {\n    unsafe { load(ptr) }\n}\n",
        );
        assert_eq!(missing.len(), 1);
        assert!(missing[0].message.contains("SAFETY"));
    }

    #[test]
    fn allow_attr_inside_the_module_is_permitted() {
        assert!(run("crates/tensor/src/simd.rs", "#![allow(unsafe_code)]\n").is_empty());
    }

    #[test]
    fn unsafe_in_test_code_is_still_flagged() {
        let found = run(
            "crates/nn/src/model.rs",
            "#[cfg(test)]\nmod tests {\n    fn t() { unsafe { x() } }\n}\n",
        );
        assert_eq!(found.len(), 1);
    }
}
