//! Pass — `swallowed-error`: silently discarded fallible results.
//!
//! Two shapes, workspace-wide outside `#[cfg(test)]`:
//!
//! * `let _ = some_call(…);` — a call result thrown away. Plain value
//!   discards without a call (`let _ = margin;`) are exempt, as is the
//!   infallible `write!`/`writeln!`-to-`String` idiom. Calls that
//!   resolve to workspace functions are exempt when every candidate
//!   returns something other than `Result` (discarding a plain value
//!   is the caller's business); unresolved calls (std, vendored) are
//!   assumed fallible.
//! * `expr.ok();` — a `Result` demoted to `Option` and dropped on the
//!   floor as a statement.
//!
//! A deliberate best-effort discard is *fixed*, not baselined, by
//! annotating the statement (same line or the line above) with a
//! `// best-effort: <why>` comment — the analogue of `// SAFETY:` in
//! [`crate::unsafe_confinement`], and greppable the same way.

use std::collections::BTreeMap;

use crate::callgraph::is_test_fn;
use crate::ir::{Ir, Stmt};
use crate::report::Finding;
use crate::source::SourceFile;

/// The annotation that marks a discard as deliberate.
pub const ANNOTATION: &str = "best-effort:";

/// Runs the pass over the whole workspace.
pub fn check(ir: &Ir, files: &[SourceFile]) -> Vec<Finding> {
    // fn name → true if any same-named workspace fn returns Result.
    let mut returns_result: BTreeMap<&str, bool> = BTreeMap::new();
    for file in &ir.files {
        for f in &file.fns {
            let e = returns_result.entry(f.name.as_str()).or_insert(false);
            *e |= f.returns_result;
        }
    }
    let mut findings = Vec::new();
    for (fi, file) in ir.files.iter().enumerate() {
        let src = &files[fi];
        for f in &file.fns {
            if is_test_fn(src, f) {
                continue;
            }
            for stmt in f.stmts() {
                if let Some(kind) = discard_kind(stmt, &returns_result) {
                    if is_annotated(src, stmt.line) {
                        continue;
                    }
                    findings.push(Finding::new(
                        "swallowed-error",
                        &file.path,
                        stmt.line,
                        format!(
                            "{kind} discards a fallible result — handle it, or mark \
                             the discard deliberate with `// {ANNOTATION} <why>`"
                        ),
                        src.lines
                            .get(stmt.line.wrapping_sub(1))
                            .map_or("", |l| l.raw.as_str()),
                    ));
                }
            }
        }
    }
    findings
}

/// Classifies a statement as a swallowed-error discard.
fn discard_kind(stmt: &Stmt, returns_result: &BTreeMap<&str, bool>) -> Option<&'static str> {
    let text = stmt.text.as_str();
    if stmt.has_let && stmt.lets.as_slice() == ["_"] {
        if stmt.calls.is_empty() {
            return None; // plain value discard, nothing fallible
        }
        if text.contains("write!(") || text.contains("writeln!(") {
            return None; // fmt-to-String is infallible
        }
        // If every call resolves to workspace fns that never return
        // Result, the discard can't be swallowing an error.
        let all_infallible = stmt
            .calls
            .iter()
            .all(|c| returns_result.get(c.name.as_str()) == Some(&false));
        if all_infallible {
            return None;
        }
        return Some("`let _ = …`");
    }
    if !stmt.has_let
        && (text.ends_with(".ok();") || text.ends_with(".ok()"))
        && !text.starts_with("return")
        && stmt.calls.iter().any(|c| c.name == "ok")
    {
        return Some("trailing `.ok()`");
    }
    None
}

/// Whether the discard is annotated on its line or the line above.
fn is_annotated(file: &SourceFile, line: usize) -> bool {
    let idx = line.wrapping_sub(1);
    [idx.checked_sub(1), Some(idx)]
        .into_iter()
        .flatten()
        .filter_map(|i| file.lines.get(i))
        .any(|l| l.raw.contains(ANNOTATION))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Finding> {
        let files = [SourceFile::from_source("crates/net/src/client.rs", src)];
        let ir = Ir::parse(&files);
        check(&ir, &files)
    }

    #[test]
    fn unannotated_let_underscore_call_is_flagged() {
        let found = run("fn f(s: &TcpStream) {\n    let _ = s.shutdown(Shutdown::Both);\n}\n");
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].rule, "swallowed-error");
        assert_eq!(found[0].line, 2);
    }

    #[test]
    fn annotation_on_line_or_above_suppresses() {
        let same = run(
            "fn f(s: &TcpStream) {\n    let _ = s.shutdown(Shutdown::Both); // best-effort: peer may be gone\n}\n",
        );
        assert!(same.is_empty(), "{same:?}");
        let above = run(
            "fn f(s: &TcpStream) {\n    // best-effort: peer may be gone\n    let _ = s.shutdown(Shutdown::Both);\n}\n",
        );
        assert!(above.is_empty(), "{above:?}");
    }

    #[test]
    fn plain_value_discard_and_fmt_write_are_exempt() {
        let found = run(
            "fn f(out: &mut String, margin: f32) {\n    let _ = margin;\n    let _ = writeln!(out, \"{}\", 1);\n}\n",
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn trailing_ok_statement_is_flagged() {
        let found = run("fn f(path: &Path) {\n    std::fs::remove_file(path).ok();\n}\n");
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains(".ok()"));
    }

    #[test]
    fn workspace_fn_known_infallible_is_exempt() {
        let found = run("fn observe(x: u32) -> u32 { x }\nfn f() {\n    let _ = observe(3);\n}\n");
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn workspace_fn_returning_result_is_flagged() {
        let found =
            run("fn save(x: u32) -> Result<(), E> { Ok(()) }\nfn f() {\n    let _ = save(3);\n}\n");
        assert_eq!(found.len(), 1, "{found:?}");
    }

    #[test]
    fn test_code_is_exempt() {
        let found = run(
            "#[cfg(test)]\nmod tests {\n    fn t(p: &Path) { let _ = std::fs::remove_file(p); }\n}\n",
        );
        assert!(found.is_empty(), "{found:?}");
    }
}
