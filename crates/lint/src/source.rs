//! Line-level source model shared by every pass.
//!
//! The model deliberately stops short of a real parser: each file is
//! scanned once by a character-level state machine that blanks comment
//! and literal *interiors* (delimiters stay, so brace/paren structure
//! survives), then split into lines annotated with whether they sit
//! inside `#[cfg(test)]` / `#[test]` code. Passes pattern-match against
//! the blanked `code` text, so `".unwrap()"` inside a string or a doc
//! comment never counts as a finding. Macro bodies are *not* expanded —
//! a known limitation documented in DESIGN.md §11.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One analysed line of a source file.
#[derive(Debug, Clone)]
pub struct LineInfo {
    /// Original text (for excerpts in reports).
    pub raw: String,
    /// Text with comment and string/char-literal interiors blanked.
    pub code: String,
    /// Whether the line is inside `#[cfg(test)]` / `#[test]` code.
    pub in_test: bool,
}

/// A loaded, pre-scanned source file.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// The annotated lines, index 0 = line 1.
    pub lines: Vec<LineInfo>,
}

impl SourceFile {
    /// Builds the model from in-memory source (used by tests with
    /// inline fixtures — `path` is only a label).
    pub fn from_source(path: impl Into<String>, text: &str) -> Self {
        let blanked = blank_noncode(text);
        let raw_lines: Vec<&str> = text.split('\n').collect();
        let code_lines: Vec<&str> = blanked.split('\n').collect();
        let test_flags = mark_test_regions(&code_lines);
        let lines = raw_lines
            .iter()
            .zip(code_lines.iter())
            .zip(test_flags)
            .map(|((raw, code), in_test)| LineInfo {
                raw: (*raw).to_string(),
                code: (*code).to_string(),
                in_test,
            })
            .collect();
        SourceFile {
            path: path.into(),
            lines,
        }
    }

    /// Loads and scans one file from disk.
    ///
    /// # Errors
    ///
    /// Propagates the underlying read error.
    pub fn load(root: &Path, rel: &Path) -> io::Result<Self> {
        let text = fs::read_to_string(root.join(rel))?;
        let path = rel
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        Ok(SourceFile::from_source(path, &text))
    }

    /// 1-indexed (line, code) pairs for non-test lines.
    pub fn code_lines(&self) -> impl Iterator<Item = (usize, &LineInfo)> {
        self.lines
            .iter()
            .enumerate()
            .filter(|(_, l)| !l.in_test)
            .map(|(i, l)| (i + 1, l))
    }
}

/// Recursively collects every `.rs` file under `crates/*/src`, sorted
/// for deterministic reports.
///
/// # Errors
///
/// Propagates directory-walk and file-read errors.
pub fn load_workspace(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut rels: Vec<PathBuf> = Vec::new();
    let crates_dir = root.join("crates");
    for entry in fs::read_dir(&crates_dir)? {
        let entry = entry?;
        let src = entry.path().join("src");
        if src.is_dir() {
            collect_rs(&src, &mut rels)?;
        }
    }
    let mut out = Vec::with_capacity(rels.len());
    for abs in &mut rels {
        let rel = abs
            .strip_prefix(root)
            .map_err(|e| io::Error::other(format!("path outside root: {e}")))?
            .to_path_buf();
        out.push(SourceFile::load(root, &rel)?);
    }
    out.sort_by(|a, b| a.path.cmp(&b.path));
    Ok(out)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum ScanState {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(usize),
    Char,
}

/// Replaces comment and literal interiors with spaces, preserving the
/// line structure and the delimiters themselves.
fn blank_noncode(text: &str) -> String {
    let chars: Vec<char> = text.chars().collect();
    let mut out = String::with_capacity(text.len());
    let mut state = ScanState::Code;
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        match state {
            ScanState::Code => match c {
                '/' if next == Some('/') => {
                    state = ScanState::LineComment;
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    continue;
                }
                '/' if next == Some('*') => {
                    state = ScanState::BlockComment(1);
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    continue;
                }
                '"' => {
                    state = ScanState::Str;
                    out.push('"');
                }
                'r' | 'b' if starts_raw_string(&chars, i) => {
                    let (hashes, consumed) = raw_string_open(&chars, i);
                    state = ScanState::RawStr(hashes);
                    for _ in 0..consumed {
                        out.push(' ');
                    }
                    out.push('"');
                    i += consumed + 1;
                    continue;
                }
                'b' if next == Some('"') => {
                    state = ScanState::Str;
                    out.push(' ');
                    out.push('"');
                    i += 2;
                    continue;
                }
                '\'' if is_char_literal(&chars, i) => {
                    state = ScanState::Char;
                    out.push('\'');
                }
                _ => out.push(c),
            },
            ScanState::LineComment => {
                if c == '\n' {
                    state = ScanState::Code;
                    out.push('\n');
                } else {
                    out.push(' ');
                }
            }
            ScanState::BlockComment(depth) => {
                if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        ScanState::Code
                    } else {
                        ScanState::BlockComment(depth - 1)
                    };
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    continue;
                } else if c == '/' && next == Some('*') {
                    state = ScanState::BlockComment(depth + 1);
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    continue;
                } else if c == '\n' {
                    out.push('\n');
                } else {
                    out.push(' ');
                }
            }
            ScanState::Str => {
                if c == '\\' {
                    out.push(' ');
                    if let Some(escaped) = next {
                        out.push(if escaped == '\n' { '\n' } else { ' ' });
                        i += 2;
                        continue;
                    }
                } else if c == '"' {
                    state = ScanState::Code;
                    out.push('"');
                } else if c == '\n' {
                    out.push('\n');
                } else {
                    out.push(' ');
                }
            }
            ScanState::RawStr(hashes) => {
                if c == '"' && closes_raw_string(&chars, i, hashes) {
                    state = ScanState::Code;
                    out.push('"');
                    for _ in 0..hashes {
                        out.push(' ');
                    }
                    i += hashes + 1;
                    continue;
                } else if c == '\n' {
                    out.push('\n');
                } else {
                    out.push(' ');
                }
            }
            ScanState::Char => {
                if c == '\\' {
                    out.push(' ');
                    if next.is_some() {
                        out.push(' ');
                        i += 2;
                        continue;
                    }
                } else if c == '\'' {
                    state = ScanState::Code;
                    out.push('\'');
                } else {
                    out.push(' ');
                }
            }
        }
        i += 1;
    }
    out
}

/// `r"..."`, `r#"..."#`, `br"..."` openers.
fn starts_raw_string(chars: &[char], i: usize) -> bool {
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
        if chars.get(j) != Some(&'r') {
            return false;
        }
    }
    if chars.get(j) != Some(&'r') {
        return false;
    }
    j += 1;
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    chars.get(j) == Some(&'"')
}

/// Number of `#`s and chars consumed up to (excluding) the opening `"`.
fn raw_string_open(chars: &[char], i: usize) -> (usize, usize) {
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
    }
    j += 1; // the 'r'
    let mut hashes = 0;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    (hashes, j - i)
}

fn closes_raw_string(chars: &[char], i: usize, hashes: usize) -> bool {
    (1..=hashes).all(|k| chars.get(i + k) == Some(&'#'))
}

/// Distinguishes `'a'` / `'\n'` (char literal) from `'a` (lifetime).
fn is_char_literal(chars: &[char], i: usize) -> bool {
    match chars.get(i + 1) {
        Some('\\') => true,
        Some(c) if *c != '\'' => chars.get(i + 2) == Some(&'\''),
        _ => false,
    }
}

/// Marks lines inside `#[cfg(test)]` / `#[test]` items by tracking
/// brace depth: an attribute arms a pending flag that attaches to the
/// next `{` (or is cancelled by a `;`, covering attribute-on-`use`).
fn mark_test_regions(code_lines: &[&str]) -> Vec<bool> {
    let mut flags = Vec::with_capacity(code_lines.len());
    let mut depth: usize = 0;
    let mut pending = false;
    let mut regions: Vec<usize> = Vec::new();
    for line in code_lines {
        let has_attr = line.contains("#[cfg(test") || line.contains("#[test]");
        let mut in_test = !regions.is_empty() || has_attr;
        if has_attr {
            pending = true;
        }
        for c in line.chars() {
            match c {
                '{' => {
                    depth += 1;
                    if pending {
                        regions.push(depth);
                        pending = false;
                        in_test = true;
                    }
                }
                '}' => {
                    if regions.last() == Some(&depth) {
                        regions.pop();
                    }
                    depth = depth.saturating_sub(1);
                }
                ';' if pending && regions.is_empty() => {
                    // `#[cfg(test)] use …;` — the attribute applied to a
                    // brace-less item; this line was already marked.
                    pending = false;
                    in_test = true;
                }
                _ => {}
            }
        }
        flags.push(in_test);
    }
    flags
}

/// True when `code[idx]` begins the given needle.
pub fn word_at(code: &str, idx: usize, needle: &str) -> bool {
    code[idx..].starts_with(needle)
}

/// True when `code[idx..idx+len]` is a whole identifier word — not
/// embedded in a longer identifier on either side.
pub fn word_bounded(code: &str, idx: usize, len: usize) -> bool {
    let b = code.as_bytes();
    (idx == 0 || !is_ident_byte(b[idx - 1]))
        && (idx + len >= b.len() || !is_ident_byte(b[idx + len]))
}

/// True when the byte at `idx` is part of an identifier.
pub fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked() {
        let f = SourceFile::from_source(
            "x.rs",
            "let a = \"call .unwrap() here\"; // .unwrap()\nlet b = 1;\n",
        );
        assert!(!f.lines[0].code.contains("unwrap"));
        assert!(f.lines[0].code.contains("let a = "));
        assert_eq!(f.lines[1].code, "let b = 1;");
    }

    #[test]
    fn raw_strings_and_chars_are_blanked() {
        let f = SourceFile::from_source(
            "x.rs",
            "let a = r#\"panic!(\"no\")\"#;\nlet c = '\\'';\nlet lt: &'static str = \"x\";\n",
        );
        assert!(!f.lines[0].code.contains("panic!"));
        assert!(f.lines[1].code.contains("let c ="));
        // The lifetime must not swallow the rest of the line as a char.
        assert!(f.lines[2].code.contains("str"));
    }

    #[test]
    fn block_comments_span_lines() {
        let f = SourceFile::from_source("x.rs", "a();\n/* x.unwrap()\n still comment */\nb();\n");
        assert!(!f.lines[1].code.contains("unwrap"));
        assert_eq!(f.lines[3].code, "b();");
    }

    #[test]
    fn cfg_test_module_is_marked() {
        let src = "fn live() { hot(); }\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn also_live() {}\n";
        let f = SourceFile::from_source("x.rs", src);
        assert!(!f.lines[0].in_test);
        assert!(f.lines[1].in_test);
        assert!(f.lines[2].in_test);
        assert!(f.lines[3].in_test);
        assert!(f.lines[4].in_test);
        assert!(!f.lines[5].in_test);
    }

    #[test]
    fn cfg_test_on_single_item_is_bounded() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn live() {}\n";
        let f = SourceFile::from_source("x.rs", src);
        assert!(f.lines[0].in_test);
        assert!(f.lines[1].in_test);
        assert!(!f.lines[2].in_test);
    }

    #[test]
    fn test_fn_attribute_marks_only_the_fn() {
        let src = "#[test]\nfn check() {\n    boom();\n}\nfn live() {}\n";
        let f = SourceFile::from_source("x.rs", src);
        assert!(f.lines[2].in_test);
        assert!(!f.lines[4].in_test);
    }
}
