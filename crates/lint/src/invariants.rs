//! Pass 3 — project invariants clippy cannot express.
//!
//! 1. `std-sync-lock` — `fademl-serve` mandates `parking_lot` locks;
//!    `std::sync::Mutex`/`RwLock` appear only where a `Condvar` forces
//!    the std pairing (budgeted in `lint.allow` with a justification).
//! 2. `batcher-wall-clock` — the dynamic batcher is a *pure* state
//!    machine driven by an injected `now`; reading `Instant::now()` /
//!    `SystemTime` inside it would make the coalescing policy
//!    untestable and racy.
//! 3. `nan-ordering` — metrics percentile code must not use NaN-unsafe
//!    float comparisons (`partial_cmp`, `sort_by` on floats); latencies
//!    are integer microseconds, and any float keys must use `total_cmp`.
//! 4. `dead-variant` — every public error variant of the serving crate
//!    is constructed somewhere in non-test code; an unconstructible
//!    variant is dead API surface that callers still have to match on.
//! 5. `direct-overwrite` — production code must not clobber files in
//!    place (`File::create` / `fs::write`): a crash mid-write leaves a
//!    torn artifact. Durable writes go through
//!    `fademl_tensor::io::atomic_write` (stage + fsync + rename), whose
//!    own implementation file is the single blessed exception.
//! 6. `raw-thread-spawn` — compute parallelism goes through the
//!    persistent worker pool in `fademl_tensor::par` (one pool, caller
//!    participates, bit-exact partitioning); serving owns its worker
//!    lifecycle in `fademl-serve`, and the network front owns its
//!    accept/handler threads in `fademl-net`. Ad-hoc
//!    `std::thread::spawn` / `thread::Builder` anywhere else creates
//!    unpooled threads with no panic isolation and per-call spawn cost
//!    on the hot path.
//! 7. `raw-socket` — all TCP construction (`TcpListener::bind`,
//!    `TcpStream::connect`) lives in `fademl-net`, behind the framed
//!    wire protocol with its length caps and CRC checks. A socket
//!    opened anywhere else bypasses admission control, quotas and the
//!    typed error mapping, and widens the attack surface.

use crate::report::Finding;
use crate::source::{is_ident_byte, SourceFile};

const SERVE_PREFIX: &str = "crates/serve/src/";
const BATCHER: &str = "crates/serve/src/batcher.rs";
const METRICS: &str = "crates/serve/src/metrics.rs";
const ERRORS: &str = "crates/serve/src/error.rs";
const ATOMIC_IMPL: &str = "crates/tensor/src/io.rs";
const THREAD_POOL_IMPL: &str = "crates/tensor/src/par.rs";
const NET_PREFIX: &str = "crates/net/src/";

/// Runs every invariant lint.
pub fn check(files: &[SourceFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    std_sync_lock(files, &mut findings);
    batcher_wall_clock(files, &mut findings);
    nan_ordering(files, &mut findings);
    dead_variants(files, &mut findings);
    direct_overwrite(files, &mut findings);
    raw_thread_spawn(files, &mut findings);
    raw_socket(files, &mut findings);
    findings
}

fn std_sync_lock(files: &[SourceFile], out: &mut Vec<Finding>) {
    for file in files.iter().filter(|f| f.path.starts_with(SERVE_PREFIX)) {
        for (line_no, line) in file.code_lines() {
            if !line.code.contains("std::sync") {
                continue;
            }
            for what in ["Mutex", "RwLock"] {
                if has_word(&line.code, what) {
                    out.push(Finding::new(
                        "std-sync-lock",
                        &file.path,
                        line_no,
                        format!(
                            "`std::sync::{what}` in fademl-serve — parking_lot is mandated \
                             (no poisoning, smaller guards); std locks are budgeted only \
                             where a Condvar forces the pairing"
                        ),
                        &line.raw,
                    ));
                }
            }
        }
    }
}

fn batcher_wall_clock(files: &[SourceFile], out: &mut Vec<Finding>) {
    for file in files.iter().filter(|f| f.path == BATCHER) {
        for (line_no, line) in file.code_lines() {
            for what in ["Instant::now", "SystemTime"] {
                if line.code.contains(what) {
                    out.push(Finding::new(
                        "batcher-wall-clock",
                        &file.path,
                        line_no,
                        format!(
                            "`{what}` inside the batcher state machine — time must be \
                             injected through `now` parameters to keep coalescing pure \
                             and deterministic"
                        ),
                        &line.raw,
                    ));
                }
            }
        }
    }
}

fn nan_ordering(files: &[SourceFile], out: &mut Vec<Finding>) {
    for file in files.iter().filter(|f| f.path == METRICS) {
        for (line_no, line) in file.code_lines() {
            for what in [".partial_cmp(", ".sort_by("] {
                if line.code.contains(what) {
                    out.push(Finding::new(
                        "nan-ordering",
                        &file.path,
                        line_no,
                        format!(
                            "`{}` in metrics percentile code — NaN-unsafe ordering can \
                             panic or mis-sort; keep latencies as integer µs or use \
                             `total_cmp`/`sort_unstable`",
                            what.trim_matches(|c| c == '.' || c == '(')
                        ),
                        &line.raw,
                    ));
                }
            }
        }
    }
}

/// A declared `pub enum` variant in the serve error module.
#[derive(Debug)]
struct Variant {
    enum_name: String,
    name: String,
    line: usize,
}

fn dead_variants(files: &[SourceFile], out: &mut Vec<Finding>) {
    let Some(error_file) = files.iter().find(|f| f.path == ERRORS) else {
        return;
    };
    let variants = parse_variants(error_file);
    for v in variants {
        let needle = format!("{}::{}", v.enum_name, v.name);
        let constructed = files
            .iter()
            .filter(|f| f.path.starts_with(SERVE_PREFIX) && f.path != ERRORS)
            .any(|f| {
                f.code_lines()
                    .any(|(_, line)| is_construction(&line.code, &needle))
            });
        if !constructed {
            out.push(Finding::new(
                "dead-variant",
                ERRORS,
                v.line,
                format!(
                    "`{}::{}` is never constructed in non-test serving code — dead error \
                     surface callers still must match on; construct it or remove it",
                    v.enum_name, v.name
                ),
                "",
            ));
        }
    }
}

fn direct_overwrite(files: &[SourceFile], out: &mut Vec<Finding>) {
    for file in files.iter().filter(|f| f.path != ATOMIC_IMPL) {
        for (line_no, line) in file.code_lines() {
            for what in ["File::create(", "fs::write("] {
                if line.code.contains(what) {
                    out.push(Finding::new(
                        "direct-overwrite",
                        &file.path,
                        line_no,
                        format!(
                            "`{}` overwrites the destination in place — a crash mid-write \
                             leaves a torn file; route artifact writes through \
                             `fademl_tensor::io::atomic_write` (stage + fsync + rename)",
                            what.trim_end_matches('(')
                        ),
                        &line.raw,
                    ));
                }
            }
        }
    }
}

fn raw_thread_spawn(files: &[SourceFile], out: &mut Vec<Finding>) {
    for file in files.iter().filter(|f| {
        f.path != THREAD_POOL_IMPL
            && !f.path.starts_with(SERVE_PREFIX)
            && !f.path.starts_with(NET_PREFIX)
    }) {
        for (line_no, line) in file.code_lines() {
            for what in ["thread::spawn(", "thread::Builder"] {
                if line.code.contains(what) {
                    out.push(Finding::new(
                        "raw-thread-spawn",
                        &file.path,
                        line_no,
                        format!(
                            "`{}` outside `fademl_tensor::par`, `fademl-serve` and \
                             `fademl-net` — compute parallelism must go through the \
                             persistent pool (`par::parallel_rows`): ad-hoc threads skip \
                             panic isolation and pay spawn cost on every call",
                            what.trim_end_matches('(')
                        ),
                        &line.raw,
                    ));
                }
            }
        }
    }
}

fn raw_socket(files: &[SourceFile], out: &mut Vec<Finding>) {
    for file in files.iter().filter(|f| !f.path.starts_with(NET_PREFIX)) {
        for (line_no, line) in file.code_lines() {
            for what in ["TcpListener::bind(", "TcpStream::connect("] {
                if line.code.contains(what) {
                    out.push(Finding::new(
                        "raw-socket",
                        &file.path,
                        line_no,
                        format!(
                            "`{}` outside `fademl-net` — TCP endpoints must go through the \
                             framed wire protocol (length caps, CRC, typed errors, \
                             admission control); a raw socket bypasses all of it",
                            what.trim_end_matches('(')
                        ),
                        &line.raw,
                    ));
                }
            }
        }
    }
}

/// `Enum::Variant` occurrences that look like construction rather than
/// pattern-matching: lines with `=>` (match arms), `..` (rest
/// patterns), `matches!` or `if/while let` destructuring don't count.
fn is_construction(code: &str, needle: &str) -> bool {
    if !code.contains(needle) {
        return false;
    }
    // A construction site must not also be a pattern position.
    let boundary_ok = {
        let idx = code.find(needle).unwrap_or(0);
        let after = code[idx + needle.len()..].chars().next();
        !matches!(after, Some(c) if c.is_ascii_alphanumeric() || c == '_')
    };
    boundary_ok
        && !code.contains("=>")
        && !code.contains("matches!")
        && !code.contains("..")
        && !code.contains("if let ")
        && !code.contains("while let ")
}

/// Extracts `pub enum` variants (lines at enum depth + 1 starting with
/// an uppercase identifier) from the error module.
fn parse_variants(file: &SourceFile) -> Vec<Variant> {
    let mut out = Vec::new();
    let mut depth: usize = 0;
    // (enum name, depth of its body)
    let mut current: Option<(String, usize)> = None;
    for (line_no, line) in file.code_lines() {
        let code = line.code.as_str();
        let trimmed = code.trim_start();
        if let Some(rest) = trimmed.strip_prefix("pub enum ") {
            let name: String = rest
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            if !name.is_empty() {
                current = Some((name, depth + 1));
            }
        }
        if let Some((enum_name, body_depth)) = &current {
            // A variant starts a line at exactly the enum-body depth;
            // struct-variant fields sit one level deeper and closing
            // braces don't begin with an identifier.
            if depth == *body_depth {
                let name: String = trimmed
                    .chars()
                    .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                    .collect();
                if name.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
                    out.push(Variant {
                        enum_name: enum_name.clone(),
                        name,
                        line: line_no,
                    });
                }
            }
        }
        for c in code.chars() {
            match c {
                '{' => depth += 1,
                '}' => {
                    if let Some((_, body_depth)) = &current {
                        if depth == *body_depth {
                            current = None;
                        }
                    }
                    depth = depth.saturating_sub(1);
                }
                _ => {}
            }
        }
    }
    out
}

/// Whole-word occurrence check: `Mutex` matches in `sync::{Mutex}` but
/// not inside `MutexGuard` (guard types imply the lock import anyway).
fn has_word(code: &str, word: &str) -> bool {
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(rel) = code[from..].find(word) {
        let idx = from + rel;
        let before_ok = idx == 0 || !is_ident_byte(bytes[idx - 1]);
        let after_ok = idx + word.len() >= bytes.len() || !is_ident_byte(bytes[idx + word.len()]);
        if before_ok && after_ok {
            return true;
        }
        from = idx + word.len();
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn rules(findings: &[Finding]) -> Vec<&str> {
        findings.iter().map(|f| f.rule.as_str()).collect()
    }

    #[test]
    fn std_sync_mutex_import_is_flagged() {
        let f = SourceFile::from_source(
            "crates/serve/src/queue.rs",
            "use std::sync::{Arc, Condvar, Mutex};\n",
        );
        let found = check(&[f]);
        assert_eq!(rules(&found), vec!["std-sync-lock"]);
        assert_eq!(found[0].line, 1);
    }

    #[test]
    fn std_sync_arc_alone_is_fine_and_scope_is_serve_only() {
        let serve = SourceFile::from_source(
            "crates/serve/src/server.rs",
            "use std::sync::Arc;\nuse std::sync::atomic::AtomicBool;\n",
        );
        assert!(check(&[serve]).is_empty());
        let elsewhere =
            SourceFile::from_source("crates/nn/src/trainer.rs", "use std::sync::Mutex;\n");
        assert!(check(&[elsewhere]).is_empty());
    }

    #[test]
    fn qualified_std_mutex_path_is_flagged() {
        let f = SourceFile::from_source(
            "crates/serve/src/server.rs",
            "fn f() { let m = std::sync::Mutex::new(0u32); }\n",
        );
        assert_eq!(rules(&check(&[f])), vec!["std-sync-lock"]);
    }

    #[test]
    fn wall_clock_in_batcher_is_flagged_but_tests_are_exempt() {
        let f = SourceFile::from_source(
            "crates/serve/src/batcher.rs",
            "fn tick(&mut self) {\n    let now = Instant::now();\n}\n#[cfg(test)]\nmod tests {\n    fn t() { let now = Instant::now(); }\n}\n",
        );
        let found = check(&[f]);
        assert_eq!(rules(&found), vec!["batcher-wall-clock"]);
        assert_eq!(found[0].line, 2);
    }

    #[test]
    fn partial_cmp_in_metrics_is_flagged() {
        let f = SourceFile::from_source(
            "crates/serve/src/metrics.rs",
            "fn p(mut v: Vec<f64>) {\n    v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n}\n",
        );
        let found = check(&[f]);
        let mut got = rules(&found);
        got.sort_unstable();
        assert_eq!(got, vec!["nan-ordering", "nan-ordering"]);
    }

    #[test]
    fn dead_variant_is_flagged_and_constructed_one_is_not() {
        let errors = SourceFile::from_source(
            "crates/serve/src/error.rs",
            "pub enum ServeError {\n    Used {\n        capacity: usize,\n    },\n    NeverMade,\n}\n",
        );
        let user = SourceFile::from_source(
            "crates/serve/src/queue.rs",
            "fn f() -> ServeError {\n    ServeError::Used { capacity: 1 }\n}\nfn g(e: &ServeError) -> bool {\n    matches!(e, ServeError::NeverMade)\n}\n",
        );
        let found = check(&[errors, user]);
        assert_eq!(rules(&found), vec!["dead-variant"]);
        assert!(found[0].message.contains("NeverMade"));
        assert_eq!(found[0].line, 5);
    }

    #[test]
    fn direct_overwrite_is_flagged_everywhere_in_production_code() {
        let ppm = SourceFile::from_source(
            "crates/data/src/ppm.rs",
            "fn save() {\n    let mut file = std::fs::File::create(path)?;\n}\n",
        );
        assert_eq!(rules(&check(&[ppm])), vec!["direct-overwrite"]);
        let setup = SourceFile::from_source(
            "crates/core/src/setup.rs",
            "fn cache() {\n    fs::write(&path, &bytes)?;\n}\n",
        );
        let found = check(&[setup]);
        assert_eq!(rules(&found), vec!["direct-overwrite"]);
        assert_eq!(found[0].line, 2);
    }

    #[test]
    fn atomic_write_impl_and_test_code_are_exempt_from_overwrite_rule() {
        let blessed = SourceFile::from_source(
            "crates/tensor/src/io.rs",
            "pub fn atomic_write() {\n    let mut f = fs::File::create(tmp)?;\n}\n",
        );
        assert!(check(&[blessed]).is_empty());
        let test_only = SourceFile::from_source(
            "crates/nn/src/checkpoint.rs",
            "#[cfg(test)]\nmod tests {\n    fn t() { std::fs::write(&p, b\"x\").unwrap(); }\n}\n",
        );
        assert!(check(&[test_only]).is_empty());
    }

    #[test]
    fn raw_spawn_outside_pool_and_serve_is_flagged() {
        let rogue = SourceFile::from_source(
            "crates/nn/src/trainer.rs",
            "fn f() {\n    let h = std::thread::spawn(move || work());\n}\n",
        );
        let found = check(&[rogue]);
        assert_eq!(rules(&found), vec!["raw-thread-spawn"]);
        assert_eq!(found[0].line, 2);
        let builder = SourceFile::from_source(
            "crates/core/src/setup.rs",
            "fn f() {\n    let b = thread::Builder::new().name(\"x\".into());\n}\n",
        );
        assert_eq!(rules(&check(&[builder])), vec!["raw-thread-spawn"]);
    }

    #[test]
    fn pool_impl_serve_and_test_code_are_exempt_from_spawn_rule() {
        let pool = SourceFile::from_source(
            "crates/tensor/src/par.rs",
            "fn grow() {\n    thread::Builder::new().spawn(worker_loop);\n}\n",
        );
        assert!(check(&[pool]).is_empty());
        let serve = SourceFile::from_source(
            "crates/serve/src/server.rs",
            "fn launch() {\n    let h = std::thread::spawn(move || run());\n}\n",
        );
        assert!(check(&[serve]).is_empty());
        let test_only = SourceFile::from_source(
            "crates/nn/src/model.rs",
            "#[cfg(test)]\nmod tests {\n    fn t() { std::thread::spawn(|| {}); }\n}\n",
        );
        assert!(check(&[test_only]).is_empty());
    }

    #[test]
    fn net_crate_is_exempt_from_spawn_rule() {
        let net = SourceFile::from_source(
            "crates/net/src/server.rs",
            "fn accept() {\n    let h = std::thread::Builder::new().spawn(run)?;\n}\n",
        );
        assert!(check(&[net]).is_empty());
    }

    #[test]
    fn raw_socket_outside_net_is_flagged() {
        let listener = SourceFile::from_source(
            "crates/serve/src/server.rs",
            "fn f() {\n    let l = TcpListener::bind(\"0.0.0.0:80\")?;\n}\n",
        );
        let found = check(&[listener]);
        assert_eq!(rules(&found), vec!["raw-socket"]);
        assert_eq!(found[0].line, 2);
        let dialer = SourceFile::from_source(
            "crates/core/src/setup.rs",
            "fn f() {\n    let s = std::net::TcpStream::connect(addr)?;\n}\n",
        );
        assert_eq!(rules(&check(&[dialer])), vec!["raw-socket"]);
    }

    #[test]
    fn net_crate_and_test_code_are_exempt_from_socket_rule() {
        let net = SourceFile::from_source(
            "crates/net/src/server.rs",
            "fn f() {\n    let l = TcpListener::bind(&addr)?;\n    let s = TcpStream::connect(addr)?;\n}\n",
        );
        assert!(check(&[net]).is_empty());
        let test_only = SourceFile::from_source(
            "crates/serve/src/server.rs",
            "#[cfg(test)]\nmod tests {\n    fn t() { let s = TcpStream::connect(a).unwrap(); }\n}\n",
        );
        assert!(check(&[test_only]).is_empty());
    }

    #[test]
    fn match_arms_do_not_count_as_construction() {
        let errors = SourceFile::from_source(
            "crates/serve/src/error.rs",
            "pub enum DeadlineStage {\n    Queue,\n}\n",
        );
        let user = SourceFile::from_source(
            "crates/serve/src/metrics.rs",
            "fn f(s: DeadlineStage) {\n    match s {\n        DeadlineStage::Queue => {}\n    }\n}\n",
        );
        let found = check(&[errors, user]);
        assert_eq!(rules(&found), vec!["dead-variant"]);
    }
}
