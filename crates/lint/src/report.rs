//! Findings, the allowlist-aware summary, and the human/JSON reports.

use serde::Serialize;

/// One raw finding produced by a pass.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Finding {
    /// Stable rule identifier (e.g. `unwrap`, `lock-cycle`).
    pub rule: String,
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-indexed line number.
    pub line: usize,
    /// What is wrong and what to do instead.
    pub message: String,
    /// Trimmed source excerpt of the offending line.
    pub excerpt: String,
    /// Stable identity: FNV-1a of rule + path + the whitespace-
    /// normalized excerpt (digit-stripped message when no excerpt), so
    /// the identity survives pure line-number drift.
    pub fingerprint: String,
}

impl Finding {
    /// Convenience constructor trimming the excerpt and stamping the
    /// fingerprint.
    pub fn new(
        rule: &str,
        path: &str,
        line: usize,
        message: impl Into<String>,
        excerpt: &str,
    ) -> Self {
        let message = message.into();
        let excerpt: String = excerpt.trim().chars().take(120).collect();
        let content = if excerpt.is_empty() {
            message.chars().filter(|c| !c.is_ascii_digit()).collect()
        } else {
            normalize_ws(&excerpt)
        };
        let fingerprint = format!("{:016x}", fnv1a64(&[rule, path, &content]));
        Finding {
            rule: rule.to_string(),
            path: path.to_string(),
            line,
            message,
            excerpt,
            fingerprint,
        }
    }
}

/// Collapses whitespace runs to single spaces.
fn normalize_ws(s: &str) -> String {
    s.split_whitespace().collect::<Vec<_>>().join(" ")
}

/// 64-bit FNV-1a over the parts with a separator byte between them.
fn fnv1a64(parts: &[&str]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut step = |b: u8| {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for p in parts {
        for b in p.bytes() {
            step(b);
        }
        step(0);
    }
    h
}

/// Per-(rule, path) tally after the baseline is applied.
#[derive(Debug, Clone, Serialize)]
pub struct GroupSummary {
    /// Rule identifier.
    pub rule: String,
    /// File the findings were grouped under.
    pub path: String,
    /// Findings the passes produced.
    pub found: usize,
    /// Budget granted by `lint.allow`.
    pub allowed: usize,
    /// `max(0, found - allowed)` — what fails the gate.
    pub new: usize,
}

/// The serializable outcome of a full lint run (`results/lint.json`).
///
/// Only *new* findings are listed individually; baselined ones are
/// rolled up into their group so the committed report stays small and
/// deterministic.
#[derive(Debug, Clone, Serialize)]
pub struct LintReport {
    /// Report format version (2 = findings carry fingerprints).
    pub schema: u32,
    /// Source files analysed.
    pub files_scanned: usize,
    /// Total findings across all rules.
    pub total_findings: usize,
    /// Findings covered by the `lint.allow` baseline.
    pub baselined: usize,
    /// Findings exceeding the baseline — nonzero fails CI.
    pub new_findings: usize,
    /// (rule, path) groups with at least one finding, sorted.
    pub groups: Vec<GroupSummary>,
    /// The findings exceeding the baseline, sorted.
    pub new_finding_details: Vec<Finding>,
    /// Baseline entries whose budget exceeds current findings — the
    /// ratchet should be tightened (warning, not failure).
    pub ratchet_slack: Vec<GroupSummary>,
}

impl LintReport {
    /// Whether the run passes the gate.
    pub fn is_clean(&self) -> bool {
        self.new_findings == 0
    }

    /// Pretty JSON rendering.
    pub fn to_json(&self) -> String {
        serde::json::to_string_pretty(self)
    }

    /// Human-readable multi-line rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "fademl-lint: {} files, {} findings ({} baselined, {} new)\n",
            self.files_scanned, self.total_findings, self.baselined, self.new_findings
        ));
        if !self.groups.is_empty() {
            out.push_str("  per-file tallies (rule path found/allowed):\n");
            for g in &self.groups {
                let marker = if g.new > 0 { "  !!" } else { "    " };
                out.push_str(&format!(
                    "{marker} {:<16} {:<44} {}/{}\n",
                    g.rule, g.path, g.found, g.allowed
                ));
            }
        }
        if !self.new_finding_details.is_empty() {
            out.push_str("  new findings (fix or add to lint.allow with a justification):\n");
            for f in &self.new_finding_details {
                out.push_str(&format!(
                    "    {}:{}: [{}] {}\n        {}\n",
                    f.path, f.line, f.rule, f.message, f.excerpt
                ));
            }
        }
        if !self.ratchet_slack.is_empty() {
            out.push_str("  ratchet: baseline slack — tighten lint.allow:\n");
            for g in &self.ratchet_slack {
                out.push_str(&format!(
                    "    {:<16} {:<44} allows {}, only {} found\n",
                    g.rule, g.path, g.allowed, g.found
                ));
            }
        }
        if self.is_clean() {
            out.push_str("  OK: no findings beyond the checked-in baseline\n");
        } else {
            out.push_str(&format!(
                "  FAIL: {} finding(s) beyond the baseline\n",
                self.new_findings
            ));
        }
        out
    }
}
