//! The `lint.allow` ratchet: a checked-in budget of known findings per
//! `(rule, file)` that may only shrink.
//!
//! Format — one entry per line, `#` starts a comment:
//!
//! ```text
//! <rule> <path> <count>   # justification
//! ```
//!
//! A run fails when any `(rule, path)` group produces more findings
//! than its budget (missing entry = budget 0). Producing *fewer* is
//! reported as ratchet slack so the budget gets tightened; it never
//! fails the gate, keeping the ratchet monotone without blocking
//! unrelated work.

use std::collections::BTreeMap;

use crate::report::{Finding, GroupSummary, LintReport};

/// Parsed allowlist: `rule → path → (budget, justification)`. The
/// nesting (rather than a `(String, String)` key) lets [`Baseline::budget`]
/// look up with borrowed `&str`s — zero allocations per query.
#[derive(Debug, Clone, Default)]
pub struct Baseline {
    entries: BTreeMap<String, BTreeMap<String, (usize, String)>>,
}

impl Baseline {
    /// Parses `lint.allow` text. Malformed lines are reported as
    /// errors rather than silently ignored — a typo in the allowlist
    /// must not widen the budget.
    ///
    /// # Errors
    ///
    /// Returns the 1-indexed line and a description for the first
    /// malformed entry.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut entries: BTreeMap<String, BTreeMap<String, (usize, String)>> = BTreeMap::new();
        for (idx, raw) in text.lines().enumerate() {
            let (entry, comment) = match raw.split_once('#') {
                Some((e, c)) => (e.trim(), c.trim().to_string()),
                None => (raw.trim(), String::new()),
            };
            if entry.is_empty() {
                continue;
            }
            let mut parts = entry.split_whitespace();
            let (Some(rule), Some(path), Some(count), None) =
                (parts.next(), parts.next(), parts.next(), parts.next())
            else {
                return Err(format!(
                    "lint.allow:{}: expected `<rule> <path> <count>`, got `{entry}`",
                    idx + 1
                ));
            };
            let count: usize = count
                .parse()
                .map_err(|_| format!("lint.allow:{}: `{count}` is not a count", idx + 1))?;
            entries
                .entry(rule.to_string())
                .or_default()
                .insert(path.to_string(), (count, comment));
        }
        Ok(Baseline { entries })
    }

    /// Budget for a `(rule, path)` group; absent entries allow nothing.
    pub fn budget(&self, rule: &str, path: &str) -> usize {
        self.entries
            .get(rule)
            .and_then(|paths| paths.get(path))
            .map_or(0, |(n, _)| *n)
    }

    /// The justification comment for a `(rule, path)` entry, if any.
    fn comment(&self, rule: &str, path: &str) -> Option<&str> {
        self.entries
            .get(rule)
            .and_then(|paths| paths.get(path))
            .map(|(_, c)| c.as_str())
    }

    /// Applies the baseline to raw findings, producing the report.
    pub fn apply(&self, findings: Vec<Finding>, files_scanned: usize) -> LintReport {
        let mut grouped: BTreeMap<(String, String), Vec<Finding>> = BTreeMap::new();
        for f in findings {
            grouped
                .entry((f.rule.clone(), f.path.clone()))
                .or_default()
                .push(f);
        }
        let mut groups = Vec::new();
        let mut new_finding_details = Vec::new();
        let mut total = 0;
        let mut baselined = 0;
        for ((rule, path), mut members) in grouped {
            members.sort_by_key(|f| f.line);
            let allowed = self.budget(&rule, &path);
            let found = members.len();
            total += found;
            let new = found.saturating_sub(allowed);
            baselined += found - new;
            if new > 0 {
                // The whole group is listed: which of N sites is "the
                // new one" is not knowable at line level, and showing
                // every candidate beats hiding the offender.
                new_finding_details.extend(members);
            }
            groups.push(GroupSummary {
                rule,
                path,
                found,
                allowed,
                new,
            });
        }
        // Baseline entries with slack (or whose file no longer yields
        // findings at all) — candidates for tightening.
        let mut ratchet_slack = Vec::new();
        for (rule, paths) in &self.entries {
            for (path, (budget, _)) in paths {
                let found = groups
                    .iter()
                    .find(|g| &g.rule == rule && &g.path == path)
                    .map_or(0, |g| g.found);
                if found < *budget {
                    ratchet_slack.push(GroupSummary {
                        rule: rule.clone(),
                        path: path.clone(),
                        found,
                        allowed: *budget,
                        new: 0,
                    });
                }
            }
        }
        new_finding_details
            .sort_by(|a, b| (&a.rule, &a.path, a.line).cmp(&(&b.rule, &b.path, b.line)));
        let new_findings = total - baselined;
        LintReport {
            schema: 2,
            files_scanned,
            total_findings: total,
            baselined,
            new_findings,
            groups,
            new_finding_details,
            ratchet_slack,
        }
    }

    /// Renders an allowlist matching the given findings exactly,
    /// preserving justification comments of surviving entries
    /// (`--update-baseline`). Running it twice is byte-idempotent: the
    /// output depends only on the findings and surviving comments.
    pub fn regenerate(&self, findings: &[Finding], header: &str) -> String {
        let mut counts: BTreeMap<(&str, &str), usize> = BTreeMap::new();
        for f in findings {
            *counts
                .entry((f.rule.as_str(), f.path.as_str()))
                .or_default() += 1;
        }
        let mut out = String::from(header);
        for ((rule, path), count) in counts {
            let comment = self.comment(rule, path).unwrap_or("");
            if comment.is_empty() {
                out.push_str(&format!("{rule} {path} {count}\n"));
            } else {
                out.push_str(&format!("{rule} {path} {count}  # {comment}\n"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &str, path: &str, line: usize) -> Finding {
        Finding::new(rule, path, line, "msg", "excerpt")
    }

    #[test]
    fn parse_budget_and_comments() {
        let b = Baseline::parse(
            "# header\nunwrap crates/x/src/a.rs 2  # proven sizes\n\nindex crates/y/src/b.rs 10\n",
        )
        .unwrap();
        assert_eq!(b.budget("unwrap", "crates/x/src/a.rs"), 2);
        assert_eq!(b.budget("index", "crates/y/src/b.rs"), 10);
        assert_eq!(b.budget("index", "crates/z/src/c.rs"), 0);
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(Baseline::parse("unwrap only-two-fields\n").is_err());
        assert!(Baseline::parse("unwrap a.rs many\n").is_err());
        assert!(Baseline::parse("unwrap a.rs 1 extra\n").is_err());
    }

    #[test]
    fn within_budget_is_clean_and_over_budget_fails() {
        let b = Baseline::parse("unwrap a.rs 2\n").unwrap();
        let clean = b.apply(
            vec![finding("unwrap", "a.rs", 1), finding("unwrap", "a.rs", 9)],
            1,
        );
        assert!(clean.is_clean());
        assert_eq!(clean.baselined, 2);

        let over = b.apply(
            vec![
                finding("unwrap", "a.rs", 1),
                finding("unwrap", "a.rs", 9),
                finding("unwrap", "a.rs", 20),
            ],
            1,
        );
        assert!(!over.is_clean());
        assert_eq!(over.new_findings, 1);
        // All group members are surfaced so the offender can't hide.
        assert_eq!(over.new_finding_details.len(), 3);
    }

    #[test]
    fn unknown_group_has_zero_budget() {
        let report = Baseline::default().apply(vec![finding("panic", "b.rs", 3)], 1);
        assert_eq!(report.new_findings, 1);
    }

    #[test]
    fn slack_is_reported_not_fatal() {
        let b = Baseline::parse("unwrap a.rs 5\nindex gone.rs 3\n").unwrap();
        let report = b.apply(vec![finding("unwrap", "a.rs", 1)], 1);
        assert!(report.is_clean());
        assert_eq!(report.ratchet_slack.len(), 2);
    }

    #[test]
    fn regenerate_preserves_justifications() {
        let b = Baseline::parse("unwrap a.rs 9  # proven\n").unwrap();
        let text = b.regenerate(
            &[finding("unwrap", "a.rs", 1), finding("index", "b.rs", 2)],
            "# hdr\n",
        );
        assert!(text.contains("unwrap a.rs 1  # proven"));
        assert!(text.contains("index b.rs 1\n"));
    }

    #[test]
    fn regenerate_is_idempotent() {
        let b = Baseline::parse("unwrap a.rs 9  # proven\nindex gone.rs 2  # stale\n").unwrap();
        let findings = [finding("unwrap", "a.rs", 1), finding("index", "b.rs", 2)];
        let first = b.regenerate(&findings, "# hdr\n");
        let reparsed = Baseline::parse(&first).unwrap();
        let second = reparsed.regenerate(&findings, "# hdr\n");
        assert_eq!(first, second);
    }
}
