//! Pass — `hot-path-alloc`: the measured allocation debt ROADMAP
//! item 2 (shape-keyed kernel selection + scratch arenas) pays down.
//!
//! The serve worker loop (`process_batch`) is the root. Every function
//! reachable from it through the [`Policy::Permissive`] workspace call
//! graph and living in the compute crates ([`SINK_SCOPE`]) is audited
//! for allocation calls: `Vec::new` / `Box::new` / `vec![…]` /
//! `to_vec` / `with_capacity` / `collect` / `clone`. Each site is one
//! finding, ratcheted through `lint.allow` — the budget is today's
//! im2col/packing scratch, and the scratch-arena refactor shrinks it.
//!
//! Scoping the *sinks* to the compute crates is deliberate: batch
//! assembly in `crates/serve` allocates once per request by design
//! (response vectors, wire frames), while per-call allocation inside
//! the kernels is the steady-state cost the arena removes. `Arc::clone`
//! / `Rc::clone` are refcount bumps, not allocations, and are exempt.

use std::collections::BTreeSet;

use crate::callgraph::{is_test_fn, CallGraph};
use crate::ir::{Ir, Receiver};
use crate::report::Finding;
use crate::source::SourceFile;

/// Reachability roots: the serve worker batch loop.
pub const ROOTS: &[&str] = &["process_batch"];

/// Where allocation findings are reported: the compute crates that
/// run per-batch work, plus the pipeline glue.
pub const SINK_SCOPE: &[&str] = &[
    "crates/tensor/src/",
    "crates/nn/src/",
    "crates/filters/src/",
    "crates/detect/src/",
    "crates/core/src/pipeline.rs",
];

/// Method-style allocation calls (any receiver).
const ALLOC_METHODS: &[&str] = &["to_vec", "with_capacity", "collect"];

/// Runs the allocation audit. `graph` must be the whole-workspace
/// permissive call graph built from `ir`.
pub fn audit(ir: &Ir, files: &[SourceFile], graph: &CallGraph) -> Vec<Finding> {
    let hot: BTreeSet<String> = graph.reachable(ROOTS.iter().copied());
    let mut findings = Vec::new();
    for (fi, file) in ir.files.iter().enumerate() {
        if !SINK_SCOPE.iter().any(|p| file.path.starts_with(p)) {
            continue;
        }
        for f in &file.fns {
            if !hot.contains(&f.name) || is_test_fn(&files[fi], f) {
                continue;
            }
            for stmt in f.stmts() {
                for call in &stmt.calls {
                    if let Some(what) = alloc_kind(call) {
                        findings.push(Finding::new(
                            "hot-path-alloc",
                            &file.path,
                            call.line,
                            format!(
                                "`{what}` in `{}`, reachable from the serve worker \
                                 loop — lease from fademl_tensor::plan::alloc instead (DESIGN.md §18)",
                                f.name
                            ),
                            raw_line(&files[fi], call.line),
                        ));
                    }
                }
                if stmt.text.contains("vec![") || stmt.text.contains("vec!(") {
                    findings.push(Finding::new(
                        "hot-path-alloc",
                        &file.path,
                        stmt.line,
                        format!(
                            "`vec![…]` in `{}`, reachable from the serve worker \
                             loop — lease from fademl_tensor::plan::alloc instead (DESIGN.md §18)",
                            f.name
                        ),
                        raw_line(&files[fi], stmt.line),
                    ));
                }
            }
        }
    }
    findings
}

fn raw_line(file: &SourceFile, line: usize) -> &str {
    file.lines
        .get(line.wrapping_sub(1))
        .map_or("", |l| l.raw.as_str())
}

/// Classifies an allocating call site, exempting refcount clones.
fn alloc_kind(call: &crate::ir::CallSite) -> Option<String> {
    match (call.name.as_str(), &call.recv) {
        ("new", Receiver::Path(seg)) if seg == "Vec" || seg == "Box" || seg == "String" => {
            Some(format!("{seg}::new"))
        }
        ("clone", Receiver::Path(seg)) if seg == "Arc" || seg == "Rc" => None,
        ("clone", _) => Some(".clone()".to_string()),
        (m, _) if ALLOC_METHODS.contains(&m) => Some(format!(".{m}()")),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::Policy;

    fn run(paths_srcs: &[(&str, &str)]) -> Vec<Finding> {
        let files: Vec<SourceFile> = paths_srcs
            .iter()
            .map(|(p, s)| SourceFile::from_source(*p, s))
            .collect();
        let ir = Ir::parse(&files);
        let graph = CallGraph::build(&ir, &files, &[], Policy::Permissive);
        audit(&ir, &files, &graph)
    }

    #[test]
    fn allocation_reachable_from_worker_loop_is_flagged() {
        let found = run(&[
            (
                "crates/serve/src/server.rs",
                "fn process_batch(p: &P) { p.classify_batch(); }\n",
            ),
            (
                "crates/core/src/pipeline.rs",
                "fn classify_batch() { kernel(); }\n",
            ),
            (
                "crates/tensor/src/kernels.rs",
                "fn kernel() {\n    let scratch = Vec::with_capacity(64);\n    let v = vec![0.0; 8];\n}\n",
            ),
        ]);
        let rules: Vec<_> = found.iter().map(|f| (f.rule.as_str(), f.line)).collect();
        assert_eq!(
            rules,
            vec![("hot-path-alloc", 2), ("hot-path-alloc", 3)],
            "{found:?}"
        );
    }

    #[test]
    fn unreachable_and_out_of_scope_allocations_are_ignored() {
        let found = run(&[
            (
                "crates/serve/src/server.rs",
                "fn process_batch(p: &P) { run(); }\nfn assemble() { let v: Vec<u8> = Vec::new(); }\n",
            ),
            (
                "crates/tensor/src/kernels.rs",
                "fn cold() { let v = Vec::with_capacity(4); }\nfn run() {}\n",
            ),
        ]);
        // `assemble` is in serve (out of sink scope) and `cold` is not
        // reachable from the loop.
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn arc_clone_is_exempt_but_deep_clone_is_not() {
        let found = run(&[
            (
                "crates/serve/src/server.rs",
                "fn process_batch(p: &P) { kernel(); }\n",
            ),
            (
                "crates/nn/src/model.rs",
                "fn kernel(w: &W) {\n    let shared = Arc::clone(&w.arc);\n    let copy = w.tensor.clone();\n}\n",
            ),
        ]);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].line, 3);
    }
}
