//! Pass — `lock-across-io`: a held lock guard live across a blocking
//! I/O call in the serving or network layer.
//!
//! A parking_lot guard held while the thread blocks on the filesystem,
//! a socket, or a channel `recv` turns one slow peer into a stall for
//! every thread behind that lock — the exact hazard class the replica
//! router and connection registry exist to avoid. The pass reuses the
//! guard-liveness walker from [`crate::guards`] (block-scoped `let`
//! guards, `drop(g)` release, statement-scoped temporaries that stay
//! live across their child blocks) and flags:
//!
//! * direct blocking calls — `fs::*` / `File::open` / socket
//!   reads/writes/shutdowns/accepts/connects, frame I/O
//!   (`read_frame`/`write_frame`), and channel `recv`/`recv_timeout` —
//!   made while any guard is held;
//! * calls to in-scope workspace functions that transitively perform
//!   such I/O (fixpoint over the [`Policy::Strict`] call graph).
//!
//! Condvar `wait` is *not* an I/O sink: parking a condvar releases its
//! mutex by design (`request.rs` relies on this).

use std::collections::{BTreeMap, BTreeSet};

use crate::callgraph::{is_test_fn, resolves, CallGraph, Policy};
use crate::guards::{walk_fn, Event, ACQUIRE_METHODS};
use crate::ir::{CallSite, Ir, Receiver};
use crate::report::Finding;
use crate::source::SourceFile;

/// Where the pass looks: the serving engine and the network front.
pub const IO_SCOPE: &[&str] = &["crates/serve/src/", "crates/net/src/"];

/// Blocking method names (any receiver).
const IO_METHODS: &[&str] = &[
    "recv",
    "recv_timeout",
    "read_exact",
    "write_all",
    "flush",
    "shutdown",
    "accept",
    "connect",
    "read_frame",
    "write_frame",
    "read_to_end",
    "set_read_timeout",
    "set_write_timeout",
];

/// Path receivers whose every associated call blocks on the OS.
const IO_PATHS: &[&str] = &["fs", "File", "TcpStream", "TcpListener", "OpenOptions"];

/// Runs the pass over every file in [`IO_SCOPE`].
pub fn check(ir: &Ir, files: &[SourceFile]) -> Vec<Finding> {
    let graph = CallGraph::build(ir, files, IO_SCOPE, Policy::Strict);

    // Transitive "does blocking I/O" property per function name.
    let mut seed: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for (fi, file) in ir.files.iter().enumerate() {
        if !IO_SCOPE.iter().any(|p| file.path.starts_with(p)) {
            continue;
        }
        for f in &file.fns {
            if is_test_fn(&files[fi], f) {
                continue;
            }
            let entry = seed.entry(f.name.clone()).or_default();
            for stmt in f.stmts() {
                for call in &stmt.calls {
                    if is_direct_io(call) {
                        entry.insert("io".to_string());
                    }
                }
            }
        }
    }
    let does_io = graph.propagate(seed);

    let mut findings = Vec::new();
    for (fi, file) in ir.files.iter().enumerate() {
        if !IO_SCOPE.iter().any(|p| file.path.starts_with(p)) {
            continue;
        }
        for f in &file.fns {
            if is_test_fn(&files[fi], f) {
                continue;
            }
            walk_fn(f, &mut |held, ev| {
                let Event::Call(call) = ev else { return };
                if held.is_empty() {
                    return;
                }
                let transitive = !is_direct_io(call)
                    && resolves(&call.recv, Policy::Strict)
                    && !ACQUIRE_METHODS.contains(&call.name.as_str())
                    && graph.defs.contains_key(&call.name)
                    && does_io.get(&call.name).is_some_and(|s| s.contains("io"));
                if is_direct_io(call) || transitive {
                    let h = &held[held.len() - 1];
                    let how = if transitive {
                        format!("`{}` (transitively blocking)", call.name)
                    } else {
                        format!("`{}`", call.name)
                    };
                    findings.push(Finding::new(
                        "lock-across-io",
                        &file.path,
                        call.line,
                        format!(
                            "{how} called while guard on `{}` (taken at line {}) is \
                             held in `{}` — move the I/O outside the critical section",
                            h.lock, h.line, f.name
                        ),
                        files[fi]
                            .lines
                            .get(call.line.wrapping_sub(1))
                            .map_or("", |l| l.raw.as_str()),
                    ));
                }
            });
        }
    }
    findings
}

/// Whether a call site is itself a blocking I/O operation.
fn is_direct_io(call: &CallSite) -> bool {
    match &call.recv {
        Receiver::Path(seg) => IO_PATHS.contains(&seg.as_str()),
        Receiver::Bare => call.name == "read_frame" || call.name == "write_frame",
        _ => IO_METHODS.contains(&call.name.as_str()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Finding> {
        let files = [SourceFile::from_source("crates/net/src/server.rs", src)];
        let ir = Ir::parse(&files);
        check(&ir, &files)
    }

    #[test]
    fn temp_guard_across_socket_shutdown_loop_is_flagged() {
        // The shape of the real finding: draining a connection registry
        // while its lock is held, shutting down each socket.
        let found = run(
            "impl S {\n    fn stop(&self) {\n        for (_, stream) in self.conns.lock().drain(..) {\n            let _ = stream.shutdown(Shutdown::Both);\n        }\n    }\n}\n",
        );
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].rule, "lock-across-io");
        assert_eq!(found[0].line, 4);
    }

    #[test]
    fn collect_then_io_outside_the_lock_is_clean() {
        let found = run(
            "impl S {\n    fn stop(&self) {\n        let streams: Vec<TcpStream> = self.conns.lock().drain(..).collect();\n        for stream in streams {\n            let _ = stream.shutdown(Shutdown::Both);\n        }\n    }\n}\n",
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn channel_recv_under_let_guard_is_flagged() {
        let found = run(
            "impl S {\n    fn next(&self) {\n        let g = self.state.lock();\n        let batch = self.rx.recv();\n    }\n}\n",
        );
        assert_eq!(found.len(), 1, "{found:?}");
    }

    #[test]
    fn transitive_io_through_helper_is_flagged() {
        let found = run(
            "impl S {\n    fn save(&self) {\n        let g = self.state.lock();\n        self.persist();\n    }\n    fn persist(&self) {\n        fs::write(\"p\", b\"x\").unwrap();\n    }\n}\n",
        );
        assert!(
            found.iter().any(|f| f.message.contains("transitively")),
            "{found:?}"
        );
    }

    #[test]
    fn condvar_wait_is_not_io() {
        let found = run(
            "impl Slot {\n    fn block(&self) {\n        let mut guard = self.outcome.lock();\n        loop {\n            guard = self.ready.wait(guard);\n        }\n    }\n}\n",
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn io_after_drop_is_clean() {
        let found = run(
            "impl S {\n    fn stop(&self) {\n        let g = self.state.lock();\n        drop(g);\n        let _ = self.stream.shutdown(Shutdown::Both);\n    }\n}\n",
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn out_of_scope_crates_are_ignored() {
        let files = [SourceFile::from_source(
            "crates/nn/src/trainer.rs",
            "fn f(m: &M) {\n    let g = m.state.lock();\n    fs::write(\"p\", b\"x\").unwrap();\n}\n",
        )];
        let ir = Ir::parse(&files);
        assert!(check(&ir, &files).is_empty());
    }
}
