//! Pass 2 — panic-surface audit.
//!
//! Flags constructs that can abort a hot-path request in non-test code
//! of the latency-critical crates: `unwrap()`, `expect(…)`, `panic!`,
//! `unreachable!`, unchecked slice/array indexing `x[…]`, and `as`
//! casts to narrower integer types. Every rule is governed by the
//! `lint.allow` ratchet, so proven-safe sites (e.g. bounds-checked
//! inner loops in `fademl-tensor`) are budgeted per file and the count
//! can only go down.

use crate::report::Finding;
use crate::source::{is_ident_byte, SourceFile};

/// Default audit scope: the crates on the serving hot path. `core` is
/// scoped to the deployed pipeline only — experiment drivers may panic.
pub const HOT_PATH_SCOPE: &[&str] = &[
    "crates/tensor/src/",
    "crates/nn/src/",
    "crates/filters/src/",
    "crates/detect/src/",
    "crates/serve/src/",
    "crates/net/src/",
    "crates/core/src/pipeline.rs",
];

/// Integer targets where `expr as T` can silently truncate or wrap.
/// 64-bit targets are exempt: nothing on the hot path is 128-bit.
const NARROW_INT_TARGETS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32", "usize", "isize"];

/// Runs the audit over every file inside `scope`.
pub fn audit(files: &[SourceFile], scope: &[&str]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in files {
        if !in_scope(&file.path, scope) {
            continue;
        }
        for (line_no, line) in file.code_lines() {
            scan_line(&file.path, line_no, &line.code, &line.raw, &mut findings);
        }
    }
    findings
}

fn in_scope(path: &str, scope: &[&str]) -> bool {
    scope.iter().any(|p| path.starts_with(p))
}

fn scan_line(path: &str, line_no: usize, code: &str, raw: &str, out: &mut Vec<Finding>) {
    for (pat, rule, message) in [
        (
            ".unwrap()",
            "unwrap",
            "`unwrap()` on a hot path aborts the whole worker on None/Err; return a typed error",
        ),
        (
            ".expect(",
            "expect",
            "`expect(…)` panics on the hot path; restructure so the invariant is type-enforced",
        ),
        (
            "panic!",
            "panic",
            "explicit `panic!` in serving code; batch isolation should never rely on unwinding",
        ),
        (
            "unreachable!",
            "unreachable",
            "`unreachable!` is a latent abort; encode the exhaustiveness in the type instead",
        ),
    ] {
        for _ in match_indices_outside_idents(code, pat) {
            out.push(Finding::new(rule, path, line_no, message, raw));
        }
    }
    scan_indexing(path, line_no, code, raw, out);
    scan_narrow_casts(path, line_no, code, raw, out);
}

/// All occurrences of `pat`; when the pattern starts with an
/// identifier character, occurrences glued to a preceding identifier
/// byte are skipped (so `dont_panic!` does not match `panic!`).
fn match_indices_outside_idents(code: &str, pat: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    let needs_boundary = pat.as_bytes().first().copied().is_some_and(is_ident_byte);
    while let Some(rel) = code[from..].find(pat) {
        let idx = from + rel;
        if !needs_boundary || idx == 0 || !is_ident_byte(code.as_bytes()[idx - 1]) {
            out.push(idx);
        }
        from = idx + pat.len();
    }
    out
}

/// Unchecked indexing: `[` directly preceded by an identifier byte,
/// `)` or `]` is an index/slice expression (types, attributes and
/// macro brackets are preceded by other characters).
fn scan_indexing(path: &str, line_no: usize, code: &str, raw: &str, out: &mut Vec<Finding>) {
    let bytes = code.as_bytes();
    for i in 1..bytes.len() {
        if bytes[i] == b'[' {
            let prev = bytes[i - 1];
            if is_ident_byte(prev) || prev == b')' || prev == b']' {
                out.push(Finding::new(
                    "index",
                    path,
                    line_no,
                    "unchecked indexing panics out-of-bounds; prefer `get`/iterators or budget it",
                    raw,
                ));
            }
        }
    }
}

/// `expr as u8|u16|u32|i8|i16|i32|usize|isize` — potential truncation.
fn scan_narrow_casts(path: &str, line_no: usize, code: &str, raw: &str, out: &mut Vec<Finding>) {
    for idx in match_indices_outside_idents(code, " as ") {
        let after = &code[idx + 4..];
        let target: String = after
            .chars()
            .take_while(|c| is_ident_byte(*c as u8))
            .collect();
        if NARROW_INT_TARGETS.contains(&target.as_str()) {
            out.push(Finding::new(
                "as-int",
                path,
                line_no,
                format!("`as {target}` silently truncates/wraps; prefer `try_from` or budget it"),
                raw,
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn run(path: &str, src: &str) -> Vec<Finding> {
        audit(&[SourceFile::from_source(path, src)], HOT_PATH_SCOPE)
    }

    fn rules(findings: &[Finding]) -> Vec<&str> {
        findings.iter().map(|f| f.rule.as_str()).collect()
    }

    #[test]
    fn hidden_unwrap_is_found_with_location() {
        let src = "fn hot(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
        let found = run("crates/serve/src/server.rs", src);
        assert_eq!(rules(&found), vec!["unwrap"]);
        assert_eq!(found[0].line, 2);
        assert_eq!(found[0].path, "crates/serve/src/server.rs");
    }

    #[test]
    fn test_code_and_strings_are_exempt() {
        let src = "fn msg() -> &'static str { \"never .unwrap() here\" }\n#[cfg(test)]\nmod tests {\n    fn t() { None::<u32>.unwrap(); }\n}\n";
        assert!(run("crates/serve/src/server.rs", src).is_empty());
    }

    #[test]
    fn out_of_scope_files_are_ignored() {
        let src = "fn f(x: Option<u32>) { x.unwrap(); }\n";
        assert!(run("crates/data/src/generator.rs", src).is_empty());
        assert!(run("crates/core/src/experiments/fig5.rs", src).is_empty());
        // …but the deployed pipeline inside core is audited.
        assert_eq!(run("crates/core/src/pipeline.rs", src).len(), 1);
    }

    #[test]
    fn expect_panic_unreachable_are_found() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    let v = x.expect(\"set\");\n    if v > 9 { panic!(\"big\"); }\n    match v { 0..=9 => v, _ => unreachable!() }\n}\n";
        let found = run("crates/nn/src/layer.rs", src);
        let mut got = rules(&found);
        got.sort_unstable();
        assert_eq!(got, vec!["expect", "panic", "unreachable"]);
    }

    #[test]
    fn panic_inside_identifier_does_not_match() {
        let src = "fn f() { dont_panic!(); }\n";
        assert!(run("crates/nn/src/layer.rs", src).is_empty());
    }

    #[test]
    fn indexing_expressions_are_found_but_types_are_not() {
        let src = "const EDGES: [u64; 3] = [1, 2, 3];\nfn f(v: &[f32], i: usize) -> f32 {\n    v[i] + EDGES[0] as f32\n}\n#[derive(Debug)]\nstruct S;\n";
        let found = run("crates/tensor/src/ops.rs", src);
        assert_eq!(rules(&found), vec!["index", "index"]);
        assert!(found.iter().all(|f| f.line == 3));
    }

    #[test]
    fn slicing_and_chained_indexing_are_found() {
        let src = "fn f(v: &[f32]) -> f32 { v[1..3][0] }\n";
        assert_eq!(run("crates/tensor/src/ops.rs", src).len(), 2);
    }

    #[test]
    fn vec_macro_and_attributes_are_not_indexing() {
        let src = "#[allow(dead_code)]\nfn f() -> Vec<u32> { vec![0; 4] }\n";
        assert!(run("crates/tensor/src/ops.rs", src).is_empty());
    }

    #[test]
    fn narrow_casts_are_found_widening_is_not() {
        let src =
            "fn f(n: usize, x: u8) -> (u32, u64, f64) {\n    (n as u32, x as u64, n as f64)\n}\n";
        let found = run("crates/tensor/src/ops.rs", src);
        assert_eq!(rules(&found), vec!["as-int"]);
        assert!(found[0].message.contains("as u32"));
    }
}
