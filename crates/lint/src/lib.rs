//! fademl-lint — purpose-built workspace static analysis.
//!
//! Three passes over the line-level source model in [`source`]:
//!
//! 1. [`locks`] — inter-procedural lock-order analysis of
//!    `fademl-serve`, reporting acquisition-order cycles (potential
//!    deadlocks) and double-acquisitions.
//! 2. [`panics`] — panic-surface audit of the hot-path crates
//!    (`unwrap`/`expect`/`panic!`/`unreachable!`, unchecked indexing,
//!    narrowing `as` casts).
//! 3. [`invariants`] — project invariants clippy cannot express
//!    (parking_lot mandate, pure batcher, NaN-safe metrics, dead error
//!    variants).
//!
//! All findings flow through the [`baseline`] ratchet (`lint.allow`)
//! and are rendered by [`report`] as both a human summary and the
//! deterministic `results/lint.json`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod invariants;
pub mod locks;
pub mod panics;
pub mod report;
pub mod source;

use std::io;
use std::path::Path;

use baseline::Baseline;
use report::LintReport;

/// Runs every pass over the workspace at `root` and applies the given
/// baseline.
///
/// # Errors
///
/// Propagates file-system errors from the workspace walk.
pub fn run(root: &Path, baseline: &Baseline) -> io::Result<LintReport> {
    let files = source::load_workspace(root)?;
    Ok(baseline.apply(collect_findings(&files), files.len()))
}

/// Raw findings from all three passes (before the baseline ratchet).
pub fn collect_findings(files: &[source::SourceFile]) -> Vec<report::Finding> {
    let mut findings = locks::analyze(files, locks::LOCK_SCOPE);
    findings.extend(panics::audit(files, panics::HOT_PATH_SCOPE));
    findings.extend(invariants::check(files));
    findings
}
