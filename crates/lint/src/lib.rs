//! fademl-lint — purpose-built workspace static analysis.
//!
//! Two layers. The **shared IR** ([`ir`]) parses every file once into
//! a delimiter-balanced token tree and a lightweight function-body AST
//! (fn items, blocks, statements, call sites, `let` bindings, `unsafe`
//! blocks); the **workspace call graph** ([`callgraph`]) resolves call
//! sites by name across all crates, with a strict policy for
//! precision-sensitive passes and a permissive one for reachability.
//!
//! Eight passes run on top:
//!
//! 1. [`locks`] — inter-procedural lock-order analysis of the
//!    detector, serving engine and network front: acquisition-order
//!    cycles (potential deadlocks) and double-acquisitions.
//! 2. [`panics`] — panic-surface audit of the hot-path crates
//!    (`unwrap`/`expect`/`panic!`/`unreachable!`, unchecked indexing,
//!    narrowing `as` casts).
//! 3. [`invariants`] — project invariants clippy cannot express
//!    (parking_lot mandate, pure batcher, NaN-safe metrics, dead error
//!    variants, raw sockets/threads).
//! 4. [`unsafe_confinement`] — `unsafe` confined to `tensor::simd`
//!    with mandatory `// SAFETY:` comments (ROADMAP item 1's gate).
//! 5. [`hot_alloc`] — allocations in compute code reachable from the
//!    serve worker loop (ratcheted scratch-arena debt, DESIGN.md §18).
//! 6. [`lock_io`] — lock guards held across blocking I/O in serve/net.
//! 7. [`swallowed`] — silently discarded `Result`s.
//! 8. [`wire_cap`] — wire-decoded lengths must be cap-checked before
//!    they reach an allocation in the framed codecs.
//!
//! All findings flow through the [`baseline`] ratchet (`lint.allow`)
//! and are rendered by [`report`] as both a human summary and the
//! deterministic `results/lint.json`; each finding carries a stable
//! fingerprint that survives line-number drift.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod callgraph;
pub mod guards;
pub mod hot_alloc;
pub mod invariants;
pub mod ir;
pub mod lock_io;
pub mod locks;
pub mod panics;
pub mod report;
pub mod source;
pub mod swallowed;
pub mod unsafe_confinement;
pub mod wire_cap;

use std::io;
use std::path::Path;
use std::time::Instant;

use baseline::Baseline;
use callgraph::{CallGraph, Policy};
use report::{Finding, LintReport};
use source::SourceFile;

/// Wall-clock and volume accounting for one pass (`results/lint_stats.txt`).
#[derive(Debug, Clone)]
pub struct PassStat {
    /// Pass name as shown in the stats file.
    pub name: &'static str,
    /// Wall-clock microseconds spent in the pass.
    pub micros: u128,
    /// Findings the pass produced (pre-baseline).
    pub findings: usize,
}

/// Runs every pass over the workspace at `root` and applies the given
/// baseline.
///
/// # Errors
///
/// Propagates file-system errors from the workspace walk.
pub fn run(root: &Path, baseline: &Baseline) -> io::Result<LintReport> {
    let files = source::load_workspace(root)?;
    Ok(baseline.apply(collect_findings(&files), files.len()))
}

/// Raw findings from all passes (before the baseline ratchet).
pub fn collect_findings(files: &[SourceFile]) -> Vec<Finding> {
    collect_findings_with_stats(files).0
}

/// Raw findings plus per-pass timing/volume stats. The IR and the
/// permissive whole-workspace call graph are built once and shared;
/// their construction time is reported as pseudo-passes.
pub fn collect_findings_with_stats(files: &[SourceFile]) -> (Vec<Finding>, Vec<PassStat>) {
    let mut stats = Vec::new();
    let mut findings = Vec::new();

    let t = Instant::now();
    let ir = ir::Ir::parse(files);
    stats.push(PassStat {
        name: "ir-parse",
        micros: t.elapsed().as_micros(),
        findings: 0,
    });

    let t = Instant::now();
    let graph = CallGraph::build(&ir, files, &[], Policy::Permissive);
    stats.push(PassStat {
        name: "call-graph",
        micros: t.elapsed().as_micros(),
        findings: 0,
    });

    let pass = |name: &'static str,
                out: Vec<Finding>,
                started: Instant,
                findings: &mut Vec<Finding>,
                stats: &mut Vec<PassStat>| {
        stats.push(PassStat {
            name,
            micros: started.elapsed().as_micros(),
            findings: out.len(),
        });
        findings.extend(out);
    };

    let t = Instant::now();
    let out = locks::analyze(&ir, files, locks::LOCK_SCOPE);
    pass("locks", out, t, &mut findings, &mut stats);

    let t = Instant::now();
    let out = panics::audit(files, panics::HOT_PATH_SCOPE);
    pass("panics", out, t, &mut findings, &mut stats);

    let t = Instant::now();
    let out = invariants::check(files);
    pass("invariants", out, t, &mut findings, &mut stats);

    let t = Instant::now();
    let out = unsafe_confinement::check(files);
    pass("unsafe-confinement", out, t, &mut findings, &mut stats);

    let t = Instant::now();
    let out = hot_alloc::audit(&ir, files, &graph);
    pass("hot-path-alloc", out, t, &mut findings, &mut stats);

    let t = Instant::now();
    let out = lock_io::check(&ir, files);
    pass("lock-across-io", out, t, &mut findings, &mut stats);

    let t = Instant::now();
    let out = swallowed::check(&ir, files);
    pass("swallowed-error", out, t, &mut findings, &mut stats);

    let t = Instant::now();
    let out = wire_cap::check(&ir, files);
    pass("wire-cap-check", out, t, &mut findings, &mut stats);

    (findings, stats)
}

/// Renders the per-pass stats table written to `results/lint_stats.txt`.
pub fn render_stats(stats: &[PassStat], files_scanned: usize, total_micros: u128) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "# fademl-lint pass stats — {files_scanned} files, total {:.1} ms\n",
        total_micros as f64 / 1000.0
    ));
    out.push_str("# pass              time_ms  findings\n");
    for s in stats {
        out.push_str(&format!(
            "{:<18} {:>8.1} {:>9}\n",
            s.name,
            s.micros as f64 / 1000.0,
            s.findings
        ));
    }
    out
}
