//! The workspace call graph, generalized out of the original intra-
//! crate graph in [`crate::locks`] and shared by every inter-procedural
//! pass.
//!
//! Resolution is name-based and deliberately conservative in the same
//! way the lock pass always was: functions with the same name across
//! files and impls are merged into one node, so reachability and
//! transitive property sets over-approximate rather than miss. Two
//! [`Policy`] levels control which call shapes create edges:
//!
//! * [`Policy::Strict`] — free calls (`f(…)`), path calls
//!   (`Type::f(…)`), and `self.f(…)` methods. This matches the
//!   precision the lock-order pass shipped with: a method call through
//!   an arbitrary receiver (`conn.f(…)`) is *not* resolved, because a
//!   same-named method on an unrelated type would manufacture edges
//!   (the condvar `guard.wait(…)` false-cycle class).
//! * [`Policy::Permissive`] — additionally resolves `recv.f(…)` by
//!   method name. Used for reachability questions (hot-path-alloc)
//!   where missing an edge hides real findings and a spurious edge
//!   merely widens an audit scope.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::ir::{FnItem, Ir, Receiver};
use crate::source::SourceFile;

/// Which call shapes create graph edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Free, path, and `self.` calls only.
    Strict,
    /// Also resolve arbitrary `recv.method(…)` calls by name.
    Permissive,
}

/// Whether a call site resolves to a workspace function under `policy`
/// (assuming the name is defined somewhere in scope).
pub fn resolves(recv: &Receiver, policy: Policy) -> bool {
    match recv {
        Receiver::Bare | Receiver::SelfDot | Receiver::Path(_) => true,
        Receiver::Dot(_) => policy == Policy::Permissive,
    }
}

/// Location of one function item: `(file index, fn index)` into the
/// [`Ir`] the graph was built from.
pub type FnRef = (usize, usize);

/// The name-merged call graph over a set of parsed files.
#[derive(Debug, Clone, Default)]
pub struct CallGraph {
    /// Function name → every definition site with that name.
    pub defs: BTreeMap<String, Vec<FnRef>>,
    /// Function name → names of workspace functions it calls.
    pub edges: BTreeMap<String, BTreeSet<String>>,
}

impl CallGraph {
    /// Builds the graph over every non-test function in `ir` whose file
    /// path starts with one of `scope` prefixes (empty scope = whole
    /// workspace). `files` must be the slice `ir` was parsed from.
    pub fn build(ir: &Ir, files: &[SourceFile], scope: &[&str], policy: Policy) -> CallGraph {
        let mut graph = CallGraph::default();
        let in_scope = |path: &str| scope.is_empty() || scope.iter().any(|p| path.starts_with(p));
        for (fi, file) in ir.files.iter().enumerate() {
            if !in_scope(&file.path) {
                continue;
            }
            for (ni, f) in file.fns.iter().enumerate() {
                if is_test_fn(&files[fi], f) {
                    continue;
                }
                graph.defs.entry(f.name.clone()).or_default().push((fi, ni));
            }
        }
        for (fi, file) in ir.files.iter().enumerate() {
            if !in_scope(&file.path) {
                continue;
            }
            for f in &file.fns {
                if is_test_fn(&files[fi], f) {
                    continue;
                }
                let entry = graph.edges.entry(f.name.clone()).or_default();
                for stmt in f.stmts() {
                    for call in &stmt.calls {
                        if resolves(&call.recv, policy) && graph.defs.contains_key(&call.name) {
                            entry.insert(call.name.clone());
                        }
                    }
                }
            }
        }
        graph
    }

    /// Function names reachable from `roots` (roots included when
    /// defined in the graph).
    pub fn reachable<'a>(&self, roots: impl IntoIterator<Item = &'a str>) -> BTreeSet<String> {
        let mut seen: BTreeSet<String> = BTreeSet::new();
        let mut queue: VecDeque<String> = VecDeque::new();
        for r in roots {
            if self.defs.contains_key(r) && seen.insert(r.to_string()) {
                queue.push_back(r.to_string());
            }
        }
        while let Some(name) = queue.pop_front() {
            if let Some(callees) = self.edges.get(&name) {
                for callee in callees {
                    if seen.insert(callee.clone()) {
                        queue.push_back(callee.clone());
                    }
                }
            }
        }
        seen
    }

    /// Fixpoint propagation of a per-function property set: `seed`
    /// gives each function's locally-contributed items, and the result
    /// adds everything contributed by (transitive) callees.
    pub fn propagate(
        &self,
        mut sets: BTreeMap<String, BTreeSet<String>>,
    ) -> BTreeMap<String, BTreeSet<String>> {
        loop {
            let mut changed = false;
            for (caller, callees) in &self.edges {
                let mut add: BTreeSet<String> = BTreeSet::new();
                for callee in callees {
                    if let Some(items) = sets.get(callee) {
                        add.extend(items.iter().cloned());
                    }
                }
                let entry = sets.entry(caller.clone()).or_default();
                for item in add {
                    changed |= entry.insert(item);
                }
            }
            if !changed {
                return sets;
            }
        }
    }
}

/// Whether a function item sits inside a `#[cfg(test)]`/`#[test]`
/// region of its file.
pub fn is_test_fn(file: &SourceFile, f: &FnItem) -> bool {
    f.line >= 1 && file.lines.get(f.line - 1).is_some_and(|l| l.in_test)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Ir;
    use crate::source::SourceFile;

    fn graph(src: &str, policy: Policy) -> (Ir, Vec<SourceFile>, CallGraph) {
        let files = vec![SourceFile::from_source("crates/x/src/a.rs", src)];
        let ir = Ir::parse(&files);
        let g = CallGraph::build(&ir, &files, &[], policy);
        (ir, files, g)
    }

    #[test]
    fn strict_resolves_free_path_and_self_calls_only() {
        let src = "\
impl S {
    fn root(&self) {
        helper();
        Util::assoc();
        self.method();
        self.conn.through_receiver();
    }
    fn method(&self) {}
}
fn helper() {}
fn through_receiver() {}
mod util { impl Util { fn assoc() {} } }
";
        let (_, _, g) = graph(src, Policy::Strict);
        let callees = &g.edges["root"];
        assert!(callees.contains("helper"));
        assert!(callees.contains("assoc"));
        assert!(callees.contains("method"));
        assert!(!callees.contains("through_receiver"));

        let (_, _, gp) = graph(src, Policy::Permissive);
        assert!(gp.edges["root"].contains("through_receiver"));
    }

    #[test]
    fn reachability_is_transitive() {
        let src = "fn a() { b(); }\nfn b() { c(); }\nfn c() {}\nfn island() {}\n";
        let (_, _, g) = graph(src, Policy::Strict);
        let r = g.reachable(["a"]);
        assert!(r.contains("a") && r.contains("b") && r.contains("c"));
        assert!(!r.contains("island"));
    }

    #[test]
    fn test_functions_are_excluded() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn shadow() { live(); }\n}\n";
        let (_, _, g) = graph(src, Policy::Strict);
        assert!(g.defs.contains_key("live"));
        assert!(!g.defs.contains_key("shadow"));
    }

    #[test]
    fn propagate_reaches_fixpoint() {
        let src = "fn a() { b(); }\nfn b() { c(); }\nfn c() {}\n";
        let (_, _, g) = graph(src, Policy::Strict);
        let mut seed: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        seed.entry("c".into()).or_default().insert("io".to_string());
        let sets = g.propagate(seed);
        assert!(sets["a"].contains("io"));
        assert!(sets["b"].contains("io"));
    }
}
