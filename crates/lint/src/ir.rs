//! The shared analysis IR: a delimiter-balanced token-tree parser and a
//! lightweight function-body AST on top of the blanked source model in
//! [`crate::source`].
//!
//! Two layers:
//!
//! 1. **Token trees** — the blanked text of a file is tokenised into
//!    identifiers and punctuation, and `()`/`[]`/`{}` runs are folded
//!    into [`Group`]s. The parser is total: it never panics and always
//!    terminates on arbitrary bytes (stray closers become plain
//!    punctuation, unclosed groups close at end of file, and nesting is
//!    capped so downstream recursion is bounded). This is proven by the
//!    fuzz suite in `tests/ir_props.rs`.
//! 2. **Function items** — `fn` items are extracted (with their impl
//!    type, whether the signature returns `Result`, and whether the fn
//!    itself is `unsafe`), and each body becomes a [`Block`] of
//!    [`Stmt`]s: multi-line statements are joined, `let` bindings and
//!    call sites are resolved structurally (no more trailing-identifier
//!    heuristics), nested braces become child blocks, and `unsafe`
//!    blocks are recorded with their source line.
//!
//! Passes consume the AST through [`Ir`], which parses every workspace
//! file exactly once; the call graph in [`crate::callgraph`] and all
//! dataflow passes are built on it.

use crate::source::SourceFile;

/// Maximum group nesting depth. Deeper openers are treated as plain
/// punctuation so every recursive consumer of the tree has a hard
/// bound on stack depth, even on adversarial input.
pub const MAX_NESTING: usize = 64;

/// A delimiter kind for a balanced group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delim {
    /// `(...)`
    Paren,
    /// `[...]`
    Bracket,
    /// `{...}`
    Brace,
}

impl Delim {
    fn open(self) -> char {
        match self {
            Delim::Paren => '(',
            Delim::Bracket => '[',
            Delim::Brace => '{',
        }
    }

    fn close(self) -> char {
        match self {
            Delim::Paren => ')',
            Delim::Bracket => ']',
            Delim::Brace => '}',
        }
    }
}

/// One token of the tree: an identifier/number run, a single
/// punctuation character, or a balanced group.
#[derive(Debug, Clone)]
pub enum Tok {
    /// An identifier or number (`[A-Za-z0-9_]+` run).
    Ident {
        /// The identifier text.
        text: String,
        /// 1-indexed source line.
        line: usize,
    },
    /// A single non-identifier, non-delimiter character.
    Punct {
        /// The character.
        ch: char,
        /// 1-indexed source line.
        line: usize,
    },
    /// A balanced `()`/`[]`/`{}` group.
    Group(Group),
}

impl Tok {
    /// The source line the token starts on.
    pub fn line(&self) -> usize {
        match self {
            Tok::Ident { line, .. } | Tok::Punct { line, .. } => *line,
            Tok::Group(g) => g.open_line,
        }
    }

    fn is_ident(&self, want: &str) -> bool {
        matches!(self, Tok::Ident { text, .. } if text == want)
    }

    fn is_punct(&self, want: char) -> bool {
        matches!(self, Tok::Punct { ch, .. } if *ch == want)
    }
}

/// A balanced delimiter group and its contents.
#[derive(Debug, Clone)]
pub struct Group {
    /// The delimiter kind.
    pub delim: Delim,
    /// Line of the opening delimiter.
    pub open_line: usize,
    /// Line of the closing delimiter (end of file if unclosed).
    pub close_line: usize,
    /// The tokens inside the group.
    pub toks: Vec<Tok>,
}

/// Tokenises the blanked text of `file` into a token tree.
///
/// Total on arbitrary input: a closer with no matching opener is kept
/// as punctuation, unclosed groups are closed at end of input, and
/// openers beyond [`MAX_NESTING`] are kept as punctuation.
pub fn tokenize(file: &SourceFile) -> Vec<Tok> {
    // Frames of open groups; frame 0 is the top level.
    let mut stack: Vec<(Delim, usize, Vec<Tok>)> = Vec::new();
    let mut top: Vec<Tok> = Vec::new();
    let mut line = 0usize;
    let mut last_line = 1usize;
    for info in &file.lines {
        line += 1;
        last_line = line;
        let code = info.code.as_str();
        let bytes = code.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            let b = bytes[i];
            if b.is_ascii_alphanumeric() || b == b'_' {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let tok = Tok::Ident {
                    text: code[start..i].to_string(),
                    line,
                };
                current(&mut stack, &mut top).push(tok);
                continue;
            }
            let ch = char::from(b);
            if b.is_ascii() {
                match ch {
                    ' ' | '\t' | '\r' => {}
                    '(' | '[' | '{' => {
                        let delim = match ch {
                            '(' => Delim::Paren,
                            '[' => Delim::Bracket,
                            _ => Delim::Brace,
                        };
                        if stack.len() < MAX_NESTING {
                            stack.push((delim, line, Vec::new()));
                        } else {
                            current(&mut stack, &mut top).push(Tok::Punct { ch, line });
                        }
                    }
                    ')' | ']' | '}' => close_group(&mut stack, &mut top, ch, line),
                    _ => current(&mut stack, &mut top).push(Tok::Punct { ch, line }),
                }
                i += 1;
            } else {
                // Multi-byte UTF-8: skip the whole scalar as punctuation
                // (box-drawing in doc comments is blanked anyway).
                let c = code[i..].chars().next().unwrap_or(' ');
                i += c.len_utf8();
            }
        }
    }
    // Unclosed groups: close them all at the last line.
    while let Some((delim, open_line, toks)) = stack.pop() {
        let group = Tok::Group(Group {
            delim,
            open_line,
            close_line: last_line,
            toks,
        });
        current(&mut stack, &mut top).push(group);
    }
    top
}

fn current<'a>(
    stack: &'a mut [(Delim, usize, Vec<Tok>)],
    top: &'a mut Vec<Tok>,
) -> &'a mut Vec<Tok> {
    match stack.last_mut() {
        Some((_, _, toks)) => toks,
        None => top,
    }
}

/// Closes the innermost group matching `ch`. A mismatched closer first
/// closes intervening groups (recovery on malformed input); a closer
/// with no matching opener anywhere is downgraded to punctuation.
fn close_group(
    stack: &mut Vec<(Delim, usize, Vec<Tok>)>,
    top: &mut Vec<Tok>,
    ch: char,
    line: usize,
) {
    if !stack.iter().any(|(d, _, _)| d.close() == ch) {
        current(stack, top).push(Tok::Punct { ch, line });
        return;
    }
    loop {
        let Some((delim, open_line, toks)) = stack.pop() else {
            return;
        };
        let group = Tok::Group(Group {
            delim,
            open_line,
            close_line: line,
            toks,
        });
        current(stack, top).push(group);
        if delim.close() == ch {
            return;
        }
    }
}

// ── function-body AST ───────────────────────────────────────────────

/// How a call expression reaches its callee.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Receiver {
    /// `name(...)` — a free function.
    Bare,
    /// `self.name(...)` — a method on the enclosing impl type.
    SelfDot,
    /// `Seg::name(...)` — the last path segment before `::`.
    Path(String),
    /// `recv.name(...)` — the identifier immediately owning the call
    /// (for `self.field.name(...)` this is `field`).
    Dot(String),
}

/// One call expression.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Callee name.
    pub name: String,
    /// 1-indexed source line of the callee identifier.
    pub line: usize,
    /// How the callee is reached.
    pub recv: Receiver,
    /// First bare identifier among the arguments (`drop(g)` → `g`).
    pub first_arg_ident: Option<String>,
}

/// One statement: its flattened text, bindings, calls, and child
/// blocks, in source order.
#[derive(Debug, Clone)]
pub struct Stmt {
    /// First source line.
    pub line: usize,
    /// Last source line (multi-line statements are joined).
    pub end_line: usize,
    /// Flattened normalized code text (idents separated by one space
    /// only where needed; groups inlined with their delimiters).
    pub text: String,
    /// Whether the statement is a `let` binding.
    pub has_let: bool,
    /// Identifiers bound by the `let` pattern (`_` included).
    pub lets: Vec<String>,
    /// Call sites in token order (paren/bracket args included; brace
    /// bodies belong to `children`).
    pub calls: Vec<CallSite>,
    /// Nested brace blocks in source order (loop/if/match bodies,
    /// closures, plain blocks).
    pub children: Vec<Block>,
    /// Lines of `unsafe {` block openings inside this statement.
    pub unsafe_lines: Vec<usize>,
    /// Whether this statement defines a nested item (`fn`, `impl`,
    /// `mod`, …) — passes must not attribute its children's events to
    /// the enclosing function (the nested fn is extracted separately).
    pub defines_item: bool,
}

/// A `{ ... }` block of statements.
#[derive(Debug, Clone, Default)]
pub struct Block {
    /// Line of the opening brace.
    pub open_line: usize,
    /// Line of the closing brace.
    pub close_line: usize,
    /// The statements, in source order.
    pub stmts: Vec<Stmt>,
}

impl Block {
    /// Depth-first walk over every statement, skipping the children of
    /// statements that define nested items.
    pub fn walk<'a>(&'a self, visit: &mut impl FnMut(&'a Stmt)) {
        for stmt in &self.stmts {
            visit(stmt);
            if stmt.defines_item {
                continue;
            }
            for child in &stmt.children {
                child.walk(visit);
            }
        }
    }
}

/// One `fn` item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// The surrounding `impl` type, if any.
    pub impl_type: Option<String>,
    /// 1-indexed line of the `fn` keyword.
    pub line: usize,
    /// Whether the signature's return type mentions `Result`.
    pub returns_result: bool,
    /// Whether the item is an `unsafe fn`.
    pub is_unsafe: bool,
    /// The parsed body.
    pub body: Block,
}

impl FnItem {
    /// Every statement of the body, in source order.
    pub fn stmts(&self) -> Vec<&Stmt> {
        let mut out = Vec::new();
        self.body.walk(&mut |s| out.push(s));
        out
    }
}

/// The parsed form of one source file.
#[derive(Debug, Clone)]
pub struct IrFile {
    /// Workspace-relative path (same as the source file).
    pub path: String,
    /// Every function item in the file, in source order.
    pub fns: Vec<FnItem>,
}

/// The parsed workspace: one [`IrFile`] per source file, index-aligned
/// with the `&[SourceFile]` it was built from.
#[derive(Debug, Clone)]
pub struct Ir {
    /// Parsed files, index-aligned with the input slice.
    pub files: Vec<IrFile>,
}

impl Ir {
    /// Parses every file once. Total: never panics on any input.
    pub fn parse(files: &[SourceFile]) -> Ir {
        let files = files
            .iter()
            .map(|f| {
                let toks = tokenize(f);
                let mut fns = Vec::new();
                collect_fns(&toks, None, &mut fns);
                IrFile {
                    path: f.path.clone(),
                    fns,
                }
            })
            .collect();
        Ir { files }
    }
}

/// Recursively extracts `fn` items from a token slice. `impl_type`
/// carries the enclosing impl's self type.
fn collect_fns(toks: &[Tok], impl_type: Option<&str>, out: &mut Vec<FnItem>) {
    let mut i = 0;
    while i < toks.len() {
        match &toks[i] {
            Tok::Ident { text, line } if text == "impl" => {
                if let Some((ty, body_idx)) = parse_impl_header(toks, i) {
                    if let Tok::Group(g) = &toks[body_idx] {
                        collect_fns(&g.toks, Some(&ty), out);
                    }
                    i = body_idx + 1;
                    continue;
                }
                let _ = line;
                i += 1;
            }
            Tok::Ident { text, line } if text == "fn" => {
                if let Some((item, next)) = parse_fn(toks, i, *line, impl_type) {
                    out.push(item);
                    // Nested fn items inside this body are extracted
                    // too (they are plain functions, not methods).
                    if let Some(Tok::Group(body)) = toks.get(next - 1) {
                        collect_fns(&body.toks, None, out);
                    }
                    i = next;
                    continue;
                }
                i += 1;
            }
            Tok::Group(g) => {
                // mod bodies, trait bodies, expression blocks…
                collect_fns(&g.toks, impl_type, out);
                i += 1;
            }
            _ => i += 1,
        }
    }
}

/// Parses `impl … { … }` starting at the `impl` keyword; returns the
/// self type and the index of the body group.
fn parse_impl_header(toks: &[Tok], impl_idx: usize) -> Option<(String, usize)> {
    let mut ty: Option<String> = None;
    let mut after_for: Option<String> = None;
    let mut angle: i32 = 0;
    let mut saw_for = false;
    let mut j = impl_idx + 1;
    while j < toks.len() {
        match &toks[j] {
            Tok::Group(g) if g.delim == Delim::Brace => {
                let name = after_for.or(ty)?;
                return Some((name, j));
            }
            Tok::Punct { ch: '<', .. } => angle += 1,
            Tok::Punct { ch: '>', .. } => angle -= 1,
            Tok::Punct { ch: ';', .. } => return None,
            Tok::Ident { text, .. } if angle <= 0 => {
                if text == "for" {
                    saw_for = true;
                } else if text == "where" {
                    // Type name is settled before the where clause.
                } else if saw_for {
                    if after_for.is_none() {
                        after_for = Some(text.clone());
                    }
                } else if ty.is_none() {
                    ty = Some(text.clone());
                }
            }
            _ => {}
        }
        j += 1;
    }
    None
}

/// Parses one `fn` item starting at the `fn` keyword. Returns the item
/// and the index just past its body. Trait declarations without a body
/// (`fn f(…);`) return `None`.
fn parse_fn(
    toks: &[Tok],
    fn_idx: usize,
    fn_line: usize,
    impl_type: Option<&str>,
) -> Option<(FnItem, usize)> {
    let name = match toks.get(fn_idx + 1) {
        Some(Tok::Ident { text, .. }) => text.clone(),
        _ => return None, // `fn(...)` pointer type — not an item.
    };
    let is_unsafe = fn_idx > 0 && toks[fn_idx - 1].is_ident("unsafe");
    let mut returns_result = false;
    let mut saw_arrow = false;
    let mut j = fn_idx + 2;
    while j < toks.len() {
        match &toks[j] {
            Tok::Group(g) if g.delim == Delim::Brace => {
                let body = build_block(g);
                let item = FnItem {
                    name,
                    impl_type: impl_type.map(str::to_string),
                    line: fn_line,
                    returns_result,
                    is_unsafe,
                    body,
                };
                return Some((item, j + 1));
            }
            Tok::Punct { ch: ';', .. } => return None,
            Tok::Punct { ch: '>', .. } if j > 0 && toks[j - 1].is_punct('-') => {
                saw_arrow = true;
            }
            Tok::Ident { text, .. } if saw_arrow && text == "Result" => {
                returns_result = true;
            }
            _ => {}
        }
        j += 1;
    }
    None
}

/// Builds a [`Block`] from a brace group by splitting its tokens into
/// statements.
fn build_block(group: &Group) -> Block {
    let mut stmts = Vec::new();
    let mut start = 0;
    let toks = &group.toks;
    let mut i = 0;
    while i < toks.len() {
        match &toks[i] {
            Tok::Punct { ch: ';', .. } => {
                stmts.push(build_stmt(&toks[start..=i]));
                start = i + 1;
            }
            Tok::Group(g) if g.delim == Delim::Brace => {
                // A brace ends the statement unless an `else`, a method
                // chain or an operator continues it.
                let continues = matches!(
                    toks.get(i + 1),
                    Some(Tok::Ident { text, .. }) if text == "else"
                ) || matches!(
                    toks.get(i + 1),
                    Some(Tok::Punct { ch, .. }) if matches!(ch, '.' | '?' | ',')
                );
                if !continues {
                    stmts.push(build_stmt(&toks[start..=i]));
                    start = i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    if start < toks.len() {
        stmts.push(build_stmt(&toks[start..]));
    }
    stmts.retain(|s| !s.text.is_empty());
    Block {
        open_line: group.open_line,
        close_line: group.close_line,
        stmts,
    }
}

/// Builds one statement from its token slice.
fn build_stmt(toks: &[Tok]) -> Stmt {
    let line = toks.first().map_or(0, Tok::line);
    let end_line = stmt_end_line(toks);
    let mut text = String::new();
    flatten(toks, true, &mut text);
    let (has_let, lets) = let_bindings(toks);
    let mut calls = Vec::new();
    collect_calls(toks, &mut calls);
    let mut children = Vec::new();
    let mut unsafe_lines = Vec::new();
    collect_children(toks, &mut children, &mut unsafe_lines);
    let defines_item = defines_item(toks);
    Stmt {
        line,
        end_line,
        text,
        has_let,
        lets,
        calls,
        children,
        unsafe_lines,
        defines_item,
    }
}

fn stmt_end_line(toks: &[Tok]) -> usize {
    let mut end = 0;
    for t in toks {
        end = end.max(match t {
            Tok::Group(g) => g.close_line,
            other => other.line(),
        });
    }
    end
}

/// Flattens tokens to one normalized line: identifiers are separated by
/// a single space only from adjacent identifiers, punctuation is glued,
/// groups keep their delimiters. With `elide_braces`, brace-group
/// interiors render as `{…}` — their statements are separate [`Stmt`]s
/// and must not double-match text patterns on the parent.
fn flatten(toks: &[Tok], elide_braces: bool, out: &mut String) {
    for t in toks {
        match t {
            Tok::Ident { text, .. } => {
                if out
                    .as_bytes()
                    .last()
                    .is_some_and(|b| b.is_ascii_alphanumeric() || *b == b'_')
                {
                    out.push(' ');
                }
                out.push_str(text);
            }
            Tok::Punct { ch, .. } => out.push(*ch),
            Tok::Group(g) if elide_braces && g.delim == Delim::Brace => {
                out.push_str("{…}");
            }
            Tok::Group(g) => {
                out.push(g.delim.open());
                flatten(&g.toks, elide_braces, out);
                out.push(g.delim.close());
            }
        }
    }
}

/// Extracts `let` pattern bindings: identifiers between `let` and `=`
/// (or the end), excluding keywords and path/type names directly
/// followed by `::` or `<`.
fn let_bindings(toks: &[Tok]) -> (bool, Vec<String>) {
    let mut idx = 0;
    // Skip leading attributes `#[...]`.
    while idx + 1 < toks.len() && toks[idx].is_punct('#') {
        if matches!(&toks[idx + 1], Tok::Group(g) if g.delim == Delim::Bracket) {
            idx += 2;
        } else {
            break;
        }
    }
    // `if let` / `while let` are matches, not bindings for liveness.
    if !toks.get(idx).is_some_and(|t| t.is_ident("let")) {
        return (false, Vec::new());
    }
    let mut names = Vec::new();
    let mut j = idx + 1;
    while j < toks.len() {
        match &toks[j] {
            Tok::Punct { ch: '=', .. } | Tok::Punct { ch: ';', .. } => break,
            Tok::Punct { ch: ':', .. } => {
                // Type annotation: bindings are settled.
                break;
            }
            Tok::Ident { text, .. } if !matches!(text.as_str(), "mut" | "ref" | "box") => {
                names.push(text.clone());
            }
            Tok::Group(g) => {
                // Tuple/struct patterns: every ident inside binds.
                collect_pattern_idents(&g.toks, &mut names);
            }
            _ => {}
        }
        j += 1;
    }
    (true, names)
}

fn collect_pattern_idents(toks: &[Tok], out: &mut Vec<String>) {
    for t in toks {
        match t {
            Tok::Ident { text, .. } if !matches!(text.as_str(), "mut" | "ref") => {
                out.push(text.clone());
            }
            Tok::Group(g) => collect_pattern_idents(&g.toks, out),
            _ => {}
        }
    }
}

/// Finds call sites in token order, descending into paren/bracket
/// groups (arguments) but not brace groups (child blocks own those).
/// Attribute groups (`#[…]`) are skipped — `cfg(…)`/`not(…)` inside
/// them are not calls.
fn collect_calls(toks: &[Tok], out: &mut Vec<CallSite>) {
    let mut skip_attr = false;
    for (i, t) in toks.iter().enumerate() {
        if skip_attr {
            if t.is_punct('!') {
                continue;
            }
            skip_attr = false;
            if matches!(t, Tok::Group(g) if g.delim == Delim::Bracket) {
                continue;
            }
        }
        if t.is_punct('#') {
            skip_attr = true;
            continue;
        }
        match t {
            Tok::Ident { text, line } => {
                let Some(Tok::Group(g)) = toks.get(i + 1) else {
                    continue;
                };
                if g.delim != Delim::Paren {
                    continue;
                }
                // `name!(…)` is a macro, not a call — but `!` sits
                // *between* ident and group, so adjacency already
                // excludes it. Keywords with parens are not calls, and
                // `fn name(…)` is a signature, not a call to `name`.
                if matches!(
                    text.as_str(),
                    "if" | "while" | "for" | "match" | "return" | "fn" | "impl"
                ) {
                    continue;
                }
                if i >= 1 && toks[i - 1].is_ident("fn") {
                    continue;
                }
                out.push(CallSite {
                    name: text.clone(),
                    line: *line,
                    recv: classify_receiver(toks, i),
                    first_arg_ident: first_ident(&g.toks),
                });
            }
            Tok::Group(g) if g.delim != Delim::Brace => collect_calls(&g.toks, out),
            _ => {}
        }
    }
}

fn first_ident(toks: &[Tok]) -> Option<String> {
    match toks.first() {
        Some(Tok::Ident { text, .. }) => Some(text.clone()),
        _ => None,
    }
}

/// Classifies how the call at token index `i` reaches its callee.
fn classify_receiver(toks: &[Tok], i: usize) -> Receiver {
    if i >= 1 && toks[i - 1].is_punct('.') {
        // Method call: find the identifier owning the dot. Skip back
        // over one balanced paren group (`make().lock()`).
        let mut j = i - 1;
        if j >= 1 {
            j -= 1;
            if let Tok::Group(_) = &toks[j] {
                if j >= 1 {
                    j -= 1;
                } else {
                    return Receiver::Dot(String::new());
                }
            }
        }
        if let Tok::Ident { text, .. } = &toks[j] {
            if text == "self" && (j == 0 || !toks[j - 1].is_punct('.')) {
                return Receiver::SelfDot;
            }
            return Receiver::Dot(text.clone());
        }
        return Receiver::Dot(String::new());
    }
    if i >= 2 && toks[i - 1].is_punct(':') && toks[i - 2].is_punct(':') {
        // Path call: the segment before `::`.
        if i >= 3 {
            if let Tok::Ident { text, .. } = &toks[i - 3] {
                return Receiver::Path(text.clone());
            }
            // `Foo::<T>::new` — give up on the segment but keep Path.
            return Receiver::Path(String::new());
        }
        return Receiver::Path(String::new());
    }
    Receiver::Bare
}

/// Collects child brace blocks (and `unsafe {` lines) reachable without
/// crossing another brace group.
fn collect_children(toks: &[Tok], blocks: &mut Vec<Block>, unsafe_lines: &mut Vec<usize>) {
    for (i, t) in toks.iter().enumerate() {
        match t {
            Tok::Group(g) if g.delim == Delim::Brace => {
                if i >= 1 {
                    if let Tok::Ident { text, line } = &toks[i - 1] {
                        if text == "unsafe" {
                            unsafe_lines.push(*line);
                        }
                    }
                }
                blocks.push(build_block(g));
            }
            Tok::Group(g) => collect_children(&g.toks, blocks, unsafe_lines),
            _ => {}
        }
    }
}

/// Whether the statement begins a nested item definition.
fn defines_item(toks: &[Tok]) -> bool {
    for t in toks.iter().take(6) {
        match t {
            Tok::Ident { text, .. } => match text.as_str() {
                "fn" | "impl" | "mod" | "struct" | "enum" | "trait" => return true,
                "pub" | "const" | "unsafe" | "async" | "extern" | "crate" => continue,
                _ => return false,
            },
            Tok::Group(_) => return false,
            Tok::Punct { ch: '#' | '(', .. } => continue,
            _ => return false,
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn parse(src: &str) -> IrFile {
        let f = SourceFile::from_source("crates/x/src/a.rs", src);
        Ir::parse(std::slice::from_ref(&f)).files.remove(0)
    }

    #[test]
    fn fn_items_and_impl_types_are_extracted() {
        let file = parse(
            "impl<T> Server<T> {\n    fn start(&self) -> Result<()> { go() }\n}\nfn free(x: u32) -> u64 { 0 }\nimpl Drop for Guard {\n    fn drop(&mut self) {}\n}\n",
        );
        let names: Vec<_> = file.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["start", "free", "drop"]);
        assert_eq!(file.fns[0].impl_type.as_deref(), Some("Server"));
        assert!(file.fns[0].returns_result);
        assert!(!file.fns[1].returns_result);
        assert_eq!(file.fns[2].impl_type.as_deref(), Some("Guard"));
    }

    #[test]
    fn multiline_statements_are_joined_with_calls_resolved() {
        let file = parse(
            "fn a(&self) {\n    let g = self\n        .m1\n        .lock();\n    let h = self.m2.lock();\n}\n",
        );
        let body = &file.fns[0].body;
        assert_eq!(body.stmts.len(), 2);
        let s0 = &body.stmts[0];
        assert_eq!(s0.line, 2);
        assert_eq!(s0.end_line, 4);
        assert!(s0.has_let);
        assert_eq!(s0.lets, vec!["g"]);
        assert_eq!(s0.calls.len(), 1);
        assert_eq!(s0.calls[0].name, "lock");
        assert_eq!(s0.calls[0].recv, Receiver::Dot("m1".into()));
    }

    #[test]
    fn receiver_classification_covers_all_shapes() {
        let file = parse(
            "fn f(&self) {\n    free();\n    self.method();\n    Type::assoc();\n    var.call();\n    self.field.deep();\n}\n",
        );
        let stmts = file.fns[0].stmts();
        let recvs: Vec<_> = stmts.iter().flat_map(|s| &s.calls).collect();
        assert_eq!(recvs[0].recv, Receiver::Bare);
        assert_eq!(recvs[1].recv, Receiver::SelfDot);
        assert_eq!(recvs[2].recv, Receiver::Path("Type".into()));
        assert_eq!(recvs[3].recv, Receiver::Dot("var".into()));
        assert_eq!(recvs[4].recv, Receiver::Dot("field".into()));
    }

    #[test]
    fn attribute_tokens_are_not_calls() {
        let file = parse(
            "fn f() {\n    #[cfg(not(feature = \"faults\"))]\n    let _ = faults;\n    #[allow(dead_code)]\n    real();\n}\n",
        );
        let stmts = file.fns[0].stmts();
        let names: Vec<_> = stmts
            .iter()
            .flat_map(|s| &s.calls)
            .map(|c| c.name.as_str())
            .collect();
        assert_eq!(names, vec!["real"]);
    }

    #[test]
    fn macros_are_not_calls_but_args_are_scanned() {
        let file = parse("fn f() {\n    vec![go(), 2];\n    println!(\"{}\", run());\n}\n");
        let stmts = file.fns[0].stmts();
        let names: Vec<_> = stmts
            .iter()
            .flat_map(|s| &s.calls)
            .map(|c| c.name.as_str())
            .collect();
        assert_eq!(names, vec!["go", "run"]);
    }

    #[test]
    fn child_blocks_and_unsafe_blocks_are_tracked() {
        let file = parse(
            "fn f() {\n    for x in 0..3 {\n        inner();\n    }\n    unsafe {\n        wild();\n    }\n}\n",
        );
        let body = &file.fns[0].body;
        assert_eq!(body.stmts.len(), 2);
        assert_eq!(body.stmts[0].children.len(), 1);
        assert_eq!(body.stmts[1].unsafe_lines, vec![5]);
        let all = file.fns[0].stmts();
        assert!(all.iter().any(|s| s.text.contains("inner()")));
        assert!(all.iter().any(|s| s.text.contains("wild()")));
    }

    #[test]
    fn nested_fn_children_are_not_walked_twice() {
        let file = parse("fn outer() {\n    fn inner() {\n        leaf();\n    }\n    top();\n}\n");
        assert_eq!(file.fns.len(), 2);
        let outer = file.fns.iter().find(|f| f.name == "outer").unwrap();
        let outer_calls: Vec<_> = outer
            .stmts()
            .iter()
            .flat_map(|s| s.calls.clone())
            .map(|c| c.name)
            .collect();
        assert_eq!(outer_calls, vec!["top"]);
        let inner = file.fns.iter().find(|f| f.name == "inner").unwrap();
        let inner_calls: Vec<_> = inner
            .stmts()
            .iter()
            .flat_map(|s| s.calls.clone())
            .map(|c| c.name)
            .collect();
        assert_eq!(inner_calls, vec!["leaf"]);
    }

    #[test]
    fn unsafe_fn_and_trait_decls() {
        let file = parse("trait T {\n    fn abstract_one(&self);\n}\nunsafe fn wild() { x(); }\n");
        assert_eq!(file.fns.len(), 1);
        assert!(file.fns[0].is_unsafe);
        assert_eq!(file.fns[0].name, "wild");
    }

    #[test]
    fn stray_delimiters_never_panic() {
        for src in [
            ")))((( }{ ]][[",
            "fn f( {",
            "fn f() } } }",
            "(((((((((((((((((((((((((((",
            "fn f() { let x = (1; }",
        ] {
            let _ = parse(src);
        }
    }

    #[test]
    fn deep_nesting_is_capped_not_fatal() {
        let mut src = String::from("fn f() { ");
        for _ in 0..100_000 {
            src.push('(');
        }
        let file = parse(&src);
        // Parsing completed; the fn was found.
        assert_eq!(file.fns.len(), 1);
    }

    #[test]
    fn flattened_text_is_matchable() {
        let file = parse("fn f(v: Option<u32>) {\n    let x = v\n        .unwrap();\n}\n");
        let body = &file.fns[0].body;
        assert!(body.stmts[0].text.contains(".unwrap()"));
        assert!(body.stmts[0].text.contains("let x=v"));
    }

    #[test]
    fn if_else_chains_are_one_statement() {
        let file = parse("fn f(c: bool) {\n    if c {\n        a();\n    } else {\n        b();\n    }\n    after();\n}\n");
        let body = &file.fns[0].body;
        assert_eq!(body.stmts.len(), 2);
        assert_eq!(body.stmts[0].children.len(), 2);
    }
}
