//! Shared guard-liveness walker over the [`crate::ir`] AST, used by
//! both lock passes ([`crate::locks`], [`crate::lock_io`]).
//!
//! Liveness model:
//!
//! * `.lock()` / `.read()` / `.write()` on a named receiver acquires
//!   that lock. A `let`-bound guard is held until the end of its
//!   enclosing block; `drop(g)` on the bound name releases it early.
//! * A temporary guard (`self.m.lock().push(x)`) is held for its
//!   statement only — including the statement's child blocks, so a
//!   guard kept alive by `for x in m.lock().drain(..) { … }` is live
//!   across the loop body.
//! * `self.lock()` (no named receiver) and free `lock(…)` calls are
//!   not acquisitions.

use crate::ir::{Block, CallSite, FnItem, Receiver, Stmt};

/// Guard-acquiring method names.
pub const ACQUIRE_METHODS: &[&str] = &["lock", "read", "write"];

/// Chained calls that yield the guard itself (std poisoning recovery),
/// so a `let` through them still binds the guard.
const GUARD_ADAPTERS: &[&str] = &["unwrap", "expect", "unwrap_or_else", "into_inner"];

/// One held guard.
#[derive(Debug, Clone)]
pub struct Held {
    /// Lock identity — the receiver identifier (`self.m1.lock()` → `m1`).
    pub lock: String,
    /// The `let` binding holding the guard, if any.
    pub binder: Option<String>,
    /// Acquisition line.
    pub line: usize,
}

/// One event delivered to the visitor, with the guards held *before*
/// the event takes effect.
#[derive(Debug)]
pub enum Event<'a> {
    /// A new guard is being acquired (not yet in the held set).
    Acquire(&'a Held),
    /// A non-acquire call site.
    Call(&'a CallSite),
}

/// Walks `f`'s body in source order, calling `visit(held, event)` for
/// every acquisition and call with the currently-held guard set.
pub fn walk_fn(f: &FnItem, visit: &mut impl FnMut(&[Held], Event<'_>)) {
    let mut held: Vec<Held> = Vec::new();
    walk_block(&f.body, &mut held, visit);
}

fn walk_block(block: &Block, held: &mut Vec<Held>, visit: &mut impl FnMut(&[Held], Event<'_>)) {
    let scope_base = held.len();
    for stmt in &block.stmts {
        if stmt.defines_item {
            continue;
        }
        walk_stmt(stmt, held, visit);
    }
    held.truncate(scope_base);
}

fn walk_stmt(stmt: &Stmt, held: &mut Vec<Held>, visit: &mut impl FnMut(&[Held], Event<'_>)) {
    let stmt_base = held.len();
    for (ci, call) in stmt.calls.iter().enumerate() {
        if let Some(lock) = acquired_lock(call) {
            // `let g = m.lock();` binds the guard; `let v =
            // m.lock().drain(..).collect();` binds the *result* and the
            // guard dies with the statement. The guard is bound only
            // when every chained call after the acquire preserves it
            // (`.unwrap()` and friends on std guards).
            let binds = stmt.has_let
                && stmt.calls[ci + 1..]
                    .iter()
                    .all(|c| GUARD_ADAPTERS.contains(&c.name.as_str()));
            let new = Held {
                lock,
                binder: binds.then(|| stmt.lets.first().cloned()).flatten(),
                line: call.line,
            };
            visit(held, Event::Acquire(&new));
            held.push(new);
            continue;
        }
        if call.name == "drop" && call.recv == Receiver::Bare {
            if let Some(arg) = &call.first_arg_ident {
                held.retain(|h| h.binder.as_deref() != Some(arg.as_str()));
            }
            continue;
        }
        visit(held, Event::Call(call));
    }
    for child in &stmt.children {
        walk_block(child, held, visit);
    }
    // Temporary guards die with the statement; `let`-bound guards
    // survive to the end of the enclosing block.
    let mut idx = held.len();
    while idx > stmt_base {
        idx -= 1;
        if held[idx].binder.is_none() {
            held.remove(idx);
        }
    }
}

/// The lock acquired by a call site, if it is an acquisition.
pub fn acquired_lock(call: &CallSite) -> Option<String> {
    if !ACQUIRE_METHODS.contains(&call.name.as_str()) {
        return None;
    }
    match &call.recv {
        Receiver::Dot(name) if !name.is_empty() => Some(name.clone()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Ir;
    use crate::source::SourceFile;

    /// Runs the walker and records `(event, held-before)` pairs.
    fn trace(src: &str) -> Vec<(String, Vec<String>)> {
        let files = vec![SourceFile::from_source("crates/x/src/a.rs", src)];
        let ir = Ir::parse(&files);
        let mut out = Vec::new();
        for f in &ir.files[0].fns {
            walk_fn(f, &mut |held, ev| {
                let held: Vec<String> = held.iter().map(|h| h.lock.clone()).collect();
                let label = match ev {
                    Event::Acquire(h) => format!("acq:{}", h.lock),
                    Event::Call(c) => format!("call:{}", c.name),
                };
                out.push((label, held));
            });
        }
        out
    }

    #[test]
    fn let_guard_held_to_block_end_not_fn_end() {
        let t = trace(
            "fn f(&self) {\n    {\n        let g = self.m1.lock();\n    }\n    self.io();\n}\n",
        );
        let io = t.iter().find(|(l, _)| l == "call:io").unwrap();
        assert!(io.1.is_empty(), "guard must die with its block: {t:?}");
    }

    #[test]
    fn drop_releases_the_named_guard() {
        let t =
            trace("fn f(&self) {\n    let g = self.m1.lock();\n    drop(g);\n    self.io();\n}\n");
        let io = t.iter().find(|(l, _)| l == "call:io").unwrap();
        assert!(io.1.is_empty(), "{t:?}");
    }

    #[test]
    fn temp_guard_live_across_child_block_only() {
        let t = trace(
            "fn f(&self) {\n    for x in self.m.lock().drain(..) {\n        self.io();\n    }\n    self.after();\n}\n",
        );
        let io = t.iter().find(|(l, _)| l == "call:io").unwrap();
        assert_eq!(io.1, vec!["m"], "temp held across loop body: {t:?}");
        let after = t.iter().find(|(l, _)| l == "call:after").unwrap();
        assert!(after.1.is_empty(), "temp dies with its statement: {t:?}");
    }

    #[test]
    fn self_receiver_is_not_an_acquisition() {
        let t = trace("fn f(&self) {\n    self.lock();\n    lock(1);\n}\n");
        assert!(t.iter().all(|(l, _)| !l.starts_with("acq")), "{t:?}");
    }
}
