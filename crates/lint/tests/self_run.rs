//! The tool eating its own dog food: the live workspace must be clean
//! against the checked-in `lint.allow`, and the committed
//! `results/lint.json` must match what the current sources produce.

use std::fs;
use std::path::PathBuf;

use fademl_lint::baseline::Baseline;
use fademl_lint::{collect_findings, source};

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists")
}

#[test]
fn live_workspace_is_clean_against_baseline() {
    let root = workspace_root();
    let baseline_text = fs::read_to_string(root.join("lint.allow")).expect("lint.allow exists");
    let baseline = Baseline::parse(&baseline_text).expect("lint.allow parses");
    let report = fademl_lint::run(&root, &baseline).expect("workspace scan succeeds");
    assert!(
        report.is_clean(),
        "lint gate broken — new findings beyond lint.allow:\n{}",
        report.render()
    );
    assert!(report.files_scanned > 50, "workspace walk looks truncated");
}

#[test]
fn baseline_has_no_slack() {
    // The ratchet stays tight: every budgeted count matches reality, so
    // fixing a site forces the budget down in the same change.
    let root = workspace_root();
    let baseline_text = fs::read_to_string(root.join("lint.allow")).expect("lint.allow exists");
    let baseline = Baseline::parse(&baseline_text).expect("lint.allow parses");
    let report = fademl_lint::run(&root, &baseline).expect("workspace scan succeeds");
    assert!(
        report.ratchet_slack.is_empty(),
        "lint.allow budgets exceed current findings — tighten them:\n{}",
        report.render()
    );
}

#[test]
fn committed_report_matches_current_sources() {
    let root = workspace_root();
    let baseline_text = fs::read_to_string(root.join("lint.allow")).expect("lint.allow exists");
    let baseline = Baseline::parse(&baseline_text).expect("lint.allow parses");
    let report = fademl_lint::run(&root, &baseline).expect("workspace scan succeeds");
    let committed =
        fs::read_to_string(root.join("results/lint.json")).expect("results/lint.json committed");
    assert_eq!(
        committed.trim(),
        report.to_json().trim(),
        "results/lint.json is stale — rerun `cargo run -p fademl-lint`"
    );
}

#[test]
fn seeded_std_mutex_in_serve_fails_the_gate() {
    // End-to-end proof of the acceptance criterion: a deliberate
    // `std::sync::Mutex` added to crates/serve makes the gate fail.
    let root = workspace_root();
    let baseline_text = fs::read_to_string(root.join("lint.allow")).expect("lint.allow exists");
    let baseline = Baseline::parse(&baseline_text).expect("lint.allow parses");
    let mut files = source::load_workspace(&root).expect("workspace scan succeeds");
    files.push(source::SourceFile::from_source(
        "crates/serve/src/injected.rs",
        "use std::sync::Mutex;\npub fn sneaky(m: &Mutex<u32>) -> u32 {\n    *m.lock().unwrap()\n}\n",
    ));
    let count = files.len();
    let report = baseline.apply(collect_findings(&files), count);
    assert!(!report.is_clean());
    assert!(report
        .new_finding_details
        .iter()
        .any(|f| f.rule == "std-sync-lock" && f.path == "crates/serve/src/injected.rs"));
    // The hidden unwrap in the injected file is caught too.
    assert!(report
        .new_finding_details
        .iter()
        .any(|f| f.rule == "unwrap" && f.path == "crates/serve/src/injected.rs"));
}

/// Injects one extra source file into the real workspace scan and
/// returns the post-baseline report — the seeded-violation harness for
/// the five new passes. Each seeded file must break the gate with a
/// new finding for the expected rule at the expected path.
fn report_with_injected(path: &str, src: &str) -> fademl_lint::report::LintReport {
    let root = workspace_root();
    let baseline_text = fs::read_to_string(root.join("lint.allow")).expect("lint.allow exists");
    let baseline = Baseline::parse(&baseline_text).expect("lint.allow parses");
    let mut files = source::load_workspace(&root).expect("workspace scan succeeds");
    files.push(source::SourceFile::from_source(path, src));
    let count = files.len();
    baseline.apply(collect_findings(&files), count)
}

fn assert_gate_breaks(report: &fademl_lint::report::LintReport, rule: &str, path: &str) {
    assert!(
        !report.is_clean(),
        "seeded `{rule}` violation did not break the gate"
    );
    assert!(
        report
            .new_finding_details
            .iter()
            .any(|f| f.rule == rule && f.path == path),
        "expected a new `{rule}` finding at {path}; got:\n{}",
        report.render()
    );
}

#[test]
fn seeded_unsafe_outside_simd_fails_the_gate() {
    let report = report_with_injected(
        "crates/nn/src/injected.rs",
        "pub fn sneaky(p: *const f32) -> f32 {\n    unsafe { *p }\n}\n",
    );
    assert_gate_breaks(&report, "unsafe-confinement", "crates/nn/src/injected.rs");
}

#[test]
fn seeded_hot_path_alloc_fails_the_gate() {
    // `process_batch` is the reachability root, so an allocation in a
    // fn it calls (by name, anywhere in scope) is hot-path debt.
    let report = report_with_injected(
        "crates/nn/src/injected.rs",
        "pub fn process_batch(n: usize) -> Vec<f32> {\n    helper_injected(n)\n}\nfn helper_injected(n: usize) -> Vec<f32> {\n    Vec::with_capacity(n)\n}\n",
    );
    assert_gate_breaks(&report, "hot-path-alloc", "crates/nn/src/injected.rs");
}

#[test]
fn seeded_lock_across_io_fails_the_gate() {
    let report = report_with_injected(
        "crates/serve/src/injected.rs",
        "pub fn sneaky(&self) {\n    let g = self.state.lock();\n    std::fs::write(\"dump\", g.render());\n}\n",
    );
    assert_gate_breaks(&report, "lock-across-io", "crates/serve/src/injected.rs");
}

#[test]
fn seeded_swallowed_error_fails_the_gate() {
    let report = report_with_injected(
        "crates/serve/src/injected.rs",
        "pub fn sneaky(&self) {\n    let _ = std::fs::remove_file(\"x\");\n}\n",
    );
    assert_gate_breaks(&report, "swallowed-error", "crates/serve/src/injected.rs");
}

#[test]
fn seeded_uncapped_wire_decode_fails_the_gate() {
    // Injected as extra content at a codec path — wire-cap-check scopes
    // by file path, and findings are keyed per (rule, path), so the
    // existing clean wire.rs budget (absent = zero) cannot absorb it.
    let report = report_with_injected(
        "crates/net/src/wire.rs",
        "fn decode_injected(r: &mut ByteReader) -> Vec<u8> {\n    let n = r.get_u32() as usize;\n    Vec::with_capacity(n)\n}\n",
    );
    assert_gate_breaks(&report, "wire-cap-check", "crates/net/src/wire.rs");
}

#[test]
fn update_baseline_is_idempotent_on_the_live_workspace() {
    // `--update-baseline` over an already-regenerated lint.allow must
    // reproduce it byte-for-byte: justifications survive, ordering is
    // stable, and no count drifts.
    let root = workspace_root();
    let committed = fs::read_to_string(root.join("lint.allow")).expect("lint.allow exists");
    let header_end = committed
        .find("\nas-int")
        .or_else(|| committed.find("\ndirect-overwrite"))
        .map_or(0, |i| i + 1);
    let header = &committed[..header_end];
    let baseline = Baseline::parse(&committed).expect("lint.allow parses");
    let files = source::load_workspace(&root).expect("workspace scan succeeds");
    let findings = collect_findings(&files);
    let once = baseline.regenerate(&findings, header);
    assert_eq!(
        committed, once,
        "regenerating lint.allow from the live workspace changed it — \
         rerun `cargo run -p fademl-lint -- --update-baseline` and commit"
    );
    let twice = Baseline::parse(&once)
        .expect("regenerated baseline parses")
        .regenerate(&findings, header);
    assert_eq!(once, twice, "--update-baseline is not idempotent");
}
