//! The tool eating its own dog food: the live workspace must be clean
//! against the checked-in `lint.allow`, and the committed
//! `results/lint.json` must match what the current sources produce.

use std::fs;
use std::path::PathBuf;

use fademl_lint::baseline::Baseline;
use fademl_lint::{collect_findings, source};

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists")
}

#[test]
fn live_workspace_is_clean_against_baseline() {
    let root = workspace_root();
    let baseline_text = fs::read_to_string(root.join("lint.allow")).expect("lint.allow exists");
    let baseline = Baseline::parse(&baseline_text).expect("lint.allow parses");
    let report = fademl_lint::run(&root, &baseline).expect("workspace scan succeeds");
    assert!(
        report.is_clean(),
        "lint gate broken — new findings beyond lint.allow:\n{}",
        report.render()
    );
    assert!(report.files_scanned > 50, "workspace walk looks truncated");
}

#[test]
fn baseline_has_no_slack() {
    // The ratchet stays tight: every budgeted count matches reality, so
    // fixing a site forces the budget down in the same change.
    let root = workspace_root();
    let baseline_text = fs::read_to_string(root.join("lint.allow")).expect("lint.allow exists");
    let baseline = Baseline::parse(&baseline_text).expect("lint.allow parses");
    let report = fademl_lint::run(&root, &baseline).expect("workspace scan succeeds");
    assert!(
        report.ratchet_slack.is_empty(),
        "lint.allow budgets exceed current findings — tighten them:\n{}",
        report.render()
    );
}

#[test]
fn committed_report_matches_current_sources() {
    let root = workspace_root();
    let baseline_text = fs::read_to_string(root.join("lint.allow")).expect("lint.allow exists");
    let baseline = Baseline::parse(&baseline_text).expect("lint.allow parses");
    let report = fademl_lint::run(&root, &baseline).expect("workspace scan succeeds");
    let committed =
        fs::read_to_string(root.join("results/lint.json")).expect("results/lint.json committed");
    assert_eq!(
        committed.trim(),
        report.to_json().trim(),
        "results/lint.json is stale — rerun `cargo run -p fademl-lint`"
    );
}

#[test]
fn seeded_std_mutex_in_serve_fails_the_gate() {
    // End-to-end proof of the acceptance criterion: a deliberate
    // `std::sync::Mutex` added to crates/serve makes the gate fail.
    let root = workspace_root();
    let baseline_text = fs::read_to_string(root.join("lint.allow")).expect("lint.allow exists");
    let baseline = Baseline::parse(&baseline_text).expect("lint.allow parses");
    let mut files = source::load_workspace(&root).expect("workspace scan succeeds");
    files.push(source::SourceFile::from_source(
        "crates/serve/src/injected.rs",
        "use std::sync::Mutex;\npub fn sneaky(m: &Mutex<u32>) -> u32 {\n    *m.lock().unwrap()\n}\n",
    ));
    let count = files.len();
    let report = baseline.apply(collect_findings(&files), count);
    assert!(!report.is_clean());
    assert!(report
        .new_finding_details
        .iter()
        .any(|f| f.rule == "std-sync-lock" && f.path == "crates/serve/src/injected.rs"));
    // The hidden unwrap in the injected file is caught too.
    assert!(report
        .new_finding_details
        .iter()
        .any(|f| f.rule == "unwrap" && f.path == "crates/serve/src/injected.rs"));
}
