//! Property tests for the lint IR: the token-tree parser must be
//! *total* — it never panics and always terminates, whatever bytes it
//! is fed. Hostile inputs here are arbitrary byte soup, pathological
//! nesting far beyond `MAX_NESTING`, unbalanced delimiter storms, and
//! Rust-shaped fragments stitched together at random. The same
//! invariants are then asserted over every real file in this
//! workspace, which is the corpus the tool actually runs on.

use fademl_lint::ir::{Block, FnItem, Ir, Stmt};
use fademl_lint::source::{self, SourceFile};
use proptest::prelude::*;

/// Parses one synthetic source and checks the structural invariants
/// every pass relies on. Returning at all proves termination; any
/// panic fails the test.
fn parse_and_check(src: &str) {
    let file = SourceFile::from_source("crates/x/src/fuzz.rs", src);
    let line_count = file.lines.len();
    let ir = Ir::parse(std::slice::from_ref(&file));
    assert_eq!(ir.files.len(), 1);
    for f in &ir.files[0].fns {
        check_fn(f, line_count);
    }
}

fn check_fn(f: &FnItem, line_count: usize) {
    assert!(!f.name.is_empty(), "fn item with empty name");
    assert!(f.line >= 1 && f.line <= line_count.max(1));
    check_block(&f.body, line_count);
}

fn check_block(b: &Block, line_count: usize) {
    assert!(b.open_line <= b.close_line);
    for s in &b.stmts {
        check_stmt(s, line_count);
    }
}

fn check_stmt(s: &Stmt, line_count: usize) {
    assert!(s.line <= s.end_line, "stmt lines out of order");
    assert!(s.end_line <= line_count.max(1));
    for c in &s.calls {
        assert!(!c.name.is_empty(), "call site with empty name");
        assert!(c.line >= 1 && c.line <= line_count.max(1));
    }
    for child in &s.children {
        check_block(child, line_count);
    }
}

/// Tokens the Rust-shaped generator draws from: enough keywords,
/// delimiters and operators to reach every parser branch, including
/// the mismatch-recovery ones.
const ALPHABET: &[&str] = &[
    "fn",
    "let",
    "unsafe",
    "impl",
    "mod",
    "struct",
    "if",
    "else",
    "match",
    "return",
    "for",
    "while",
    "pub",
    "async",
    "move",
    "ident",
    "x",
    "self",
    "Result",
    "(",
    ")",
    "[",
    "]",
    "{",
    "}",
    "<",
    ">",
    "->",
    "=>",
    ";",
    ",",
    ".",
    "::",
    "=",
    "==",
    "&",
    "&mut",
    "#",
    "!",
    "?",
    "'a",
    "\"s\"",
    "'c'",
    "// line comment",
    "/* block */",
    "0xFF",
    "1.5e3",
    "…",
];

/// Builds a Rust-shaped fragment from drawn indices; a newline is
/// inserted every few tokens so line bookkeeping is exercised too.
fn rust_soup(picks: &[u64]) -> String {
    let mut out = String::new();
    for (i, p) in picks.iter().enumerate() {
        out.push_str(ALPHABET[(*p as usize) % ALPHABET.len()]);
        out.push(if i % 7 == 6 { '\n' } else { ' ' });
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn arbitrary_bytes_never_panic(raw in proptest::collection::vec(0u64..256, 0..512)) {
        let bytes: Vec<u8> = raw.iter().map(|b| *b as u8).collect();
        let src = String::from_utf8_lossy(&bytes).into_owned();
        parse_and_check(&src);
    }

    #[test]
    fn rust_shaped_soup_never_panics(picks in proptest::collection::vec(0u64..64, 0..256)) {
        parse_and_check(&rust_soup(&picks));
    }

    #[test]
    fn delimiter_storms_never_panic(picks in proptest::collection::vec(0u64..6, 0..2048)) {
        // Pure open/close storms hit the nesting cap and every
        // recovery path (stray closers, mismatched kinds, EOF close).
        let src: String = picks
            .iter()
            .map(|p| ["(", ")", "[", "]", "{", "}"][(*p as usize) % 6])
            .collect();
        parse_and_check(&src);
    }
}

#[test]
fn nesting_beyond_the_cap_terminates() {
    // 1000 levels deep — far past MAX_NESTING (64). The parser must
    // degrade (deeper openers become plain puncts), not recurse away.
    let mut src = String::from("fn f() ");
    for _ in 0..1000 {
        src.push('{');
    }
    src.push_str("go();");
    for _ in 0..1000 {
        src.push('}');
    }
    parse_and_check(&src);
}

#[test]
fn unclosed_groups_at_eof_terminate() {
    parse_and_check("fn f() { let a = (1, [2, {3");
    parse_and_check("impl Foo { fn g(&self) -> Result<");
    parse_and_check("}}})]]);;;fn");
}

#[test]
fn parse_is_deterministic() {
    let src = "impl S {\n    fn a(&self) -> Result<()> {\n        let g = self.m.lock();\n        if x { go(); }\n        Ok(())\n    }\n}\n";
    let a = SourceFile::from_source("crates/x/src/a.rs", src);
    let ir1 = Ir::parse(std::slice::from_ref(&a));
    let ir2 = Ir::parse(std::slice::from_ref(&a));
    assert_eq!(format!("{:?}", ir1.files[0]), format!("{:?}", ir2.files[0]));
}

/// The invariant sweep over the real workspace: every file this lint
/// tool will ever scan in CI parses panic-free with well-formed spans.
#[test]
fn every_workspace_file_parses_with_valid_spans() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("workspace root")
        .to_path_buf();
    let files = source::load_workspace(&root).expect("workspace walk");
    assert!(
        files.len() > 100,
        "workspace walk found only {} files — wrong root?",
        files.len()
    );
    let ir = Ir::parse(&files);
    assert_eq!(ir.files.len(), files.len());
    let mut total_fns = 0;
    for (src, parsed) in files.iter().zip(&ir.files) {
        assert_eq!(src.path, parsed.path);
        for f in &parsed.fns {
            check_fn(f, src.lines.len());
        }
        total_fns += parsed.fns.len();
    }
    assert!(
        total_fns > 500,
        "only {total_fns} fns extracted across the workspace — parser regression?"
    );
}
