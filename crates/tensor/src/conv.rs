//! 2-D convolution via im2col, with full backward passes.
//!
//! Layout conventions (all NCHW):
//! - input `[N, C, H, W]`
//! - weight `[F, C, KH, KW]`
//! - bias `[F]`
//! - output `[N, F, OH, OW]`
//!
//! The backward pass returns gradients w.r.t. input, weight and bias; the
//! input gradient is what the adversarial attacks ultimately consume.
//!
//! # Planning
//!
//! Both entry points ask the plan selector for one cached [`Blueprint`]
//! per geometry key (`[N, C, H, W, F, KH, KW, stride, padding]`). The
//! blueprint carries cap-checked scratch/output sizes (anything that
//! would overflow `usize` surfaces as [`TensorError::Overflow`] before
//! a byte is allocated), the GEMM blocking for the per-sample
//! `weight × cols` product, and the hoisted parallel/serial decision.
//! Per-sample im2col column matrices and packing panels come from the
//! thread-local scratch arena, so steady-state serving reuses one
//! high-water buffer per worker instead of allocating per call.
//!
//! # Parallel decomposition
//!
//! The forward pass partitions the *batch* across the [`crate::par`]
//! pool (each worker unfolds, multiplies and bias-fuses its own
//! samples); the backward pass partitions ∂weight/∂bias over *filters*
//! and ∂input over samples. In every case each output element is owned
//! by exactly one chunk and its accumulation order matches the serial
//! loop — crucially, ∂weight sums its per-sample contributions in
//! increasing sample order within one owner — so results are bit-exact
//! regardless of thread count.

use std::ops::Range;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::matmul::{gemm_nt_block, gemm_rows_into, pack_b_into, transpose_into};
use crate::plan::alloc;
use crate::plan::blueprint::{
    blocking_for, checked_add, checked_product, classify_gemm, Blocking, Blueprint, OpKind,
    ShapeKey,
};
use crate::plan::selector;
use crate::{par, Result, Shape, Tensor, TensorError};

/// Geometry of a 2-D convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ConvSpec {
    /// Number of input channels `C`.
    pub in_channels: usize,
    /// Number of output channels (filters) `F`.
    pub out_channels: usize,
    /// Kernel height.
    pub kernel_h: usize,
    /// Kernel width.
    pub kernel_w: usize,
    /// Stride in both dimensions.
    pub stride: usize,
    /// Zero padding on all four sides.
    pub padding: usize,
}

impl ConvSpec {
    /// A square-kernel spec with the given stride and padding.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
    ) -> Self {
        ConvSpec {
            in_channels,
            out_channels,
            kernel_h: kernel,
            kernel_w: kernel,
            stride,
            padding,
        }
    }

    /// Spatial output size for an `h × w` input.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidGeometry`] when the stride is zero
    /// or the (padded) input is smaller than the kernel, and
    /// [`TensorError::Overflow`] when `h + 2·padding` (or the width
    /// analogue) does not fit in `usize` — previously that wrapped in
    /// release builds and produced a nonsense geometry.
    pub fn output_size(&self, h: usize, w: usize) -> Result<(usize, usize)> {
        if self.stride == 0 {
            return Err(TensorError::InvalidGeometry {
                reason: "stride must be positive".into(),
            });
        }
        if self.kernel_h == 0 || self.kernel_w == 0 {
            return Err(TensorError::InvalidGeometry {
                reason: "kernel must be non-empty".into(),
            });
        }
        let pad2 = checked_product("conv padding", &[2, self.padding])?;
        let ph = checked_add("conv padded height", h, pad2)?;
        let pw = checked_add("conv padded width", w, pad2)?;
        if ph < self.kernel_h || pw < self.kernel_w {
            return Err(TensorError::InvalidGeometry {
                reason: format!(
                    "kernel {}x{} larger than padded input {ph}x{pw}",
                    self.kernel_h, self.kernel_w
                ),
            });
        }
        Ok((
            (ph - self.kernel_h) / self.stride + 1,
            (pw - self.kernel_w) / self.stride + 1,
        ))
    }

    /// Number of weight parameters: `F · C · KH · KW`.
    pub fn weight_count(&self) -> usize {
        self.out_channels * self.in_channels * self.kernel_h * self.kernel_w
    }
}

/// Gradients produced by [`conv2d_backward`].
#[derive(Debug, Clone, PartialEq)]
pub struct Conv2dGrads {
    /// `∂L/∂input`, shaped like the forward input.
    pub input: Tensor,
    /// `∂L/∂weight`, shaped like the weight.
    pub weight: Tensor,
    /// `∂L/∂bias`, shaped `[F]`.
    pub bias: Tensor,
}

/// Core im2col fill: unfolds one `[C, H, W]` image (`src`) into `dst`
/// (`[C·KH·KW, OH·OW]`, row-major). `dst` must arrive zeroed — padded
/// positions are left untouched.
fn im2col_into(
    src: &[f32],
    spec: &ConvSpec,
    h: usize,
    w: usize,
    oh: usize,
    ow: usize,
    dst: &mut [f32],
) {
    let cols = oh * ow;
    let pad = spec.padding as isize;
    for ch in 0..spec.in_channels {
        for kh in 0..spec.kernel_h {
            for kw in 0..spec.kernel_w {
                let row = (ch * spec.kernel_h + kh) * spec.kernel_w + kw;
                let out_row = &mut dst[row * cols..(row + 1) * cols];
                for oy in 0..oh {
                    let iy = (oy * spec.stride) as isize + kh as isize - pad;
                    if iy < 0 || iy >= h as isize {
                        continue; // zero padding: leave zeros in place
                    }
                    for ox in 0..ow {
                        let ix = (ox * spec.stride) as isize + kw as isize - pad;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        out_row[oy * ow + ox] = src[(ch * h + iy as usize) * w + ix as usize];
                    }
                }
            }
        }
    }
}

/// Adjoint of [`im2col_into`]: folds `cols` back into `dst` (`[C, H, W]`,
/// must arrive zeroed), summing overlapping contributions.
fn col2im_add(
    cols: &[f32],
    spec: &ConvSpec,
    h: usize,
    w: usize,
    oh: usize,
    ow: usize,
    dst: &mut [f32],
) {
    let n_cols = oh * ow;
    let pad = spec.padding as isize;
    for ch in 0..spec.in_channels {
        for kh in 0..spec.kernel_h {
            for kw in 0..spec.kernel_w {
                let row = (ch * spec.kernel_h + kh) * spec.kernel_w + kw;
                let in_row = &cols[row * n_cols..(row + 1) * n_cols];
                for oy in 0..oh {
                    let iy = (oy * spec.stride) as isize + kh as isize - pad;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    for ox in 0..ow {
                        let ix = (ox * spec.stride) as isize + kw as isize - pad;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        dst[(ch * h + iy as usize) * w + ix as usize] += in_row[oy * ow + ox];
                    }
                }
            }
        }
    }
}

/// Unfolds one `[C, H, W]` image into an im2col matrix
/// `[C·KH·KW, OH·OW]` for the given geometry.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-rank-3 input,
/// [`TensorError::ShapeMismatch`] when the channel count disagrees with
/// the spec, [`TensorError::InvalidGeometry`] for impossible geometry,
/// or [`TensorError::Overflow`] when the unfolded size overflows.
pub fn im2col(image: &Tensor, spec: &ConvSpec) -> Result<Tensor> {
    if image.rank() != 3 {
        return Err(TensorError::RankMismatch {
            op: "im2col",
            expected: 3,
            actual: image.rank(),
        });
    }
    let (c, h, w) = (image.dims()[0], image.dims()[1], image.dims()[2]);
    if c != spec.in_channels {
        return Err(TensorError::shape_mismatch(
            "im2col",
            image.dims(),
            &[spec.in_channels],
        ));
    }
    let (oh, ow) = spec.output_size(h, w)?;
    let rows = checked_product("im2col rows", &[c, spec.kernel_h, spec.kernel_w])?;
    let len = checked_product("im2col", &[rows, oh, ow])?;
    let mut out = alloc::fresh_vec(len);
    im2col_into(image.as_slice(), spec, h, w, oh, ow, &mut out);
    Tensor::from_vec(out, Shape::of(&[rows, oh * ow]))
}

/// Folds an im2col matrix back into an image, *summing* overlapping
/// contributions — the exact adjoint of [`im2col`].
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `cols` does not have the
/// `[C·KH·KW, OH·OW]` shape implied by `spec` and `(h, w)`, or
/// [`TensorError::InvalidGeometry`] for impossible geometry.
pub fn col2im(cols: &Tensor, spec: &ConvSpec, h: usize, w: usize) -> Result<Tensor> {
    let (oh, ow) = spec.output_size(h, w)?;
    let c = spec.in_channels;
    let rows = c * spec.kernel_h * spec.kernel_w;
    if cols.dims() != [rows, oh * ow] {
        return Err(TensorError::shape_mismatch(
            "col2im",
            cols.dims(),
            &[rows, oh * ow],
        ));
    }
    let mut out = alloc::fresh_vec(c * h * w);
    col2im_add(cols.as_slice(), spec, h, w, oh, ow, &mut out);
    Tensor::from_vec(out, Shape::of(&[c, h, w]))
}

fn validate_conv_input(input: &Tensor, spec: &ConvSpec) -> Result<(usize, usize, usize)> {
    if input.rank() != 4 {
        return Err(TensorError::RankMismatch {
            op: "conv2d",
            expected: 4,
            actual: input.rank(),
        });
    }
    if input.dims()[1] != spec.in_channels {
        return Err(TensorError::shape_mismatch(
            "conv2d",
            input.dims(),
            &[spec.in_channels],
        ));
    }
    Ok((input.dims()[0], input.dims()[2], input.dims()[3]))
}

/// Plans a convolution (forward or backward) through the selector: one
/// cached blueprint per geometry key, carrying the cap-checked sizes,
/// the blocking for the inner per-sample GEMM, and the hoisted
/// parallel/serial decision.
fn plan_conv2d(
    spec: &ConvSpec,
    n: usize,
    h: usize,
    w: usize,
    oh: usize,
    ow: usize,
    backward: bool,
) -> Result<Blueprint> {
    let op = if backward {
        OpKind::Conv2dBackward
    } else {
        OpKind::Conv2d
    };
    let key = ShapeKey::new(
        op,
        &[
            n,
            spec.in_channels,
            h,
            w,
            spec.out_channels,
            spec.kernel_h,
            spec.kernel_w,
            spec.stride,
            spec.padding,
        ],
    );
    // The spec is moved into the closure by value so the borrow does not
    // outlive the memoizer call.
    let spec = *spec;
    selector::plan_with(key, move || {
        let k_flat = checked_product(
            "conv2d weight",
            &[spec.in_channels, spec.kernel_h, spec.kernel_w],
        )?;
        let ohw = checked_product("conv2d output plane", &[oh, ow])?;
        let cols_len = checked_product("conv2d im2col", &[k_flat, ohw])?;
        let out_len = if backward {
            checked_product("conv2d_backward input grad", &[n, spec.in_channels, h, w])?
        } else {
            checked_product("conv2d output", &[n, spec.out_channels, oh, ow])?
        };
        // Forward: secondary scratch is the packed-cols panel (same
        // element count as the cols matrix). Backward: the wᵀ buffer.
        let scratch2 = if backward {
            checked_product("conv2d_backward transpose", &[k_flat, spec.out_channels])?
        } else {
            cols_len
        };
        // Blocking is classified on the inner GEMM (F × k_flat × OH·OW);
        // the dispatch threshold sees the whole batch. `work` only feeds
        // thresholds, so saturation is fine.
        let gemm_work = spec.out_channels.saturating_mul(k_flat).saturating_mul(ohw);
        let work = n.saturating_mul(gemm_work);
        let class = classify_gemm(spec.out_channels, ohw, gemm_work);
        let rows_axis = if backward {
            n.max(spec.out_channels)
        } else {
            n
        };
        Ok(Blueprint {
            key,
            class,
            blocking: blocking_for(class),
            parallel: par::should_parallelize(rows_axis, work),
            rows: n,
            scratch: cols_len,
            scratch2,
            out_len,
        })
    })
}

/// Immutable per-call geometry shared by the forward/backward workers.
#[derive(Clone, Copy)]
struct ConvGeom {
    spec: ConvSpec,
    h: usize,
    w: usize,
    oh: usize,
    ow: usize,
    k_flat: usize,
    /// GEMM blocking from the blueprint; identical for every worker and
    /// every call with the same shape key.
    bl: Blocking,
}

impl ConvGeom {
    fn image_len(&self) -> usize {
        self.spec.in_channels * self.h * self.w
    }

    fn cols_len(&self) -> usize {
        self.k_flat * self.oh * self.ow
    }

    fn out_plane_len(&self) -> usize {
        self.spec.out_channels * self.oh * self.ow
    }
}

/// Forward worker: convolves the samples in `range`, returning their
/// `[len, F, OH, OW]` output block. The bias is fused into the
/// cache-hot per-sample product block — there is no second batch-wide
/// sweep (and no reorder copy; the per-sample GEMM output already has
/// the `[F, OH·OW]` layout the NCHW output needs). The im2col matrix
/// and packing panel lease from the calling thread's scratch arena, so
/// a warm worker performs exactly one allocation: the returned block.
fn conv2d_block(
    input: &[f32],
    w_mat: &[f32],
    bias: &[f32],
    geom: ConvGeom,
    range: Range<usize>,
) -> Vec<f32> {
    let ohw = geom.oh * geom.ow;
    let len = range.end - range.start;
    let mut out = alloc::fresh_vec(len * geom.out_plane_len());
    let mut cols = alloc::scratch_f32(geom.cols_len());
    let mut packed = alloc::scratch_f32(geom.cols_len());
    for (block, sample) in out.chunks_exact_mut(geom.out_plane_len()).zip(range) {
        let src = &input[sample * geom.image_len()..(sample + 1) * geom.image_len()];
        cols.as_mut_slice().fill(0.0);
        im2col_into(src, &geom.spec, geom.h, geom.w, geom.oh, geom.ow, &mut cols);
        pack_b_into(&cols, geom.k_flat, ohw, geom.bl, &mut packed);
        gemm_rows_into(
            w_mat,
            geom.spec.out_channels,
            geom.k_flat,
            &packed,
            ohw,
            geom.bl,
            block,
        );
        for (f, row) in block.chunks_exact_mut(ohw).enumerate() {
            let b = bias[f];
            for o in row {
                *o += b;
            }
        }
    }
    out
}

/// Batched 2-D convolution: `[N, C, H, W] → [N, F, OH, OW]`.
///
/// Samples are independent, so the batch is partitioned across the
/// [`crate::par`] pool; per sample the result is identical to the
/// serial path bit-for-bit (see the module docs). The serial-vs-pool
/// decision and the GEMM blocking both come from one cached blueprint,
/// so they can never disagree for a given shape key.
///
/// # Errors
///
/// Returns an error when the input is not rank 4, the channel counts
/// disagree with `spec`, `weight`/`bias` have the wrong shapes, the
/// geometry is impossible, or a buffer size overflows `usize`.
pub fn conv2d(input: &Tensor, weight: &Tensor, bias: &Tensor, spec: &ConvSpec) -> Result<Tensor> {
    let (n, h, w) = validate_conv_input(input, spec)?;
    if weight.dims()
        != [
            spec.out_channels,
            spec.in_channels,
            spec.kernel_h,
            spec.kernel_w,
        ]
    {
        return Err(TensorError::shape_mismatch(
            "conv2d",
            weight.dims(),
            &[
                spec.out_channels,
                spec.in_channels,
                spec.kernel_h,
                spec.kernel_w,
            ],
        ));
    }
    if bias.dims() != [spec.out_channels] {
        return Err(TensorError::shape_mismatch(
            "conv2d",
            bias.dims(),
            &[spec.out_channels],
        ));
    }
    let (oh, ow) = spec.output_size(h, w)?;
    let bp = plan_conv2d(spec, n, h, w, oh, ow, false)?;
    let geom = ConvGeom {
        spec: *spec,
        h,
        w,
        oh,
        ow,
        // Cap-checked inside the blueprint build; safe to re-derive.
        k_flat: spec.in_channels * spec.kernel_h * spec.kernel_w,
        bl: bp.blocking,
    };
    // A `[F, C, KH, KW]` weight is already `[F, K]` row-major.
    let out = if bp.parallel {
        // Cross-thread operands bypass the arena deliberately: a buffer
        // dropped on another thread would migrate into its pool.
        let input: Arc<Vec<f32>> = Arc::new(alloc::fresh_from(input.as_slice()));
        let w_mat: Arc<Vec<f32>> = Arc::new(alloc::fresh_from(weight.as_slice()));
        let bias: Arc<Vec<f32>> = Arc::new(alloc::fresh_from(bias.as_slice()));
        let blocks = par::parallel_rows(bp.rows, move |range: Range<usize>| {
            conv2d_block(&input, &w_mat, &bias, geom, range)
        });
        let mut out = alloc::fresh_with(bp.out_len);
        for block in blocks {
            out.extend_from_slice(&block);
        }
        out
    } else {
        conv2d_block(
            input.as_slice(),
            weight.as_slice(),
            bias.as_slice(),
            geom,
            0..n,
        )
    };
    Tensor::from_vec(out, Shape::of(&[n, spec.out_channels, oh, ow]))
}

/// ∂weight/∂bias worker: computes gradient rows for the filters in
/// `range`, looping samples in increasing order per element so the
/// cross-sample accumulation matches the serial association.
fn conv_grad_filters_block(
    grad_out: &[f32],
    cols_all: &[f32],
    geom: ConvGeom,
    n: usize,
    range: Range<usize>,
) -> (Vec<f32>, Vec<f32>) {
    let ohw = geom.oh * geom.ow;
    let len = range.end - range.start;
    let mut grad_w = alloc::fresh_vec(len * geom.k_flat);
    let mut grad_b = alloc::fresh_vec(len);
    for sample in 0..n {
        let g_sample = &grad_out[sample * geom.out_plane_len()..][..geom.out_plane_len()];
        let cols = &cols_all[sample * geom.cols_len()..][..geom.cols_len()];
        for (slot, f) in range.clone().enumerate() {
            let g_row = &g_sample[f * ohw..(f + 1) * ohw];
            // ∂bias: sum over spatial positions, then across samples.
            if let Some(b) = grad_b.get_mut(slot) {
                *b += g_row.iter().sum::<f32>();
            }
            // ∂weight row f += g_row · colsᵀ (dot per k, o-order).
            let w_row = &mut grad_w[slot * geom.k_flat..(slot + 1) * geom.k_flat];
            gemm_nt_block(g_row, 1, cols, ohw, geom.k_flat, w_row, true);
        }
    }
    (grad_w, grad_b)
}

/// ∂input worker: for each sample in `range`, computes
/// `col2im(w_matᵀ · g_mat)` and returns the concatenated image blocks.
/// The packed panel and the unfolded gradient columns lease from this
/// thread's scratch arena.
fn conv_grad_input_block(
    grad_out: &[f32],
    w_t: &[f32],
    geom: ConvGeom,
    range: Range<usize>,
) -> Vec<f32> {
    let ohw = geom.oh * geom.ow;
    let f = geom.spec.out_channels;
    let mut out = alloc::fresh_vec((range.end - range.start) * geom.image_len());
    let mut packed = alloc::scratch_f32(geom.out_plane_len());
    let mut gcols = alloc::scratch_f32(geom.cols_len());
    for (slot, sample) in range.enumerate() {
        let g_mat = &grad_out[sample * geom.out_plane_len()..][..geom.out_plane_len()];
        pack_b_into(g_mat, f, ohw, geom.bl, &mut packed);
        gcols.as_mut_slice().fill(0.0);
        gemm_rows_into(w_t, geom.k_flat, f, &packed, ohw, geom.bl, &mut gcols);
        let dst = &mut out[slot * geom.image_len()..(slot + 1) * geom.image_len()];
        col2im_add(&gcols, &geom.spec, geom.h, geom.w, geom.oh, geom.ow, dst);
    }
    out
}

/// Unfolds the samples in `range` into `dst` (their concatenated
/// `[len · K, OH·OW]` column blocks; must arrive zeroed).
fn im2col_samples_into(input: &[f32], geom: ConvGeom, range: Range<usize>, dst: &mut [f32]) {
    for (slot, sample) in range.enumerate() {
        let src = &input[sample * geom.image_len()..(sample + 1) * geom.image_len()];
        let block = &mut dst[slot * geom.cols_len()..(slot + 1) * geom.cols_len()];
        im2col_into(src, &geom.spec, geom.h, geom.w, geom.oh, geom.ow, block);
    }
}

/// im2col worker for the parallel path: returns a freshly allocated
/// (cross-thread) column block.
fn im2col_samples_block(input: &[f32], geom: ConvGeom, range: Range<usize>) -> Vec<f32> {
    let mut out = alloc::fresh_vec((range.end - range.start) * geom.cols_len());
    im2col_samples_into(input, geom, range, &mut out);
    out
}

/// Backward pass of [`conv2d`].
///
/// `grad_out` must have the forward output's shape `[N, F, OH, OW]`.
///
/// ∂weight and ∂bias are partitioned over *filters* (each worker owns
/// whole gradient rows and sums samples in order), ∂input over samples;
/// both are bit-exact across thread counts.
///
/// # Errors
///
/// Same shape conditions as [`conv2d`], plus a shape check on `grad_out`.
pub fn conv2d_backward(
    input: &Tensor,
    weight: &Tensor,
    grad_out: &Tensor,
    spec: &ConvSpec,
) -> Result<Conv2dGrads> {
    let (n, h, w) = validate_conv_input(input, spec)?;
    let (oh, ow) = spec.output_size(h, w)?;
    if grad_out.dims() != [n, spec.out_channels, oh, ow] {
        return Err(TensorError::shape_mismatch(
            "conv2d_backward",
            grad_out.dims(),
            &[n, spec.out_channels, oh, ow],
        ));
    }
    let bp = plan_conv2d(spec, n, h, w, oh, ow, true)?;
    let geom = ConvGeom {
        spec: *spec,
        h,
        w,
        oh,
        ow,
        k_flat: spec.in_channels * spec.kernel_h * spec.kernel_w,
        bl: bp.blocking,
    };
    let k_flat = geom.k_flat;
    let cols_total = checked_product("conv2d_backward cols", &[n, geom.cols_len()])?;

    if !bp.parallel {
        let input_data = input.as_slice();
        let g_data = grad_out.as_slice();
        let mut cols_all = alloc::scratch_f32(cols_total);
        im2col_samples_into(input_data, geom, 0..n, &mut cols_all);
        let (grad_w, grad_b) =
            conv_grad_filters_block(g_data, &cols_all, geom, n, 0..spec.out_channels);
        let mut w_t = alloc::scratch_f32(bp.scratch2);
        transpose_into(weight.as_slice(), spec.out_channels, k_flat, &mut w_t);
        let grad_input = conv_grad_input_block(g_data, &w_t, geom, 0..n);
        return Ok(Conv2dGrads {
            input: Tensor::from_vec(grad_input, input.shape().duplicate())?,
            weight: Tensor::from_vec(grad_w, Shape::of(weight.dims()))?,
            bias: Tensor::from_vec(grad_b, Shape::of(&[spec.out_channels]))?,
        });
    }

    let input_arc: Arc<Vec<f32>> = Arc::new(alloc::fresh_from(input.as_slice()));
    let g_arc: Arc<Vec<f32>> = Arc::new(alloc::fresh_from(grad_out.as_slice()));

    // Phase 1: unfold every sample once (partitioned over samples); the
    // column matrices are shared read-only by the ∂weight workers.
    let in_for_cols = Arc::clone(&input_arc);
    let col_blocks = par::parallel_rows(n, move |range: Range<usize>| {
        im2col_samples_block(&in_for_cols, geom, range)
    });
    let mut cols_all = alloc::fresh_with(cols_total);
    for block in col_blocks {
        cols_all.extend_from_slice(&block);
    }
    let cols_all = Arc::new(cols_all);

    // Phase 2: ∂weight + ∂bias over filter rows.
    let g_for_w = Arc::clone(&g_arc);
    let grad_blocks = par::parallel_rows(spec.out_channels, move |range: Range<usize>| {
        conv_grad_filters_block(&g_for_w, &cols_all, geom, n, range)
    });
    let mut grad_w = alloc::fresh_with(spec.out_channels * k_flat);
    let mut grad_b = alloc::fresh_with(spec.out_channels);
    for (w_block, b_block) in grad_blocks {
        grad_w.extend_from_slice(&w_block);
        grad_b.extend_from_slice(&b_block);
    }

    // Phase 3: ∂input over samples.
    let mut w_t_buf = alloc::fresh_vec(bp.scratch2);
    transpose_into(weight.as_slice(), spec.out_channels, k_flat, &mut w_t_buf);
    let w_t = Arc::new(w_t_buf);
    let in_blocks = par::parallel_rows(n, move |range: Range<usize>| {
        conv_grad_input_block(&g_arc, &w_t, geom, range)
    });
    let mut grad_input = alloc::fresh_with(input.numel());
    for block in in_blocks {
        grad_input.extend_from_slice(&block);
    }

    Ok(Conv2dGrads {
        input: Tensor::from_vec(grad_input, input.shape().duplicate())?,
        weight: Tensor::from_vec(grad_w, Shape::of(weight.dims()))?,
        bias: Tensor::from_vec(grad_b, Shape::of(&[spec.out_channels]))?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TensorRng;
    use proptest::prelude::*;

    /// Naive direct convolution used as a reference implementation.
    fn conv2d_naive(input: &Tensor, weight: &Tensor, bias: &Tensor, spec: &ConvSpec) -> Tensor {
        let (n, c, h, w) = (
            input.dims()[0],
            input.dims()[1],
            input.dims()[2],
            input.dims()[3],
        );
        let (oh, ow) = spec.output_size(h, w).unwrap();
        let mut out = Tensor::zeros(&[n, spec.out_channels, oh, ow]);
        for s in 0..n {
            for f in 0..spec.out_channels {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = bias.get(&[f]).unwrap();
                        for ch in 0..c {
                            for kh in 0..spec.kernel_h {
                                for kw in 0..spec.kernel_w {
                                    let iy =
                                        (oy * spec.stride + kh) as isize - spec.padding as isize;
                                    let ix =
                                        (ox * spec.stride + kw) as isize - spec.padding as isize;
                                    if iy < 0 || ix < 0 || iy >= h as isize || ix >= w as isize {
                                        continue;
                                    }
                                    acc += input.get(&[s, ch, iy as usize, ix as usize]).unwrap()
                                        * weight.get(&[f, ch, kh, kw]).unwrap();
                                }
                            }
                        }
                        out.set(&[s, f, oy, ox], acc).unwrap();
                    }
                }
            }
        }
        out
    }

    fn random_setup(
        seed: u64,
        spec: &ConvSpec,
        n: usize,
        h: usize,
        w: usize,
    ) -> (Tensor, Tensor, Tensor) {
        let mut rng = TensorRng::seed_from_u64(seed);
        let input = rng.uniform(&[n, spec.in_channels, h, w], -1.0, 1.0);
        let weight = rng.uniform(
            &[
                spec.out_channels,
                spec.in_channels,
                spec.kernel_h,
                spec.kernel_w,
            ],
            -0.5,
            0.5,
        );
        let bias = rng.uniform(&[spec.out_channels], -0.1, 0.1);
        (input, weight, bias)
    }

    #[test]
    fn output_size_math() {
        let spec = ConvSpec::new(1, 1, 3, 1, 1);
        assert_eq!(spec.output_size(8, 8).unwrap(), (8, 8)); // "same" conv
        let spec = ConvSpec::new(1, 1, 3, 2, 0);
        assert_eq!(spec.output_size(7, 7).unwrap(), (3, 3));
        let spec = ConvSpec::new(1, 1, 5, 1, 0);
        assert!(spec.output_size(3, 3).is_err());
        let spec = ConvSpec {
            stride: 0,
            ..ConvSpec::new(1, 1, 3, 1, 0)
        };
        assert!(spec.output_size(8, 8).is_err());
    }

    #[test]
    fn output_size_overflow_is_typed() {
        // `h + 2·padding` used to wrap in release builds; now it is a
        // typed error before any sizing happens.
        let spec = ConvSpec {
            padding: usize::MAX / 2 + 1,
            ..ConvSpec::new(1, 1, 3, 1, 0)
        };
        assert!(matches!(
            spec.output_size(8, 8),
            Err(TensorError::Overflow { .. })
        ));
        let spec = ConvSpec {
            padding: usize::MAX / 2,
            ..ConvSpec::new(1, 1, 3, 1, 0)
        };
        assert!(matches!(
            spec.output_size(8, 8),
            Err(TensorError::Overflow { .. })
        ));
    }

    #[test]
    fn conv2d_surfaces_overflow_not_panic() {
        let spec = ConvSpec {
            padding: usize::MAX / 2,
            ..ConvSpec::new(1, 1, 3, 1, 0)
        };
        let input = Tensor::zeros(&[1, 1, 4, 4]);
        let weight = Tensor::zeros(&[1, 1, 3, 3]);
        let bias = Tensor::zeros(&[1]);
        assert!(matches!(
            conv2d(&input, &weight, &bias, &spec),
            Err(TensorError::Overflow { .. })
        ));
    }

    #[test]
    fn identity_kernel_passes_through() {
        // 1x1 kernel with weight 1 and bias 0 is the identity.
        let spec = ConvSpec::new(1, 1, 1, 1, 0);
        let mut rng = TensorRng::seed_from_u64(1);
        let input = rng.uniform(&[1, 1, 4, 4], -1.0, 1.0);
        let weight = Tensor::ones(&[1, 1, 1, 1]);
        let bias = Tensor::zeros(&[1]);
        let out = conv2d(&input, &weight, &bias, &spec).unwrap();
        assert_eq!(out, input);
    }

    #[test]
    fn matches_naive_reference() {
        for (spec, h, w) in [
            (ConvSpec::new(2, 3, 3, 1, 1), 5, 5),
            (ConvSpec::new(1, 2, 3, 2, 0), 7, 6),
            (ConvSpec::new(3, 1, 2, 1, 0), 4, 4),
            (ConvSpec::new(2, 2, 3, 1, 2), 3, 3),
        ] {
            let (input, weight, bias) = random_setup(42, &spec, 2, h, w);
            let fast = conv2d(&input, &weight, &bias, &spec).unwrap();
            let slow = conv2d_naive(&input, &weight, &bias, &spec);
            assert_eq!(fast.dims(), slow.dims());
            for (a, b) in fast.as_slice().iter().zip(slow.as_slice()) {
                assert!((a - b).abs() < 1e-4, "{a} vs {b} for spec {spec:?}");
            }
        }
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random x, y — the defining
        // property of an adjoint pair, which is what backprop relies on.
        let spec = ConvSpec::new(2, 1, 3, 1, 1);
        let (h, w) = (5, 4);
        let (oh, ow) = spec.output_size(h, w).unwrap();
        let rows = spec.in_channels * spec.kernel_h * spec.kernel_w;
        let mut rng = TensorRng::seed_from_u64(9);
        let x = rng.uniform(&[spec.in_channels, h, w], -1.0, 1.0);
        let y = rng.uniform(&[rows, oh * ow], -1.0, 1.0);
        let lhs = im2col(&x, &spec).unwrap().dot(&y).unwrap();
        let folded = col2im(&y, &spec, h, w).unwrap();
        let rhs = x.dot(&folded).unwrap();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    #[test]
    fn backward_matches_finite_differences() {
        let spec = ConvSpec::new(2, 2, 3, 1, 1);
        let (input, weight, bias) = random_setup(7, &spec, 1, 4, 4);
        let out = conv2d(&input, &weight, &bias, &spec).unwrap();
        // Loss = sum of outputs → grad_out = ones.
        let grad_out = Tensor::ones(out.dims());
        let grads = conv2d_backward(&input, &weight, &grad_out, &spec).unwrap();

        let eps = 1e-3f32;
        let loss =
            |inp: &Tensor, wgt: &Tensor, b: &Tensor| conv2d(inp, wgt, b, &spec).unwrap().sum();

        // Check a sample of input gradient entries.
        for idx in [0usize, 5, 13, 31] {
            let mut plus = input.clone();
            plus.as_mut_slice()[idx] += eps;
            let mut minus = input.clone();
            minus.as_mut_slice()[idx] -= eps;
            let numeric =
                (loss(&plus, &weight, &bias) - loss(&minus, &weight, &bias)) / (2.0 * eps);
            let analytic = grads.input.as_slice()[idx];
            assert!(
                (numeric - analytic).abs() < 2e-2,
                "input grad {idx}: numeric {numeric} vs analytic {analytic}"
            );
        }
        // Check weight gradient entries.
        for idx in [0usize, 7, 17, 35] {
            let mut plus = weight.clone();
            plus.as_mut_slice()[idx] += eps;
            let mut minus = weight.clone();
            minus.as_mut_slice()[idx] -= eps;
            let numeric = (loss(&input, &plus, &bias) - loss(&input, &minus, &bias)) / (2.0 * eps);
            let analytic = grads.weight.as_slice()[idx];
            assert!(
                (numeric - analytic).abs() < 5e-2,
                "weight grad {idx}: numeric {numeric} vs analytic {analytic}"
            );
        }
        // Bias gradient is exactly N·OH·OW per filter for a sum loss.
        let (oh, ow) = spec.output_size(4, 4).unwrap();
        for f in 0..spec.out_channels {
            assert!((grads.bias.get(&[f]).unwrap() - (oh * ow) as f32).abs() < 1e-3);
        }
    }

    #[test]
    fn rejects_wrong_shapes() {
        let spec = ConvSpec::new(2, 3, 3, 1, 1);
        let bad_input = Tensor::zeros(&[1, 1, 4, 4]); // 1 channel, spec wants 2
        let weight = Tensor::zeros(&[3, 2, 3, 3]);
        let bias = Tensor::zeros(&[3]);
        assert!(conv2d(&bad_input, &weight, &bias, &spec).is_err());
        let input = Tensor::zeros(&[1, 2, 4, 4]);
        assert!(conv2d(&input, &Tensor::zeros(&[3, 2, 2, 2]), &bias, &spec).is_err());
        assert!(conv2d(&input, &weight, &Tensor::zeros(&[4]), &spec).is_err());
        assert!(conv2d(&Tensor::zeros(&[2, 4, 4]), &weight, &bias, &spec).is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        /// Convolution is linear in its input: conv(a·x) == a·conv(x)
        /// when bias is zero.
        #[test]
        fn linear_in_input(seed in 0u64..1000, scale in 0.5f32..2.0) {
            let spec = ConvSpec::new(1, 2, 3, 1, 1);
            let (input, weight, _) = random_setup(seed, &spec, 1, 4, 4);
            let bias = Tensor::zeros(&[2]);
            let out1 = conv2d(&input.scale(scale), &weight, &bias, &spec).unwrap();
            let out2 = conv2d(&input, &weight, &bias, &spec).unwrap().scale(scale);
            for (a, b) in out1.as_slice().iter().zip(out2.as_slice()) {
                prop_assert!((a - b).abs() < 1e-3);
            }
        }

        /// im2col → matmul path agrees with the naive reference for
        /// random geometry.
        #[test]
        fn agrees_with_reference(
            seed in 0u64..1000,
            kernel in 1usize..4,
            stride in 1usize..3,
            padding in 0usize..2,
        ) {
            let spec = ConvSpec::new(2, 2, kernel, stride, padding);
            let (h, w) = (6, 5);
            prop_assume!(spec.output_size(h, w).is_ok());
            let (input, weight, bias) = random_setup(seed, &spec, 1, h, w);
            let fast = conv2d(&input, &weight, &bias, &spec).unwrap();
            let slow = conv2d_naive(&input, &weight, &bias, &spec);
            for (a, b) in fast.as_slice().iter().zip(slow.as_slice()) {
                prop_assert!((a - b).abs() < 1e-4);
            }
        }
    }
}
