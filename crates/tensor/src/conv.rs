//! 2-D convolution via im2col, with full backward passes.
//!
//! Layout conventions (all NCHW):
//! - input `[N, C, H, W]`
//! - weight `[F, C, KH, KW]`
//! - bias `[F]`
//! - output `[N, F, OH, OW]`
//!
//! The backward pass returns gradients w.r.t. input, weight and bias; the
//! input gradient is what the adversarial attacks ultimately consume.

use serde::{Deserialize, Serialize};

use crate::{Result, Shape, Tensor, TensorError};

/// Geometry of a 2-D convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ConvSpec {
    /// Number of input channels `C`.
    pub in_channels: usize,
    /// Number of output channels (filters) `F`.
    pub out_channels: usize,
    /// Kernel height.
    pub kernel_h: usize,
    /// Kernel width.
    pub kernel_w: usize,
    /// Stride in both dimensions.
    pub stride: usize,
    /// Zero padding on all four sides.
    pub padding: usize,
}

impl ConvSpec {
    /// A square-kernel spec with the given stride and padding.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
    ) -> Self {
        ConvSpec {
            in_channels,
            out_channels,
            kernel_h: kernel,
            kernel_w: kernel,
            stride,
            padding,
        }
    }

    /// Spatial output size for an `h × w` input.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidGeometry`] when the stride is zero
    /// or the (padded) input is smaller than the kernel.
    pub fn output_size(&self, h: usize, w: usize) -> Result<(usize, usize)> {
        if self.stride == 0 {
            return Err(TensorError::InvalidGeometry {
                reason: "stride must be positive".into(),
            });
        }
        if self.kernel_h == 0 || self.kernel_w == 0 {
            return Err(TensorError::InvalidGeometry {
                reason: "kernel must be non-empty".into(),
            });
        }
        let ph = h + 2 * self.padding;
        let pw = w + 2 * self.padding;
        if ph < self.kernel_h || pw < self.kernel_w {
            return Err(TensorError::InvalidGeometry {
                reason: format!(
                    "kernel {}x{} larger than padded input {ph}x{pw}",
                    self.kernel_h, self.kernel_w
                ),
            });
        }
        Ok((
            (ph - self.kernel_h) / self.stride + 1,
            (pw - self.kernel_w) / self.stride + 1,
        ))
    }

    /// Number of weight parameters: `F · C · KH · KW`.
    pub fn weight_count(&self) -> usize {
        self.out_channels * self.in_channels * self.kernel_h * self.kernel_w
    }
}

/// Gradients produced by [`conv2d_backward`].
#[derive(Debug, Clone, PartialEq)]
pub struct Conv2dGrads {
    /// `∂L/∂input`, shaped like the forward input.
    pub input: Tensor,
    /// `∂L/∂weight`, shaped like the weight.
    pub weight: Tensor,
    /// `∂L/∂bias`, shaped `[F]`.
    pub bias: Tensor,
}

/// Unfolds one `[C, H, W]` image into an im2col matrix
/// `[C·KH·KW, OH·OW]` for the given geometry.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-rank-3 input,
/// [`TensorError::ShapeMismatch`] when the channel count disagrees with
/// the spec, or [`TensorError::InvalidGeometry`] for impossible geometry.
pub fn im2col(image: &Tensor, spec: &ConvSpec) -> Result<Tensor> {
    if image.rank() != 3 {
        return Err(TensorError::RankMismatch {
            op: "im2col",
            expected: 3,
            actual: image.rank(),
        });
    }
    let (c, h, w) = (image.dims()[0], image.dims()[1], image.dims()[2]);
    if c != spec.in_channels {
        return Err(TensorError::ShapeMismatch {
            op: "im2col",
            lhs: image.dims().to_vec(),
            rhs: vec![spec.in_channels],
        });
    }
    let (oh, ow) = spec.output_size(h, w)?;
    let rows = c * spec.kernel_h * spec.kernel_w;
    let cols = oh * ow;
    let mut out = vec![0.0f32; rows * cols];
    let data = image.as_slice();
    let pad = spec.padding as isize;
    for ch in 0..c {
        for kh in 0..spec.kernel_h {
            for kw in 0..spec.kernel_w {
                let row = (ch * spec.kernel_h + kh) * spec.kernel_w + kw;
                let out_row = &mut out[row * cols..(row + 1) * cols];
                for oy in 0..oh {
                    let iy = (oy * spec.stride) as isize + kh as isize - pad;
                    if iy < 0 || iy >= h as isize {
                        continue; // zero padding: leave zeros in place
                    }
                    for ox in 0..ow {
                        let ix = (ox * spec.stride) as isize + kw as isize - pad;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        out_row[oy * ow + ox] = data[(ch * h + iy as usize) * w + ix as usize];
                    }
                }
            }
        }
    }
    Tensor::from_vec(out, Shape::new(vec![rows, cols]))
}

/// Folds an im2col matrix back into an image, *summing* overlapping
/// contributions — the exact adjoint of [`im2col`].
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `cols` does not have the
/// `[C·KH·KW, OH·OW]` shape implied by `spec` and `(h, w)`, or
/// [`TensorError::InvalidGeometry`] for impossible geometry.
pub fn col2im(cols: &Tensor, spec: &ConvSpec, h: usize, w: usize) -> Result<Tensor> {
    let (oh, ow) = spec.output_size(h, w)?;
    let c = spec.in_channels;
    let rows = c * spec.kernel_h * spec.kernel_w;
    if cols.dims() != [rows, oh * ow] {
        return Err(TensorError::ShapeMismatch {
            op: "col2im",
            lhs: cols.dims().to_vec(),
            rhs: vec![rows, oh * ow],
        });
    }
    let mut out = vec![0.0f32; c * h * w];
    let data = cols.as_slice();
    let pad = spec.padding as isize;
    let n_cols = oh * ow;
    for ch in 0..c {
        for kh in 0..spec.kernel_h {
            for kw in 0..spec.kernel_w {
                let row = (ch * spec.kernel_h + kh) * spec.kernel_w + kw;
                let in_row = &data[row * n_cols..(row + 1) * n_cols];
                for oy in 0..oh {
                    let iy = (oy * spec.stride) as isize + kh as isize - pad;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    for ox in 0..ow {
                        let ix = (ox * spec.stride) as isize + kw as isize - pad;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        out[(ch * h + iy as usize) * w + ix as usize] += in_row[oy * ow + ox];
                    }
                }
            }
        }
    }
    Tensor::from_vec(out, Shape::new(vec![c, h, w]))
}

/// Unfolds a whole `[N, C, H, W]` batch into one `[C·KH·KW, N·OH·OW]`
/// matrix (sample `n` occupies the column block `n·OH·OW..(n+1)·OH·OW`),
/// so a batched convolution is a single matmul instead of `N` small ones.
fn im2col_batch(input: &Tensor, spec: &ConvSpec, oh: usize, ow: usize) -> Result<Tensor> {
    let dims = input.dims();
    let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
    let rows = c * spec.kernel_h * spec.kernel_w;
    let per_sample = oh * ow;
    let cols = n * per_sample;
    let mut out = vec![0.0f32; rows * cols];
    let data = input.as_slice();
    let pad = spec.padding as isize;
    for sample in 0..n {
        let src = &data[sample * c * h * w..(sample + 1) * c * h * w];
        let col_base = sample * per_sample;
        for ch in 0..c {
            for kh in 0..spec.kernel_h {
                for kw in 0..spec.kernel_w {
                    let row = (ch * spec.kernel_h + kh) * spec.kernel_w + kw;
                    let out_row =
                        &mut out[row * cols + col_base..row * cols + col_base + per_sample];
                    for oy in 0..oh {
                        let iy = (oy * spec.stride) as isize + kh as isize - pad;
                        if iy < 0 || iy >= h as isize {
                            continue; // zero padding: leave zeros in place
                        }
                        for ox in 0..ow {
                            let ix = (ox * spec.stride) as isize + kw as isize - pad;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            out_row[oy * ow + ox] = src[(ch * h + iy as usize) * w + ix as usize];
                        }
                    }
                }
            }
        }
    }
    Tensor::from_vec(out, Shape::new(vec![rows, cols]))
}

fn validate_conv_input(input: &Tensor, spec: &ConvSpec) -> Result<(usize, usize, usize)> {
    if input.rank() != 4 {
        return Err(TensorError::RankMismatch {
            op: "conv2d",
            expected: 4,
            actual: input.rank(),
        });
    }
    let (n, c, h, w) = (
        input.dims()[0],
        input.dims()[1],
        input.dims()[2],
        input.dims()[3],
    );
    if c != spec.in_channels {
        return Err(TensorError::ShapeMismatch {
            op: "conv2d",
            lhs: input.dims().to_vec(),
            rhs: vec![spec.in_channels],
        });
    }
    let _ = n;
    Ok((h, w, n))
}

/// Batched 2-D convolution: `[N, C, H, W] → [N, F, OH, OW]`.
///
/// # Errors
///
/// Returns an error when the input is not rank 4, the channel counts
/// disagree with `spec`, `weight`/`bias` have the wrong shapes, or the
/// geometry is impossible.
pub fn conv2d(input: &Tensor, weight: &Tensor, bias: &Tensor, spec: &ConvSpec) -> Result<Tensor> {
    let (h, w, n) = validate_conv_input(input, spec)?;
    let k_flat = spec.in_channels * spec.kernel_h * spec.kernel_w;
    if weight.dims()
        != [
            spec.out_channels,
            spec.in_channels,
            spec.kernel_h,
            spec.kernel_w,
        ]
    {
        return Err(TensorError::ShapeMismatch {
            op: "conv2d",
            lhs: weight.dims().to_vec(),
            rhs: vec![
                spec.out_channels,
                spec.in_channels,
                spec.kernel_h,
                spec.kernel_w,
            ],
        });
    }
    if bias.dims() != [spec.out_channels] {
        return Err(TensorError::ShapeMismatch {
            op: "conv2d",
            lhs: bias.dims().to_vec(),
            rhs: vec![spec.out_channels],
        });
    }
    let (oh, ow) = spec.output_size(h, w)?;
    let w_mat = weight.reshape(&[spec.out_channels, k_flat])?;
    // One im2col + one matmul for the whole batch: no per-sample image
    // clones, and the matmul's wider right-hand side keeps the inner
    // loop streaming over long contiguous rows.
    let cols = im2col_batch(input, spec, oh, ow)?; // [K, N·OH·OW]
    let prod = w_mat.matmul(&cols)?; // [F, N·OH·OW]
    let prod_data = prod.as_slice();
    let bias_data = bias.as_slice();
    let per_sample = oh * ow;
    let mut out = vec![0.0f32; n * spec.out_channels * per_sample];
    for sample in 0..n {
        for f in 0..spec.out_channels {
            let b = bias_data[f];
            let src = &prod_data[f * n * per_sample + sample * per_sample..][..per_sample];
            let dst = &mut out[(sample * spec.out_channels + f) * per_sample..][..per_sample];
            for (d, &s) in dst.iter_mut().zip(src) {
                *d = s + b;
            }
        }
    }
    Tensor::from_vec(out, Shape::new(vec![n, spec.out_channels, oh, ow]))
}

/// Backward pass of [`conv2d`].
///
/// `grad_out` must have the forward output's shape `[N, F, OH, OW]`.
///
/// # Errors
///
/// Same shape conditions as [`conv2d`], plus a shape check on `grad_out`.
pub fn conv2d_backward(
    input: &Tensor,
    weight: &Tensor,
    grad_out: &Tensor,
    spec: &ConvSpec,
) -> Result<Conv2dGrads> {
    let (h, w, n) = validate_conv_input(input, spec)?;
    let (oh, ow) = spec.output_size(h, w)?;
    if grad_out.dims() != [n, spec.out_channels, oh, ow] {
        return Err(TensorError::ShapeMismatch {
            op: "conv2d_backward",
            lhs: grad_out.dims().to_vec(),
            rhs: vec![n, spec.out_channels, oh, ow],
        });
    }
    let k_flat = spec.in_channels * spec.kernel_h * spec.kernel_w;
    let w_mat = weight.reshape(&[spec.out_channels, k_flat])?;

    let mut grad_input = Vec::with_capacity(input.numel());
    let mut grad_weight = Tensor::zeros(&[spec.out_channels, k_flat]);
    let mut grad_bias = vec![0.0f32; spec.out_channels];

    for sample in 0..n {
        let image = input.index_batch(sample)?;
        let cols = im2col(&image, spec)?;
        let g = grad_out.index_batch(sample)?; // [F, OH, OW]
        let g_mat = g.reshape(&[spec.out_channels, oh * ow])?;

        // ∂bias: sum over spatial positions.
        let g_data = g_mat.as_slice();
        for f in 0..spec.out_channels {
            grad_bias[f] += g_data[f * oh * ow..(f + 1) * oh * ow].iter().sum::<f32>();
        }

        // ∂weight += g_mat · colsᵀ  ([F, OH·OW] × [OH·OW, K] = [F, K]).
        let gw = g_mat.matmul_nt(&cols)?;
        grad_weight.add_scaled_inplace(&gw, 1.0)?;

        // ∂input = col2im(w_matᵀ · g_mat).
        let gcols = w_mat.matmul_tn(&g_mat)?; // [K, OH·OW]
        let gi = col2im(&gcols, spec, h, w)?;
        grad_input.extend_from_slice(gi.as_slice());
    }

    Ok(Conv2dGrads {
        input: Tensor::from_vec(grad_input, input.shape().clone())?,
        weight: grad_weight.reshape(weight.dims())?,
        bias: Tensor::from_vec(grad_bias, Shape::new(vec![spec.out_channels]))?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TensorRng;
    use proptest::prelude::*;

    /// Naive direct convolution used as a reference implementation.
    fn conv2d_naive(input: &Tensor, weight: &Tensor, bias: &Tensor, spec: &ConvSpec) -> Tensor {
        let (n, c, h, w) = (
            input.dims()[0],
            input.dims()[1],
            input.dims()[2],
            input.dims()[3],
        );
        let (oh, ow) = spec.output_size(h, w).unwrap();
        let mut out = Tensor::zeros(&[n, spec.out_channels, oh, ow]);
        for s in 0..n {
            for f in 0..spec.out_channels {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = bias.get(&[f]).unwrap();
                        for ch in 0..c {
                            for kh in 0..spec.kernel_h {
                                for kw in 0..spec.kernel_w {
                                    let iy =
                                        (oy * spec.stride + kh) as isize - spec.padding as isize;
                                    let ix =
                                        (ox * spec.stride + kw) as isize - spec.padding as isize;
                                    if iy < 0 || ix < 0 || iy >= h as isize || ix >= w as isize {
                                        continue;
                                    }
                                    acc += input.get(&[s, ch, iy as usize, ix as usize]).unwrap()
                                        * weight.get(&[f, ch, kh, kw]).unwrap();
                                }
                            }
                        }
                        out.set(&[s, f, oy, ox], acc).unwrap();
                    }
                }
            }
        }
        out
    }

    fn random_setup(
        seed: u64,
        spec: &ConvSpec,
        n: usize,
        h: usize,
        w: usize,
    ) -> (Tensor, Tensor, Tensor) {
        let mut rng = TensorRng::seed_from_u64(seed);
        let input = rng.uniform(&[n, spec.in_channels, h, w], -1.0, 1.0);
        let weight = rng.uniform(
            &[
                spec.out_channels,
                spec.in_channels,
                spec.kernel_h,
                spec.kernel_w,
            ],
            -0.5,
            0.5,
        );
        let bias = rng.uniform(&[spec.out_channels], -0.1, 0.1);
        (input, weight, bias)
    }

    #[test]
    fn output_size_math() {
        let spec = ConvSpec::new(1, 1, 3, 1, 1);
        assert_eq!(spec.output_size(8, 8).unwrap(), (8, 8)); // "same" conv
        let spec = ConvSpec::new(1, 1, 3, 2, 0);
        assert_eq!(spec.output_size(7, 7).unwrap(), (3, 3));
        let spec = ConvSpec::new(1, 1, 5, 1, 0);
        assert!(spec.output_size(3, 3).is_err());
        let spec = ConvSpec {
            stride: 0,
            ..ConvSpec::new(1, 1, 3, 1, 0)
        };
        assert!(spec.output_size(8, 8).is_err());
    }

    #[test]
    fn identity_kernel_passes_through() {
        // 1x1 kernel with weight 1 and bias 0 is the identity.
        let spec = ConvSpec::new(1, 1, 1, 1, 0);
        let mut rng = TensorRng::seed_from_u64(1);
        let input = rng.uniform(&[1, 1, 4, 4], -1.0, 1.0);
        let weight = Tensor::ones(&[1, 1, 1, 1]);
        let bias = Tensor::zeros(&[1]);
        let out = conv2d(&input, &weight, &bias, &spec).unwrap();
        assert_eq!(out, input);
    }

    #[test]
    fn matches_naive_reference() {
        for (spec, h, w) in [
            (ConvSpec::new(2, 3, 3, 1, 1), 5, 5),
            (ConvSpec::new(1, 2, 3, 2, 0), 7, 6),
            (ConvSpec::new(3, 1, 2, 1, 0), 4, 4),
            (ConvSpec::new(2, 2, 3, 1, 2), 3, 3),
        ] {
            let (input, weight, bias) = random_setup(42, &spec, 2, h, w);
            let fast = conv2d(&input, &weight, &bias, &spec).unwrap();
            let slow = conv2d_naive(&input, &weight, &bias, &spec);
            assert_eq!(fast.dims(), slow.dims());
            for (a, b) in fast.as_slice().iter().zip(slow.as_slice()) {
                assert!((a - b).abs() < 1e-4, "{a} vs {b} for spec {spec:?}");
            }
        }
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random x, y — the defining
        // property of an adjoint pair, which is what backprop relies on.
        let spec = ConvSpec::new(2, 1, 3, 1, 1);
        let (h, w) = (5, 4);
        let (oh, ow) = spec.output_size(h, w).unwrap();
        let rows = spec.in_channels * spec.kernel_h * spec.kernel_w;
        let mut rng = TensorRng::seed_from_u64(9);
        let x = rng.uniform(&[spec.in_channels, h, w], -1.0, 1.0);
        let y = rng.uniform(&[rows, oh * ow], -1.0, 1.0);
        let lhs = im2col(&x, &spec).unwrap().dot(&y).unwrap();
        let folded = col2im(&y, &spec, h, w).unwrap();
        let rhs = x.dot(&folded).unwrap();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    #[test]
    fn backward_matches_finite_differences() {
        let spec = ConvSpec::new(2, 2, 3, 1, 1);
        let (input, weight, bias) = random_setup(7, &spec, 1, 4, 4);
        let out = conv2d(&input, &weight, &bias, &spec).unwrap();
        // Loss = sum of outputs → grad_out = ones.
        let grad_out = Tensor::ones(out.dims());
        let grads = conv2d_backward(&input, &weight, &grad_out, &spec).unwrap();

        let eps = 1e-3f32;
        let loss =
            |inp: &Tensor, wgt: &Tensor, b: &Tensor| conv2d(inp, wgt, b, &spec).unwrap().sum();

        // Check a sample of input gradient entries.
        for idx in [0usize, 5, 13, 31] {
            let mut plus = input.clone();
            plus.as_mut_slice()[idx] += eps;
            let mut minus = input.clone();
            minus.as_mut_slice()[idx] -= eps;
            let numeric =
                (loss(&plus, &weight, &bias) - loss(&minus, &weight, &bias)) / (2.0 * eps);
            let analytic = grads.input.as_slice()[idx];
            assert!(
                (numeric - analytic).abs() < 2e-2,
                "input grad {idx}: numeric {numeric} vs analytic {analytic}"
            );
        }
        // Check weight gradient entries.
        for idx in [0usize, 7, 17, 35] {
            let mut plus = weight.clone();
            plus.as_mut_slice()[idx] += eps;
            let mut minus = weight.clone();
            minus.as_mut_slice()[idx] -= eps;
            let numeric = (loss(&input, &plus, &bias) - loss(&input, &minus, &bias)) / (2.0 * eps);
            let analytic = grads.weight.as_slice()[idx];
            assert!(
                (numeric - analytic).abs() < 5e-2,
                "weight grad {idx}: numeric {numeric} vs analytic {analytic}"
            );
        }
        // Bias gradient is exactly N·OH·OW per filter for a sum loss.
        let (oh, ow) = spec.output_size(4, 4).unwrap();
        for f in 0..spec.out_channels {
            assert!((grads.bias.get(&[f]).unwrap() - (oh * ow) as f32).abs() < 1e-3);
        }
    }

    #[test]
    fn rejects_wrong_shapes() {
        let spec = ConvSpec::new(2, 3, 3, 1, 1);
        let bad_input = Tensor::zeros(&[1, 1, 4, 4]); // 1 channel, spec wants 2
        let weight = Tensor::zeros(&[3, 2, 3, 3]);
        let bias = Tensor::zeros(&[3]);
        assert!(conv2d(&bad_input, &weight, &bias, &spec).is_err());
        let input = Tensor::zeros(&[1, 2, 4, 4]);
        assert!(conv2d(&input, &Tensor::zeros(&[3, 2, 2, 2]), &bias, &spec).is_err());
        assert!(conv2d(&input, &weight, &Tensor::zeros(&[4]), &spec).is_err());
        assert!(conv2d(&Tensor::zeros(&[2, 4, 4]), &weight, &bias, &spec).is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        /// Convolution is linear in its input: conv(a·x) == a·conv(x)
        /// when bias is zero.
        #[test]
        fn linear_in_input(seed in 0u64..1000, scale in 0.5f32..2.0) {
            let spec = ConvSpec::new(1, 2, 3, 1, 1);
            let (input, weight, _) = random_setup(seed, &spec, 1, 4, 4);
            let bias = Tensor::zeros(&[2]);
            let out1 = conv2d(&input.scale(scale), &weight, &bias, &spec).unwrap();
            let out2 = conv2d(&input, &weight, &bias, &spec).unwrap().scale(scale);
            for (a, b) in out1.as_slice().iter().zip(out2.as_slice()) {
                prop_assert!((a - b).abs() < 1e-3);
            }
        }

        /// im2col → matmul path agrees with the naive reference for
        /// random geometry.
        #[test]
        fn agrees_with_reference(
            seed in 0u64..1000,
            kernel in 1usize..4,
            stride in 1usize..3,
            padding in 0usize..2,
        ) {
            let spec = ConvSpec::new(2, 2, kernel, stride, padding);
            let (h, w) = (6, 5);
            prop_assume!(spec.output_size(h, w).is_ok());
            let (input, weight, bias) = random_setup(seed, &spec, 1, h, w);
            let fast = conv2d(&input, &weight, &bias, &spec).unwrap();
            let slow = conv2d_naive(&input, &weight, &bias, &spec);
            for (a, b) in fast.as_slice().iter().zip(slow.as_slice()) {
                prop_assert!((a - b).abs() < 1e-4);
            }
        }
    }
}
