use std::fmt;

use serde::{Deserialize, Serialize};

use crate::plan::alloc;
use crate::{Result, Shape, TensorError};

/// A dense, owned, row-major `f32` n-dimensional array.
///
/// `Tensor` is the single numeric container used throughout the FAdeML
/// reproduction: images are `[C, H, W]` or batched `[N, C, H, W]`
/// tensors, layer weights are `[out, in]` or `[out, in, kh, kw]`,
/// and class probabilities are `[N, classes]`.
///
/// All operations allocate fresh output tensors unless the method name
/// ends in `_inplace` or takes `&mut self`.
///
/// # Example
///
/// ```
/// use fademl_tensor::Tensor;
///
/// # fn main() -> Result<(), fademl_tensor::TensorError> {
/// let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], [2, 3].into())?;
/// assert_eq!(t.get(&[1, 2])?, 6.0);
/// let doubled = t.scale(2.0);
/// assert_eq!(doubled.get(&[0, 0])?, 2.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Shape,
}

impl Tensor {
    /// Creates a tensor from a data buffer and a shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len()` does not
    /// equal `shape.numel()`.
    pub fn from_vec(data: Vec<f32>, shape: Shape) -> Result<Self> {
        if data.len() != shape.numel() {
            return Err(TensorError::LengthMismatch {
                provided: data.len(),
                expected: shape.numel(),
            });
        }
        Ok(Tensor { data, shape })
    }

    /// Creates a rank-0 tensor holding a single value.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            data: alloc::fresh_filled(1, value),
            shape: Shape::scalar(),
        }
    }

    /// Creates a tensor of zeros with the given dimensions.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::of(dims);
        Tensor {
            data: alloc::fresh_vec(shape.numel()),
            shape,
        }
    }

    /// Creates a tensor of ones with the given dimensions.
    pub fn ones(dims: &[usize]) -> Self {
        Self::full(dims, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::of(dims);
        Tensor {
            data: alloc::fresh_filled(shape.numel(), value),
            shape,
        }
    }

    /// Creates a tensor of zeros with the same shape as `other`.
    pub fn zeros_like(other: &Tensor) -> Self {
        Tensor {
            data: alloc::fresh_vec(other.numel()),
            shape: other.shape.duplicate(),
        }
    }

    /// An explicit owned copy built through the plan layer's allocation
    /// chokepoints. Hot paths use this instead of `Clone` so per-call
    /// data copies stay measurable at a single budgeted site.
    pub fn duplicate(&self) -> Tensor {
        Tensor {
            data: alloc::fresh_from(&self.data),
            shape: self.shape.duplicate(),
        }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The dimension extents (shorthand for `shape().dims()`).
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Immutable view of the underlying row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reads the element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] for invalid indices.
    pub fn get(&self, index: &[usize]) -> Result<f32> {
        Ok(self.data[self.shape.offset(index)?])
    }

    /// Writes the element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] for invalid indices.
    pub fn set(&mut self, index: &[usize], value: f32) -> Result<()> {
        let off = self.shape.offset(index)?;
        self.data[off] = value;
        Ok(())
    }

    /// Returns a tensor with the same data reinterpreted under a new shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ReshapeMismatch`] if element counts differ.
    pub fn reshape(&self, dims: &[usize]) -> Result<Tensor> {
        let shape = Shape::of(dims);
        if shape.numel() != self.numel() {
            return Err(TensorError::reshape_mismatch(self.dims(), dims));
        }
        Ok(Tensor {
            data: alloc::fresh_from(&self.data),
            shape,
        })
    }

    /// Applies `f` to every element, producing a new tensor.
    pub fn map<F: Fn(f32) -> f32>(&self, f: F) -> Tensor {
        let mut data = alloc::fresh_with(self.data.len());
        data.extend(self.data.iter().map(|&x| f(x)));
        Tensor {
            data,
            shape: self.shape.duplicate(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace<F: Fn(f32) -> f32>(&mut self, f: F) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Combines two same-shaped tensors elementwise with `f`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ. For
    /// broadcasting semantics use [`Tensor::add`] and friends.
    pub fn zip_map<F: Fn(f32, f32) -> f32>(&self, other: &Tensor, f: F) -> Result<Tensor> {
        if self.shape != other.shape {
            return Err(TensorError::shape_mismatch(
                "zip_map",
                self.dims(),
                other.dims(),
            ));
        }
        let mut data = alloc::fresh_with(self.data.len());
        data.extend(self.data.iter().zip(&other.data).map(|(&a, &b)| f(a, b)));
        Ok(Tensor {
            data,
            shape: self.shape.duplicate(),
        })
    }

    /// Multiplies every element by a scalar, producing a new tensor.
    pub fn scale(&self, factor: f32) -> Tensor {
        self.map(|x| x * factor)
    }

    /// Adds a scalar to every element, producing a new tensor.
    pub fn add_scalar(&self, value: f32) -> Tensor {
        self.map(|x| x + value)
    }

    /// Clamps every element into `[lo, hi]`, producing a new tensor.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is NaN (propagated from
    /// [`f32::clamp`]).
    pub fn clamp(&self, lo: f32, hi: f32) -> Tensor {
        self.map(|x| x.clamp(lo, hi))
    }

    /// Transposes a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] if the tensor is not rank 2.
    pub fn transpose(&self) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "transpose",
                expected: 2,
                actual: self.rank(),
            });
        }
        let (rows, cols) = (self.dims()[0], self.dims()[1]);
        let mut out = alloc::fresh_vec(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                out[c * rows + r] = self.data[r * cols + c];
            }
        }
        Tensor::from_vec(out, Shape::of(&[cols, rows]))
    }

    /// Extracts row `row` of a rank-2 tensor as a rank-1 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] if the tensor is not rank 2,
    /// or [`TensorError::IndexOutOfBounds`] if the row does not exist.
    pub fn row(&self, row: usize) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "row",
                expected: 2,
                actual: self.rank(),
            });
        }
        let (rows, cols) = (self.dims()[0], self.dims()[1]);
        if row >= rows {
            return Err(TensorError::index_oob(&[row], self.dims()));
        }
        Tensor::from_vec(
            alloc::fresh_from(&self.data[row * cols..(row + 1) * cols]),
            Shape::of(&[cols]),
        )
    }

    /// Extracts sample `n` from a batched tensor (first axis), dropping
    /// the batch dimension.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyTensor`] for rank-0 input or
    /// [`TensorError::IndexOutOfBounds`] if `n` exceeds the batch size.
    pub fn index_batch(&self, n: usize) -> Result<Tensor> {
        if self.rank() == 0 {
            return Err(TensorError::EmptyTensor { op: "index_batch" });
        }
        let batch = self.dims()[0];
        if n >= batch {
            return Err(TensorError::index_oob(&[n], self.dims()));
        }
        let inner: usize = self.dims()[1..].iter().product();
        Tensor::from_vec(
            alloc::fresh_from(&self.data[n * inner..(n + 1) * inner]),
            Shape::of(&self.dims()[1..]),
        )
    }

    /// Stacks same-shaped tensors along a new leading batch axis.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyTensor`] for an empty input list and
    /// [`TensorError::ShapeMismatch`] if element shapes differ.
    pub fn stack(items: &[Tensor]) -> Result<Tensor> {
        let first = items
            .first()
            .ok_or(TensorError::EmptyTensor { op: "stack" })?;
        let mut data = alloc::fresh_with(first.numel() * items.len());
        for item in items {
            if item.shape != first.shape {
                return Err(TensorError::shape_mismatch(
                    "stack",
                    first.dims(),
                    item.dims(),
                ));
            }
            data.extend_from_slice(&item.data);
        }
        let mut dims = alloc::fresh_with(1 + first.rank());
        dims.push(items.len());
        dims.extend_from_slice(first.dims());
        Tensor::from_vec(data, Shape::new(dims))
    }

    /// Inserts a leading batch axis of extent 1 (`[d...]` → `[1, d...]`).
    pub fn unsqueeze_batch(&self) -> Tensor {
        let mut dims = alloc::fresh_with(1 + self.rank());
        dims.push(1usize);
        dims.extend_from_slice(self.dims());
        Tensor {
            data: alloc::fresh_from(&self.data),
            shape: Shape::new(dims),
        }
    }

    /// Returns `true` if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }
}

impl Default for Tensor {
    /// A scalar zero; matches `Tensor::scalar(0.0)`.
    fn default() -> Self {
        Tensor::scalar(0.0)
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{} ", self.shape)?;
        const MAX: usize = 8;
        let shown = self.data.len().min(MAX);
        write!(f, "[")?;
        for (i, x) in self.data[..shown].iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{x:.4}")?;
        }
        if self.data.len() > MAX {
            write!(f, ", …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(vec![1.0; 5], Shape::new(vec![2, 3])).is_err());
        assert!(Tensor::from_vec(vec![1.0; 6], Shape::new(vec![2, 3])).is_ok());
    }

    #[test]
    fn constructors() {
        assert_eq!(Tensor::zeros(&[2, 2]).as_slice(), &[0.0; 4]);
        assert_eq!(Tensor::ones(&[3]).as_slice(), &[1.0; 3]);
        assert_eq!(Tensor::full(&[2], 7.5).as_slice(), &[7.5, 7.5]);
        assert_eq!(Tensor::scalar(3.0).numel(), 1);
        assert_eq!(Tensor::scalar(3.0).rank(), 0);
    }

    #[test]
    fn get_set_round_trip() {
        let mut t = Tensor::zeros(&[2, 3]);
        t.set(&[1, 2], 9.0).unwrap();
        assert_eq!(t.get(&[1, 2]).unwrap(), 9.0);
        assert_eq!(t.get(&[0, 0]).unwrap(), 0.0);
        assert!(t.get(&[2, 0]).is_err());
    }

    #[test]
    fn reshape_preserves_data() {
        let t =
            Tensor::from_vec((0..6).map(|i| i as f32).collect(), Shape::new(vec![2, 3])).unwrap();
        let r = t.reshape(&[3, 2]).unwrap();
        assert_eq!(r.as_slice(), t.as_slice());
        assert_eq!(r.dims(), &[3, 2]);
        assert!(t.reshape(&[4, 2]).is_err());
    }

    #[test]
    fn transpose_2d() {
        let t =
            Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], Shape::new(vec![2, 3])).unwrap();
        let tt = t.transpose().unwrap();
        assert_eq!(tt.dims(), &[3, 2]);
        assert_eq!(tt.as_slice(), &[1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
        assert!(Tensor::zeros(&[2, 2, 2]).transpose().is_err());
    }

    #[test]
    fn stack_and_index_batch() {
        let a = Tensor::full(&[2, 2], 1.0);
        let b = Tensor::full(&[2, 2], 2.0);
        let s = Tensor::stack(&[a.clone(), b.clone()]).unwrap();
        assert_eq!(s.dims(), &[2, 2, 2]);
        assert_eq!(s.index_batch(0).unwrap(), a);
        assert_eq!(s.index_batch(1).unwrap(), b);
        assert!(s.index_batch(2).is_err());
        assert!(Tensor::stack(&[]).is_err());
        assert!(Tensor::stack(&[a, Tensor::zeros(&[3])]).is_err());
    }

    #[test]
    fn unsqueeze_batch_adds_axis() {
        let t = Tensor::zeros(&[3, 4]);
        let b = t.unsqueeze_batch();
        assert_eq!(b.dims(), &[1, 3, 4]);
    }

    #[test]
    fn row_extraction() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], Shape::new(vec![2, 2])).unwrap();
        assert_eq!(t.row(1).unwrap().as_slice(), &[3.0, 4.0]);
        assert!(t.row(2).is_err());
    }

    #[test]
    fn map_and_zip_map() {
        let a = Tensor::from_vec(vec![1.0, -2.0], Shape::new(vec![2])).unwrap();
        let b = Tensor::from_vec(vec![3.0, 4.0], Shape::new(vec![2])).unwrap();
        assert_eq!(a.map(f32::abs).as_slice(), &[1.0, 2.0]);
        assert_eq!(
            a.zip_map(&b, |x, y| x * y).unwrap().as_slice(),
            &[3.0, -8.0]
        );
        assert!(a.zip_map(&Tensor::zeros(&[3]), |x, _| x).is_err());
    }

    #[test]
    fn clamp_bounds() {
        let t = Tensor::from_vec(vec![-1.0, 0.5, 2.0], Shape::new(vec![3])).unwrap();
        assert_eq!(t.clamp(0.0, 1.0).as_slice(), &[0.0, 0.5, 1.0]);
    }

    #[test]
    fn non_finite_detection() {
        let mut t = Tensor::zeros(&[2]);
        assert!(!t.has_non_finite());
        t.set(&[0], f32::NAN).unwrap();
        assert!(t.has_non_finite());
    }

    #[test]
    fn display_truncates() {
        let t = Tensor::zeros(&[100]);
        let s = t.to_string();
        assert!(s.contains('…'));
        assert!(s.contains("[100]"));
    }

    #[test]
    fn tensor_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Tensor>();
    }

    proptest! {
        /// stack ∘ index_batch is the identity.
        #[test]
        fn stack_index_round_trip(
            vals in proptest::collection::vec(-10.0f32..10.0, 12),
        ) {
            let items: Vec<Tensor> = vals
                .chunks(4)
                .map(|c| Tensor::from_vec(c.to_vec(), Shape::new(vec![2, 2])).unwrap())
                .collect();
            let stacked = Tensor::stack(&items).unwrap();
            for (i, item) in items.iter().enumerate() {
                prop_assert_eq!(&stacked.index_batch(i).unwrap(), item);
            }
        }

        /// transpose is an involution.
        #[test]
        fn transpose_involution(
            rows in 1usize..6,
            cols in 1usize..6,
            seed in 0.0f32..1.0,
        ) {
            let data: Vec<f32> = (0..rows * cols).map(|i| seed + i as f32).collect();
            let t = Tensor::from_vec(data, Shape::new(vec![rows, cols])).unwrap();
            prop_assert_eq!(t.transpose().unwrap().transpose().unwrap(), t);
        }
    }
}
