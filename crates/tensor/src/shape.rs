use std::fmt;

use serde::{Deserialize, Serialize};

use crate::TensorError;

/// The dimensions of a [`Tensor`](crate::Tensor), stored outermost-first.
///
/// A `Shape` is an immutable list of dimension extents. Tensors in this
/// crate are dense and row-major (C order), so [`Shape::strides`] is
/// derived rather than stored.
///
/// # Example
///
/// ```
/// use fademl_tensor::Shape;
///
/// let s = Shape::new(vec![2, 3, 4]);
/// assert_eq!(s.rank(), 3);
/// assert_eq!(s.numel(), 24);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from its dimension extents (outermost first).
    pub fn new(dims: Vec<usize>) -> Self {
        Shape { dims }
    }

    /// Creates a scalar (rank-0) shape with a single element.
    pub fn scalar() -> Self {
        // An empty Vec never allocates.
        Shape {
            dims: Vec::default(),
        }
    }

    /// Creates a shape from borrowed extents. This is the one place the
    /// crate copies a dimension slice into an owned rank vector —
    /// bounded by rank (≤ 4 everywhere in this workspace) — so kernel
    /// call sites can build output shapes without their own `to_vec`.
    pub fn of(dims: &[usize]) -> Self {
        Shape {
            dims: dims.to_vec(),
        }
    }

    /// An explicit owned copy; the rank-vector clone chokepoint used by
    /// kernels that must hand out an owned `Shape` (e.g. identity
    /// filters and elementwise outputs).
    pub fn duplicate(&self) -> Self {
        Shape {
            dims: self.dims.clone(),
        }
    }

    /// The dimension extents.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Extent of dimension `axis`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidAxis`] if `axis >= rank()`.
    pub fn dim(&self, axis: usize) -> Result<usize, TensorError> {
        self.dims
            .get(axis)
            .copied()
            .ok_or(TensorError::InvalidAxis {
                axis,
                rank: self.rank(),
            })
    }

    /// Total number of elements (the product of all extents; 1 for a scalar).
    pub fn numel(&self) -> usize {
        self.dims.iter().product()
    }

    /// Row-major strides, in elements.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = crate::plan::alloc::fresh_filled(self.dims.len(), 1usize);
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Converts a multi-dimensional index into a flat row-major offset.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if `index` has the wrong
    /// rank or any coordinate exceeds the corresponding extent.
    pub fn offset(&self, index: &[usize]) -> Result<usize, TensorError> {
        if index.len() != self.rank() {
            return Err(TensorError::index_oob(index, &self.dims));
        }
        let mut offset = 0usize;
        let strides = self.strides();
        for ((&i, &d), &s) in index.iter().zip(&self.dims).zip(&strides) {
            if i >= d {
                return Err(TensorError::index_oob(index, &self.dims));
            }
            offset += i * s;
        }
        Ok(offset)
    }

    /// Returns `true` if the shape has zero total elements.
    pub fn is_empty(&self) -> bool {
        self.numel() == 0
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape::new(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::of(dims)
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape::of(dims.as_slice())
    }
}

impl AsRef<[usize]> for Shape {
    fn as_ref(&self) -> &[usize] {
        &self.dims
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn numel_is_product() {
        assert_eq!(Shape::new(vec![2, 3, 4]).numel(), 24);
        assert_eq!(Shape::scalar().numel(), 1);
        assert_eq!(Shape::new(vec![5, 0, 2]).numel(), 0);
    }

    #[test]
    fn strides_row_major() {
        assert_eq!(Shape::new(vec![2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::new(vec![7]).strides(), vec![1]);
        assert!(Shape::scalar().strides().is_empty());
    }

    #[test]
    fn offset_round_trip() {
        let s = Shape::new(vec![2, 3, 4]);
        assert_eq!(s.offset(&[0, 0, 0]).unwrap(), 0);
        assert_eq!(s.offset(&[1, 2, 3]).unwrap(), 23);
        assert_eq!(s.offset(&[0, 1, 2]).unwrap(), 6);
    }

    #[test]
    fn offset_rejects_bad_indices() {
        let s = Shape::new(vec![2, 3]);
        assert!(s.offset(&[2, 0]).is_err());
        assert!(s.offset(&[0]).is_err());
        assert!(s.offset(&[0, 0, 0]).is_err());
    }

    #[test]
    fn dim_checks_axis() {
        let s = Shape::new(vec![4, 5]);
        assert_eq!(s.dim(1).unwrap(), 5);
        assert!(matches!(s.dim(2), Err(TensorError::InvalidAxis { .. })));
    }

    #[test]
    fn display_format() {
        assert_eq!(Shape::new(vec![2, 3]).to_string(), "[2x3]");
        assert_eq!(Shape::scalar().to_string(), "[]");
    }

    #[test]
    fn conversions() {
        let a: Shape = vec![1, 2].into();
        let b: Shape = [1usize, 2].into();
        assert_eq!(a, b);
        assert_eq!(a.as_ref(), &[1, 2]);
    }

    proptest! {
        /// Offsets of all valid indices are unique and cover 0..numel.
        #[test]
        fn offsets_bijective(d0 in 1usize..5, d1 in 1usize..5, d2 in 1usize..5) {
            let s = Shape::new(vec![d0, d1, d2]);
            let mut seen = vec![false; s.numel()];
            for i in 0..d0 {
                for j in 0..d1 {
                    for k in 0..d2 {
                        let off = s.offset(&[i, j, k]).unwrap();
                        prop_assert!(off < s.numel());
                        prop_assert!(!seen[off]);
                        seen[off] = true;
                    }
                }
            }
            prop_assert!(seen.iter().all(|&b| b));
        }

        /// Last stride is 1 and strides decrease (row-major contiguity).
        #[test]
        fn strides_monotonic(dims in proptest::collection::vec(1usize..6, 1..5)) {
            let s = Shape::new(dims);
            let strides = s.strides();
            prop_assert_eq!(*strides.last().unwrap(), 1);
            for w in strides.windows(2) {
                prop_assert!(w[0] >= w[1]);
            }
        }
    }
}
