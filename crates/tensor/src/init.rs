//! Random tensor initialization.
//!
//! All randomness in the workspace flows through [`TensorRng`], a thin
//! wrapper over a seeded [`StdRng`], so every experiment is reproducible
//! from a single `u64` seed. Gaussian samples are produced with the
//! Box–Muller transform (the `rand_distr` crate is deliberately not a
//! dependency).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::{Shape, Tensor};

/// Weight-initialization schemes for neural-network layers.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum Initializer {
    /// All zeros (used for biases).
    Zeros,
    /// Uniform in `[-limit, limit]`.
    Uniform {
        /// Half-width of the sampling interval.
        limit: f32,
    },
    /// Gaussian with the given standard deviation, mean 0.
    Normal {
        /// Standard deviation.
        std: f32,
    },
    /// He/Kaiming normal: `std = sqrt(2 / fan_in)` — the right scale for
    /// ReLU networks like the paper's VGGNet.
    KaimingNormal {
        /// Number of input connections per output unit.
        fan_in: usize,
    },
    /// Glorot/Xavier uniform: `limit = sqrt(6 / (fan_in + fan_out))`.
    XavierUniform {
        /// Number of input connections.
        fan_in: usize,
        /// Number of output connections.
        fan_out: usize,
    },
}

/// Deterministic random source for tensors.
///
/// # Example
///
/// ```
/// use fademl_tensor::TensorRng;
///
/// let mut rng = TensorRng::seed_from_u64(42);
/// let a = rng.uniform(&[2, 2], -1.0, 1.0);
/// let mut rng2 = TensorRng::seed_from_u64(42);
/// let b = rng2.uniform(&[2, 2], -1.0, 1.0);
/// assert_eq!(a, b); // same seed, same tensor
/// ```
#[derive(Debug, Clone)]
pub struct TensorRng {
    rng: StdRng,
}

impl TensorRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        TensorRng {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Samples a single uniform value in `[lo, hi)`.
    pub fn uniform_scalar(&mut self, lo: f32, hi: f32) -> f32 {
        if lo == hi {
            return lo;
        }
        self.rng.random_range(lo..hi)
    }

    /// Samples a single standard-normal value via Box–Muller.
    pub fn normal_scalar(&mut self) -> f32 {
        // Box–Muller transform: two uniforms → one normal. u1 must be
        // strictly positive for the log.
        let u1: f64 = self.rng.random_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = self.rng.random_range(0.0..1.0);
        ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
    }

    /// Samples a uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn index(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "index bound must be positive");
        self.rng.random_range(0..bound)
    }

    /// Samples `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f32) -> bool {
        self.rng.random_range(0.0..1.0f32) < p.clamp(0.0, 1.0)
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.rng.random_range(0..=i);
            slice.swap(i, j);
        }
    }

    /// A tensor of uniform samples in `[lo, hi)`.
    pub fn uniform(&mut self, dims: &[usize], lo: f32, hi: f32) -> Tensor {
        let shape = Shape::from(dims);
        let mut data = crate::plan::alloc::fresh_with(shape.numel());
        for _ in 0..shape.numel() {
            data.push(self.uniform_scalar(lo, hi));
        }
        Tensor::from_vec(data, shape).expect("generated buffer matches shape")
    }

    /// A tensor of Gaussian samples with the given mean and std.
    pub fn normal(&mut self, dims: &[usize], mean: f32, std: f32) -> Tensor {
        let shape = Shape::from(dims);
        let mut data = crate::plan::alloc::fresh_with(shape.numel());
        for _ in 0..shape.numel() {
            data.push(mean + std * self.normal_scalar());
        }
        Tensor::from_vec(data, shape).expect("generated buffer matches shape")
    }

    /// A tensor drawn according to an [`Initializer`].
    pub fn init(&mut self, dims: &[usize], init: Initializer) -> Tensor {
        match init {
            Initializer::Zeros => Tensor::zeros(dims),
            Initializer::Uniform { limit } => self.uniform(dims, -limit, limit),
            Initializer::Normal { std } => self.normal(dims, 0.0, std),
            Initializer::KaimingNormal { fan_in } => {
                let std = (2.0 / fan_in.max(1) as f32).sqrt();
                self.normal(dims, 0.0, std)
            }
            Initializer::XavierUniform { fan_in, fan_out } => {
                let limit = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
                self.uniform(dims, -limit, limit)
            }
        }
    }

    /// Forks a child generator whose stream is decorrelated from the
    /// parent's but still deterministic.
    pub fn fork(&mut self) -> TensorRng {
        TensorRng::seed_from_u64(self.rng.random())
    }

    /// Captures the generator's full internal state so a checkpointed
    /// training run can resume the *exact* random stream (same future
    /// shuffles and samples) instead of restarting from the seed.
    pub fn state(&self) -> [u64; 4] {
        self.rng.state()
    }

    /// Rebuilds a generator from a state captured with
    /// [`TensorRng::state`]. The restored generator continues the
    /// original stream bit-for-bit.
    pub fn from_state(state: [u64; 4]) -> TensorRng {
        TensorRng {
            rng: StdRng::from_state(state),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = TensorRng::seed_from_u64(7);
        let mut b = TensorRng::seed_from_u64(7);
        assert_eq!(a.uniform(&[10], 0.0, 1.0), b.uniform(&[10], 0.0, 1.0));
        assert_eq!(a.normal(&[10], 0.0, 1.0), b.normal(&[10], 0.0, 1.0));
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = TensorRng::seed_from_u64(1);
        let mut b = TensorRng::seed_from_u64(2);
        assert_ne!(a.uniform(&[16], 0.0, 1.0), b.uniform(&[16], 0.0, 1.0));
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = TensorRng::seed_from_u64(3);
        let t = rng.uniform(&[1000], -0.5, 0.5);
        for &x in t.as_slice() {
            assert!((-0.5..0.5).contains(&x));
        }
    }

    #[test]
    fn normal_moments_roughly_correct() {
        let mut rng = TensorRng::seed_from_u64(4);
        let t = rng.normal(&[20000], 3.0, 2.0);
        let mean = t.mean();
        let var = t.map(|x| (x - mean) * (x - mean)).mean();
        assert!((mean - 3.0).abs() < 0.1, "mean was {mean}");
        assert!((var - 4.0).abs() < 0.3, "var was {var}");
    }

    #[test]
    fn kaiming_scales_with_fan_in() {
        let mut rng = TensorRng::seed_from_u64(5);
        let wide = rng.init(&[5000], Initializer::KaimingNormal { fan_in: 1000 });
        let narrow = rng.init(&[5000], Initializer::KaimingNormal { fan_in: 10 });
        assert!(wide.norm_l2() < narrow.norm_l2());
    }

    #[test]
    fn zeros_initializer() {
        let mut rng = TensorRng::seed_from_u64(6);
        assert_eq!(rng.init(&[4], Initializer::Zeros), Tensor::zeros(&[4]));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = TensorRng::seed_from_u64(8);
        let mut v: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>()); // astronomically unlikely
    }

    #[test]
    fn index_within_bound() {
        let mut rng = TensorRng::seed_from_u64(9);
        for _ in 0..100 {
            assert!(rng.index(7) < 7);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = TensorRng::seed_from_u64(10);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    fn state_round_trip_resumes_stream() {
        let mut a = TensorRng::seed_from_u64(12);
        a.uniform(&[64], 0.0, 1.0); // advance the stream
        let mut b = TensorRng::from_state(a.state());
        assert_eq!(a.uniform(&[32], -1.0, 1.0), b.uniform(&[32], -1.0, 1.0));
        let mut order_a: Vec<usize> = (0..20).collect();
        let mut order_b = order_a.clone();
        a.shuffle(&mut order_a);
        b.shuffle(&mut order_b);
        assert_eq!(order_a, order_b);
    }

    #[test]
    fn fork_decorrelates() {
        let mut parent = TensorRng::seed_from_u64(11);
        let mut child = parent.fork();
        assert_ne!(
            parent.uniform(&[8], 0.0, 1.0),
            child.uniform(&[8], 0.0, 1.0)
        );
    }
}
