//! 2-D max pooling with argmax bookkeeping for the backward pass.

use serde::{Deserialize, Serialize};

use crate::plan::alloc;
use crate::plan::blueprint::{
    checked_product, Blueprint, OpKind, ShapeClass, ShapeKey, DEFAULT_BLOCKING,
};
use crate::plan::selector;
use crate::{Result, Shape, Tensor, TensorError};

/// Geometry of a 2-D max-pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PoolSpec {
    /// Pooling window height.
    pub window_h: usize,
    /// Pooling window width.
    pub window_w: usize,
    /// Stride in both dimensions.
    pub stride: usize,
}

impl PoolSpec {
    /// A square window with the given stride.
    pub fn new(window: usize, stride: usize) -> Self {
        PoolSpec {
            window_h: window,
            window_w: window,
            stride,
        }
    }

    /// The ubiquitous 2×2 stride-2 pool used between VGG stages.
    pub fn half() -> Self {
        PoolSpec::new(2, 2)
    }

    /// Spatial output size for an `h × w` input.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidGeometry`] for zero stride, an empty
    /// window, or a window larger than the input.
    pub fn output_size(&self, h: usize, w: usize) -> Result<(usize, usize)> {
        if self.stride == 0 {
            return Err(TensorError::InvalidGeometry {
                reason: "pool stride must be positive".into(),
            });
        }
        if self.window_h == 0 || self.window_w == 0 {
            return Err(TensorError::InvalidGeometry {
                reason: "pool window must be non-empty".into(),
            });
        }
        if h < self.window_h || w < self.window_w {
            return Err(TensorError::InvalidGeometry {
                reason: format!(
                    "pool window {}x{} larger than input {h}x{w}",
                    self.window_h, self.window_w
                ),
            });
        }
        Ok((
            (h - self.window_h) / self.stride + 1,
            (w - self.window_w) / self.stride + 1,
        ))
    }
}

/// Result of [`max_pool2d`]: the pooled tensor plus the flat input index
/// of each selected maximum (needed for the backward pass).
#[derive(Debug, Clone, PartialEq)]
pub struct MaxPoolOutput {
    /// Pooled output, `[N, C, OH, OW]`.
    pub output: Tensor,
    /// For each output element, the flat index into the input buffer of
    /// the element that produced it.
    pub argmax: Vec<usize>,
}

/// Batched 2-D max pooling over `[N, C, H, W]`.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-rank-4 input or
/// [`TensorError::InvalidGeometry`] for impossible geometry.
pub fn max_pool2d(input: &Tensor, spec: &PoolSpec) -> Result<MaxPoolOutput> {
    if input.rank() != 4 {
        return Err(TensorError::RankMismatch {
            op: "max_pool2d",
            expected: 4,
            actual: input.rank(),
        });
    }
    let (n, c, h, w) = (
        input.dims()[0],
        input.dims()[1],
        input.dims()[2],
        input.dims()[3],
    );
    let (oh, ow) = spec.output_size(h, w)?;
    // One cached blueprint per geometry key carries the cap-checked
    // output length; pooling is a memory-bound gather, so it stays
    // serial and needs no packing scratch.
    let key = ShapeKey::new(
        OpKind::MaxPool2d,
        &[n, c, h, w, spec.window_h, spec.window_w, spec.stride],
    );
    let bp = selector::plan_with(key, move || {
        Ok(Blueprint {
            key,
            class: ShapeClass::SmallSerial,
            blocking: DEFAULT_BLOCKING,
            parallel: false,
            rows: n,
            scratch: 0,
            scratch2: 0,
            out_len: checked_product("max_pool2d output", &[n, c, oh, ow])?,
        })
    })?;
    let data = input.as_slice();
    let mut out = alloc::fresh_with(bp.out_len);
    let mut argmax: Vec<usize> = alloc::fresh_with(bp.out_len);
    for s in 0..n {
        for ch in 0..c {
            let plane = (s * c + ch) * h * w;
            for oy in 0..oh {
                for ox in 0..ow {
                    let y0 = oy * spec.stride;
                    let x0 = ox * spec.stride;
                    let mut best_idx = plane + y0 * w + x0;
                    let mut best = data[best_idx];
                    for ky in 0..spec.window_h {
                        for kx in 0..spec.window_w {
                            let idx = plane + (y0 + ky) * w + (x0 + kx);
                            if data[idx] > best {
                                best = data[idx];
                                best_idx = idx;
                            }
                        }
                    }
                    out.push(best);
                    argmax.push(best_idx);
                }
            }
        }
    }
    Ok(MaxPoolOutput {
        output: Tensor::from_vec(out, Shape::of(&[n, c, oh, ow]))?,
        argmax,
    })
}

/// Backward pass of [`max_pool2d`]: routes each output gradient to the
/// input position that won the max.
///
/// # Errors
///
/// Returns [`TensorError::LengthMismatch`] if `grad_out` and `argmax`
/// disagree in length.
pub fn max_pool2d_backward(
    grad_out: &Tensor,
    argmax: &[usize],
    input_shape: &Shape,
) -> Result<Tensor> {
    if grad_out.numel() != argmax.len() {
        return Err(TensorError::LengthMismatch {
            provided: argmax.len(),
            expected: grad_out.numel(),
        });
    }
    let mut grad_in = alloc::fresh_vec(input_shape.numel());
    for (&g, &idx) in grad_out.as_slice().iter().zip(argmax) {
        grad_in[idx] += g;
    }
    Tensor::from_vec(grad_in, input_shape.duplicate())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TensorRng;
    use proptest::prelude::*;

    #[test]
    fn output_size_math() {
        assert_eq!(PoolSpec::half().output_size(8, 8).unwrap(), (4, 4));
        assert_eq!(PoolSpec::new(3, 2).output_size(7, 7).unwrap(), (3, 3));
        assert!(PoolSpec::new(5, 1).output_size(4, 4).is_err());
        assert!(PoolSpec::new(2, 0).output_size(4, 4).is_err());
    }

    #[test]
    fn picks_window_maximum() {
        // 1x1x2x2 input pooled with 2x2 window → single max.
        let input = Tensor::from_vec(vec![1.0, 5.0, 3.0, 2.0], [1, 1, 2, 2].into()).unwrap();
        let pooled = max_pool2d(&input, &PoolSpec::half()).unwrap();
        assert_eq!(pooled.output.as_slice(), &[5.0]);
        assert_eq!(pooled.argmax, vec![1]);
    }

    #[test]
    fn pools_per_channel() {
        let input = Tensor::from_vec(
            vec![
                // channel 0
                1.0, 2.0, 3.0, 4.0, //
                // channel 1
                8.0, 7.0, 6.0, 5.0,
            ],
            [1, 2, 2, 2].into(),
        )
        .unwrap();
        let pooled = max_pool2d(&input, &PoolSpec::half()).unwrap();
        assert_eq!(pooled.output.as_slice(), &[4.0, 8.0]);
    }

    #[test]
    fn backward_routes_to_argmax() {
        let input = Tensor::from_vec(vec![1.0, 5.0, 3.0, 2.0], [1, 1, 2, 2].into()).unwrap();
        let pooled = max_pool2d(&input, &PoolSpec::half()).unwrap();
        let grad_out = Tensor::full(pooled.output.dims(), 2.5);
        let grad_in = max_pool2d_backward(&grad_out, &pooled.argmax, input.shape()).unwrap();
        assert_eq!(grad_in.as_slice(), &[0.0, 2.5, 0.0, 0.0]);
    }

    #[test]
    fn backward_finite_difference() {
        let mut rng = TensorRng::seed_from_u64(3);
        let input = rng.uniform(&[1, 2, 4, 4], -1.0, 1.0);
        let spec = PoolSpec::half();
        let pooled = max_pool2d(&input, &spec).unwrap();
        let grad_out = Tensor::ones(pooled.output.dims());
        let grad_in = max_pool2d_backward(&grad_out, &pooled.argmax, input.shape()).unwrap();

        let eps = 1e-3f32;
        for idx in [0usize, 6, 15, 30] {
            let mut plus = input.clone();
            plus.as_mut_slice()[idx] += eps;
            let mut minus = input.clone();
            minus.as_mut_slice()[idx] -= eps;
            let numeric = (max_pool2d(&plus, &spec).unwrap().output.sum()
                - max_pool2d(&minus, &spec).unwrap().output.sum())
                / (2.0 * eps);
            let analytic = grad_in.as_slice()[idx];
            // Near ties the numeric gradient is ill-defined; allow slack.
            assert!(
                (numeric - analytic).abs() < 0.51,
                "idx {idx}: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn rejects_bad_shapes() {
        assert!(max_pool2d(&Tensor::zeros(&[2, 2]), &PoolSpec::half()).is_err());
        let grad = Tensor::zeros(&[4]);
        assert!(max_pool2d_backward(&grad, &[0, 1], &Shape::new(vec![8])).is_err());
    }

    proptest! {
        /// Every pooled value is >= every input it covers and equal to one.
        #[test]
        fn max_dominates(seed in 0u64..500) {
            let mut rng = TensorRng::seed_from_u64(seed);
            let input = rng.uniform(&[1, 1, 4, 4], -1.0, 1.0);
            let pooled = max_pool2d(&input, &PoolSpec::half()).unwrap();
            for (i, &v) in pooled.output.as_slice().iter().enumerate() {
                prop_assert_eq!(v, input.as_slice()[pooled.argmax[i]]);
            }
            prop_assert!(pooled.output.max().unwrap() <= input.max().unwrap() + 1e-6);
        }

        /// Pooling is monotone: adding a constant shifts the output by it.
        #[test]
        fn shift_equivariance(seed in 0u64..500, shift in -2.0f32..2.0) {
            let mut rng = TensorRng::seed_from_u64(seed);
            let input = rng.uniform(&[1, 1, 4, 4], -1.0, 1.0);
            let spec = PoolSpec::half();
            let base = max_pool2d(&input, &spec).unwrap().output;
            let shifted = max_pool2d(&input.add_scalar(shift), &spec).unwrap().output;
            for (a, b) in base.as_slice().iter().zip(shifted.as_slice()) {
                prop_assert!((a + shift - b).abs() < 1e-5);
            }
        }
    }
}
