//! Reductions: sums, means, extrema, argmax and top-k.

use crate::{Result, Tensor, TensorError};

impl Tensor {
    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.as_slice().iter().sum()
    }

    /// Arithmetic mean of all elements.
    ///
    /// Returns 0.0 for an empty tensor (a deliberate convention — the
    /// mean of no samples contributes nothing to a running statistic).
    pub fn mean(&self) -> f32 {
        if self.numel() == 0 {
            0.0
        } else {
            self.sum() / self.numel() as f32
        }
    }

    /// Maximum element.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyTensor`] for an empty tensor.
    pub fn max(&self) -> Result<f32> {
        if self.numel() == 0 {
            return Err(TensorError::EmptyTensor { op: "max" });
        }
        Ok(self
            .as_slice()
            .iter()
            .copied()
            .fold(f32::NEG_INFINITY, f32::max))
    }

    /// Minimum element.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyTensor`] for an empty tensor.
    pub fn min(&self) -> Result<f32> {
        if self.numel() == 0 {
            return Err(TensorError::EmptyTensor { op: "min" });
        }
        Ok(self
            .as_slice()
            .iter()
            .copied()
            .fold(f32::INFINITY, f32::min))
    }

    /// Index of the maximum element in the flattened buffer (first
    /// occurrence wins on ties).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyTensor`] for an empty tensor.
    pub fn argmax(&self) -> Result<usize> {
        if self.numel() == 0 {
            return Err(TensorError::EmptyTensor { op: "argmax" });
        }
        let mut best = 0usize;
        let mut best_val = f32::NEG_INFINITY;
        for (i, &x) in self.as_slice().iter().enumerate() {
            if x > best_val {
                best_val = x;
                best = i;
            }
        }
        Ok(best)
    }

    /// Per-row argmax of a `[rows, cols]` tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] if not rank 2, or
    /// [`TensorError::EmptyTensor`] if a row is empty.
    pub fn argmax_rows(&self) -> Result<Vec<usize>> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "argmax_rows",
                expected: 2,
                actual: self.rank(),
            });
        }
        let (rows, cols) = (self.dims()[0], self.dims()[1]);
        if cols == 0 {
            return Err(TensorError::EmptyTensor { op: "argmax_rows" });
        }
        let data = self.as_slice();
        let mut out = crate::plan::alloc::fresh_with(rows);
        for r in 0..rows {
            let row = &data[r * cols..(r + 1) * cols];
            let mut best = 0usize;
            let mut best_val = f32::NEG_INFINITY;
            for (i, &x) in row.iter().enumerate() {
                if x > best_val {
                    best_val = x;
                    best = i;
                }
            }
            out.push(best);
        }
        Ok(out)
    }

    /// Indices of the `k` largest elements, descending by value
    /// (ties broken by lower index first). If `k` exceeds the element
    /// count, all indices are returned.
    ///
    /// This drives the paper's *top-5* accuracy metric and the Eq. 2 cost
    /// function over the top-5 predicted classes.
    pub fn top_k(&self, k: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = crate::plan::alloc::fresh_with(self.numel());
        idx.extend(0..self.numel());
        idx.sort_by(|&a, &b| {
            let (va, vb) = (self.as_slice()[a], self.as_slice()[b]);
            vb.partial_cmp(&va)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        idx.truncate(k);
        idx
    }

    /// Sums over the batch (first) axis: `[n, d...] → [d...]`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyTensor`] for a rank-0 tensor.
    pub fn sum_batch(&self) -> Result<Tensor> {
        if self.rank() == 0 {
            return Err(TensorError::EmptyTensor { op: "sum_batch" });
        }
        let batch = self.dims()[0];
        let inner: usize = self.dims()[1..].iter().product();
        let mut out = crate::plan::alloc::fresh_vec(inner);
        let data = self.as_slice();
        for n in 0..batch {
            for (o, &x) in out.iter_mut().zip(&data[n * inner..(n + 1) * inner]) {
                *o += x;
            }
        }
        Tensor::from_vec(out, crate::Shape::of(&self.dims()[1..]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Shape;
    use proptest::prelude::*;

    fn t(v: &[f32]) -> Tensor {
        Tensor::from_vec(v.to_vec(), Shape::new(vec![v.len()])).unwrap()
    }

    #[test]
    fn scalar_reductions() {
        let x = t(&[1.0, -2.0, 3.0]);
        assert_eq!(x.sum(), 2.0);
        assert!((x.mean() - 2.0 / 3.0).abs() < 1e-6);
        assert_eq!(x.max().unwrap(), 3.0);
        assert_eq!(x.min().unwrap(), -2.0);
        assert_eq!(x.argmax().unwrap(), 2);
    }

    #[test]
    fn empty_tensor_errors() {
        let e = Tensor::zeros(&[0]);
        assert!(e.max().is_err());
        assert!(e.min().is_err());
        assert!(e.argmax().is_err());
        assert_eq!(e.mean(), 0.0);
    }

    #[test]
    fn argmax_first_tie_wins() {
        assert_eq!(t(&[5.0, 5.0, 1.0]).argmax().unwrap(), 0);
    }

    #[test]
    fn argmax_rows_per_row() {
        let m = Tensor::from_vec(vec![1.0, 9.0, 0.0, 7.0, 2.0, 3.0], [2, 3].into()).unwrap();
        assert_eq!(m.argmax_rows().unwrap(), vec![1, 0]);
        assert!(t(&[1.0]).argmax_rows().is_err());
    }

    #[test]
    fn top_k_descending() {
        let x = t(&[0.1, 0.9, 0.5, 0.7]);
        assert_eq!(x.top_k(3), vec![1, 3, 2]);
        assert_eq!(x.top_k(10).len(), 4);
        assert!(x.top_k(0).is_empty());
    }

    #[test]
    fn top_k_ties_prefer_lower_index() {
        let x = t(&[0.5, 0.5, 0.5]);
        assert_eq!(x.top_k(2), vec![0, 1]);
    }

    #[test]
    fn sum_batch_collapses_first_axis() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 10.0, 20.0], [2, 2].into()).unwrap();
        let s = x.sum_batch().unwrap();
        assert_eq!(s.dims(), &[2]);
        assert_eq!(s.as_slice(), &[11.0, 22.0]);
    }

    proptest! {
        /// top_k(1) agrees with argmax.
        #[test]
        fn top1_is_argmax(vals in proptest::collection::vec(-10.0f32..10.0, 1..20)) {
            let x = t(&vals);
            prop_assert_eq!(x.top_k(1)[0], x.argmax().unwrap());
        }

        /// top_k values are non-increasing.
        #[test]
        fn top_k_sorted(vals in proptest::collection::vec(-10.0f32..10.0, 1..20), k in 1usize..10) {
            let x = t(&vals);
            let idx = x.top_k(k);
            for w in idx.windows(2) {
                prop_assert!(x.as_slice()[w[0]] >= x.as_slice()[w[1]]);
            }
        }

        /// Sum over batch equals total sum.
        #[test]
        fn sum_batch_preserves_total(vals in proptest::collection::vec(-5.0f32..5.0, 12)) {
            let x = Tensor::from_vec(vals, [3, 4].into()).unwrap();
            let total = x.sum();
            let batched = x.sum_batch().unwrap().sum();
            prop_assert!((total - batched).abs() < 1e-3);
        }
    }
}
