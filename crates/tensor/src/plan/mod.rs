//! The kernel plan layer: blueprints, the caching selector, and the
//! thread-local scratch arena (DESIGN.md §18).
//!
//! Every hot kernel — the three GEMM variants, conv2d forward/backward,
//! max-pooling, and the filters' plane kernels — asks the
//! [`selector`] for a cached [`blueprint::Blueprint`] (cap-checked
//! sizes, blocking, and the parallel/serial decision in one place) and
//! draws its scratch from the per-thread [`alloc`] arena, so
//! steady-state serving performs zero kernel-scratch heap allocations
//! after warm-up while preserving the PR-5 bit-exactness invariant.

pub mod alloc;
pub mod blueprint;
pub mod selector;
