//! Thread-local scratch arena + the workspace's allocation chokepoints.
//!
//! Every kernel scratch buffer (GEMM packing panels, im2col columns,
//! median gather windows) is acquired through [`scratch_f32`], which
//! hands out buffers from a per-thread free pool with high-water-mark
//! capacity reuse: after the first call on a given shape key the pool
//! holds a buffer big enough, and steady-state serving performs zero
//! kernel-scratch heap allocations. The arena handle *is* the thread —
//! each `fademl-par-N` pool worker and the caller thread owns its own
//! pool, so no locking is needed and a buffer released on a worker
//! stays with that worker.
//!
//! Output buffers (tensor data that outlives the call) and buffers that
//! cross threads (parallel-dispatch operand copies, per-chunk result
//! blocks) must NOT come from the arena: a buffer dropped on a
//! different thread would migrate into that thread's pool and slowly
//! drain the owner's. Those go through [`fresh_vec`] / [`fresh_with`] /
//! [`fresh_from`] instead — per-call by design, and the only places in
//! the compute crates where the `hot-path-alloc` lint budget lives.
//!
//! Counters are always-on relaxed atomics (a handful of uncontended
//! `fetch_add`s per kernel call) so both the test suite and the
//! release-mode bench smoke can assert the arena path is actually
//! engaged.

use std::cell::RefCell;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};

/// Per-thread free-pool size cap; excess released buffers are dropped
/// (counted as evictions) so a burst of odd shapes can't pin memory.
const MAX_POOLED: usize = 24;

thread_local! {
    /// This thread's free pool. Buffers keep their high-water capacity.
    static POOL: RefCell<Vec<Vec<f32>>> = RefCell::new(Vec::default());
}

static ACQUIRES: AtomicU64 = AtomicU64::new(0);
static HITS: AtomicU64 = AtomicU64::new(0);
static GROWS: AtomicU64 = AtomicU64::new(0);
static EVICTIONS: AtomicU64 = AtomicU64::new(0);

/// Snapshot of the process-wide arena counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Total [`scratch_f32`] calls.
    pub acquires: u64,
    /// Acquires served by a pooled buffer without growing its backing
    /// allocation — the steady-state path.
    pub hits: u64,
    /// Acquires that had to allocate or grow (cold path / warm-up).
    pub grows: u64,
    /// Buffers dropped on release because the pool was full.
    pub evictions: u64,
}

/// Reads the process-wide arena counters (relaxed; exact once quiescent).
pub fn stats() -> ArenaStats {
    ArenaStats {
        acquires: ACQUIRES.load(Ordering::Relaxed),
        hits: HITS.load(Ordering::Relaxed),
        grows: GROWS.load(Ordering::Relaxed),
        evictions: EVICTIONS.load(Ordering::Relaxed),
    }
}

/// A zeroed scratch buffer leased from the current thread's arena.
/// Dereferences to `[f32]`; returns its backing storage to the pool on
/// drop (on whichever thread drops it — see the module docs for why
/// scratch must stay on its acquiring thread).
pub struct Scratch {
    buf: Vec<f32>,
}

impl Scratch {
    /// The leased buffer as a shared slice.
    pub fn as_slice(&self) -> &[f32] {
        &self.buf
    }

    /// The leased buffer as a mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.buf
    }
}

impl Deref for Scratch {
    type Target = [f32];
    fn deref(&self) -> &[f32] {
        &self.buf
    }
}

impl DerefMut for Scratch {
    fn deref_mut(&mut self) -> &mut [f32] {
        &mut self.buf
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let buf = std::mem::take(&mut self.buf);
        if buf.capacity() == 0 {
            return;
        }
        // try_with: never panic if the thread-local was already torn
        // down (a Scratch held across thread exit just frees its buffer).
        let pooled = POOL
            .try_with(|p| {
                let mut pool = p.borrow_mut();
                if pool.len() < MAX_POOLED {
                    pool.push(buf);
                    true
                } else {
                    false
                }
            })
            .unwrap_or(false);
        if !pooled {
            EVICTIONS.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Takes the best buffer for `len` out of `pool`: the smallest pooled
/// capacity that already fits, else the largest available (it will be
/// grown once and then retained at its new high-water capacity).
fn take_best(pool: &mut Vec<Vec<f32>>, len: usize) -> Vec<f32> {
    let mut best: Option<(usize, usize, bool)> = None; // (idx, cap, fits)
    for (i, buf) in pool.iter().enumerate() {
        let cap = buf.capacity();
        let fits = cap >= len;
        let better = match best {
            None => true,
            Some((_, best_cap, best_fits)) => match (fits, best_fits) {
                (true, true) => cap < best_cap,
                (true, false) => true,
                (false, true) => false,
                (false, false) => cap > best_cap,
            },
        };
        if better {
            best = Some((i, cap, fits));
        }
    }
    match best {
        Some((i, _, _)) => pool.swap_remove(i),
        None => Vec::default(),
    }
}

/// Acquires a zeroed scratch buffer of exactly `len` elements from the
/// current thread's arena. After warm-up on a shape key this never
/// touches the heap: the pooled buffer is cleared and re-zeroed in
/// place (`resize` on retained capacity is a pure memset).
pub fn scratch_f32(len: usize) -> Scratch {
    ACQUIRES.fetch_add(1, Ordering::Relaxed);
    let mut buf = POOL
        .try_with(|p| take_best(&mut p.borrow_mut(), len))
        .unwrap_or_default();
    if buf.capacity() < len {
        GROWS.fetch_add(1, Ordering::Relaxed);
    } else {
        HITS.fetch_add(1, Ordering::Relaxed);
    }
    buf.clear();
    buf.resize(len, 0.0);
    Scratch { buf }
}

// ---------------------------------------------------------------------
// Fresh-allocation chokepoints. These are the budgeted hot-path-alloc
// sites for the whole compute path: every output buffer and every
// cross-thread buffer in the tensor/filters crates is built through one
// of these three functions, so the lint budget measures real debt in
// one place instead of ~200 scattered call sites.

/// A fresh `len`-element vector filled with `value`. Output buffers
/// only — scratch goes through [`scratch_f32`].
pub fn fresh_filled<T: Clone>(len: usize, value: T) -> Vec<T> {
    vec![value; len]
}

/// A fresh zeroed `f32` output buffer.
pub fn fresh_vec(len: usize) -> Vec<f32> {
    fresh_filled(len, 0.0)
}

/// A fresh empty vector with `cap` reserved — for outputs assembled by
/// `push`/`extend_from_slice`.
pub fn fresh_with<T>(cap: usize) -> Vec<T> {
    Vec::with_capacity(cap)
}

/// A fresh owned copy of `src` — for operand copies that must cross
/// threads (`Arc`-shared parallel dispatch) or outlive the call.
pub fn fresh_from<T: Clone>(src: &[T]) -> Vec<T> {
    src.to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scratch_is_zeroed_and_sized() {
        let s = scratch_f32(17);
        assert_eq!(s.len(), 17);
        assert!(s.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn same_size_reuses_backing_allocation() {
        // Warm up, then measure: repeat acquisitions at the same size
        // must not grow.
        drop(scratch_f32(1024));
        let before = stats();
        for _ in 0..10 {
            let mut s = scratch_f32(1024);
            s.as_mut_slice().fill(3.5);
        }
        let after = stats();
        assert_eq!(after.grows, before.grows, "warm same-size acquires grew");
        assert_eq!(after.hits - before.hits, 10);
    }

    #[test]
    fn smaller_request_reuses_larger_buffer() {
        drop(scratch_f32(4096));
        let before = stats();
        let s = scratch_f32(100);
        assert_eq!(s.len(), 100);
        let after = stats();
        assert_eq!(after.grows, before.grows);
    }

    #[test]
    fn reused_buffer_is_rezeroed() {
        {
            let mut s = scratch_f32(64);
            s.as_mut_slice().fill(9.0);
        }
        let s = scratch_f32(64);
        assert!(s.iter().all(|&v| v == 0.0), "stale scratch data leaked");
    }

    #[test]
    fn nested_leases_are_independent() {
        let mut a = scratch_f32(32);
        let mut b = scratch_f32(32);
        a.as_mut_slice().fill(1.0);
        b.as_mut_slice().fill(2.0);
        assert!(a.iter().all(|&v| v == 1.0));
        assert!(b.iter().all(|&v| v == 2.0));
    }

    #[test]
    fn fresh_helpers_shape() {
        assert_eq!(fresh_vec(3), [0.0, 0.0, 0.0]);
        assert_eq!(fresh_filled(2, 7usize), [7, 7]);
        let v: Vec<u8> = fresh_with(9);
        assert_eq!(v.capacity(), 9);
        assert_eq!(fresh_from(&[1.0f32, 2.0]), [1.0, 2.0]);
    }
}
