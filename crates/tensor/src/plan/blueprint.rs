//! Kernel blueprints: the static description of how one (op, shape,
//! thread-count) combination should execute — blocking parameters,
//! parallel/serial dispatch, and cap-checked scratch/output sizes.
//!
//! A [`Blueprint`] is computed once per [`ShapeKey`] by the selector
//! and cached, so the blocking choice and the parallel/serial choice
//! always come from the same decision point and can never disagree
//! (previously each GEMM variant re-derived `work` and called
//! `should_parallelize` independently of the blocking constants).
//!
//! **Bit-exactness:** every field here is a *free* performance knob.
//! The GEMM accumulates each output element in a single `f32`
//! accumulator in increasing-`p` order regardless of `(mc, kc, nc)` —
//! panel loops visit `p` ascending within and across panels — and
//! parallel partitioning only splits independent output rows. So any
//! blueprint produces byte-identical output; caching merely makes the
//! choice stable within a process.

use crate::error::TensorError;

/// Which kernel a blueprint drives.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// `C = A · B`.
    MatMul,
    /// `C = Aᵀ · B`.
    MatMulTn,
    /// `C = A · Bᵀ`.
    MatMulNt,
    /// Batched im2col conv2d forward.
    Conv2d,
    /// conv2d backward (grad input + grad filters + grad bias).
    Conv2dBackward,
    /// 2-D max pooling.
    MaxPool2d,
    /// Per-plane sliding-window filter (LAP/LAR/Gaussian kernels).
    FilterPlane,
}

/// Shape classification driving the blocking heuristics. Mirrors the
/// vecmat / square / tall-skinny split of cubek-matmul's selector.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ShapeClass {
    /// Work below the parallel threshold; defaults are fine, overhead
    /// dominates everything else.
    SmallSerial,
    /// Degenerate row/column count (vector × matrix).
    VecMat,
    /// Many more rows than columns.
    TallSkinny,
    /// Many more columns than rows.
    WideFlat,
    /// Roughly balanced dimensions.
    Square,
}

/// Maximum dimensions captured in a [`ShapeKey`]. Conv keys use nine:
/// `[n, c, h, w, f, kh, kw, stride, padding]`.
pub const MAX_KEY_DIMS: usize = 10;

/// Cache key for one kernel-shape combination. The worker-thread count
/// is part of the key because the parallel/serial decision depends on
/// it and `par::set_threads` can change at runtime.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ShapeKey {
    /// The kernel this key plans for.
    pub op: OpKind,
    /// The defining dimensions, zero-padded to [`MAX_KEY_DIMS`].
    pub dims: [usize; MAX_KEY_DIMS],
    /// `par::threads()` at planning time.
    pub threads: usize,
}

impl ShapeKey {
    /// Builds a key from the defining dimensions, capturing the current
    /// worker-thread count.
    pub fn new(op: OpKind, dims: &[usize]) -> Self {
        debug_assert!(dims.len() <= MAX_KEY_DIMS, "shape key dims overflow");
        let mut key_dims = [0usize; MAX_KEY_DIMS];
        for (slot, &d) in key_dims.iter_mut().zip(dims.iter()) {
            *slot = d;
        }
        ShapeKey {
            op,
            dims: key_dims,
            threads: crate::par::threads(),
        }
    }
}

/// Cache-blocking parameters for the packed GEMM: row block, depth
/// panel, and column panel extents.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Blocking {
    /// Rows of A per L2-resident block.
    pub mc: usize,
    /// Depth (k) extent of each packed panel.
    pub kc: usize,
    /// Columns of B per packed panel.
    pub nc: usize,
}

/// The PR-5 defaults; [`ShapeClass::Square`] keeps them so existing
/// balanced shapes execute exactly as before.
pub const DEFAULT_BLOCKING: Blocking = Blocking {
    mc: 64,
    kc: 256,
    nc: 512,
};

/// One cached execution plan: everything the kernel drivers need to
/// run without re-deriving sizes or dispatch decisions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Blueprint {
    /// The key this blueprint was planned for.
    pub key: ShapeKey,
    /// Shape classification that chose the blocking.
    pub class: ShapeClass,
    /// GEMM blocking (ignored by kernels that don't pack).
    pub blocking: Blocking,
    /// Hoisted `should_parallelize` decision — the single source of
    /// truth for serial-vs-pool dispatch for this shape.
    pub parallel: bool,
    /// Partition axis extent handed to `parallel_rows`.
    pub rows: usize,
    /// Primary scratch length (packing panel / im2col columns /
    /// gather window), cap-checked.
    pub scratch: usize,
    /// Secondary scratch length (transpose buffer, per-sample packing),
    /// cap-checked; zero when unused.
    pub scratch2: usize,
    /// Output buffer length, cap-checked.
    pub out_len: usize,
}

/// Work (in multiply-accumulates) below which a shape is
/// [`ShapeClass::SmallSerial`]; matches `par::should_parallelize`'s
/// threshold so classification and dispatch agree.
pub const SMALL_WORK: usize = 32 * 1024;

/// Classifies a GEMM by its output dimensions and total work.
pub fn classify_gemm(m: usize, n: usize, work: usize) -> ShapeClass {
    if work < SMALL_WORK {
        ShapeClass::SmallSerial
    } else if m <= 2 || n <= 2 {
        ShapeClass::VecMat
    } else if m >= 4 * n {
        ShapeClass::TallSkinny
    } else if n >= 4 * m {
        ShapeClass::WideFlat
    } else {
        ShapeClass::Square
    }
}

/// Deterministic blocking per shape class. Any choice is bit-safe (see
/// module docs); these are tuned for the class's reuse pattern —
/// tall-skinny favours bigger row blocks, wide-flat favours wider
/// column panels.
pub fn blocking_for(class: ShapeClass) -> Blocking {
    match class {
        ShapeClass::SmallSerial | ShapeClass::Square => DEFAULT_BLOCKING,
        ShapeClass::VecMat => Blocking {
            mc: 64,
            kc: 512,
            nc: 256,
        },
        ShapeClass::TallSkinny => Blocking {
            mc: 128,
            kc: 256,
            nc: 256,
        },
        ShapeClass::WideFlat => Blocking {
            mc: 32,
            kc: 256,
            nc: 1024,
        },
    }
}

/// Cap-checked product of `dims`, the sizing discipline for every
/// scratch/output allocation: overflow surfaces as a typed
/// [`TensorError::Overflow`] instead of wrapping and under-allocating.
pub fn checked_product(op: &'static str, dims: &[usize]) -> Result<usize, TensorError> {
    let mut acc = 1usize;
    for &d in dims {
        acc = acc
            .checked_mul(d)
            .ok_or_else(|| TensorError::overflow(op, dims))?;
    }
    Ok(acc)
}

/// Cap-checked `a + b` under the same overflow discipline.
pub fn checked_add(op: &'static str, a: usize, b: usize) -> Result<usize, TensorError> {
    a.checked_add(b)
        .ok_or_else(|| TensorError::overflow(op, &[a, b]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checked_product_computes() {
        assert_eq!(checked_product("t", &[3, 4, 5]), Ok(60));
        assert_eq!(checked_product("t", &[]), Ok(1));
    }

    #[test]
    fn checked_product_overflows_to_typed_error() {
        let huge = usize::MAX / 2;
        match checked_product("im2col", &[huge, 3]) {
            Err(TensorError::Overflow { op, dims }) => {
                assert_eq!(op, "im2col");
                assert_eq!(dims, vec![huge, 3]);
            }
            other => panic!("expected Overflow, got {other:?}"),
        }
    }

    #[test]
    fn checked_add_overflows_to_typed_error() {
        assert!(matches!(
            checked_add("pad", usize::MAX, 1),
            Err(TensorError::Overflow { .. })
        ));
        assert_eq!(checked_add("pad", 2, 3), Ok(5));
    }

    #[test]
    fn classification_matches_shape_families() {
        assert_eq!(classify_gemm(8, 8, 100), ShapeClass::SmallSerial);
        assert_eq!(classify_gemm(1, 1024, 1 << 20), ShapeClass::VecMat);
        assert_eq!(classify_gemm(1024, 8, 1 << 20), ShapeClass::TallSkinny);
        assert_eq!(classify_gemm(8, 1024, 1 << 20), ShapeClass::WideFlat);
        assert_eq!(classify_gemm(256, 256, 1 << 20), ShapeClass::Square);
    }

    #[test]
    fn square_keeps_pr5_blocking() {
        assert_eq!(blocking_for(ShapeClass::Square), DEFAULT_BLOCKING);
        assert_eq!(blocking_for(ShapeClass::SmallSerial), DEFAULT_BLOCKING);
    }

    #[test]
    fn shape_key_pads_and_captures_threads() {
        let key = ShapeKey::new(OpKind::MatMul, &[3, 4, 5]);
        assert_eq!(&key.dims[..3], &[3, 4, 5]);
        assert!(key.dims[3..].iter().all(|&d| d == 0));
        assert_eq!(key.threads, crate::par::threads());
    }
}
