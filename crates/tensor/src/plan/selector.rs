//! The blueprint selector: classifies shapes, chooses blocking and
//! dispatch once per [`ShapeKey`], and caches the result so every call
//! on a warm key pays one read-locked hash lookup instead of
//! re-deriving sizes and `should_parallelize` thresholds.
//!
//! The default path is fully deterministic: the same shape key yields
//! the same blueprint in every process, which keeps `fit_durable`'s
//! byte-exact crash/resume and the seed-sensitive figure sweeps stable
//! across runs. Setting `FADEML_AUTOTUNE=1` enables a one-shot timed
//! micro-autotune per shape key; its choice is cached (stable within
//! the process) and bit-safe (all candidate blockings produce identical
//! bits — see the blueprint module docs), but being timing-based it is
//! not reproducible across processes, so it is opt-in.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

use parking_lot::RwLock;

use super::alloc;
use super::blueprint::{
    blocking_for, checked_product, classify_gemm, Blocking, Blueprint, OpKind, ShapeClass,
    ShapeKey, DEFAULT_BLOCKING,
};
use crate::error::TensorError;
use crate::par;

/// Cache size cap. Beyond it, plans are still computed (with the
/// deterministic heuristic, never the autotuner) but not stored, so a
/// shape-spraying client cannot grow the map without bound.
const CACHE_CAP: usize = 1024;

static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);

fn cache() -> &'static RwLock<HashMap<ShapeKey, Blueprint>> {
    static CACHE: OnceLock<RwLock<HashMap<ShapeKey, Blueprint>>> = OnceLock::new();
    CACHE.get_or_init(|| RwLock::new(HashMap::new()))
}

/// Snapshot of the selector cache counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SelectorStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to build a blueprint.
    pub misses: u64,
    /// Blueprints currently cached.
    pub entries: u64,
}

/// Reads the selector counters (relaxed; exact once quiescent).
pub fn stats() -> SelectorStats {
    SelectorStats {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        entries: u64::try_from(cache().read().len()).unwrap_or(u64::MAX),
    }
}

/// Cache lookup; counts a hit when found.
pub fn lookup(key: &ShapeKey) -> Option<Blueprint> {
    let found = cache().read().get(key).copied();
    if found.is_some() {
        HITS.fetch_add(1, Ordering::Relaxed);
    }
    found
}

fn remember(bp: Blueprint) {
    let mut map = cache().write();
    if map.len() < CACHE_CAP || map.contains_key(&bp.key) {
        map.insert(bp.key, bp);
    }
}

/// Memoized planning: returns the cached blueprint for `key` or builds,
/// caches, and returns a new one. `build` runs at most once per key per
/// process (modulo the cache cap), so kernels route every sizing and
/// dispatch decision through here.
pub fn plan_with(
    key: ShapeKey,
    build: impl FnOnce() -> Result<Blueprint, TensorError>,
) -> Result<Blueprint, TensorError> {
    if let Some(bp) = lookup(&key) {
        return Ok(bp);
    }
    MISSES.fetch_add(1, Ordering::Relaxed);
    let bp = build()?;
    debug_assert_eq!(bp.key, key, "blueprint built for a different key");
    remember(bp);
    Ok(bp)
}

/// Plans one of the three GEMM variants. `m`/`n` are the *output*
/// dimensions (already transposed for Tn/Nt), `k` the shared depth.
pub fn plan_gemm(op: OpKind, m: usize, k: usize, n: usize) -> Result<Blueprint, TensorError> {
    let key = ShapeKey::new(op, &[m, k, n]);
    plan_with(key, || {
        // `work` only feeds the dispatch threshold, so saturation is
        // fine; allocation sizes below are strictly cap-checked.
        let work = m.saturating_mul(k).saturating_mul(n);
        let out_len = checked_product("matmul output", &[m, n])?;
        let scratch = match op {
            // A·Bᵀ reads B directly, no packed panel.
            OpKind::MatMulNt => 0,
            _ => checked_product("matmul packing", &[k, n])?,
        };
        let scratch2 = match op {
            OpKind::MatMulTn => checked_product("matmul_tn transpose", &[k, m])?,
            _ => 0,
        };
        let class = classify_gemm(m, n, work);
        let cacheable = cache().read().len() < CACHE_CAP;
        let blocking = choose_blocking(op, class, cacheable, m, k, n);
        Ok(Blueprint {
            key,
            class,
            blocking,
            parallel: par::should_parallelize(m, work),
            rows: m,
            scratch,
            scratch2,
            out_len,
        })
    })
}

fn autotune_enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| std::env::var("FADEML_AUTOTUNE").is_ok_and(|v| v == "1"))
}

/// Heuristic blocking by default; timed micro-autotune when opted in,
/// the shape is worth tuning, and the result will actually be cached
/// (an uncacheable timed choice could differ on recomputation, which
/// would violate the stable-blocking guarantee).
fn choose_blocking(
    op: OpKind,
    class: ShapeClass,
    cacheable: bool,
    m: usize,
    k: usize,
    n: usize,
) -> Blocking {
    let base = blocking_for(class);
    let tunable = !matches!(op, OpKind::MatMulNt) && !matches!(class, ShapeClass::SmallSerial);
    if !autotune_enabled() || !tunable || !cacheable {
        return base;
    }
    microtune(base, m, k, n)
}

/// One-shot micro-autotune: times each candidate blocking on a
/// zero-filled probe capped at one outer block per dimension and keeps
/// the fastest. Runs once per shape key; buffers come from the arena.
fn microtune(base: Blocking, m: usize, k: usize, n: usize) -> Blocking {
    let pm = m.min(128);
    let pk = k.min(512);
    let pn = n.min(1024);
    let a = alloc::scratch_f32(pm * pk);
    let b = alloc::scratch_f32(pk * pn);
    let mut packed = alloc::scratch_f32(pk * pn);
    let mut out = alloc::scratch_f32(pm * pn);
    let candidates = [
        base,
        DEFAULT_BLOCKING,
        Blocking {
            mc: 32,
            kc: 128,
            nc: 256,
        },
        Blocking {
            mc: 128,
            kc: 512,
            nc: 512,
        },
    ];
    let mut best = (u128::MAX, base);
    for cand in candidates {
        let mut cost = u128::MAX;
        for _ in 0..2 {
            let start = Instant::now();
            crate::matmul::pack_b_into(&b, pk, pn, cand, &mut packed);
            crate::matmul::gemm_rows_into(&a, pm, pk, &packed, pn, cand, &mut out);
            cost = cost.min(start.elapsed().as_nanos());
        }
        if cost < best.0 {
            best = (cost, cand);
        }
    }
    best.1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_key_yields_same_blueprint() {
        let first = plan_gemm(OpKind::MatMul, 33, 47, 59).expect("plan");
        let second = plan_gemm(OpKind::MatMul, 33, 47, 59).expect("plan");
        assert_eq!(first, second);
    }

    #[test]
    fn second_plan_is_a_cache_hit() {
        let before = stats();
        let _ = plan_gemm(OpKind::MatMulTn, 21, 22, 23).expect("plan");
        let _ = plan_gemm(OpKind::MatMulTn, 21, 22, 23).expect("plan");
        let after = stats();
        assert!(after.hits > before.hits, "second plan did not hit cache");
    }

    #[test]
    fn nt_variant_needs_no_packing_scratch() {
        let bp = plan_gemm(OpKind::MatMulNt, 8, 9, 10).expect("plan");
        assert_eq!(bp.scratch, 0);
        assert_eq!(bp.out_len, 80);
    }

    #[test]
    fn oversized_gemm_is_a_typed_overflow() {
        let huge = usize::MAX / 2;
        assert!(matches!(
            plan_gemm(OpKind::MatMul, huge, 3, huge),
            Err(TensorError::Overflow { .. })
        ));
    }

    #[test]
    fn parallel_and_blocking_come_from_one_plan() {
        // The hoisted decision: a shape just past the work threshold
        // gets both its dispatch bit and its blocking from the same
        // cached blueprint.
        let bp = plan_gemm(OpKind::MatMul, 64, 64, 64).expect("plan");
        assert_eq!(bp.parallel, par::should_parallelize(64, 64 * 64 * 64));
        assert_eq!(bp.blocking, blocking_for(bp.class));
    }
}
