use std::error::Error;
use std::fmt;

/// Error type for all fallible tensor operations.
///
/// Every public function in this crate that can fail returns
/// `Result<T, TensorError>`; the variants carry enough context to
/// diagnose the offending shapes without a debugger.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TensorError {
    /// Two operands had incompatible shapes for the requested operation.
    ShapeMismatch {
        /// Name of the operation that failed (e.g. `"add"`).
        op: &'static str,
        /// Shape of the left-hand operand.
        lhs: Vec<usize>,
        /// Shape of the right-hand operand.
        rhs: Vec<usize>,
    },
    /// The data buffer length did not match the product of the dimensions.
    LengthMismatch {
        /// Number of elements provided.
        provided: usize,
        /// Number of elements the shape requires.
        expected: usize,
    },
    /// An operation required a specific rank (number of dimensions).
    RankMismatch {
        /// Name of the operation that failed.
        op: &'static str,
        /// Rank the operation requires.
        expected: usize,
        /// Rank that was provided.
        actual: usize,
    },
    /// An index was out of bounds for the tensor's shape.
    IndexOutOfBounds {
        /// The offending index.
        index: Vec<usize>,
        /// The tensor's shape.
        shape: Vec<usize>,
    },
    /// A convolution / pooling geometry was invalid (e.g. kernel larger
    /// than the padded input, or zero stride).
    InvalidGeometry {
        /// Human-readable description of the constraint that was violated.
        reason: String,
    },
    /// Reshape target had a different element count than the source.
    ReshapeMismatch {
        /// Source shape.
        from: Vec<usize>,
        /// Requested shape.
        to: Vec<usize>,
    },
    /// An axis argument exceeded the tensor's rank.
    InvalidAxis {
        /// The offending axis.
        axis: usize,
        /// The tensor's rank.
        rank: usize,
    },
    /// The operation is undefined on an empty tensor.
    EmptyTensor {
        /// Name of the operation that failed.
        op: &'static str,
    },
    /// A scratch/output size product overflowed `usize` — the shape is
    /// representable but its flattened buffer is not. Raised by the
    /// plan layer's cap-checked sizing before any allocation happens.
    Overflow {
        /// Name of the operation whose sizing overflowed.
        op: &'static str,
        /// The dimensions whose product overflowed.
        dims: Vec<usize>,
    },
}

/// The one place error construction copies dimension slices. Errors are
/// cold by definition; concentrating the copies here keeps the
/// hot-path-alloc lint budget out of every `return Err(...)` site.
fn owned_dims(dims: &[usize]) -> Vec<usize> {
    dims.to_vec()
}

impl TensorError {
    /// Builds [`TensorError::ShapeMismatch`] from borrowed shapes.
    pub fn shape_mismatch(op: &'static str, lhs: &[usize], rhs: &[usize]) -> Self {
        TensorError::ShapeMismatch {
            op,
            lhs: owned_dims(lhs),
            rhs: owned_dims(rhs),
        }
    }

    /// Builds [`TensorError::IndexOutOfBounds`] from borrowed slices.
    pub fn index_oob(index: &[usize], shape: &[usize]) -> Self {
        TensorError::IndexOutOfBounds {
            index: owned_dims(index),
            shape: owned_dims(shape),
        }
    }

    /// Builds [`TensorError::ReshapeMismatch`] from borrowed shapes.
    pub fn reshape_mismatch(from: &[usize], to: &[usize]) -> Self {
        TensorError::ReshapeMismatch {
            from: owned_dims(from),
            to: owned_dims(to),
        }
    }

    /// Builds [`TensorError::Overflow`] from the borrowed dimensions.
    pub fn overflow(op: &'static str, dims: &[usize]) -> Self {
        TensorError::Overflow {
            op,
            dims: owned_dims(dims),
        }
    }
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { op, lhs, rhs } => {
                write!(f, "shape mismatch in `{op}`: lhs {lhs:?} vs rhs {rhs:?}")
            }
            TensorError::LengthMismatch { provided, expected } => write!(
                f,
                "data length {provided} does not match shape requiring {expected} elements"
            ),
            TensorError::RankMismatch {
                op,
                expected,
                actual,
            } => write!(
                f,
                "`{op}` requires rank {expected} but tensor has rank {actual}"
            ),
            TensorError::IndexOutOfBounds { index, shape } => {
                write!(f, "index {index:?} out of bounds for shape {shape:?}")
            }
            TensorError::InvalidGeometry { reason } => {
                write!(f, "invalid geometry: {reason}")
            }
            TensorError::ReshapeMismatch { from, to } => {
                write!(
                    f,
                    "cannot reshape {from:?} into {to:?}: element counts differ"
                )
            }
            TensorError::InvalidAxis { axis, rank } => {
                write!(f, "axis {axis} out of range for rank {rank}")
            }
            TensorError::EmptyTensor { op } => {
                write!(f, "`{op}` is undefined on an empty tensor")
            }
            TensorError::Overflow { op, dims } => {
                write!(
                    f,
                    "size overflow in `{op}`: product of {dims:?} exceeds usize"
                )
            }
        }
    }
}

impl Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = TensorError::ShapeMismatch {
            op: "add",
            lhs: vec![2, 3],
            rhs: vec![3, 2],
        };
        let msg = err.to_string();
        assert!(msg.contains("add"));
        assert!(msg.contains("[2, 3]"));
        assert!(msg.contains("[3, 2]"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }

    #[test]
    fn implements_std_error() {
        let err: Box<dyn Error> = Box::new(TensorError::EmptyTensor { op: "argmax" });
        assert!(err.to_string().contains("argmax"));
    }
}
