//! Elementwise arithmetic with broadcasting, plus common nonlinearities.

use crate::broadcast::broadcast_zip;
use crate::{Result, Tensor};

impl Tensor {
    /// Elementwise addition with broadcasting.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`](crate::TensorError::ShapeMismatch)
    /// if the shapes are not broadcast-compatible.
    pub fn add(&self, other: &Tensor) -> Result<Tensor> {
        broadcast_zip("add", self, other, |a, b| a + b)
    }

    /// Elementwise subtraction with broadcasting.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`](crate::TensorError::ShapeMismatch)
    /// if the shapes are not broadcast-compatible.
    pub fn sub(&self, other: &Tensor) -> Result<Tensor> {
        broadcast_zip("sub", self, other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) multiplication with broadcasting.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`](crate::TensorError::ShapeMismatch)
    /// if the shapes are not broadcast-compatible.
    pub fn mul(&self, other: &Tensor) -> Result<Tensor> {
        broadcast_zip("mul", self, other, |a, b| a * b)
    }

    /// Elementwise division with broadcasting.
    ///
    /// Division by zero follows IEEE-754 semantics (yields ±inf / NaN).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`](crate::TensorError::ShapeMismatch)
    /// if the shapes are not broadcast-compatible.
    pub fn div(&self, other: &Tensor) -> Result<Tensor> {
        broadcast_zip("div", self, other, |a, b| a / b)
    }

    /// Adds `other * factor` into `self` in place (axpy). Shapes must match
    /// exactly; this is the hot path of the optimizers so no broadcasting.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`](crate::TensorError::ShapeMismatch)
    /// if the shapes differ.
    pub fn add_scaled_inplace(&mut self, other: &Tensor, factor: f32) -> Result<()> {
        if self.shape() != other.shape() {
            return Err(crate::TensorError::shape_mismatch(
                "add_scaled_inplace",
                self.dims(),
                other.dims(),
            ));
        }
        for (a, &b) in self.as_mut_slice().iter_mut().zip(other.as_slice()) {
            *a += b * factor;
        }
        Ok(())
    }

    /// Rectified linear unit: `max(x, 0)` elementwise.
    pub fn relu(&self) -> Tensor {
        self.map(|x| x.max(0.0))
    }

    /// Elementwise sign: −1, 0 or +1. This is the core of FGSM.
    pub fn sign(&self) -> Tensor {
        self.map(|x| {
            if x > 0.0 {
                1.0
            } else if x < 0.0 {
                -1.0
            } else {
                0.0
            }
        })
    }

    /// Natural exponential, elementwise.
    pub fn exp(&self) -> Tensor {
        self.map(f32::exp)
    }

    /// Natural logarithm, elementwise (log of non-positive values yields
    /// `-inf`/NaN per IEEE-754).
    pub fn ln(&self) -> Tensor {
        self.map(f32::ln)
    }

    /// Squares every element.
    pub fn square(&self) -> Tensor {
        self.map(|x| x * x)
    }

    /// Elementwise absolute value.
    pub fn abs(&self) -> Tensor {
        self.map(f32::abs)
    }

    /// Numerically stable row-wise softmax of a `[rows, cols]` tensor.
    ///
    /// Each row is shifted by its maximum before exponentiation so large
    /// logits do not overflow.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`](crate::TensorError::RankMismatch)
    /// if the tensor is not rank 2.
    pub fn softmax_rows(&self) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(crate::TensorError::RankMismatch {
                op: "softmax_rows",
                expected: 2,
                actual: self.rank(),
            });
        }
        let (rows, cols) = (self.dims()[0], self.dims()[1]);
        let mut out = crate::plan::alloc::fresh_vec(rows * cols);
        let data = self.as_slice();
        for r in 0..rows {
            let row = &data[r * cols..(r + 1) * cols];
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0f32;
            for (o, &x) in out[r * cols..(r + 1) * cols].iter_mut().zip(row) {
                let e = (x - max).exp();
                *o = e;
                sum += e;
            }
            let inv = 1.0 / sum;
            for o in &mut out[r * cols..(r + 1) * cols] {
                *o *= inv;
            }
        }
        Tensor::from_vec(out, self.shape().duplicate())
    }

    /// Squared Euclidean (L2²) norm of the whole tensor.
    pub fn norm_l2_squared(&self) -> f32 {
        self.as_slice().iter().map(|x| x * x).sum()
    }

    /// Euclidean (L2) norm of the whole tensor.
    pub fn norm_l2(&self) -> f32 {
        self.norm_l2_squared().sqrt()
    }

    /// L∞ (maximum-magnitude) norm of the whole tensor.
    pub fn norm_linf(&self) -> f32 {
        self.as_slice()
            .iter()
            .map(|x| x.abs())
            .fold(0.0f32, f32::max)
    }

    /// Dot product with a same-shaped tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`](crate::TensorError::ShapeMismatch)
    /// if the shapes differ.
    pub fn dot(&self, other: &Tensor) -> Result<f32> {
        if self.shape() != other.shape() {
            return Err(crate::TensorError::shape_mismatch(
                "dot",
                self.dims(),
                other.dims(),
            ));
        }
        Ok(self
            .as_slice()
            .iter()
            .zip(other.as_slice())
            .map(|(&a, &b)| a * b)
            .sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Shape;
    use proptest::prelude::*;

    fn t(v: &[f32]) -> Tensor {
        Tensor::from_vec(v.to_vec(), Shape::new(vec![v.len()])).unwrap()
    }

    #[test]
    fn arithmetic() {
        let a = t(&[1.0, 2.0, 3.0]);
        let b = t(&[4.0, 5.0, 6.0]);
        assert_eq!(a.add(&b).unwrap().as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).unwrap().as_slice(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.mul(&b).unwrap().as_slice(), &[4.0, 10.0, 18.0]);
        assert_eq!(b.div(&a).unwrap().as_slice(), &[4.0, 2.5, 2.0]);
    }

    #[test]
    fn add_scaled_inplace_axpy() {
        let mut a = t(&[1.0, 2.0]);
        a.add_scaled_inplace(&t(&[10.0, 20.0]), 0.5).unwrap();
        assert_eq!(a.as_slice(), &[6.0, 12.0]);
        assert!(a.add_scaled_inplace(&Tensor::zeros(&[3]), 1.0).is_err());
    }

    #[test]
    fn relu_and_sign() {
        let x = t(&[-2.0, 0.0, 3.0]);
        assert_eq!(x.relu().as_slice(), &[0.0, 0.0, 3.0]);
        assert_eq!(x.sign().as_slice(), &[-1.0, 0.0, 1.0]);
    }

    #[test]
    fn softmax_rows_sums_to_one() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 1.0, 1.0, 1.0], [2, 3].into()).unwrap();
        let p = x.softmax_rows().unwrap();
        for r in 0..2 {
            let row = p.row(r).unwrap();
            let sum: f32 = row.as_slice().iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
        // Uniform logits give uniform probabilities.
        let row1 = p.row(1).unwrap();
        for &v in row1.as_slice() {
            assert!((v - 1.0 / 3.0).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let x = Tensor::from_vec(vec![1000.0, 1001.0], [1, 2].into()).unwrap();
        let p = x.softmax_rows().unwrap();
        assert!(!p.has_non_finite());
        assert!(p.get(&[0, 1]).unwrap() > p.get(&[0, 0]).unwrap());
    }

    #[test]
    fn softmax_requires_rank_2() {
        assert!(Tensor::zeros(&[4]).softmax_rows().is_err());
    }

    #[test]
    fn norms() {
        let x = t(&[3.0, -4.0]);
        assert_eq!(x.norm_l2_squared(), 25.0);
        assert_eq!(x.norm_l2(), 5.0);
        assert_eq!(x.norm_linf(), 4.0);
    }

    #[test]
    fn dot_product() {
        assert_eq!(t(&[1.0, 2.0]).dot(&t(&[3.0, 4.0])).unwrap(), 11.0);
        assert!(t(&[1.0]).dot(&t(&[1.0, 2.0])).is_err());
    }

    proptest! {
        /// a + b - b == a (within float tolerance).
        #[test]
        fn add_sub_inverse(
            a in proptest::collection::vec(-100.0f32..100.0, 8),
            b in proptest::collection::vec(-100.0f32..100.0, 8),
        ) {
            let ta = t(&a);
            let tb = t(&b);
            let back = ta.add(&tb).unwrap().sub(&tb).unwrap();
            for (x, y) in back.as_slice().iter().zip(&a) {
                prop_assert!((x - y).abs() < 1e-3);
            }
        }

        /// Softmax output lies in (0, 1] and rows sum to 1.
        #[test]
        fn softmax_simplex(vals in proptest::collection::vec(-20.0f32..20.0, 10)) {
            let x = Tensor::from_vec(vals, [2, 5].into()).unwrap();
            let p = x.softmax_rows().unwrap();
            for &v in p.as_slice() {
                prop_assert!(v > 0.0 && v <= 1.0);
            }
            for r in 0..2 {
                let sum: f32 = p.row(r).unwrap().as_slice().iter().sum();
                prop_assert!((sum - 1.0).abs() < 1e-5);
            }
        }

        /// sign(x) * |x| == x.
        #[test]
        fn sign_abs_reconstruct(vals in proptest::collection::vec(-50.0f32..50.0, 8)) {
            let x = t(&vals);
            let rebuilt = x.sign().mul(&x.abs()).unwrap();
            for (a, b) in rebuilt.as_slice().iter().zip(x.as_slice()) {
                prop_assert!((a - b).abs() < 1e-4);
            }
        }
    }
}
