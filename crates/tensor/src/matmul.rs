//! Dense matrix multiplication.

use crate::{Result, Shape, Tensor, TensorError};

impl Tensor {
    /// Matrix product of two rank-2 tensors: `[m, k] × [k, n] → [m, n]`.
    ///
    /// Uses a cache-friendly i-k-j loop order with the inner loop over
    /// contiguous rows of the right operand.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] if either operand is not
    /// rank 2, or [`TensorError::ShapeMismatch`] if the inner dimensions
    /// disagree.
    pub fn matmul(&self, other: &Tensor) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "matmul",
                expected: 2,
                actual: self.rank(),
            });
        }
        if other.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "matmul",
                expected: 2,
                actual: other.rank(),
            });
        }
        let (m, k) = (self.dims()[0], self.dims()[1]);
        let (k2, n) = (other.dims()[0], other.dims()[1]);
        if k != k2 {
            return Err(TensorError::ShapeMismatch {
                op: "matmul",
                lhs: self.dims().to_vec(),
                rhs: other.dims().to_vec(),
            });
        }
        let a = self.as_slice();
        let b = other.as_slice();
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            let o_row = &mut out[i * n..(i + 1) * n];
            for (p, &a_ip) in a_row.iter().enumerate() {
                if a_ip == 0.0 {
                    continue;
                }
                let b_row = &b[p * n..(p + 1) * n];
                for (o, &b_pj) in o_row.iter_mut().zip(b_row) {
                    *o += a_ip * b_pj;
                }
            }
        }
        Tensor::from_vec(out, Shape::new(vec![m, n]))
    }

    /// `selfᵀ × other` without materializing the transpose.
    ///
    /// `self` is `[k, m]`, `other` is `[k, n]`, result is `[m, n]`.
    /// This shows up in the backward pass of dense layers
    /// (`∂W = xᵀ · ∂y`).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Tensor::matmul`].
    pub fn matmul_tn(&self, other: &Tensor) -> Result<Tensor> {
        if self.rank() != 2 || other.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "matmul_tn",
                expected: 2,
                actual: if self.rank() != 2 {
                    self.rank()
                } else {
                    other.rank()
                },
            });
        }
        let (k, m) = (self.dims()[0], self.dims()[1]);
        let (k2, n) = (other.dims()[0], other.dims()[1]);
        if k != k2 {
            return Err(TensorError::ShapeMismatch {
                op: "matmul_tn",
                lhs: self.dims().to_vec(),
                rhs: other.dims().to_vec(),
            });
        }
        let a = self.as_slice();
        let b = other.as_slice();
        let mut out = vec![0.0f32; m * n];
        for p in 0..k {
            let a_row = &a[p * m..(p + 1) * m];
            let b_row = &b[p * n..(p + 1) * n];
            for (i, &a_pi) in a_row.iter().enumerate() {
                if a_pi == 0.0 {
                    continue;
                }
                let o_row = &mut out[i * n..(i + 1) * n];
                for (o, &b_pj) in o_row.iter_mut().zip(b_row) {
                    *o += a_pi * b_pj;
                }
            }
        }
        Tensor::from_vec(out, Shape::new(vec![m, n]))
    }

    /// `self × otherᵀ` without materializing the transpose.
    ///
    /// `self` is `[m, k]`, `other` is `[n, k]`, result is `[m, n]`.
    /// This shows up in the backward pass of dense layers
    /// (`∂x = ∂y · Wᵀ` for a `[out, in]` weight laid out as `[n, k]`).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Tensor::matmul`].
    pub fn matmul_nt(&self, other: &Tensor) -> Result<Tensor> {
        if self.rank() != 2 || other.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "matmul_nt",
                expected: 2,
                actual: if self.rank() != 2 {
                    self.rank()
                } else {
                    other.rank()
                },
            });
        }
        let (m, k) = (self.dims()[0], self.dims()[1]);
        let (n, k2) = (other.dims()[0], other.dims()[1]);
        if k != k2 {
            return Err(TensorError::ShapeMismatch {
                op: "matmul_nt",
                lhs: self.dims().to_vec(),
                rhs: other.dims().to_vec(),
            });
        }
        let a = self.as_slice();
        let b = other.as_slice();
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            for j in 0..n {
                let b_row = &b[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for (x, y) in a_row.iter().zip(b_row) {
                    acc += x * y;
                }
                out[i * n + j] = acc;
            }
        }
        Tensor::from_vec(out, Shape::new(vec![m, n]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn mat(rows: usize, cols: usize, v: &[f32]) -> Tensor {
        Tensor::from_vec(v.to_vec(), Shape::new(vec![rows, cols])).unwrap()
    }

    #[test]
    fn small_product() {
        let a = mat(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = mat(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.dims(), &[2, 2]);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn identity_is_neutral() {
        let a = mat(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let i = mat(2, 2, &[1.0, 0.0, 0.0, 1.0]);
        assert_eq!(a.matmul(&i).unwrap(), a);
        assert_eq!(i.matmul(&a).unwrap(), a);
    }

    #[test]
    fn rejects_bad_shapes() {
        let a = mat(2, 3, &[0.0; 6]);
        let b = mat(2, 3, &[0.0; 6]);
        assert!(matches!(
            a.matmul(&b),
            Err(TensorError::ShapeMismatch { .. })
        ));
        assert!(Tensor::zeros(&[2]).matmul(&a).is_err());
    }

    #[test]
    fn matmul_tn_equals_explicit_transpose() {
        let a = mat(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = mat(3, 4, &(0..12).map(|i| i as f32).collect::<Vec<_>>());
        let fused = a.matmul_tn(&b).unwrap();
        let explicit = a.transpose().unwrap().matmul(&b).unwrap();
        assert_eq!(fused, explicit);
    }

    #[test]
    fn matmul_nt_equals_explicit_transpose() {
        let a = mat(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = mat(4, 3, &(0..12).map(|i| i as f32).collect::<Vec<_>>());
        let fused = a.matmul_nt(&b).unwrap();
        let explicit = a.matmul(&b.transpose().unwrap()).unwrap();
        assert_eq!(fused, explicit);
    }

    proptest! {
        /// (A·B)·C == A·(B·C) within tolerance.
        #[test]
        fn associativity(
            a in proptest::collection::vec(-2.0f32..2.0, 6),
            b in proptest::collection::vec(-2.0f32..2.0, 6),
            c in proptest::collection::vec(-2.0f32..2.0, 6),
        ) {
            let ta = mat(2, 3, &a);
            let tb = mat(3, 2, &b);
            let tc = mat(2, 3, &c);
            let left = ta.matmul(&tb).unwrap().matmul(&tc).unwrap();
            let right = ta.matmul(&tb.matmul(&tc).unwrap()).unwrap();
            for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
                prop_assert!((x - y).abs() < 1e-3);
            }
        }

        /// (A·B)ᵀ == Bᵀ·Aᵀ.
        #[test]
        fn transpose_of_product(
            a in proptest::collection::vec(-2.0f32..2.0, 6),
            b in proptest::collection::vec(-2.0f32..2.0, 6),
        ) {
            let ta = mat(2, 3, &a);
            let tb = mat(3, 2, &b);
            let lhs = ta.matmul(&tb).unwrap().transpose().unwrap();
            let rhs = tb.transpose().unwrap().matmul(&ta.transpose().unwrap()).unwrap();
            for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
                prop_assert!((x - y).abs() < 1e-4);
            }
        }
    }
}
