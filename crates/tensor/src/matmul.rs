//! Dense matrix multiplication: cache-blocked kernels with row-range
//! parallelism.
//!
//! All three entry points (`matmul`, `matmul_tn`, `matmul_nt`) share a
//! small set of serial block kernels and partition *rows of the output*
//! across the [`crate::par`] pool. Each output element is owned by
//! exactly one chunk and its `k`-accumulation runs in increasing-`p`
//! order in a single `f32` accumulator — the same order as the
//! reference three-loop kernel — so results are **bit-exact regardless
//! of thread count**. That invariant is what keeps checkpoints
//! byte-reproducible and the seed-sensitive statistical tests stable;
//! see the proptests in `tests/par_invariance.rs`.
//!
//! `B` is repacked once per call into `KC × NC` panels so the innermost
//! loop streams over contiguous memory even for wide right-hand sides.
//! Packing copies values without arithmetic, so it cannot perturb the
//! accumulation order.

use std::ops::Range;
use std::sync::Arc;

use crate::{par, Result, Shape, Tensor, TensorError};

/// Row-block height: how many `A` rows are kept hot per panel pass.
const MC: usize = 64;
/// Depth-block: `k` is consumed in runs of `KC` (in increasing order,
/// preserving the per-element accumulation sequence).
const KC: usize = 256;
/// Column panel width of the packed `B`.
const NC: usize = 512;

/// Packs `b` (`[k, n]`, row-major) into `KC × NC` panels laid out so
/// panel `(jc, pc)` starts at `jc * k + pc * ncb` and stores its `kcb`
/// rows contiguously (`ncb` floats each). Pure data movement.
pub(crate) fn pack_b(b: &[f32], k: usize, n: usize) -> Vec<f32> {
    let mut packed = vec![0.0f32; k * n];
    for jc in (0..n).step_by(NC) {
        let ncb = NC.min(n - jc);
        for pc in (0..k).step_by(KC) {
            let kcb = KC.min(k - pc);
            let dst_base = jc * k + pc * ncb;
            for pp in 0..kcb {
                let src = &b[(pc + pp) * n + jc..][..ncb];
                let dst = &mut packed[dst_base + pp * ncb..][..ncb];
                dst.copy_from_slice(src);
            }
        }
    }
    packed
}

/// Serial blocked kernel: multiplies `rows` rows of `A` (`a_block`,
/// `[rows, k]` row-major) by a [`pack_b`]-packed `B` (`[k, n]`),
/// returning the `[rows, n]` product.
///
/// Per output element the `k` terms are added in increasing-`p` order
/// into a single accumulator chain starting at `0.0` — identical to
/// the naive i-k-j loop, so blocking changes nothing numerically.
pub(crate) fn gemm_rows(
    a_block: &[f32],
    rows: usize,
    k: usize,
    packed_b: &[f32],
    n: usize,
) -> Vec<f32> {
    let mut out = vec![0.0f32; rows * n];
    for jc in (0..n).step_by(NC) {
        let ncb = NC.min(n - jc);
        for pc in (0..k).step_by(KC) {
            let kcb = KC.min(k - pc);
            let panel = &packed_b[jc * k + pc * ncb..][..kcb * ncb];
            for ic in (0..rows).step_by(MC) {
                let mcb = MC.min(rows - ic);
                for i in ic..ic + mcb {
                    let a_row = &a_block[i * k + pc..][..kcb];
                    let o_row = &mut out[i * n + jc..][..ncb];
                    for (pp, &a_ip) in a_row.iter().enumerate() {
                        let b_row = &panel[pp * ncb..][..ncb];
                        for (o, &b_pj) in o_row.iter_mut().zip(b_row) {
                            *o += a_ip * b_pj;
                        }
                    }
                }
            }
        }
    }
    out
}

/// Dot-product kernel for `A × Bᵀ`: `a_block` is `[rows, k]`, `b` is
/// `[n, k]` (both row-major, so every dot streams two contiguous rows).
/// When `accumulate` is false the result is stored; when true it is
/// added onto `out` (used by `conv2d_backward`'s ∂weight accumulation
/// across samples, matching the serial `grad += gw` association).
pub(crate) fn gemm_nt_block(
    a_block: &[f32],
    rows: usize,
    b: &[f32],
    k: usize,
    n: usize,
    out: &mut [f32],
    accumulate: bool,
) {
    for i in 0..rows {
        let a_row = &a_block[i * k..(i + 1) * k];
        let o_row = &mut out[i * n..(i + 1) * n];
        for (j, o) in o_row.iter_mut().enumerate() {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (x, y) in a_row.iter().zip(b_row) {
                acc += x * y;
            }
            if accumulate {
                *o += acc;
            } else {
                *o = acc;
            }
        }
    }
}

/// Transposes `src` (`[rows, cols]` row-major) into `[cols, rows]`.
pub(crate) fn transpose_into(src: &[f32], rows: usize, cols: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; rows * cols];
    for (r, row) in src.chunks_exact(cols).enumerate() {
        for (c, &v) in row.iter().enumerate() {
            if let Some(slot) = out.get_mut(c * rows + r) {
                *slot = v;
            }
        }
    }
    out
}

/// Shared driver: `a` is `[m, k]` row-major, `b` is `[k, n]`; partitions
/// output rows across the pool when the work justifies it.
fn gemm_driver(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let packed = pack_b(b, k, n);
    let work = m.saturating_mul(k).saturating_mul(n);
    if !par::should_parallelize(m, work) {
        return gemm_rows(a, m, k, &packed, n);
    }
    // The pool requires 'static jobs (no unsafe lifetime erasure in
    // this workspace), so share the operands via Arc: one O(m·k) copy
    // against O(m·k·n) compute.
    let a: Arc<Vec<f32>> = Arc::new(a.to_vec());
    let packed = Arc::new(packed);
    let blocks = par::parallel_rows(m, move |rows: Range<usize>| {
        let len = rows.end - rows.start;
        gemm_rows(&a[rows.start * k..rows.end * k], len, k, &packed, n)
    });
    let mut out = Vec::with_capacity(m * n);
    for block in blocks {
        out.extend_from_slice(&block);
    }
    out
}

fn check_rank2(op: &'static str, lhs: &Tensor, rhs: &Tensor) -> Result<()> {
    for t in [lhs, rhs] {
        if t.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op,
                expected: 2,
                actual: t.rank(),
            });
        }
    }
    Ok(())
}

impl Tensor {
    /// Matrix product of two rank-2 tensors: `[m, k] × [k, n] → [m, n]`.
    ///
    /// Cache-blocked (`MC × KC × NC`) over a packed `B`, partitioned by
    /// output rows across the [`crate::par`] pool, and bit-exact across
    /// thread counts (see the module docs). Non-finite values propagate:
    /// a `NaN`/`Inf` anywhere in either operand reaches every output it
    /// mathematically touches (there is deliberately no zero-skip —
    /// `0 × NaN` must stay `NaN`).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] if either operand is not
    /// rank 2, or [`TensorError::ShapeMismatch`] if the inner dimensions
    /// disagree.
    pub fn matmul(&self, other: &Tensor) -> Result<Tensor> {
        check_rank2("matmul", self, other)?;
        let (m, k) = (self.dims()[0], self.dims()[1]);
        let (k2, n) = (other.dims()[0], other.dims()[1]);
        if k != k2 {
            return Err(TensorError::ShapeMismatch {
                op: "matmul",
                lhs: self.dims().to_vec(),
                rhs: other.dims().to_vec(),
            });
        }
        let out = gemm_driver(self.as_slice(), other.as_slice(), m, k, n);
        Tensor::from_vec(out, Shape::new(vec![m, n]))
    }

    /// `selfᵀ × other` without materializing the transpose for the
    /// caller: `self` is `[k, m]`, `other` is `[k, n]`, result `[m, n]`.
    /// This shows up in the backward pass of dense layers
    /// (`∂W = xᵀ · ∂y`).
    ///
    /// Internally `self` *is* transposed into a scratch buffer (an
    /// O(k·m) copy) so the same blocked row-parallel kernel — and the
    /// same increasing-`p` accumulation order — serves all layouts.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Tensor::matmul`].
    pub fn matmul_tn(&self, other: &Tensor) -> Result<Tensor> {
        check_rank2("matmul_tn", self, other)?;
        let (k, m) = (self.dims()[0], self.dims()[1]);
        let (k2, n) = (other.dims()[0], other.dims()[1]);
        if k != k2 {
            return Err(TensorError::ShapeMismatch {
                op: "matmul_tn",
                lhs: self.dims().to_vec(),
                rhs: other.dims().to_vec(),
            });
        }
        let at = transpose_into(self.as_slice(), k, m); // [m, k]
        let out = gemm_driver(&at, other.as_slice(), m, k, n);
        Tensor::from_vec(out, Shape::new(vec![m, n]))
    }

    /// `self × otherᵀ` without materializing the transpose.
    ///
    /// `self` is `[m, k]`, `other` is `[n, k]`, result is `[m, n]`.
    /// This shows up in the backward pass of dense layers
    /// (`∂x = ∂y · Wᵀ` for a `[out, in]` weight laid out as `[n, k]`).
    /// Both operands are already row-major along `k`, so this stays a
    /// streaming dot-product kernel, row-partitioned across the pool.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Tensor::matmul`].
    pub fn matmul_nt(&self, other: &Tensor) -> Result<Tensor> {
        check_rank2("matmul_nt", self, other)?;
        let (m, k) = (self.dims()[0], self.dims()[1]);
        let (n, k2) = (other.dims()[0], other.dims()[1]);
        if k != k2 {
            return Err(TensorError::ShapeMismatch {
                op: "matmul_nt",
                lhs: self.dims().to_vec(),
                rhs: other.dims().to_vec(),
            });
        }
        let work = m.saturating_mul(k).saturating_mul(n);
        if !par::should_parallelize(m, work) {
            let mut out = vec![0.0f32; m * n];
            gemm_nt_block(self.as_slice(), m, other.as_slice(), k, n, &mut out, false);
            return Tensor::from_vec(out, Shape::new(vec![m, n]));
        }
        let a: Arc<Vec<f32>> = Arc::new(self.as_slice().to_vec());
        let b: Arc<Vec<f32>> = Arc::new(other.as_slice().to_vec());
        let blocks = par::parallel_rows(m, move |rows: Range<usize>| {
            let len = rows.end - rows.start;
            let mut block = vec![0.0f32; len * n];
            gemm_nt_block(
                &a[rows.start * k..rows.end * k],
                len,
                &b,
                k,
                n,
                &mut block,
                false,
            );
            block
        });
        let mut out = Vec::with_capacity(m * n);
        for block in blocks {
            out.extend_from_slice(&block);
        }
        Tensor::from_vec(out, Shape::new(vec![m, n]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn mat(rows: usize, cols: usize, v: &[f32]) -> Tensor {
        Tensor::from_vec(v.to_vec(), Shape::new(vec![rows, cols])).unwrap()
    }

    #[test]
    fn small_product() {
        let a = mat(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = mat(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.dims(), &[2, 2]);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn identity_is_neutral() {
        let a = mat(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let i = mat(2, 2, &[1.0, 0.0, 0.0, 1.0]);
        assert_eq!(a.matmul(&i).unwrap(), a);
        assert_eq!(i.matmul(&a).unwrap(), a);
    }

    #[test]
    fn rejects_bad_shapes() {
        let a = mat(2, 3, &[0.0; 6]);
        let b = mat(2, 3, &[0.0; 6]);
        assert!(matches!(
            a.matmul(&b),
            Err(TensorError::ShapeMismatch { .. })
        ));
        assert!(Tensor::zeros(&[2]).matmul(&a).is_err());
    }

    #[test]
    fn blocked_kernel_matches_naive_beyond_block_bounds() {
        // Dimensions straddling MC/KC/NC boundaries so several panels
        // and partial edge blocks are exercised.
        let (m, k, n) = (MC + 3, KC + 5, NC + 7);
        let a: Vec<f32> = (0..m * k)
            .map(|i| ((i * 37) % 101) as f32 * 0.25 - 12.0)
            .collect();
        let b: Vec<f32> = (0..k * n)
            .map(|i| ((i * 53) % 89) as f32 * 0.125 - 5.0)
            .collect();
        let fast = mat(m, k, &a).matmul(&mat(k, n, &b)).unwrap();
        // Naive reference in the same per-element accumulation order.
        for &(i, j) in &[(0usize, 0usize), (m - 1, n - 1), (MC, NC), (7, KC)] {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += a[i * k + p] * b[p * n + j];
            }
            assert_eq!(fast.as_slice()[i * n + j].to_bits(), acc.to_bits());
        }
    }

    #[test]
    fn matmul_tn_equals_explicit_transpose() {
        let a = mat(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = mat(3, 4, &(0..12).map(|i| i as f32).collect::<Vec<_>>());
        let fused = a.matmul_tn(&b).unwrap();
        let explicit = a.transpose().unwrap().matmul(&b).unwrap();
        assert_eq!(fused, explicit);
    }

    #[test]
    fn matmul_nt_equals_explicit_transpose() {
        let a = mat(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = mat(4, 3, &(0..12).map(|i| i as f32).collect::<Vec<_>>());
        let fused = a.matmul_nt(&b).unwrap();
        let explicit = a.matmul(&b.transpose().unwrap()).unwrap();
        assert_eq!(fused, explicit);
    }

    #[test]
    fn nan_in_left_operand_reaches_output() {
        // Regression for the removed `a_ip == 0.0` sparse-skip: a NaN
        // multiplied by anything — and anything multiplied by 0 × NaN —
        // must stay NaN instead of being laundered into a clean logit.
        let mut av = vec![1.0f32; 6];
        av[4] = f32::NAN; // a[1][1]
        let a = mat(2, 3, &av);
        let b = mat(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let c = a.matmul(&b).unwrap();
        // Row 0 untouched, row 1 fully poisoned.
        assert!(c.as_slice()[..2].iter().all(|v| v.is_finite()));
        assert!(c.as_slice()[2..].iter().all(|v| v.is_nan()));
    }

    #[test]
    fn nan_in_right_operand_reaches_output_even_against_zero() {
        // 0.0 × NaN must be NaN: the old kernel skipped zero entries of
        // A and produced a finite 0.0 here.
        let a = mat(1, 2, &[0.0, 0.0]);
        let mut bv = vec![1.0f32; 4];
        bv[2] = f32::NAN; // b[1][0]
        let b = mat(2, 2, &bv);
        let c = a.matmul(&b).unwrap();
        assert!(
            c.as_slice()[0].is_nan(),
            "0·NaN was laundered to {}",
            c.as_slice()[0]
        );
        assert!(c.as_slice()[1].is_finite());
    }

    #[test]
    fn nan_propagates_through_tn_and_nt() {
        let mut av = vec![0.0f32; 6];
        av[0] = f32::NAN;
        let a_tn = mat(3, 2, &av); // NaN at [0][0] → poisons output row 0
        let b = mat(3, 2, &[1.0; 6]);
        let c = a_tn.matmul_tn(&b).unwrap();
        assert!(c.as_slice()[..2].iter().all(|v| v.is_nan()));
        assert!(c.as_slice()[2..].iter().all(|v| v.is_finite()));

        let a = mat(2, 3, &[0.0; 6]);
        let mut bv = vec![1.0f32; 6];
        bv[0] = f32::NAN; // b row 0 → output column 0
        let b_nt = mat(2, 3, &bv);
        let c = a.matmul_nt(&b_nt).unwrap();
        assert!(c.as_slice()[0].is_nan());
        assert!(c.as_slice()[2].is_nan());
        assert!(c.as_slice()[1].is_finite());
        assert!(c.as_slice()[3].is_finite());
    }

    #[test]
    fn infinity_propagates() {
        let a = mat(1, 2, &[0.0, 1.0]);
        let b = mat(2, 1, &[f32::INFINITY, 1.0]);
        // 0·∞ = NaN, NaN + 1 = NaN.
        assert!(a.matmul(&b).unwrap().as_slice()[0].is_nan());
    }

    proptest! {
        /// (A·B)·C == A·(B·C) within tolerance.
        #[test]
        fn associativity(
            a in proptest::collection::vec(-2.0f32..2.0, 6),
            b in proptest::collection::vec(-2.0f32..2.0, 6),
            c in proptest::collection::vec(-2.0f32..2.0, 6),
        ) {
            let ta = mat(2, 3, &a);
            let tb = mat(3, 2, &b);
            let tc = mat(2, 3, &c);
            let left = ta.matmul(&tb).unwrap().matmul(&tc).unwrap();
            let right = ta.matmul(&tb.matmul(&tc).unwrap()).unwrap();
            for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
                prop_assert!((x - y).abs() < 1e-3);
            }
        }

        /// (A·B)ᵀ == Bᵀ·Aᵀ.
        #[test]
        fn transpose_of_product(
            a in proptest::collection::vec(-2.0f32..2.0, 6),
            b in proptest::collection::vec(-2.0f32..2.0, 6),
        ) {
            let ta = mat(2, 3, &a);
            let tb = mat(3, 2, &b);
            let lhs = ta.matmul(&tb).unwrap().transpose().unwrap();
            let rhs = tb.transpose().unwrap().matmul(&ta.transpose().unwrap()).unwrap();
            for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
                prop_assert!((x - y).abs() < 1e-4);
            }
        }
    }
}
