//! Dense matrix multiplication: cache-blocked kernels with row-range
//! parallelism, planned through `crate::plan`.
//!
//! All three entry points (`matmul`, `matmul_tn`, `matmul_nt`) ask the
//! plan selector for one cached [`Blueprint`] per shape key — carrying
//! the cap-checked scratch/output sizes, the blocking parameters, and
//! the hoisted parallel/serial decision — then share a small set of
//! serial block kernels and partition *rows of the output* across the
//! [`crate::par`] pool. Each output element is owned by exactly one
//! chunk and its `k`-accumulation runs in increasing-`p` order in a
//! single `f32` accumulator — the same order as the reference
//! three-loop kernel — so results are **bit-exact regardless of thread
//! count or blocking choice**. That invariant is what keeps checkpoints
//! byte-reproducible and the seed-sensitive statistical tests stable;
//! see the proptests in `tests/par_invariance.rs`.
//!
//! `B` is repacked once per call into `kc × nc` panels so the innermost
//! loop streams over contiguous memory even for wide right-hand sides.
//! Packing copies values without arithmetic, so it cannot perturb the
//! accumulation order. On the serial path the packing panel comes from
//! the thread-local scratch arena, so steady-state serving re-uses one
//! high-water buffer instead of allocating per call.

use std::ops::Range;
use std::sync::Arc;

use crate::plan::alloc;
use crate::plan::blueprint::{Blocking, Blueprint, OpKind};
use crate::plan::selector;
use crate::{par, Result, Shape, Tensor, TensorError};

/// Packs `b` (`[k, n]`, row-major) into `kc × nc` panels laid out so
/// panel `(jc, pc)` starts at `jc * k + pc * ncb` and stores its `kcb`
/// rows contiguously (`ncb` floats each). Pure data movement. `packed`
/// must hold exactly `k * n` elements; every slot is overwritten.
pub(crate) fn pack_b_into(b: &[f32], k: usize, n: usize, bl: Blocking, packed: &mut [f32]) {
    for jc in (0..n).step_by(bl.nc) {
        let ncb = bl.nc.min(n - jc);
        for pc in (0..k).step_by(bl.kc) {
            let kcb = bl.kc.min(k - pc);
            let dst_base = jc * k + pc * ncb;
            for pp in 0..kcb {
                let src = &b[(pc + pp) * n + jc..][..ncb];
                let dst = &mut packed[dst_base + pp * ncb..][..ncb];
                dst.copy_from_slice(src);
            }
        }
    }
}

/// Serial blocked kernel: multiplies `rows` rows of `A` (`a_block`,
/// `[rows, k]` row-major) by a [`pack_b_into`]-packed `B` (`[k, n]`,
/// packed with the same `bl`), accumulating into `out` (`[rows, n]`,
/// which must arrive zeroed).
///
/// Per output element the `k` terms are added in increasing-`p` order
/// into a single accumulator chain starting at `0.0` — identical to
/// the naive i-k-j loop, so any `(mc, kc, nc)` blocking changes nothing
/// numerically.
pub(crate) fn gemm_rows_into(
    a_block: &[f32],
    rows: usize,
    k: usize,
    packed_b: &[f32],
    n: usize,
    bl: Blocking,
    out: &mut [f32],
) {
    for jc in (0..n).step_by(bl.nc) {
        let ncb = bl.nc.min(n - jc);
        for pc in (0..k).step_by(bl.kc) {
            let kcb = bl.kc.min(k - pc);
            let panel = &packed_b[jc * k + pc * ncb..][..kcb * ncb];
            for ic in (0..rows).step_by(bl.mc) {
                let mcb = bl.mc.min(rows - ic);
                for i in ic..ic + mcb {
                    let a_row = &a_block[i * k + pc..][..kcb];
                    let o_row = &mut out[i * n + jc..][..ncb];
                    for (pp, &a_ip) in a_row.iter().enumerate() {
                        let b_row = &panel[pp * ncb..][..ncb];
                        for (o, &b_pj) in o_row.iter_mut().zip(b_row) {
                            *o += a_ip * b_pj;
                        }
                    }
                }
            }
        }
    }
}

/// Dot-product kernel for `A × Bᵀ`: `a_block` is `[rows, k]`, `b` is
/// `[n, k]` (both row-major, so every dot streams two contiguous rows).
/// When `accumulate` is false the result is stored; when true it is
/// added onto `out` (used by `conv2d_backward`'s ∂weight accumulation
/// across samples, matching the serial `grad += gw` association).
pub(crate) fn gemm_nt_block(
    a_block: &[f32],
    rows: usize,
    b: &[f32],
    k: usize,
    n: usize,
    out: &mut [f32],
    accumulate: bool,
) {
    for i in 0..rows {
        let a_row = &a_block[i * k..(i + 1) * k];
        let o_row = &mut out[i * n..(i + 1) * n];
        for (j, o) in o_row.iter_mut().enumerate() {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (x, y) in a_row.iter().zip(b_row) {
                acc += x * y;
            }
            if accumulate {
                *o += acc;
            } else {
                *o = acc;
            }
        }
    }
}

/// Transposes `src` (`[rows, cols]` row-major) into `dst`
/// (`[cols, rows]`, at least `rows * cols` elements).
pub(crate) fn transpose_into(src: &[f32], rows: usize, cols: usize, dst: &mut [f32]) {
    for (r, row) in src.chunks_exact(cols).enumerate() {
        for (c, &v) in row.iter().enumerate() {
            if let Some(slot) = dst.get_mut(c * rows + r) {
                *slot = v;
            }
        }
    }
}

/// Serial driver: packs `B` into an arena panel and runs the blocked
/// kernel for all `bp.rows` rows. Zero heap allocation once the arena
/// is warm (the output buffer is the caller's, freshly allocated by
/// design — it outlives the call as tensor data).
fn gemm_serial(bp: &Blueprint, a: &[f32], b: &[f32], k: usize, n: usize) -> Vec<f32> {
    let mut packed = alloc::scratch_f32(bp.scratch);
    pack_b_into(b, k, n, bp.blocking, &mut packed);
    let mut out = alloc::fresh_vec(bp.out_len);
    gemm_rows_into(a, bp.rows, k, &packed, n, bp.blocking, &mut out);
    out
}

/// Parallel driver: the pool requires `'static` jobs (no unsafe
/// lifetime erasure in this workspace), so `A` and the packed `B` are
/// shared via `Arc` — one O(m·k + k·n) copy against O(m·k·n) compute.
/// Those cross-thread buffers deliberately bypass the arena: a buffer
/// dropped on another thread would migrate into that thread's pool.
fn gemm_parallel(bp: &Blueprint, a: Arc<Vec<f32>>, b: &[f32], k: usize, n: usize) -> Vec<f32> {
    let mut packed_buf = alloc::fresh_vec(bp.scratch);
    pack_b_into(b, k, n, bp.blocking, &mut packed_buf);
    let packed = Arc::new(packed_buf);
    let blocking = bp.blocking;
    let blocks = par::parallel_rows(bp.rows, move |rows: Range<usize>| {
        let len = rows.end - rows.start;
        let mut block = alloc::fresh_vec(len * n);
        gemm_rows_into(
            &a[rows.start * k..rows.end * k],
            len,
            k,
            &packed,
            n,
            blocking,
            &mut block,
        );
        block
    });
    let mut out = alloc::fresh_with(bp.out_len);
    for block in blocks {
        out.extend_from_slice(&block);
    }
    out
}

fn check_rank2(op: &'static str, lhs: &Tensor, rhs: &Tensor) -> Result<()> {
    for t in [lhs, rhs] {
        if t.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op,
                expected: 2,
                actual: t.rank(),
            });
        }
    }
    Ok(())
}

impl Tensor {
    /// Matrix product of two rank-2 tensors: `[m, k] × [k, n] → [m, n]`.
    ///
    /// Cache-blocked over a packed `B` with blocking chosen by the plan
    /// selector per shape class, partitioned by output rows across the
    /// [`crate::par`] pool, and bit-exact across thread counts and
    /// blocking choices (see the module docs). Non-finite values
    /// propagate: a `NaN`/`Inf` anywhere in either operand reaches
    /// every output it mathematically touches (there is deliberately no
    /// zero-skip — `0 × NaN` must stay `NaN`).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] if either operand is not
    /// rank 2, [`TensorError::ShapeMismatch`] if the inner dimensions
    /// disagree, or [`TensorError::Overflow`] if the output size would
    /// overflow `usize`.
    pub fn matmul(&self, other: &Tensor) -> Result<Tensor> {
        check_rank2("matmul", self, other)?;
        let (m, k) = (self.dims()[0], self.dims()[1]);
        let (k2, n) = (other.dims()[0], other.dims()[1]);
        if k != k2 {
            return Err(TensorError::shape_mismatch(
                "matmul",
                self.dims(),
                other.dims(),
            ));
        }
        let bp = selector::plan_gemm(OpKind::MatMul, m, k, n)?;
        let out = if bp.parallel {
            let a = Arc::new(alloc::fresh_from(self.as_slice()));
            gemm_parallel(&bp, a, other.as_slice(), k, n)
        } else {
            gemm_serial(&bp, self.as_slice(), other.as_slice(), k, n)
        };
        Tensor::from_vec(out, Shape::of(&[m, n]))
    }

    /// `selfᵀ × other` without materializing the transpose for the
    /// caller: `self` is `[k, m]`, `other` is `[k, n]`, result `[m, n]`.
    /// This shows up in the backward pass of dense layers
    /// (`∂W = xᵀ · ∂y`).
    ///
    /// Internally `self` *is* transposed into a scratch buffer (an
    /// O(k·m) copy, arena-backed on the serial path) so the same
    /// blocked row-parallel kernel — and the same increasing-`p`
    /// accumulation order — serves all layouts.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Tensor::matmul`].
    pub fn matmul_tn(&self, other: &Tensor) -> Result<Tensor> {
        check_rank2("matmul_tn", self, other)?;
        let (k, m) = (self.dims()[0], self.dims()[1]);
        let (k2, n) = (other.dims()[0], other.dims()[1]);
        if k != k2 {
            return Err(TensorError::shape_mismatch(
                "matmul_tn",
                self.dims(),
                other.dims(),
            ));
        }
        let bp = selector::plan_gemm(OpKind::MatMulTn, m, k, n)?;
        let out = if bp.parallel {
            let mut at = alloc::fresh_vec(bp.scratch2);
            transpose_into(self.as_slice(), k, m, &mut at);
            gemm_parallel(&bp, Arc::new(at), other.as_slice(), k, n)
        } else {
            let mut at = alloc::scratch_f32(bp.scratch2);
            transpose_into(self.as_slice(), k, m, &mut at);
            gemm_serial(&bp, &at, other.as_slice(), k, n)
        };
        Tensor::from_vec(out, Shape::of(&[m, n]))
    }

    /// `self × otherᵀ` without materializing the transpose.
    ///
    /// `self` is `[m, k]`, `other` is `[n, k]`, result is `[m, n]`.
    /// This shows up in the backward pass of dense layers
    /// (`∂x = ∂y · Wᵀ` for a `[out, in]` weight laid out as `[n, k]`).
    /// Both operands are already row-major along `k`, so this stays a
    /// streaming dot-product kernel, row-partitioned across the pool.
    /// The dispatch decision comes from the same cached blueprint as
    /// the packed variants, so parallel/serial and blocking choices can
    /// never disagree.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Tensor::matmul`].
    pub fn matmul_nt(&self, other: &Tensor) -> Result<Tensor> {
        check_rank2("matmul_nt", self, other)?;
        let (m, k) = (self.dims()[0], self.dims()[1]);
        let (n, k2) = (other.dims()[0], other.dims()[1]);
        if k != k2 {
            return Err(TensorError::shape_mismatch(
                "matmul_nt",
                self.dims(),
                other.dims(),
            ));
        }
        let bp = selector::plan_gemm(OpKind::MatMulNt, m, k, n)?;
        if !bp.parallel {
            let mut out = alloc::fresh_vec(bp.out_len);
            gemm_nt_block(self.as_slice(), m, other.as_slice(), k, n, &mut out, false);
            return Tensor::from_vec(out, Shape::of(&[m, n]));
        }
        let a = Arc::new(alloc::fresh_from(self.as_slice()));
        let b = Arc::new(alloc::fresh_from(other.as_slice()));
        let blocks = par::parallel_rows(m, move |rows: Range<usize>| {
            let len = rows.end - rows.start;
            let mut block = alloc::fresh_vec(len * n);
            gemm_nt_block(
                &a[rows.start * k..rows.end * k],
                len,
                &b,
                k,
                n,
                &mut block,
                false,
            );
            block
        });
        let mut out = alloc::fresh_with(bp.out_len);
        for block in blocks {
            out.extend_from_slice(&block);
        }
        Tensor::from_vec(out, Shape::of(&[m, n]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::blueprint::DEFAULT_BLOCKING;
    use proptest::prelude::*;

    fn mat(rows: usize, cols: usize, v: &[f32]) -> Tensor {
        Tensor::from_vec(v.to_vec(), Shape::new(vec![rows, cols])).unwrap()
    }

    #[test]
    fn small_product() {
        let a = mat(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = mat(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.dims(), &[2, 2]);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn identity_is_neutral() {
        let a = mat(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let i = mat(2, 2, &[1.0, 0.0, 0.0, 1.0]);
        assert_eq!(a.matmul(&i).unwrap(), a);
        assert_eq!(i.matmul(&a).unwrap(), a);
    }

    #[test]
    fn rejects_bad_shapes() {
        let a = mat(2, 3, &[0.0; 6]);
        let b = mat(2, 3, &[0.0; 6]);
        assert!(matches!(
            a.matmul(&b),
            Err(TensorError::ShapeMismatch { .. })
        ));
        assert!(Tensor::zeros(&[2]).matmul(&a).is_err());
    }

    #[test]
    fn blocked_kernel_matches_naive_beyond_block_bounds() {
        // Dimensions straddling the default mc/kc/nc boundaries so
        // several panels and partial edge blocks are exercised.
        let (mc, kc, nc) = (
            DEFAULT_BLOCKING.mc,
            DEFAULT_BLOCKING.kc,
            DEFAULT_BLOCKING.nc,
        );
        let (m, k, n) = (mc + 3, kc + 5, nc + 7);
        let a: Vec<f32> = (0..m * k)
            .map(|i| ((i * 37) % 101) as f32 * 0.25 - 12.0)
            .collect();
        let b: Vec<f32> = (0..k * n)
            .map(|i| ((i * 53) % 89) as f32 * 0.125 - 5.0)
            .collect();
        let fast = mat(m, k, &a).matmul(&mat(k, n, &b)).unwrap();
        // Naive reference in the same per-element accumulation order.
        for &(i, j) in &[(0usize, 0usize), (m - 1, n - 1), (mc, nc), (7, kc)] {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += a[i * k + p] * b[p * n + j];
            }
            assert_eq!(fast.as_slice()[i * n + j].to_bits(), acc.to_bits());
        }
    }

    #[test]
    fn every_blocking_candidate_is_bit_identical() {
        // The selector's bit-safety argument, checked directly: run the
        // raw kernel under several (mc, kc, nc) choices and demand
        // byte-identical output.
        let (m, k, n) = (37, 65, 41);
        let a: Vec<f32> = (0..m * k)
            .map(|i| ((i * 31) % 97) as f32 * 0.5 - 20.0)
            .collect();
        let b: Vec<f32> = (0..k * n)
            .map(|i| ((i * 17) % 83) as f32 * 0.25 - 9.0)
            .collect();
        let run = |bl: Blocking| {
            let mut packed = vec![0.0f32; k * n];
            pack_b_into(&b, k, n, bl, &mut packed);
            let mut out = vec![0.0f32; m * n];
            gemm_rows_into(&a, m, k, &packed, n, bl, &mut out);
            out.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        };
        let reference = run(DEFAULT_BLOCKING);
        for bl in [
            Blocking {
                mc: 1,
                kc: 1,
                nc: 1,
            },
            Blocking {
                mc: 8,
                kc: 16,
                nc: 8,
            },
            Blocking {
                mc: 128,
                kc: 512,
                nc: 1024,
            },
            Blocking {
                mc: 3,
                kc: 7,
                nc: 11,
            },
        ] {
            assert_eq!(run(bl), reference, "blocking {bl:?} changed bits");
        }
    }

    #[test]
    fn matmul_tn_equals_explicit_transpose() {
        let a = mat(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = mat(3, 4, &(0..12).map(|i| i as f32).collect::<Vec<_>>());
        let fused = a.matmul_tn(&b).unwrap();
        let explicit = a.transpose().unwrap().matmul(&b).unwrap();
        assert_eq!(fused, explicit);
    }

    #[test]
    fn matmul_nt_equals_explicit_transpose() {
        let a = mat(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = mat(4, 3, &(0..12).map(|i| i as f32).collect::<Vec<_>>());
        let fused = a.matmul_nt(&b).unwrap();
        let explicit = a.matmul(&b.transpose().unwrap()).unwrap();
        assert_eq!(fused, explicit);
    }

    #[test]
    fn nan_in_left_operand_reaches_output() {
        // Regression for the removed `a_ip == 0.0` sparse-skip: a NaN
        // multiplied by anything — and anything multiplied by 0 × NaN —
        // must stay NaN instead of being laundered into a clean logit.
        let mut av = vec![1.0f32; 6];
        av[4] = f32::NAN; // a[1][1]
        let a = mat(2, 3, &av);
        let b = mat(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let c = a.matmul(&b).unwrap();
        // Row 0 untouched, row 1 fully poisoned.
        assert!(c.as_slice()[..2].iter().all(|v| v.is_finite()));
        assert!(c.as_slice()[2..].iter().all(|v| v.is_nan()));
    }

    #[test]
    fn nan_in_right_operand_reaches_output_even_against_zero() {
        // 0.0 × NaN must be NaN: the old kernel skipped zero entries of
        // A and produced a finite 0.0 here.
        let a = mat(1, 2, &[0.0, 0.0]);
        let mut bv = vec![1.0f32; 4];
        bv[2] = f32::NAN; // b[1][0]
        let b = mat(2, 2, &bv);
        let c = a.matmul(&b).unwrap();
        assert!(
            c.as_slice()[0].is_nan(),
            "0·NaN was laundered to {}",
            c.as_slice()[0]
        );
        assert!(c.as_slice()[1].is_finite());
    }

    #[test]
    fn nan_propagates_through_tn_and_nt() {
        let mut av = vec![0.0f32; 6];
        av[0] = f32::NAN;
        let a_tn = mat(3, 2, &av); // NaN at [0][0] → poisons output row 0
        let b = mat(3, 2, &[1.0; 6]);
        let c = a_tn.matmul_tn(&b).unwrap();
        assert!(c.as_slice()[..2].iter().all(|v| v.is_nan()));
        assert!(c.as_slice()[2..].iter().all(|v| v.is_finite()));

        let a = mat(2, 3, &[0.0; 6]);
        let mut bv = vec![1.0f32; 6];
        bv[0] = f32::NAN; // b row 0 → output column 0
        let b_nt = mat(2, 3, &bv);
        let c = a.matmul_nt(&b_nt).unwrap();
        assert!(c.as_slice()[0].is_nan());
        assert!(c.as_slice()[2].is_nan());
        assert!(c.as_slice()[1].is_finite());
        assert!(c.as_slice()[3].is_finite());
    }

    #[test]
    fn infinity_propagates() {
        let a = mat(1, 2, &[0.0, 1.0]);
        let b = mat(2, 1, &[f32::INFINITY, 1.0]);
        // 0·∞ = NaN, NaN + 1 = NaN.
        assert!(a.matmul(&b).unwrap().as_slice()[0].is_nan());
    }

    proptest! {
        /// (A·B)·C == A·(B·C) within tolerance.
        #[test]
        fn associativity(
            a in proptest::collection::vec(-2.0f32..2.0, 6),
            b in proptest::collection::vec(-2.0f32..2.0, 6),
            c in proptest::collection::vec(-2.0f32..2.0, 6),
        ) {
            let ta = mat(2, 3, &a);
            let tb = mat(3, 2, &b);
            let tc = mat(2, 3, &c);
            let left = ta.matmul(&tb).unwrap().matmul(&tc).unwrap();
            let right = ta.matmul(&tb.matmul(&tc).unwrap()).unwrap();
            for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
                prop_assert!((x - y).abs() < 1e-3);
            }
        }

        /// (A·B)ᵀ == Bᵀ·Aᵀ.
        #[test]
        fn transpose_of_product(
            a in proptest::collection::vec(-2.0f32..2.0, 6),
            b in proptest::collection::vec(-2.0f32..2.0, 6),
        ) {
            let ta = mat(2, 3, &a);
            let tb = mat(3, 2, &b);
            let lhs = ta.matmul(&tb).unwrap().transpose().unwrap();
            let rhs = tb.transpose().unwrap().matmul(&ta.transpose().unwrap()).unwrap();
            for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
                prop_assert!((x - y).abs() < 1e-4);
            }
        }
    }
}
