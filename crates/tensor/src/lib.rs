//! Dense `f32` tensor library underpinning the FAdeML reproduction.
//!
//! This crate provides the numeric substrate for the neural-network,
//! filter, and attack crates: an owned, row-major, `f32` n-dimensional
//! array ([`Tensor`]) together with the operations a small convolutional
//! network needs — elementwise arithmetic with broadcasting, matrix
//! multiplication, 2-D convolution and max-pooling (forward *and*
//! backward), reductions, and random initialization.
//!
//! The design goal is a correct, well-tested CPU implementation, not a
//! BLAS replacement: every backward pass is validated against finite
//! differences in the test suite, and structural invariants are covered
//! by property-based tests.
//!
//! # Example
//!
//! ```
//! use fademl_tensor::{Shape, Tensor};
//!
//! # fn main() -> Result<(), fademl_tensor::TensorError> {
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], Shape::new(vec![2, 2]))?;
//! let b = Tensor::full(&[2, 2], 10.0);
//! let sum = a.add(&b)?;
//! assert_eq!(sum.as_slice(), &[11.0, 12.0, 13.0, 14.0]);
//! let prod = a.matmul(&b)?;
//! assert_eq!(prod.as_slice(), &[30.0, 30.0, 70.0, 70.0]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

mod broadcast;
mod conv;
mod error;
mod init;
pub mod io;
mod matmul;
mod ops;
pub mod par;
pub mod plan;
mod pool;
mod reduce;
mod shape;
mod tensor;

pub use broadcast::reduce_to_shape;
pub use conv::{col2im, conv2d, conv2d_backward, im2col, Conv2dGrads, ConvSpec};
pub use error::TensorError;
pub use init::{Initializer, TensorRng};
pub use pool::{max_pool2d, max_pool2d_backward, MaxPoolOutput, PoolSpec};
pub use shape::Shape;
pub use tensor::Tensor;

/// Convenient result alias for fallible tensor operations.
pub type Result<T> = std::result::Result<T, TensorError>;
