//! Persistent worker pool and row-partition primitive for the compute
//! kernels.
//!
//! The pool is a process-wide singleton: workers are spawned lazily the
//! first time a parallel kernel actually needs them and then reused for
//! every subsequent call — there are no per-call thread spawns. Jobs
//! travel over an MPMC [`crossbeam::channel`], so any worker (or the
//! submitting caller itself) can pick them up.
//!
//! # Thread-count resolution
//!
//! [`threads`] resolves, in order:
//!
//! 1. a process-local override installed with [`set_threads`] (this is
//!    how `ServerConfig::compute_threads` and
//!    `TrainConfig::compute_threads` plumb through),
//! 2. the `FADEML_THREADS` environment variable (parsed once and
//!    cached; unparsable or zero values fall through),
//! 3. [`std::thread::available_parallelism`].
//!
//! # Determinism contract
//!
//! [`parallel_rows`] only *partitions* an index space into contiguous
//! chunks; it never reorders or combines floating-point work itself.
//! Every kernel built on it assigns each output element to exactly one
//! chunk and keeps the per-element accumulation order identical to the
//! serial kernel, so results are bit-exact regardless of thread count.
//! The chunk boundaries depend on [`threads`], but because no float
//! crosses a chunk boundary this cannot change any value.
//!
//! # Deadlock freedom
//!
//! The submitting caller executes the first chunk inline and, while
//! waiting for the remaining chunks, *helps*: it drains queued jobs
//! from the shared channel and runs them on its own stack. Even with
//! zero live workers (or workers all blocked inside nested parallel
//! sections) every submitted job is eventually executed by somebody,
//! so nested `parallel_rows` calls cannot deadlock the pool.

use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use crossbeam::channel::{self, Receiver, Sender};

/// A unit of work shipped to the pool.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Below this many flops a parallel dispatch costs more than it saves.
const MIN_PARALLEL_WORK: usize = 32 * 1024;

/// Process-wide thread-count override (0 = unset). Installed by
/// [`set_threads`]; read before the environment.
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Cached `FADEML_THREADS` / `available_parallelism` resolution.
static AUTO: OnceLock<usize> = OnceLock::new();

/// The singleton pool.
static POOL: OnceLock<Pool> = OnceLock::new();

struct Pool {
    tx: Sender<Job>,
    rx: Receiver<Job>,
    /// How many workers have been spawned so far (monotone).
    spawned: parking_lot::Mutex<usize>,
}

impl Pool {
    fn get() -> &'static Pool {
        POOL.get_or_init(|| {
            let (tx, rx) = channel::unbounded();
            Pool {
                tx,
                rx,
                spawned: parking_lot::Mutex::new(0),
            }
        })
    }

    /// Makes sure at least `target` workers exist (capped at 255 as a
    /// runaway guard). Workers block on the shared channel and live for
    /// the rest of the process; the pool is reused across calls.
    fn ensure_workers(&'static self, target: usize) {
        let target = target.min(255);
        let mut spawned = self.spawned.lock();
        while *spawned < target {
            let rx = self.rx.clone();
            let name = format!("fademl-par-{}", *spawned);
            let spawn = std::thread::Builder::new().name(name).spawn(move || {
                while let Ok(job) = rx.recv() {
                    job()
                }
            });
            if spawn.is_err() {
                // Thread exhaustion: the caller-helps protocol still
                // executes every job, just with less parallelism.
                break;
            }
            *spawned += 1;
        }
    }
}

/// Installs a process-wide thread-count override. `0` clears the
/// override, falling back to `FADEML_THREADS` / auto-detection.
pub fn set_threads(n: usize) {
    OVERRIDE.store(n, Ordering::SeqCst);
}

/// The number of compute threads parallel kernels will partition over.
/// Always at least 1. See the module docs for the resolution order.
pub fn threads() -> usize {
    let forced = OVERRIDE.load(Ordering::SeqCst);
    if forced > 0 {
        return forced;
    }
    *AUTO.get_or_init(|| {
        std::env::var("FADEML_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1)
            })
    })
}

/// `true` when a kernel over `rows` independent rows totalling roughly
/// `work` flops is worth dispatching to the pool.
pub fn should_parallelize(rows: usize, work: usize) -> bool {
    rows >= 2 && work >= MIN_PARALLEL_WORK && threads() > 1
}

/// Splits `0..rows` into `chunks` contiguous ranges whose lengths
/// differ by at most one (earlier chunks get the remainder).
fn partition(rows: usize, chunks: usize) -> Vec<Range<usize>> {
    let base = rows / chunks;
    let extra = rows % chunks;
    let mut ranges = crate::plan::alloc::fresh_with(chunks);
    let mut start = 0;
    for c in 0..chunks {
        let len = base + usize::from(c < extra);
        ranges.push(start..start + len);
        start += len;
    }
    ranges
}

/// Runs `job` over `0..rows` split into at most [`threads`] contiguous
/// chunks, returning each chunk's result in chunk order (so results can
/// be concatenated to reproduce the serial output ordering).
///
/// The caller executes the first chunk inline; the rest go to the
/// persistent pool. While waiting, the caller drains and executes
/// queued jobs itself, which makes nested calls deadlock-free and keeps
/// the primitive correct even if no worker thread could be spawned.
///
/// Panics inside `job` are caught per-chunk, and the first one is
/// re-raised on the calling thread after all chunks settle.
pub fn parallel_rows<T, F>(rows: usize, job: F) -> Vec<T>
where
    T: Send + 'static,
    F: Fn(Range<usize>) -> T + Send + Sync + 'static,
{
    let t = threads();
    if t <= 1 || rows <= 1 {
        let mut only = crate::plan::alloc::fresh_with(1);
        only.push(job(0..rows));
        return only;
    }
    let chunks = t.min(rows);
    let ranges = partition(rows, chunks);
    let job = Arc::new(job);
    let pool = Pool::get();
    pool.ensure_workers(chunks - 1);

    type ChunkResult<T> = std::thread::Result<T>;
    let (done_tx, done_rx) = channel::bounded::<(usize, ChunkResult<T>)>(chunks);
    let mut slots: Vec<Option<ChunkResult<T>>> = Vec::default();
    slots.resize_with(chunks, || None);
    let mut settled = 0;

    for (index, range) in ranges.iter().cloned().enumerate().skip(1) {
        let job = Arc::clone(&job);
        let done = done_tx.clone();
        let boxed: Job = Box::new(move || {
            let result = catch_unwind(AssertUnwindSafe(|| job(range)));
            // best-effort: the collector hanging up means the caller bailed.
            let _ = done.send((index, result));
        });
        if let Err(rejected) = pool.tx.send(boxed) {
            // The pool channel can only close at process teardown;
            // degrade by running the chunk on this thread.
            (rejected.0)();
        }
    }

    // Chunk 0 runs on the calling thread — with one resolved thread the
    // whole call never touches the pool at all (see the early return).
    if let (Some(range), Some(slot)) = (ranges.first().cloned(), slots.get_mut(0)) {
        *slot = Some(catch_unwind(AssertUnwindSafe(|| job(range))));
        settled += 1;
    }

    while settled < chunks {
        if let Ok((index, result)) = done_rx.try_recv() {
            if let Some(slot) = slots.get_mut(index) {
                *slot = Some(result);
                settled += 1;
            }
            continue;
        }
        // Nothing finished: help by executing a queued job (possibly
        // one of ours, possibly a nested call's) on this stack.
        if let Ok(queued) = pool.rx.try_recv() {
            queued();
            continue;
        }
        // Queue empty and nothing done — a worker is mid-chunk. Block
        // briefly so we neither spin nor miss a late helper job.
        if let Ok((index, result)) = done_rx.recv_timeout(Duration::from_micros(200)) {
            if let Some(slot) = slots.get_mut(index) {
                *slot = Some(result);
                settled += 1;
            }
        }
    }

    let mut out = crate::plan::alloc::fresh_with(chunks);
    let mut panic_payload = None;
    for slot in slots {
        match slot {
            Some(Ok(value)) => out.push(value),
            Some(Err(payload)) => panic_payload = Some(payload),
            // Unreachable: the loop above settles every slot exactly once.
            None => {}
        }
    }
    if let Some(payload) = panic_payload {
        resume_unwind(payload);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// `set_threads` is process-global; tests that touch it run under
    /// this lock so they cannot race each other's overrides.
    static THREADS_GUARD: Mutex<()> = Mutex::new(());

    fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
        let _guard = THREADS_GUARD.lock().unwrap_or_else(|e| e.into_inner());
        set_threads(n);
        let out = f();
        set_threads(0);
        out
    }

    #[test]
    fn partition_is_contiguous_and_balanced() {
        for rows in [1usize, 2, 5, 7, 16, 100] {
            for chunks in 1..=rows.min(9) {
                let ranges = partition(rows, chunks);
                assert_eq!(ranges.len(), chunks);
                let mut expect = 0;
                for r in &ranges {
                    assert_eq!(r.start, expect);
                    expect = r.end;
                    let len = r.end - r.start;
                    assert!(len == rows / chunks || len == rows / chunks + 1);
                }
                assert_eq!(expect, rows);
            }
        }
    }

    #[test]
    fn covers_every_row_exactly_once() {
        for t in [1usize, 2, 4, 7] {
            with_threads(t, || {
                for rows in [0usize, 1, 2, 3, 13, 64] {
                    let chunks = parallel_rows(rows, |r| r.collect::<Vec<_>>());
                    let flat: Vec<usize> = chunks.into_iter().flatten().collect();
                    assert_eq!(flat, (0..rows).collect::<Vec<_>>(), "t={t} rows={rows}");
                }
            });
        }
    }

    #[test]
    fn results_arrive_in_chunk_order() {
        with_threads(4, || {
            let chunks = parallel_rows(17, |r| r.start);
            let mut sorted = chunks.clone();
            sorted.sort_unstable();
            assert_eq!(chunks, sorted);
        });
    }

    #[test]
    fn single_thread_never_uses_pool() {
        with_threads(1, || {
            let chunks = parallel_rows(8, |r| {
                (std::thread::current().name().map(String::from), r.len())
            });
            assert_eq!(chunks.len(), 1);
            assert_eq!(chunks[0].1, 8);
        });
    }

    #[test]
    fn nested_calls_complete() {
        with_threads(4, || {
            let totals = parallel_rows(4, |outer| {
                let inner = parallel_rows(8, |r| r.sum::<usize>());
                outer.sum::<usize>() + inner.iter().sum::<usize>()
            });
            let inner_total: usize = (0..8).sum();
            let outer_total: usize = (0..4).sum();
            let grand: usize = totals.iter().sum();
            assert_eq!(grand, outer_total + 4 * inner_total);
        });
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let caught = with_threads(4, || {
            catch_unwind(AssertUnwindSafe(|| {
                parallel_rows(8, |r| {
                    assert!(!r.contains(&5), "chunk containing row 5 panics");
                    r.len()
                })
            }))
        });
        assert!(caught.is_err());
    }

    #[test]
    fn override_beats_auto() {
        let _guard = THREADS_GUARD.lock().unwrap_or_else(|e| e.into_inner());
        set_threads(3);
        assert_eq!(threads(), 3);
        set_threads(0);
        assert!(threads() >= 1);
    }

    #[test]
    fn should_parallelize_gates_small_work() {
        with_threads(4, || {
            assert!(!should_parallelize(1, usize::MAX));
            assert!(!should_parallelize(64, 100));
            assert!(should_parallelize(64, 1 << 20));
        });
        with_threads(1, || {
            assert!(!should_parallelize(64, 1 << 20));
        });
    }
}
