//! NumPy-style broadcasting for binary elementwise operations.
//!
//! Two shapes are compatible when, aligned from the trailing dimension,
//! every pair of extents is equal or one of them is 1. The broadcast
//! result takes the larger extent in each position.

use crate::plan::alloc;
use crate::{Result, Shape, Tensor, TensorError};

/// Computes the broadcast shape of two operand shapes.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when the shapes are not
/// broadcast-compatible.
pub(crate) fn broadcast_shape(op: &'static str, lhs: &Shape, rhs: &Shape) -> Result<Shape> {
    let a = lhs.dims();
    let b = rhs.dims();
    let rank = a.len().max(b.len());
    let mut out = alloc::fresh_filled(rank, 0usize);
    for i in 0..rank {
        let da = if i < rank - a.len() {
            1
        } else {
            a[i - (rank - a.len())]
        };
        let db = if i < rank - b.len() {
            1
        } else {
            b[i - (rank - b.len())]
        };
        out[i] = if da == db || db == 1 {
            da
        } else if da == 1 {
            db
        } else {
            return Err(TensorError::shape_mismatch(op, a, b));
        };
    }
    Ok(Shape::new(out))
}

/// Applies `f` elementwise over the broadcast of `lhs` and `rhs`.
pub(crate) fn broadcast_zip(
    op: &'static str,
    lhs: &Tensor,
    rhs: &Tensor,
    f: impl Fn(f32, f32) -> f32,
) -> Result<Tensor> {
    // Fast path: identical shapes need no index arithmetic.
    if lhs.shape() == rhs.shape() {
        return lhs.zip_map(rhs, f);
    }
    let out_shape = broadcast_shape(op, lhs.shape(), rhs.shape())?;
    let rank = out_shape.rank();
    let out_dims = out_shape.dims();
    let lhs_strides = padded_broadcast_strides(lhs.shape(), rank);
    let rhs_strides = padded_broadcast_strides(rhs.shape(), rank);

    let numel = out_shape.numel();
    let mut data = alloc::fresh_with(numel);
    let mut index = alloc::fresh_filled(rank, 0usize);
    let la = lhs.as_slice();
    let lb = rhs.as_slice();
    for _ in 0..numel {
        let mut oa = 0usize;
        let mut ob = 0usize;
        for d in 0..rank {
            oa += index[d] * lhs_strides[d];
            ob += index[d] * rhs_strides[d];
        }
        data.push(f(la[oa], lb[ob]));
        // Increment the multi-dimensional counter (row-major order).
        for d in (0..rank).rev() {
            index[d] += 1;
            if index[d] < out_dims[d] {
                break;
            }
            index[d] = 0;
        }
    }
    Tensor::from_vec(data, out_shape)
}

/// Strides of `shape` padded with leading broadcast axes to `rank`
/// dimensions; broadcast axes (extent 1) get stride 0 so the same
/// element is reused along them.
fn padded_broadcast_strides(shape: &Shape, rank: usize) -> Vec<usize> {
    let dims = shape.dims();
    let strides = shape.strides();
    let pad = rank - dims.len();
    let mut out = alloc::fresh_filled(rank, 0usize);
    for i in 0..dims.len() {
        out[pad + i] = if dims[i] == 1 { 0 } else { strides[i] };
    }
    out
}

/// Reduces a broadcast gradient back to the original operand shape by
/// summing over the axes that were expanded.
///
/// This is the adjoint of broadcasting: if `y = broadcast(x)` then
/// `∂L/∂x = reduce_to_shape(∂L/∂y, shape(x))`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `grad`'s shape could not
/// have arisen from broadcasting `target`.
pub fn reduce_to_shape(grad: &Tensor, target: &Shape) -> Result<Tensor> {
    if grad.shape() == target {
        return Ok(grad.duplicate());
    }
    // Validate compatibility.
    let combined = broadcast_shape("reduce_to_shape", grad.shape(), target)?;
    if &combined != grad.shape() {
        return Err(TensorError::shape_mismatch(
            "reduce_to_shape",
            grad.dims(),
            target.dims(),
        ));
    }
    let rank = grad.rank();
    let pad = rank - target.rank();
    let grad_dims = grad.dims();
    let target_strides = {
        let strides = target.strides();
        let mut out = alloc::fresh_filled(rank, 0usize);
        for i in 0..target.rank() {
            out[pad + i] = if target.dims()[i] == 1 { 0 } else { strides[i] };
        }
        out
    };
    let mut out = alloc::fresh_vec(target.numel());
    let mut index = alloc::fresh_filled(rank, 0usize);
    for &g in grad.as_slice() {
        let mut off = 0usize;
        for d in 0..rank {
            off += index[d] * target_strides[d];
        }
        out[off] += g;
        for d in (0..rank).rev() {
            index[d] += 1;
            if index[d] < grad_dims[d] {
                break;
            }
            index[d] = 0;
        }
    }
    Tensor::from_vec(out, target.duplicate())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn broadcast_shapes() {
        let s = |v: &[usize]| Shape::new(v.to_vec());
        assert_eq!(
            broadcast_shape("t", &s(&[2, 3]), &s(&[3])).unwrap(),
            s(&[2, 3])
        );
        assert_eq!(
            broadcast_shape("t", &s(&[2, 1]), &s(&[1, 4])).unwrap(),
            s(&[2, 4])
        );
        assert_eq!(broadcast_shape("t", &s(&[]), &s(&[5])).unwrap(), s(&[5]));
        assert!(broadcast_shape("t", &s(&[2, 3]), &s(&[4])).is_err());
    }

    #[test]
    fn row_vector_broadcast() {
        let m = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], [2, 3].into()).unwrap();
        let v = Tensor::from_vec(vec![10.0, 20.0, 30.0], [3].into()).unwrap();
        let out = broadcast_zip("add", &m, &v, |a, b| a + b).unwrap();
        assert_eq!(out.as_slice(), &[11.0, 22.0, 33.0, 14.0, 25.0, 36.0]);
    }

    #[test]
    fn column_vector_broadcast() {
        let m = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2].into()).unwrap();
        let v = Tensor::from_vec(vec![10.0, 100.0], [2, 1].into()).unwrap();
        let out = broadcast_zip("mul", &m, &v, |a, b| a * b).unwrap();
        assert_eq!(out.as_slice(), &[10.0, 20.0, 300.0, 400.0]);
    }

    #[test]
    fn scalar_broadcast() {
        let m = Tensor::from_vec(vec![1.0, 2.0], [2].into()).unwrap();
        let s = Tensor::scalar(5.0);
        let out = broadcast_zip("add", &m, &s, |a, b| a + b).unwrap();
        assert_eq!(out.as_slice(), &[6.0, 7.0]);
    }

    #[test]
    fn reduce_to_shape_sums_expanded_axes() {
        let g = Tensor::ones(&[2, 3]);
        let reduced = reduce_to_shape(&g, &Shape::new(vec![3])).unwrap();
        assert_eq!(reduced.as_slice(), &[2.0, 2.0, 2.0]);
        let reduced = reduce_to_shape(&g, &Shape::new(vec![2, 1])).unwrap();
        assert_eq!(reduced.as_slice(), &[3.0, 3.0]);
        let reduced = reduce_to_shape(&g, &Shape::scalar()).unwrap();
        assert_eq!(reduced.as_slice(), &[6.0]);
    }

    #[test]
    fn reduce_to_shape_rejects_incompatible() {
        let g = Tensor::ones(&[2, 3]);
        assert!(reduce_to_shape(&g, &Shape::new(vec![4])).is_err());
    }

    proptest! {
        /// Broadcasting against a same-shape tensor equals plain zip_map.
        #[test]
        fn same_shape_matches_zip(
            a in proptest::collection::vec(-5.0f32..5.0, 6),
            b in proptest::collection::vec(-5.0f32..5.0, 6),
        ) {
            let ta = Tensor::from_vec(a, [2, 3].into()).unwrap();
            let tb = Tensor::from_vec(b, [2, 3].into()).unwrap();
            let via_broadcast = broadcast_zip("add", &ta, &tb, |x, y| x + y).unwrap();
            let via_zip = ta.zip_map(&tb, |x, y| x + y).unwrap();
            prop_assert_eq!(via_broadcast, via_zip);
        }

        /// Sum is preserved by reduce_to_shape (it only reorganizes mass).
        #[test]
        fn reduce_preserves_sum(
            g in proptest::collection::vec(-5.0f32..5.0, 12),
        ) {
            let grad = Tensor::from_vec(g.clone(), [3, 4].into()).unwrap();
            let total: f32 = g.iter().sum();
            for target in [Shape::new(vec![4]), Shape::new(vec![3, 1]), Shape::scalar()] {
                let reduced = reduce_to_shape(&grad, &target).unwrap();
                let rsum: f32 = reduced.as_slice().iter().sum();
                prop_assert!((rsum - total).abs() < 1e-3);
            }
        }
    }
}
