//! Durable-artifact IO shared by every crate that persists state.
//!
//! Three pieces live here because both `fademl-nn` (weights,
//! checkpoints) and `fademl-data` (frozen datasets) need them and this
//! crate is their common root dependency:
//!
//! - [`Crc32`] / [`crc32`] — a pure-Rust CRC-32 (IEEE, the zlib
//!   polynomial) used as the integrity trailer of every on-disk format,
//!   so a truncated or bit-flipped file is a **typed error**, never
//!   silently-wrong numbers.
//! - [`atomic_write`] — the blessed write path for persisted artifacts:
//!   full payload to a same-directory temp file, `sync_all`, then
//!   `rename` over the destination. Readers never observe a torn file;
//!   a crash leaves either the old generation or the new one. The
//!   workspace lint (`fademl-lint`, rule `direct-overwrite`) flags any
//!   persistence write that bypasses this helper.
//! - [`ByteWriter`] / [`ByteReader`] — little-endian encode/decode
//!   cursors with bounds-checked reads, so format parsers fail with a
//!   clean `io::Error` instead of panicking or over-allocating on
//!   corrupt headers.
//!
//! With the `faults` cargo feature the [`faults`] module adds a
//! deterministic IO fault-injection layer (short writes, torn renames,
//! bit-flips) that wounds [`atomic_write`] on scripted write sequence
//! numbers — production builds carry zero injection code.

use std::fs;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

/// CRC-32 (IEEE 802.3, polynomial `0xEDB88320`) lookup table, built at
/// compile time.
const CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Streaming CRC-32 hasher (IEEE polynomial, zlib-compatible).
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

impl Crc32 {
    /// A fresh hasher.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feeds bytes into the running checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            let idx = ((self.state ^ u32::from(b)) & 0xFF) as usize;
            self.state = (self.state >> 8) ^ CRC_TABLE[idx];
        }
    }

    /// The checksum of everything fed so far.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(bytes);
    h.finish()
}

/// The temp-file path `atomic_write` stages into: same directory as the
/// destination (so the rename cannot cross filesystems), marked with
/// the writing process id.
fn staging_path(path: &Path) -> PathBuf {
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "artifact".to_owned());
    path.with_file_name(format!(".{name}.tmp.{}", std::process::id()))
}

/// `true` for staging files left behind by a crashed [`atomic_write`];
/// recovery scans must skip them.
pub fn is_staging_file(path: &Path) -> bool {
    path.file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .is_some_and(|n| n.starts_with('.') && n.contains(".tmp."))
}

/// Durably replaces `path` with `bytes`: writes the full payload to a
/// same-directory temp file, fsyncs it, then renames it over the
/// destination. A crash at any point leaves either the previous file
/// intact or the complete new one — never a torn mixture (plus at most
/// an orphan `.tmp` staging file, which [`is_staging_file`] identifies).
///
/// This is the only sanctioned write path for persisted artifacts; the
/// `direct-overwrite` lint enforces it workspace-wide.
///
/// # Errors
///
/// Propagates create/write/sync/rename failures.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = staging_path(path);
    #[cfg(feature = "faults")]
    if let Some(outcome) = faults::intercept_write(path, &tmp, bytes)? {
        return outcome;
    }
    write_staged(&tmp, bytes)?;
    fs::rename(&tmp, path)
}

/// Writes and fsyncs the staged temp file (shared with the fault layer).
fn write_staged(tmp: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut f = fs::File::create(tmp)?;
    f.write_all(bytes)?;
    f.sync_all()?;
    Ok(())
}

/// Reads a whole file, rejecting staging leftovers.
///
/// # Errors
///
/// Propagates read failures; an [`io::ErrorKind::InvalidData`] error is
/// returned for a staging file (a crashed write's leftovers must never
/// be loaded as an artifact).
pub fn read_artifact(path: &Path) -> io::Result<Vec<u8>> {
    if is_staging_file(path) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "refusing to read a staging (.tmp) file as an artifact",
        ));
    }
    let mut buf = Vec::default();
    fs::File::open(path)?.read_to_end(&mut buf)?;
    Ok(buf)
}

/// Little-endian binary encoder used by every on-disk format.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty encoder.
    pub fn new() -> Self {
        ByteWriter {
            buf: Vec::default(),
        }
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    pub fn put_f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends raw bytes.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Appends a length-prefixed (`u32`) UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_u32(v.len() as u32);
        self.buf.extend_from_slice(v.as_bytes());
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` before the first write.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the encoder, yielding the buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Bounds-checked little-endian decoder. Every read that would run past
/// the end fails with [`io::ErrorKind::UnexpectedEof`] — corrupt or
/// truncated input becomes a typed error, never a panic.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A decoder over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        let end = self.pos.checked_add(n).ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "length overflows the buffer")
        })?;
        if end > self.buf.len() {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!(
                    "truncated record: wanted {n} bytes at offset {}, have {}",
                    self.pos,
                    self.buf.len() - self.pos
                ),
            ));
        }
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::UnexpectedEof`] past the end of the buffer.
    pub fn get_u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::UnexpectedEof`] past the end of the buffer.
    pub fn get_u32(&mut self) -> io::Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::UnexpectedEof`] past the end of the buffer.
    pub fn get_u64(&mut self) -> io::Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a little-endian `f32`.
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::UnexpectedEof`] past the end of the buffer.
    pub fn get_f32(&mut self) -> io::Result<f32> {
        let b = self.take(4)?;
        Ok(f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads `n` raw bytes.
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::UnexpectedEof`] past the end of the buffer.
    pub fn get_bytes(&mut self, n: usize) -> io::Result<&'a [u8]> {
        self.take(n)
    }

    /// Reads a length-prefixed UTF-8 string written by
    /// [`ByteWriter::put_str`].
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::UnexpectedEof`] on truncation,
    /// [`io::ErrorKind::InvalidData`] for non-UTF-8 payloads.
    pub fn get_str(&mut self) -> io::Result<String> {
        let len = self.get_u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 string record"))
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

#[cfg(feature = "faults")]
pub mod faults {
    //! Deterministic IO fault injection, mirroring `serve::faults`.
    //!
    //! An [`IoFaultPlan`] scripts *which* [`atomic_write`](super::atomic_write)
    //! calls are wounded, by 1-based write sequence number counted by the
    //! plan itself:
    //!
    //! - **short write**: the process "crashes" after writing only half
    //!   the payload to the *staging* file — the destination is never
    //!   touched, and the orphan `.tmp` is left behind for recovery
    //!   scans to skip;
    //! - **torn rename**: the replace step is non-atomic — only a prefix
    //!   of the payload reaches the destination before the "crash", so
    //!   the destination itself is now truncated garbage that only an
    //!   integrity trailer can catch;
    //! - **bit flip**: the write fully succeeds, then one bit of the
    //!   destination file is flipped (silent media corruption).
    //!
    //! Plans are armed per-thread ([`arm`]/[`disarm`]), so concurrently
    //! running tests never wound each other's writes.

    use std::cell::RefCell;
    use std::fs;
    use std::io;
    use std::path::Path;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    /// A scripted set of IO faults. Clones share the write counter, so
    /// one plan describes one global schedule.
    #[derive(Debug, Clone, Default)]
    pub struct IoFaultPlan {
        short_writes: Vec<u64>,
        torn_renames: Vec<(u64, usize)>,
        bit_flips: Vec<(u64, usize)>,
        write_seq: Arc<AtomicU64>,
    }

    impl IoFaultPlan {
        /// An empty plan injecting nothing.
        pub fn new() -> Self {
            Self::default()
        }

        /// Write number `seq` (1-based) crashes after staging only half
        /// the payload; the destination is untouched.
        #[must_use]
        pub fn short_write_on(mut self, seq: u64) -> Self {
            self.short_writes.push(seq);
            self
        }

        /// Write number `seq` tears during the replace: only the first
        /// `keep_bytes` of the payload reach the destination.
        #[must_use]
        pub fn torn_rename_on(mut self, seq: u64, keep_bytes: usize) -> Self {
            self.torn_renames.push((seq, keep_bytes));
            self
        }

        /// Write number `seq` succeeds, then bit 0 of `byte_offset` in
        /// the destination file is flipped (offsets past the end wrap).
        #[must_use]
        pub fn bit_flip_on(mut self, seq: u64, byte_offset: usize) -> Self {
            self.bit_flips.push((seq, byte_offset));
            self
        }
    }

    thread_local! {
        static ARMED: RefCell<Option<IoFaultPlan>> = const { RefCell::new(None) };
    }

    /// Arms `plan` for the current thread: subsequent
    /// [`atomic_write`](super::atomic_write) calls consult it.
    pub fn arm(plan: IoFaultPlan) {
        ARMED.with(|a| *a.borrow_mut() = Some(plan));
    }

    /// Disarms the current thread's plan.
    pub fn disarm() {
        ARMED.with(|a| *a.borrow_mut() = None);
    }

    /// The injected-failure error message marker, so tests can tell an
    /// injected crash from a genuine IO failure.
    pub const INJECTED: &str = "injected IO fault";

    /// Consulted by `atomic_write`. `None` → proceed normally;
    /// `Some(result)` → the write was intercepted and `result` is its
    /// outcome.
    pub(super) fn intercept_write(
        path: &Path,
        tmp: &Path,
        bytes: &[u8],
    ) -> io::Result<Option<io::Result<()>>> {
        let Some(plan) = ARMED.with(|a| a.borrow().clone()) else {
            return Ok(None);
        };
        let seq = plan.write_seq.fetch_add(1, Ordering::Relaxed) + 1;
        if plan.short_writes.contains(&seq) {
            // Crash mid-staging: half the payload in the temp file, the
            // destination untouched.
            fs::write(tmp, &bytes[..bytes.len() / 2])?;
            return Ok(Some(Err(io::Error::other(format!(
                "{INJECTED}: short write (crash while staging, write {seq})"
            )))));
        }
        if let Some((_, keep)) = plan.torn_renames.iter().find(|(s, _)| *s == seq) {
            // Crash mid-replace on a non-atomic filesystem: the
            // destination holds a prefix of the new payload.
            fs::write(path, &bytes[..(*keep).min(bytes.len())])?;
            return Ok(Some(Err(io::Error::other(format!(
                "{INJECTED}: torn rename (crash while replacing, write {seq})"
            )))));
        }
        if let Some((_, offset)) = plan.bit_flips.iter().find(|(s, _)| *s == seq) {
            // Silent corruption: the write succeeds, one bit rots.
            super::write_staged(tmp, bytes)?;
            fs::rename(tmp, path)?;
            let mut data = fs::read(path)?;
            if !data.is_empty() {
                let at = offset % data.len();
                data[at] ^= 1;
            }
            fs::write(path, &data)?;
            return Ok(Some(Ok(())));
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Known-answer test: CRC-32("123456789") is the standard check
    /// value 0xCBF43926.
    #[test]
    fn crc32_known_answer() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn crc32_streaming_matches_one_shot() {
        let mut h = Crc32::new();
        h.update(b"hello ");
        h.update(b"world");
        assert_eq!(h.finish(), crc32(b"hello world"));
    }

    #[test]
    fn crc32_detects_single_bit_flip() {
        let mut data = vec![7u8; 1024];
        let clean = crc32(&data);
        data[513] ^= 0x10;
        assert_ne!(crc32(&data), clean);
    }

    #[test]
    fn atomic_write_round_trips() {
        let dir = std::env::temp_dir().join("fademl_io_test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("artifact.bin");
        atomic_write(&path, b"generation 1").unwrap();
        assert_eq!(read_artifact(&path).unwrap(), b"generation 1");
        atomic_write(&path, b"generation 2").unwrap();
        assert_eq!(read_artifact(&path).unwrap(), b"generation 2");
        // No staging leftovers after a clean write.
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| is_staging_file(&e.path()))
            .collect();
        assert!(leftovers.is_empty());
        fs::remove_file(&path).ok();
    }

    #[test]
    fn staging_files_are_recognized_and_refused() {
        assert!(is_staging_file(Path::new("/x/.ckpt.bin.tmp.123")));
        assert!(!is_staging_file(Path::new("/x/ckpt.bin")));
        let dir = std::env::temp_dir().join("fademl_io_staging_test");
        fs::create_dir_all(&dir).unwrap();
        let orphan = dir.join(".dead.tmp.999");
        fs::write(&orphan, b"partial").unwrap();
        assert!(read_artifact(&orphan).is_err());
        fs::remove_file(&orphan).ok();
    }

    #[test]
    fn byte_cursor_round_trip() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_f32(-0.5);
        w.put_str("stage/fig7/scenario-3");
        w.put_bytes(&[1, 2, 3]);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.get_f32().unwrap(), -0.5);
        assert_eq!(r.get_str().unwrap(), "stage/fig7/scenario-3");
        assert_eq!(r.get_bytes(3).unwrap(), &[1, 2, 3]);
        assert_eq!(r.remaining(), 0);
        assert!(r.get_u8().is_err());
    }

    #[test]
    fn reader_rejects_truncation_without_allocating() {
        // A length prefix pointing far past the buffer must fail
        // cleanly, not attempt a giant allocation.
        let mut w = ByteWriter::new();
        w.put_u32(u32::MAX);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(r.get_str().is_err());
        let mut r = ByteReader::new(&bytes);
        assert!(r.get_bytes(usize::MAX).is_err());
    }
}
