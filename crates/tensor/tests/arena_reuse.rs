//! Scratch-arena reuse: after warm-up on a shape key, kernels must
//! perform **zero** scratch heap allocations (the arena's `grows`
//! counter stays flat), the arena must never change results (a fresh
//! thread with an empty pool produces bit-identical output), and
//! interleaving shape keys must not leak stale data between buffers.
//!
//! The arena counters and `par::set_threads` are process-wide, so every
//! test serialises on one mutex and pins the pool to serial mode — the
//! counters then reflect exactly the acquisitions made by the kernel
//! under measurement.

use std::sync::Mutex;

use fademl_tensor::plan::alloc;
use fademl_tensor::{conv2d, par, ConvSpec, Tensor, TensorRng};
use proptest::{prop_assert, prop_assert_eq, proptest, ProptestConfig};

static ARENA_GUARD: Mutex<()> = Mutex::new(());

fn filled(rng: &mut TensorRng, dims: &[usize]) -> Tensor {
    rng.uniform(dims, -2.0, 2.0)
}

/// Runs `op` twice to warm the arena and the selector cache, then runs
/// it `measured` more times and returns (grows delta, hits delta, last
/// output). Holds the guard for the whole measurement.
fn measure_warm(op: impl Fn() -> Vec<f32>, measured: usize) -> (u64, u64, Vec<f32>) {
    let _guard = ARENA_GUARD.lock().unwrap_or_else(|e| e.into_inner());
    par::set_threads(1);
    let _ = op();
    let mut out = op();
    let before = alloc::stats();
    for _ in 0..measured {
        out = op();
    }
    let after = alloc::stats();
    (after.grows - before.grows, after.hits - before.hits, out)
}

#[test]
fn warm_matmul_makes_zero_scratch_allocations() {
    let mut rng = TensorRng::seed_from_u64(41);
    let a = filled(&mut rng, &[48, 96]);
    let b = filled(&mut rng, &[96, 64]);
    let (grows, hits, _) = measure_warm(|| a.matmul(&b).expect("matmul").into_vec(), 10);
    assert_eq!(grows, 0, "warm matmul grew a scratch buffer");
    assert!(hits >= 10, "warm matmul did not lease from the arena");
}

#[test]
fn warm_conv2d_makes_zero_scratch_allocations() {
    let mut rng = TensorRng::seed_from_u64(43);
    let spec = ConvSpec::new(3, 8, 3, 1, 1);
    let input = filled(&mut rng, &[2, 3, 16, 16]);
    let weight = filled(&mut rng, &[8, 3, 3, 3]);
    let bias = filled(&mut rng, &[8]);
    let (grows, hits, _) = measure_warm(
        || {
            conv2d(&input, &weight, &bias, &spec)
                .expect("conv2d")
                .into_vec()
        },
        10,
    );
    assert_eq!(grows, 0, "warm conv2d grew a scratch buffer");
    // Forward conv leases the im2col matrix and the packing panel per
    // call, so ten warm calls are at least twenty arena hits.
    assert!(hits >= 20, "warm conv2d did not lease from the arena");
}

#[test]
fn warm_arena_output_matches_fresh_thread_bit_for_bit() {
    let mut rng = TensorRng::seed_from_u64(47);
    let a = filled(&mut rng, &[33, 129]);
    let b = filled(&mut rng, &[129, 65]);
    // Warm path: pooled buffers carry stale bytes from prior leases.
    let (_, _, warm) = measure_warm(|| a.matmul(&b).expect("matmul").into_vec(), 4);
    // Fresh path: a brand-new thread starts with an empty pool, so every
    // buffer is newly zero-allocated.
    let _guard = ARENA_GUARD.lock().unwrap_or_else(|e| e.into_inner());
    par::set_threads(1);
    let fresh = std::thread::scope(|s| {
        s.spawn(|| a.matmul(&b).expect("matmul").into_vec())
            .join()
            .expect("fresh-arena thread")
    });
    let warm_bits: Vec<u32> = warm.iter().map(|v| v.to_bits()).collect();
    let fresh_bits: Vec<u32> = fresh.iter().map(|v| v.to_bits()).collect();
    assert_eq!(warm_bits, fresh_bits, "arena reuse changed kernel output");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random shapes: once warm, repeat calls never grow the arena and
    /// always reproduce the warm-up output exactly.
    #[test]
    fn warm_random_matmul_is_allocation_free_and_stable(
        seed in 0u64..1_000_000,
        m in 1usize..20,
        k in 1usize..96,
        n in 1usize..96,
    ) {
        let mut rng = TensorRng::seed_from_u64(seed);
        let a = filled(&mut rng, &[m, k]);
        let b = filled(&mut rng, &[k, n]);
        let reference: Vec<u32> = a.matmul(&b).expect("matmul").into_vec()
            .iter().map(|v| v.to_bits()).collect();
        let (grows, _, out) = measure_warm(|| a.matmul(&b).expect("matmul").into_vec(), 3);
        prop_assert_eq!(grows, 0, "warm random-shape matmul grew scratch");
        let bits: Vec<u32> = out.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(bits, reference);
    }

    /// Interleaving two shape keys: the pool is shared per thread, so a
    /// buffer warmed on one key serves the other — but results must stay
    /// bit-identical per key and the warm pair must stop allocating.
    #[test]
    fn interleaved_shape_keys_share_the_pool_without_leaking(
        seed in 0u64..1_000_000,
        ma in 1usize..16, ka in 1usize..48, na in 1usize..48,
        mb in 1usize..16, kb in 1usize..48, nb in 1usize..48,
    ) {
        let mut rng = TensorRng::seed_from_u64(seed);
        let a1 = filled(&mut rng, &[ma, ka]);
        let b1 = filled(&mut rng, &[ka, na]);
        let a2 = filled(&mut rng, &[mb, kb]);
        let b2 = filled(&mut rng, &[kb, nb]);
        let bits = |t: &Tensor| -> Vec<u32> {
            t.as_slice().iter().map(|v| v.to_bits()).collect()
        };
        let _guard = ARENA_GUARD.lock().unwrap_or_else(|e| e.into_inner());
        par::set_threads(1);
        let ref_a = bits(&a1.matmul(&b1).expect("matmul A"));
        let ref_b = bits(&a2.matmul(&b2).expect("matmul B"));
        // One more alternation finishes warming both keys' leases.
        let _ = a1.matmul(&b1).expect("matmul A");
        let _ = a2.matmul(&b2).expect("matmul B");
        let before = alloc::stats();
        for _ in 0..3 {
            let out_a = a1.matmul(&b1).expect("matmul A");
            let out_b = a2.matmul(&b2).expect("matmul B");
            prop_assert_eq!(bits(&out_a), ref_a.clone(), "key A output drifted");
            prop_assert_eq!(bits(&out_b), ref_b.clone(), "key B output drifted");
        }
        let after = alloc::stats();
        prop_assert_eq!(after.grows - before.grows, 0, "warm interleave kept allocating");
        prop_assert!(after.hits > before.hits);
    }
}
