//! Thread-count invariance: every kernel routed through the
//! `fademl_tensor::par` pool must produce **bit-identical** output at
//! any thread count. This is the invariant that lets PR 4's byte-exact
//! checkpoint/resume and the seed-sensitive statistical tests survive
//! parallelisation — partitioning only ever splits independent outputs,
//! never a reduction's association order.
//!
//! `set_threads` is a process-wide override, so every test here
//! serialises on one mutex and restores the serial setting on exit.

use std::sync::Mutex;

use fademl_tensor::plan::blueprint::OpKind;
use fademl_tensor::plan::selector;
use fademl_tensor::{conv2d, conv2d_backward, par, ConvSpec, Tensor, TensorRng};
use proptest::{prop_assert, prop_assert_eq, proptest, ProptestConfig};

static THREADS_GUARD: Mutex<()> = Mutex::new(());

/// Thread counts probed by every invariance check: serial, even splits,
/// and a prime count that never divides the row counts evenly.
const SWEEP: [usize; 4] = [1, 2, 4, 7];

/// Runs `op` once per thread count in [`SWEEP`] and returns the bit
/// patterns of each run's output, serial first.
fn sweep_bits(op: impl Fn() -> Vec<f32>) -> Vec<Vec<u32>> {
    let _guard = THREADS_GUARD.lock().unwrap_or_else(|e| e.into_inner());
    let runs = SWEEP
        .iter()
        .map(|&t| {
            par::set_threads(t);
            op().iter().map(|v| v.to_bits()).collect()
        })
        .collect();
    par::set_threads(1);
    runs
}

fn assert_invariant(op: impl Fn() -> Vec<f32>, what: &str) {
    let runs = sweep_bits(op);
    for (i, run) in runs.iter().enumerate().skip(1) {
        assert_eq!(
            run, &runs[0],
            "{what}: output at {} threads diverged from serial",
            SWEEP[i]
        );
    }
}

fn filled(rng: &mut TensorRng, dims: &[usize]) -> Tensor {
    rng.uniform(dims, -2.0, 2.0)
}

// ---------------------------------------------------------------- fixed
// Adversarial fixed shapes: degenerate 1×1, primes everywhere, fewer
// rows than workers, and shapes big enough to actually engage the pool
// (work ≥ the `should_parallelize` threshold).

#[test]
fn matmul_family_invariant_on_adversarial_shapes() {
    let mut rng = TensorRng::seed_from_u64(7);
    for (m, k, n) in [
        (1, 1, 1),      // scalar product, below every threshold
        (2, 257, 3),    // prime k spanning two KC blocks
        (3, 1, 1031),   // prime n spanning three NC panels
        (7, 64, 513),   // rows below the sweep's max thread count
        (67, 129, 65),  // primes straddling MC/KC block edges
        (128, 256, 64), // well past the parallel threshold
    ] {
        let a = filled(&mut rng, &[m, k]);
        let b = filled(&mut rng, &[k, n]);
        let at = filled(&mut rng, &[k, m]);
        let bt = filled(&mut rng, &[n, k]);
        assert_invariant(
            || a.matmul(&b).expect("matmul").into_vec(),
            &format!("matmul {m}x{k}x{n}"),
        );
        assert_invariant(
            || at.matmul_tn(&b).expect("matmul_tn").into_vec(),
            &format!("matmul_tn {m}x{k}x{n}"),
        );
        assert_invariant(
            || a.matmul_nt(&bt).expect("matmul_nt").into_vec(),
            &format!("matmul_nt {m}x{k}x{n}"),
        );
    }
}

#[test]
fn conv2d_invariant_on_adversarial_shapes() {
    let mut rng = TensorRng::seed_from_u64(11);
    // (batch, spec, h, w): single sample, fewer samples than workers,
    // stride/padding asymmetry, and a pool-engaging VGG-ish layer.
    for (n, spec, h, w) in [
        (1, ConvSpec::new(1, 1, 1, 1, 0), 1, 1),
        (3, ConvSpec::new(2, 5, 3, 2, 1), 7, 11),
        (8, ConvSpec::new(3, 32, 3, 1, 1), 32, 32),
    ] {
        let input = filled(&mut rng, &[n, spec.in_channels, h, w]);
        let weight = filled(
            &mut rng,
            &[
                spec.out_channels,
                spec.in_channels,
                spec.kernel_h,
                spec.kernel_w,
            ],
        );
        let bias = filled(&mut rng, &[spec.out_channels]);
        let out = conv2d(&input, &weight, &bias, &spec).expect("conv2d");
        let grad_out = filled(&mut rng, out.dims());
        assert_invariant(
            || {
                conv2d(&input, &weight, &bias, &spec)
                    .expect("conv2d")
                    .into_vec()
            },
            &format!("conv2d n={n} {spec:?}"),
        );
        assert_invariant(
            || {
                let grads =
                    conv2d_backward(&input, &weight, &grad_out, &spec).expect("conv2d_backward");
                let mut all = grads.input.into_vec();
                all.extend(grads.weight.into_vec());
                all.extend(grads.bias.into_vec());
                all
            },
            &format!("conv2d_backward n={n} {spec:?}"),
        );
    }
}

// ------------------------------------------------------------- selector

/// The plan layer must be invisible to the invariance guarantee: a warm
/// selector cache replans the same shape key to the identical blueprint
/// at every thread count, and a sweep over a warm cache reproduces the
/// cold sweep bit-for-bit.
#[test]
fn selector_cache_preserves_sweep_bit_identity() {
    let mut rng = TensorRng::seed_from_u64(13);
    let (m, k, n) = (128usize, 256usize, 64usize);
    let a = filled(&mut rng, &[m, k]);
    let b = filled(&mut rng, &[k, n]);
    // Cold sweep: warms one cache entry per thread count (the shape key
    // captures the pool width, so dispatch can differ; bits cannot).
    let cold = sweep_bits(|| a.matmul(&b).expect("matmul").into_vec());
    {
        let _guard = THREADS_GUARD.lock().unwrap_or_else(|e| e.into_inner());
        for &t in &SWEEP {
            par::set_threads(t);
            let first = selector::plan_gemm(OpKind::MatMul, m, k, n).expect("plan");
            let second = selector::plan_gemm(OpKind::MatMul, m, k, n).expect("plan");
            assert_eq!(first, second, "replan at {t} threads changed the blueprint");
            assert_eq!(
                selector::lookup(&first.key),
                Some(first),
                "warm key missing from the selector cache at {t} threads"
            );
        }
        par::set_threads(1);
    }
    // Warm sweep: every plan is now a cache hit; output must not move.
    let warm = sweep_bits(|| a.matmul(&b).expect("matmul").into_vec());
    assert_eq!(warm, cold, "warm selector cache changed kernel output");
}

// ------------------------------------------------------------- proptest

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random small-to-medium GEMMs are bit-identical across the sweep.
    #[test]
    fn matmul_bits_invariant(seed in 0u64..1_000_000, m in 1usize..24, k in 1usize..80, n in 1usize..80) {
        let mut rng = TensorRng::seed_from_u64(seed);
        let a = filled(&mut rng, &[m, k]);
        let b = filled(&mut rng, &[k, n]);
        let runs = sweep_bits(|| a.matmul(&b).expect("matmul").into_vec());
        for run in &runs[1..] {
            prop_assert_eq!(run, &runs[0]);
        }
    }

    /// Random conv forward+backward are bit-identical across the sweep.
    #[test]
    fn conv_bits_invariant(
        seed in 0u64..1_000_000,
        batch in 1usize..6,
        c in 1usize..4,
        f in 1usize..6,
        h in 3usize..12,
        w in 3usize..12,
    ) {
        let spec = ConvSpec::new(c, f, 3, 1, 1);
        let mut rng = TensorRng::seed_from_u64(seed);
        let input = filled(&mut rng, &[batch, c, h, w]);
        let weight = filled(&mut rng, &[f, c, 3, 3]);
        let bias = filled(&mut rng, &[f]);
        let out = conv2d(&input, &weight, &bias, &spec).expect("conv2d");
        let grad_out = filled(&mut rng, out.dims());
        let runs = sweep_bits(|| {
            let fwd = conv2d(&input, &weight, &bias, &spec).expect("conv2d");
            let grads = conv2d_backward(&input, &weight, &grad_out, &spec).expect("backward");
            let mut all = fwd.into_vec();
            all.extend(grads.input.into_vec());
            all.extend(grads.weight.into_vec());
            all.extend(grads.bias.into_vec());
            all
        });
        for run in &runs[1..] {
            prop_assert_eq!(run, &runs[0]);
        }
        prop_assert!(runs[0].iter().all(|bits| !f32::from_bits(*bits).is_nan()));
    }
}
