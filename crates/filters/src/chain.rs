use fademl_tensor::plan::alloc;
use fademl_tensor::Tensor;

use crate::filter::boxed;
use crate::{Filter, Result};

/// A sequence of filters applied in order — models a multi-stage
/// pre-processing block (e.g. median despeckle followed by LAP
/// smoothing).
///
/// The backward pass runs the chain's vector-Jacobian products in
/// reverse, re-deriving each stage's input by replaying the forward
/// chain (filters are stateless, so this is the only way to give each
/// stage its correct linearization point).
#[derive(Debug, Clone, Default)]
pub struct FilterChain {
    stages: Vec<Box<dyn Filter>>,
}

impl FilterChain {
    /// Creates an empty chain (acts as the identity).
    pub fn new() -> Self {
        FilterChain {
            stages: Vec::default(),
        }
    }

    /// Appends a filter stage (builder style).
    #[must_use]
    pub fn push(mut self, filter: impl Filter + 'static) -> Self {
        self.stages.push(boxed(filter));
        self
    }

    /// Appends a boxed filter stage in place.
    pub fn push_boxed(&mut self, filter: Box<dyn Filter>) {
        self.stages.push(filter);
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// `true` if the chain has no stages.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }
}

impl Filter for FilterChain {
    fn name(&self) -> String {
        if self.stages.is_empty() {
            return "Chain[]".to_owned();
        }
        let mut names: Vec<String> = alloc::fresh_with(self.stages.len());
        names.extend(self.stages.iter().map(|s| s.name()));
        format!("Chain[{}]", names.join(" → "))
    }

    fn apply(&self, image: &Tensor) -> Result<Tensor> {
        crate::filter::check_image_rank(image)?;
        let mut x = image.duplicate();
        for stage in &self.stages {
            x = stage.apply(&x)?;
        }
        Ok(x)
    }

    fn backward(&self, input: &Tensor, grad_out: &Tensor) -> Result<Tensor> {
        crate::filter::check_image_rank(input)?;
        // Replay the forward pass to collect each stage's input.
        let mut inputs: Vec<Tensor> = alloc::fresh_with(self.stages.len());
        let mut x = input.duplicate();
        for stage in &self.stages {
            inputs.push(x.duplicate());
            x = stage.apply(&x)?;
        }
        let mut g = grad_out.duplicate();
        for (stage, stage_input) in self.stages.iter().zip(&inputs).rev() {
            g = stage.backward(stage_input, &g)?;
        }
        Ok(g)
    }

    fn is_linear(&self) -> bool {
        self.stages.iter().all(|s| s.is_linear())
    }

    fn clone_box(&self) -> Box<dyn Filter> {
        boxed(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Identity, Lap, Lar, Median};
    use fademl_tensor::TensorRng;

    #[test]
    fn empty_chain_is_identity() {
        let chain = FilterChain::new();
        let x = Tensor::ones(&[3, 6, 6]);
        assert_eq!(chain.apply(&x).unwrap(), x);
        assert!(chain.is_empty());
        assert_eq!(chain.name(), "Chain[]");
    }

    #[test]
    fn chain_composes_in_order() {
        let chain = FilterChain::new()
            .push(Lap::new(4).unwrap())
            .push(Lar::new(2).unwrap());
        let mut rng = TensorRng::seed_from_u64(1);
        let x = rng.uniform(&[1, 10, 10], 0.0, 1.0);
        let direct = Lar::new(2)
            .unwrap()
            .apply(&Lap::new(4).unwrap().apply(&x).unwrap())
            .unwrap();
        assert_eq!(chain.apply(&x).unwrap(), direct);
        assert_eq!(chain.len(), 2);
        assert_eq!(chain.name(), "Chain[LAP(4) → LAR(2)]");
    }

    #[test]
    fn linear_chain_adjoint_property() {
        let chain = FilterChain::new()
            .push(Lap::new(8).unwrap())
            .push(Lar::new(1).unwrap());
        assert!(chain.is_linear());
        let mut rng = TensorRng::seed_from_u64(2);
        let x = rng.uniform(&[1, 8, 8], -1.0, 1.0);
        let y = rng.uniform(&[1, 8, 8], -1.0, 1.0);
        let lhs = chain.apply(&x).unwrap().dot(&y).unwrap();
        let rhs = x.dot(&chain.backward(&x, &y).unwrap()).unwrap();
        assert!((lhs - rhs).abs() < 1e-3);
    }

    #[test]
    fn nonlinear_stage_makes_chain_nonlinear() {
        let chain = FilterChain::new()
            .push(Median::new(3).unwrap())
            .push(Lap::new(4).unwrap());
        assert!(!chain.is_linear());
        // Backward still runs (straight-through for the median stage).
        let x = Tensor::ones(&[1, 6, 6]);
        let g = Tensor::ones(&[1, 6, 6]);
        assert_eq!(chain.backward(&x, &g).unwrap().dims(), x.dims());
    }

    #[test]
    fn chain_with_identity_matches_inner_filter() {
        let lap = Lap::new(16).unwrap();
        let chain = FilterChain::new()
            .push(Identity::new())
            .push(Lap::new(16).unwrap());
        let mut rng = TensorRng::seed_from_u64(3);
        let x = rng.uniform(&[3, 7, 7], 0.0, 1.0);
        assert_eq!(chain.apply(&x).unwrap(), lap.apply(&x).unwrap());
    }

    #[test]
    fn push_boxed_appends() {
        let mut chain = FilterChain::new();
        chain.push_boxed(Box::new(Identity::new()));
        assert_eq!(chain.len(), 1);
    }
}
