use fademl_tensor::Tensor;

use crate::kernel::Kernel;
use crate::{Filter, FilterError, Result};

/// **LAP** — local average with `np` neighbourhood pixels (paper §III-A).
///
/// Each pixel becomes the uniform average of itself and its `np` nearest
/// neighbours (Euclidean distance, deterministic tie-breaking): `np = 4`
/// is the von Neumann neighbourhood, `np = 8` the Moore neighbourhood,
/// and larger values grow an approximately circular disc. The paper
/// sweeps `np ∈ {4, 8, 16, 32, 64}`.
///
/// # Example
///
/// ```
/// use fademl_filters::{Filter, Lap};
/// use fademl_tensor::Tensor;
///
/// # fn main() -> Result<(), fademl_filters::FilterError> {
/// let lap = Lap::new(8)?;
/// assert_eq!(lap.name(), "LAP(8)");
/// let out = lap.apply(&Tensor::ones(&[3, 8, 8]))?;
/// assert_eq!(out.dims(), &[3, 8, 8]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Lap {
    np: usize,
    kernel: Kernel,
}

impl Lap {
    /// The neighbourhood sizes evaluated in the paper.
    pub const PAPER_SWEEP: [usize; 5] = [4, 8, 16, 32, 64];

    /// Creates a LAP filter with `np` neighbours.
    ///
    /// # Errors
    ///
    /// Returns [`FilterError::InvalidParameter`] for `np == 0` or
    /// `np > 80` (beyond the supported neighbourhood window).
    pub fn new(np: usize) -> Result<Self> {
        if np == 0 {
            return Err(FilterError::InvalidParameter {
                reason: "LAP needs at least one neighbour".into(),
            });
        }
        if np > 80 {
            return Err(FilterError::InvalidParameter {
                reason: format!("LAP np = {np} exceeds the supported maximum of 80"),
            });
        }
        let kernel = Kernel::uniform(Kernel::nearest_neighbourhood(np))?;
        Ok(Lap { np, kernel })
    }

    /// The configured neighbour count.
    pub fn np(&self) -> usize {
        self.np
    }
}

impl Filter for Lap {
    fn name(&self) -> String {
        format!("LAP({})", self.np)
    }

    fn apply(&self, image: &Tensor) -> Result<Tensor> {
        self.kernel.apply(image)
    }

    fn backward(&self, _input: &Tensor, grad_out: &Tensor) -> Result<Tensor> {
        self.kernel.backward(grad_out)
    }

    fn is_linear(&self) -> bool {
        true
    }

    fn clone_box(&self) -> Box<dyn Filter> {
        crate::filter::boxed(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fademl_tensor::TensorRng;

    #[test]
    fn construction_bounds() {
        assert!(Lap::new(0).is_err());
        assert!(Lap::new(81).is_err());
        for np in Lap::PAPER_SWEEP {
            assert!(Lap::new(np).is_ok(), "np = {np}");
        }
    }

    #[test]
    fn larger_np_smooths_more() {
        let mut rng = TensorRng::seed_from_u64(1);
        let img = rng.uniform(&[1, 16, 16], 0.0, 1.0);
        let var = |t: &Tensor| {
            let m = t.mean();
            t.map(|x| (x - m) * (x - m)).mean()
        };
        let mut last = f32::INFINITY;
        for np in Lap::PAPER_SWEEP {
            let out = Lap::new(np).unwrap().apply(&img).unwrap();
            let v = var(&out);
            assert!(v < last, "variance did not drop at np = {np}");
            last = v;
        }
    }

    #[test]
    fn removes_impulse_noise() {
        // A single bright pixel in a flat image gets spread down by ~1/(np+1).
        let mut img = Tensor::zeros(&[1, 9, 9]);
        img.set(&[0, 4, 4], 1.0).unwrap();
        let out = Lap::new(8).unwrap().apply(&img).unwrap();
        assert!(out.get(&[0, 4, 4]).unwrap() < 0.2);
        assert!((out.sum() - img.sum()).abs() < 1e-4); // mass preserved in interior
    }

    #[test]
    fn backward_adjoint_property() {
        let lap = Lap::new(32).unwrap();
        let mut rng = TensorRng::seed_from_u64(2);
        let x = rng.uniform(&[3, 10, 10], -1.0, 1.0);
        let y = rng.uniform(&[3, 10, 10], -1.0, 1.0);
        let lhs = lap.apply(&x).unwrap().dot(&y).unwrap();
        let rhs = x.dot(&lap.backward(&x, &y).unwrap()).unwrap();
        assert!((lhs - rhs).abs() < 1e-3);
    }

    #[test]
    fn is_linear_and_named() {
        let lap = Lap::new(16).unwrap();
        assert!(lap.is_linear());
        assert_eq!(lap.name(), "LAP(16)");
        assert_eq!(lap.np(), 16);
    }
}
