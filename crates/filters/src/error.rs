use std::error::Error;
use std::fmt;

use fademl_tensor::TensorError;

/// Error type for filter construction and application.
#[derive(Debug)]
#[non_exhaustive]
pub enum FilterError {
    /// An underlying tensor operation failed.
    Tensor(TensorError),
    /// A filter parameter was invalid (e.g. `np = 0`, even median window).
    InvalidParameter {
        /// Human-readable description of the invalid value.
        reason: String,
    },
    /// The input tensor was neither `[C, H, W]` nor `[N, C, H, W]`.
    UnsupportedRank {
        /// The rank that was provided.
        actual: usize,
    },
    /// The kernel geometry leaves at least one pixel with every tap out
    /// of bounds, so border renormalization would divide by zero and
    /// emit `inf`/`NaN`.
    DegenerateGeometry {
        /// Which kernel/image combination is degenerate and where.
        reason: String,
    },
}

impl fmt::Display for FilterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FilterError::Tensor(e) => write!(f, "tensor error: {e}"),
            FilterError::InvalidParameter { reason } => {
                write!(f, "invalid filter parameter: {reason}")
            }
            FilterError::UnsupportedRank { actual } => write!(
                f,
                "filters accept [C, H, W] or [N, C, H, W] tensors, got rank {actual}"
            ),
            FilterError::DegenerateGeometry { reason } => {
                write!(f, "degenerate kernel geometry: {reason}")
            }
        }
    }
}

impl Error for FilterError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FilterError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for FilterError {
    fn from(e: TensorError) -> Self {
        FilterError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(FilterError::UnsupportedRank { actual: 2 }
            .to_string()
            .contains("rank 2"));
        assert!(FilterError::InvalidParameter {
            reason: "np = 0".into()
        }
        .to_string()
        .contains("np = 0"));
        let e = FilterError::from(TensorError::EmptyTensor { op: "x" });
        assert!(e.source().is_some());
        assert!(FilterError::DegenerateGeometry {
            reason: "all taps out of bounds at (0, 0)".into()
        }
        .to_string()
        .contains("degenerate"));
    }
}
