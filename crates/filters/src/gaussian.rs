use fademl_tensor::Tensor;

use crate::kernel::Kernel;
use crate::{Filter, FilterError, Result};

/// Gaussian blur — a third linear smoother beyond the paper's LAP/LAR,
/// used in the ablation benches (a weighted rather than uniform local
/// average).
///
/// The kernel is truncated at `3σ` and normalized.
#[derive(Debug, Clone)]
pub struct Gaussian {
    sigma: f32,
    kernel: Kernel,
}

impl Gaussian {
    /// Creates a Gaussian blur with standard deviation `sigma` (pixels).
    ///
    /// # Errors
    ///
    /// Returns [`FilterError::InvalidParameter`] for non-finite or
    /// non-positive `sigma`, or `sigma > 3.0` (kernel would exceed the
    /// supported window).
    pub fn new(sigma: f32) -> Result<Self> {
        if !sigma.is_finite() || sigma <= 0.0 {
            return Err(FilterError::InvalidParameter {
                reason: format!("gaussian sigma must be positive and finite, got {sigma}"),
            });
        }
        if sigma > 3.0 {
            return Err(FilterError::InvalidParameter {
                reason: format!("gaussian sigma {sigma} exceeds the supported maximum of 3.0"),
            });
        }
        let radius = (3.0 * sigma).ceil() as i32;
        let mut taps = Vec::default();
        for dy in -radius..=radius {
            for dx in -radius..=radius {
                let d2 = (dy * dy + dx * dx) as f32;
                let w = (-d2 / (2.0 * sigma * sigma)).exp();
                if w > 1e-6 {
                    taps.push((dy, dx, w));
                }
            }
        }
        Ok(Gaussian {
            sigma,
            kernel: Kernel::new(taps)?,
        })
    }

    /// The configured standard deviation.
    pub fn sigma(&self) -> f32 {
        self.sigma
    }
}

impl Filter for Gaussian {
    fn name(&self) -> String {
        format!("Gauss({:.2})", self.sigma)
    }

    fn apply(&self, image: &Tensor) -> Result<Tensor> {
        self.kernel.apply(image)
    }

    fn backward(&self, _input: &Tensor, grad_out: &Tensor) -> Result<Tensor> {
        self.kernel.backward(grad_out)
    }

    fn is_linear(&self) -> bool {
        true
    }

    fn clone_box(&self) -> Box<dyn Filter> {
        crate::filter::boxed(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fademl_tensor::TensorRng;

    #[test]
    fn construction_bounds() {
        assert!(Gaussian::new(0.0).is_err());
        assert!(Gaussian::new(-1.0).is_err());
        assert!(Gaussian::new(f32::NAN).is_err());
        assert!(Gaussian::new(4.0).is_err());
        assert!(Gaussian::new(1.0).is_ok());
    }

    #[test]
    fn centre_weight_dominates() {
        let g = Gaussian::new(0.8).unwrap();
        // Apply to an impulse: centre keeps the largest share.
        let mut img = Tensor::zeros(&[1, 11, 11]);
        img.set(&[0, 5, 5], 1.0).unwrap();
        let out = g.apply(&img).unwrap();
        let centre = out.get(&[0, 5, 5]).unwrap();
        assert_eq!(out.argmax().unwrap(), 5 * 11 + 5);
        assert!(centre > 0.1 && centre < 0.5);
    }

    #[test]
    fn wider_sigma_blurs_more() {
        let mut rng = TensorRng::seed_from_u64(1);
        let img = rng.uniform(&[1, 16, 16], 0.0, 1.0);
        let var = |t: &Tensor| {
            let m = t.mean();
            t.map(|x| (x - m) * (x - m)).mean()
        };
        let narrow = Gaussian::new(0.5).unwrap().apply(&img).unwrap();
        let wide = Gaussian::new(2.0).unwrap().apply(&img).unwrap();
        assert!(var(&wide) < var(&narrow));
    }

    #[test]
    fn adjoint_property() {
        let g = Gaussian::new(1.2).unwrap();
        let mut rng = TensorRng::seed_from_u64(2);
        let x = rng.uniform(&[1, 9, 9], -1.0, 1.0);
        let y = rng.uniform(&[1, 9, 9], -1.0, 1.0);
        let lhs = g.apply(&x).unwrap().dot(&y).unwrap();
        let rhs = x.dot(&g.backward(&x, &y).unwrap()).unwrap();
        assert!((lhs - rhs).abs() < 1e-3);
    }

    #[test]
    fn named_and_linear() {
        let g = Gaussian::new(1.5).unwrap();
        assert_eq!(g.name(), "Gauss(1.50)");
        assert!(g.is_linear());
        assert_eq!(g.sigma(), 1.5);
    }
}
