use fademl_tensor::Tensor;

use crate::kernel::Kernel;
use crate::{Filter, FilterError, Result};

/// **LAR** — local average with radius `r` (paper §III-A).
///
/// Each pixel becomes the uniform average over the disc of Euclidean
/// radius `r` pixels centred on it. The paper sweeps `r ∈ {1..5}`.
///
/// # Example
///
/// ```
/// use fademl_filters::{Filter, Lar};
/// use fademl_tensor::Tensor;
///
/// # fn main() -> Result<(), fademl_filters::FilterError> {
/// let lar = Lar::new(3)?;
/// assert_eq!(lar.name(), "LAR(3)");
/// let out = lar.apply(&Tensor::ones(&[3, 8, 8]))?;
/// assert_eq!(out.dims(), &[3, 8, 8]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Lar {
    radius: usize,
    kernel: Kernel,
}

impl Lar {
    /// The radii evaluated in the paper.
    pub const PAPER_SWEEP: [usize; 5] = [1, 2, 3, 4, 5];

    /// Creates a LAR filter with the given radius.
    ///
    /// # Errors
    ///
    /// Returns [`FilterError::InvalidParameter`] for `radius == 0` or
    /// `radius > 8`.
    pub fn new(radius: usize) -> Result<Self> {
        if radius == 0 {
            return Err(FilterError::InvalidParameter {
                reason: "LAR radius must be at least 1".into(),
            });
        }
        if radius > 8 {
            return Err(FilterError::InvalidParameter {
                reason: format!("LAR radius {radius} exceeds the supported maximum of 8"),
            });
        }
        let kernel = Kernel::uniform(Kernel::disc(radius))?;
        Ok(Lar { radius, kernel })
    }

    /// The configured radius.
    pub fn radius(&self) -> usize {
        self.radius
    }
}

impl Filter for Lar {
    fn name(&self) -> String {
        format!("LAR({})", self.radius)
    }

    fn apply(&self, image: &Tensor) -> Result<Tensor> {
        self.kernel.apply(image)
    }

    fn backward(&self, _input: &Tensor, grad_out: &Tensor) -> Result<Tensor> {
        self.kernel.backward(grad_out)
    }

    fn is_linear(&self) -> bool {
        true
    }

    fn clone_box(&self) -> Box<dyn Filter> {
        crate::filter::boxed(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fademl_tensor::TensorRng;

    #[test]
    fn construction_bounds() {
        assert!(Lar::new(0).is_err());
        assert!(Lar::new(9).is_err());
        for r in Lar::PAPER_SWEEP {
            assert!(Lar::new(r).is_ok(), "r = {r}");
        }
    }

    #[test]
    fn larger_radius_smooths_more() {
        let mut rng = TensorRng::seed_from_u64(1);
        let img = rng.uniform(&[1, 20, 20], 0.0, 1.0);
        let var = |t: &Tensor| {
            let m = t.mean();
            t.map(|x| (x - m) * (x - m)).mean()
        };
        let mut last = f32::INFINITY;
        for r in Lar::PAPER_SWEEP {
            let out = Lar::new(r).unwrap().apply(&img).unwrap();
            let v = var(&out);
            assert!(v < last, "variance did not drop at r = {r}");
            last = v;
        }
    }

    #[test]
    fn lar1_equals_lap4() {
        // The r=1 disc is the von Neumann neighbourhood plus centre —
        // identical to LAP(4) by construction.
        use crate::Lap;
        let mut rng = TensorRng::seed_from_u64(2);
        let img = rng.uniform(&[3, 9, 9], 0.0, 1.0);
        let a = Lar::new(1).unwrap().apply(&img).unwrap();
        let b = Lap::new(4).unwrap().apply(&img).unwrap();
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn backward_adjoint_property() {
        let lar = Lar::new(4).unwrap();
        let mut rng = TensorRng::seed_from_u64(3);
        let x = rng.uniform(&[2, 12, 12], -1.0, 1.0);
        let y = rng.uniform(&[2, 12, 12], -1.0, 1.0);
        let lhs = lar.apply(&x).unwrap().dot(&y).unwrap();
        let rhs = x.dot(&lar.backward(&x, &y).unwrap()).unwrap();
        assert!((lhs - rhs).abs() < 1e-3);
    }

    #[test]
    fn symmetric_kernel_backward_matches_forward_in_interior() {
        // For a symmetric kernel away from borders, Kᵀ == K; check on a
        // gradient concentrated in the interior.
        let lar = Lar::new(2).unwrap();
        let mut g = Tensor::zeros(&[1, 15, 15]);
        g.set(&[0, 7, 7], 1.0).unwrap();
        let fwd = lar.apply(&g).unwrap();
        let bwd = lar.backward(&g, &g).unwrap();
        for (a, b) in fwd.as_slice().iter().zip(bwd.as_slice()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn is_linear_and_named() {
        let lar = Lar::new(5).unwrap();
        assert!(lar.is_linear());
        assert_eq!(lar.name(), "LAR(5)");
        assert_eq!(lar.radius(), 5);
    }
}
