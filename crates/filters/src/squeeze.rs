//! Bit-depth feature squeezing (Xu et al., the paper's reference [10])
//! — a non-smoothing pre-processing defense included as an extension:
//! each channel value is quantized to `bits` bits, collapsing the tiny
//! perturbations gradient attacks rely on.
//!
//! Quantization has zero gradient almost everywhere, so
//! [`Filter::backward`] uses the straight-through estimator, exactly as
//! preprocessing-aware attacks (BPDA) treat it in practice.

use fademl_tensor::Tensor;

use crate::filter::check_image_rank;
use crate::{Filter, FilterError, Result};

/// Bit-depth reduction squeezer.
#[derive(Debug, Clone, Copy)]
pub struct BitDepth {
    bits: u8,
    levels: f32,
}

impl BitDepth {
    /// Creates a squeezer quantizing to `bits` bits per channel.
    ///
    /// # Errors
    ///
    /// Returns [`FilterError::InvalidParameter`] unless `1 ≤ bits ≤ 7`
    /// (8 bits is the identity on 8-bit sources).
    pub fn new(bits: u8) -> Result<Self> {
        if !(1..=7).contains(&bits) {
            return Err(FilterError::InvalidParameter {
                reason: format!("bit depth must be in 1..=7, got {bits}"),
            });
        }
        Ok(BitDepth {
            bits,
            levels: ((1u32 << bits) - 1) as f32,
        })
    }

    /// The configured bit depth.
    pub fn bits(&self) -> u8 {
        self.bits
    }
}

impl Filter for BitDepth {
    fn name(&self) -> String {
        format!("BitDepth({})", self.bits)
    }

    fn apply(&self, image: &Tensor) -> Result<Tensor> {
        check_image_rank(image)?;
        let levels = self.levels;
        Ok(image.map(|v| (v.clamp(0.0, 1.0) * levels).round() / levels))
    }

    fn backward(&self, input: &Tensor, grad_out: &Tensor) -> Result<Tensor> {
        check_image_rank(input)?;
        // Straight-through estimator: the quantizer's exact gradient is
        // zero a.e., which would blind the attack; pass the gradient
        // through unchanged instead (BPDA).
        Ok(grad_out.duplicate())
    }

    fn is_linear(&self) -> bool {
        false
    }

    fn clone_box(&self) -> Box<dyn Filter> {
        crate::filter::boxed(*self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fademl_tensor::TensorRng;

    #[test]
    fn construction_validates() {
        assert!(BitDepth::new(0).is_err());
        assert!(BitDepth::new(8).is_err());
        assert!(BitDepth::new(1).is_ok());
        assert_eq!(BitDepth::new(4).unwrap().bits(), 4);
    }

    #[test]
    fn one_bit_binarizes() {
        let f = BitDepth::new(1).unwrap();
        let img = Tensor::from_vec(vec![0.1, 0.4, 0.6, 0.9], [1, 2, 2].into()).unwrap();
        let out = f.apply(&img).unwrap();
        assert_eq!(out.as_slice(), &[0.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn quantization_levels_are_respected() {
        let f = BitDepth::new(2).unwrap(); // levels: 0, 1/3, 2/3, 1
        let mut rng = TensorRng::seed_from_u64(1);
        let img = rng.uniform(&[3, 8, 8], 0.0, 1.0);
        let out = f.apply(&img).unwrap();
        for &v in out.as_slice() {
            let scaled = v * 3.0;
            assert!(
                (scaled - scaled.round()).abs() < 1e-5,
                "{v} is not a 2-bit level"
            );
        }
    }

    #[test]
    fn kills_small_perturbations() {
        // A perturbation below half a quantization step vanishes.
        let f = BitDepth::new(3).unwrap(); // step = 1/7 ≈ 0.143
        let img = Tensor::full(&[1, 4, 4], 0.5);
        let perturbed = img.add_scalar(0.02);
        assert_eq!(f.apply(&img).unwrap(), f.apply(&perturbed).unwrap());
    }

    #[test]
    fn is_idempotent() {
        let f = BitDepth::new(4).unwrap();
        let mut rng = TensorRng::seed_from_u64(2);
        let img = rng.uniform(&[1, 6, 6], 0.0, 1.0);
        let once = f.apply(&img).unwrap();
        let twice = f.apply(&once).unwrap();
        assert_eq!(once, twice);
    }

    #[test]
    fn straight_through_backward() {
        let f = BitDepth::new(3).unwrap();
        let mut rng = TensorRng::seed_from_u64(3);
        let x = rng.uniform(&[1, 4, 4], 0.0, 1.0);
        let g = rng.uniform(&[1, 4, 4], -1.0, 1.0);
        assert_eq!(f.backward(&x, &g).unwrap(), g);
        assert!(!f.is_linear());
    }

    #[test]
    fn out_of_range_values_are_clamped_first() {
        let f = BitDepth::new(2).unwrap();
        let img = Tensor::from_vec(vec![-0.5, 1.5], [1, 1, 2].into()).unwrap();
        let out = f.apply(&img).unwrap();
        assert_eq!(out.as_slice(), &[0.0, 1.0]);
    }
}
