//! Shared machinery for linear neighbourhood filters.
//!
//! A [`Kernel`] is a set of `(dy, dx, weight)` taps. At image borders
//! the out-of-bounds taps are dropped and the remaining weights are
//! renormalized, so the filter stays an average (constant images map to
//! themselves everywhere). The backward pass scatters with the *same*
//! per-output renormalization, making it the exact adjoint of the
//! forward operator.
//!
//! The renormalization plane depends only on the kernel geometry and
//! the image size, so it is computed once per `(h, w)` and cached
//! inside the kernel. The parallel/serial dispatch is planned once per
//! `(planes, h, w, taps)` key through `fademl_tensor::plan`, and
//! application is split into a bounds-check-free
//! interior fast path (where every tap is in bounds and the divisor is
//! the full weight sum) and a clamped border path, and partitioned over
//! independent channel planes across the `fademl_tensor::par` pool —
//! per plane the arithmetic order is identical to the serial loop, so
//! results are bit-exact regardless of thread count.

use std::collections::HashMap;
use std::fmt;
use std::ops::Range;
use std::sync::Arc;

use fademl_tensor::plan::alloc;
use fademl_tensor::plan::blueprint::{
    checked_product, Blueprint, OpKind, ShapeClass, ShapeKey, DEFAULT_BLOCKING,
};
use fademl_tensor::plan::selector;
use fademl_tensor::{par, Tensor};

use crate::filter::check_image_rank;
use crate::{FilterError, Result};

/// Cached per-image-size renormalization data.
struct SumsPlane {
    /// Per-pixel in-bounds weight sums (`h × w`).
    sums: Vec<f32>,
    /// Full tap weight sum, accumulated in tap order — bitwise equal to
    /// `sums` at interior pixels, used by the fast path.
    full: f32,
    /// First pixel whose taps all fall out of bounds, if any. Such a
    /// geometry would divide by zero during renormalization.
    degenerate_at: Option<(usize, usize)>,
}

/// A linear neighbourhood-averaging kernel.
///
/// The tap list and the renormalization cache both live behind `Arc`s:
/// clones share them (the cache is geometry-only and immutable per
/// entry), and the parallel plane workers borrow the taps without
/// copying the list per call.
#[derive(Clone)]
pub struct Kernel {
    taps: Arc<Vec<(i32, i32, f32)>>,
    /// `(h, w) → SumsPlane` cache; geometry-only, so shared freely.
    sums_cache: SumsCache,
}

/// Shared `(h, w) → SumsPlane` renormalization cache.
type SumsCache = Arc<parking_lot::Mutex<HashMap<(usize, usize), Arc<SumsPlane>>>>;

impl fmt::Debug for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Kernel").field("taps", &self.taps).finish()
    }
}

impl PartialEq for Kernel {
    fn eq(&self, other: &Self) -> bool {
        self.taps == other.taps
    }
}

impl Kernel {
    /// Creates a kernel from taps. Weights are normalized to sum to 1.
    ///
    /// # Errors
    ///
    /// Returns [`FilterError::InvalidParameter`] for an empty tap list,
    /// non-positive weights, or duplicate offsets.
    pub fn new(taps: Vec<(i32, i32, f32)>) -> Result<Self> {
        if taps.is_empty() {
            return Err(FilterError::InvalidParameter {
                reason: "kernel needs at least one tap".into(),
            });
        }
        let mut seen = std::collections::HashSet::new();
        let mut sum = 0.0f32;
        for &(dy, dx, w) in &taps {
            if w <= 0.0 {
                return Err(FilterError::InvalidParameter {
                    reason: format!("non-positive tap weight {w} at ({dy}, {dx})"),
                });
            }
            if !seen.insert((dy, dx)) {
                return Err(FilterError::InvalidParameter {
                    reason: format!("duplicate tap offset ({dy}, {dx})"),
                });
            }
            sum += w;
        }
        let mut normalized = alloc::fresh_with(taps.len());
        for (dy, dx, w) in taps {
            normalized.push((dy, dx, w / sum));
        }
        Ok(Kernel {
            taps: Arc::new(normalized),
            sums_cache: Arc::new(parking_lot::Mutex::new(HashMap::new())),
        })
    }

    /// A uniform kernel over the given offsets.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Kernel::new`].
    pub fn uniform(offsets: Vec<(i32, i32)>) -> Result<Self> {
        let mut taps = alloc::fresh_with(offsets.len());
        for (dy, dx) in offsets {
            taps.push((dy, dx, 1.0));
        }
        Kernel::new(taps)
    }

    /// Number of taps.
    pub fn len(&self) -> usize {
        self.taps.len()
    }

    /// `true` if the kernel has no taps (never constructible).
    pub fn is_empty(&self) -> bool {
        self.taps.is_empty()
    }

    /// The taps (normalized weights).
    pub fn taps(&self) -> &[(i32, i32, f32)] {
        &self.taps
    }

    /// `true` if the tap set is symmetric under negation of offsets with
    /// equal weights (then the unrenormalized operator is self-adjoint).
    pub fn is_symmetric(&self) -> bool {
        self.taps.iter().all(|&(dy, dx, w)| {
            self.taps
                .iter()
                .any(|&(ey, ex, v)| ey == -dy && ex == -dx && (v - w).abs() < 1e-6)
        })
    }

    /// The cached renormalization plane for an `h × w` image, computing
    /// and inserting it on first use. Geometry-only: every subsequent
    /// `apply`/`backward` on the same image size reuses the plane
    /// instead of recomputing and reallocating it.
    ///
    /// # Errors
    ///
    /// Returns [`FilterError::DegenerateGeometry`] when some pixel has
    /// every tap out of bounds (renormalizing there would divide by
    /// zero and emit `inf`/`NaN`).
    fn sums_for(&self, h: usize, w: usize) -> Result<Arc<SumsPlane>> {
        let plane = {
            let mut cache = self.sums_cache.lock();
            Arc::clone(cache.entry((h, w)).or_insert_with(|| {
                let mut sums = alloc::fresh_vec(h * w);
                let mut degenerate_at = None;
                for y in 0..h as i32 {
                    for x in 0..w as i32 {
                        let mut s = 0.0;
                        for &(dy, dx, wt) in self.taps.iter() {
                            let (sy, sx) = (y + dy, x + dx);
                            if sy >= 0 && sy < h as i32 && sx >= 0 && sx < w as i32 {
                                s += wt;
                            }
                        }
                        if s == 0.0 && degenerate_at.is_none() {
                            degenerate_at = Some((y as usize, x as usize));
                        }
                        if let Some(slot) = sums.get_mut((y as usize) * w + x as usize) {
                            *slot = s;
                        }
                    }
                }
                let mut full = 0.0f32;
                for &(_, _, wt) in self.taps.iter() {
                    full += wt;
                }
                Arc::new(SumsPlane {
                    sums,
                    full,
                    degenerate_at,
                })
            }))
        };
        if let Some((y, x)) = plane.degenerate_at {
            return Err(FilterError::DegenerateGeometry {
                reason: format!(
                    "every tap of this {}-tap kernel falls outside a {h}x{w} plane at pixel ({y}, {x})",
                    self.taps.len()
                ),
            });
        }
        Ok(plane)
    }

    /// Interior rows/columns where *every* tap is in bounds (may be
    /// empty for kernels wider than the image).
    fn interior(&self, h: usize, w: usize) -> (Range<i32>, Range<i32>) {
        let mut min_dy = 0i32;
        let mut max_dy = 0i32;
        let mut min_dx = 0i32;
        let mut max_dx = 0i32;
        for &(dy, dx, _) in self.taps.iter() {
            min_dy = min_dy.min(dy);
            max_dy = max_dy.max(dy);
            min_dx = min_dx.min(dx);
            max_dx = max_dx.max(dx);
        }
        let y_lo = (-min_dy).max(0);
        let y_hi = (h as i32 - max_dy.max(0)).max(y_lo);
        let x_lo = (-min_dx).max(0);
        let x_hi = (w as i32 - max_dx.max(0)).max(x_lo);
        (y_lo..y_hi, x_lo..x_hi)
    }

    fn plane_geometry(image: &Tensor) -> (usize, usize, usize) {
        let dims = image.dims();
        let (h, w) = (dims[dims.len() - 2], dims[dims.len() - 1]);
        let planes = image.numel() / (h * w);
        (planes, h, w)
    }

    /// Applies the kernel to every channel plane of a `[C, H, W]` or
    /// `[N, C, H, W]` tensor.
    ///
    /// Planes are independent, so they are partitioned across the
    /// compute pool; within a plane the interior runs bounds-check-free
    /// and borders take the clamped path, in the same arithmetic order
    /// as the serial loop (bit-exact across thread counts).
    ///
    /// # Errors
    ///
    /// Returns [`FilterError::UnsupportedRank`] for other ranks, or
    /// [`FilterError::DegenerateGeometry`] when the kernel cannot reach
    /// any in-bounds pixel somewhere on a plane this small.
    pub fn apply(&self, image: &Tensor) -> Result<Tensor> {
        check_image_rank(image)?;
        let (planes, h, w) = Self::plane_geometry(image);
        let bp = self.plan(planes, h, w)?;
        let sums = self.sums_for(h, w)?;
        let (yr, xr) = self.interior(h, w);
        let src = image.as_slice();
        let out = self.run_planes(src, planes, h, w, sums, yr, xr, false, &bp);
        Ok(Tensor::from_vec(out, image.shape().duplicate())?)
    }

    /// Exact adjoint of [`Kernel::apply`]: scatters each output gradient
    /// through the same renormalized taps. Parallel/caching structure
    /// mirrors [`Kernel::apply`].
    ///
    /// # Errors
    ///
    /// Returns [`FilterError::UnsupportedRank`] for bad ranks or
    /// [`FilterError::DegenerateGeometry`] exactly as in the forward
    /// direction.
    pub fn backward(&self, grad_out: &Tensor) -> Result<Tensor> {
        check_image_rank(grad_out)?;
        let (planes, h, w) = Self::plane_geometry(grad_out);
        let bp = self.plan(planes, h, w)?;
        let sums = self.sums_for(h, w)?;
        let (yr, xr) = self.interior(h, w);
        let g = grad_out.as_slice();
        let out = self.run_planes(g, planes, h, w, sums, yr, xr, true, &bp);
        Ok(Tensor::from_vec(out, grad_out.shape().duplicate())?)
    }

    /// One cached blueprint per `(planes, h, w, taps)` key: the
    /// cap-checked output length and the hoisted parallel/serial
    /// decision, identical for the forward and adjoint directions.
    fn plan(&self, planes: usize, h: usize, w: usize) -> Result<Blueprint> {
        let key = ShapeKey::new(OpKind::FilterPlane, &[planes, h, w, self.taps.len()]);
        let taps = self.taps.len();
        let bp = selector::plan_with(key, move || {
            let out_len = checked_product("filter planes", &[planes, h, w])?;
            let work = out_len.saturating_mul(taps);
            Ok(Blueprint {
                key,
                class: ShapeClass::SmallSerial,
                blocking: DEFAULT_BLOCKING,
                parallel: par::should_parallelize(planes, work),
                rows: planes,
                scratch: 0,
                scratch2: 0,
                out_len,
            })
        })?;
        Ok(bp)
    }

    /// Runs the forward (`adjoint == false`) or backward plane kernel
    /// over all planes, dispatched serial-or-pool by the blueprint's
    /// hoisted decision.
    #[allow(clippy::too_many_arguments)]
    fn run_planes(
        &self,
        src: &[f32],
        planes: usize,
        h: usize,
        w: usize,
        sums: Arc<SumsPlane>,
        yr: Range<i32>,
        xr: Range<i32>,
        adjoint: bool,
        bp: &Blueprint,
    ) -> Vec<f32> {
        if !bp.parallel {
            let mut out = alloc::fresh_vec(bp.out_len);
            for p in 0..planes {
                let plane_src = &src[p * h * w..(p + 1) * h * w];
                let plane_dst = &mut out[p * h * w..(p + 1) * h * w];
                run_plane(
                    &self.taps, plane_src, plane_dst, h, w, &sums, &yr, &xr, adjoint,
                );
            }
            return out;
        }
        // Cross-thread buffers deliberately bypass the arena: a buffer
        // dropped on another thread would migrate into its pool.
        let src: Arc<Vec<f32>> = Arc::new(alloc::fresh_from(src));
        let taps = Arc::clone(&self.taps);
        let blocks = par::parallel_rows(bp.rows, move |range: Range<usize>| {
            let mut block = alloc::fresh_vec((range.end - range.start) * h * w);
            for (slot, p) in range.enumerate() {
                let plane_src = &src[p * h * w..(p + 1) * h * w];
                let plane_dst = &mut block[slot * h * w..(slot + 1) * h * w];
                run_plane(&taps, plane_src, plane_dst, h, w, &sums, &yr, &xr, adjoint);
            }
            block
        });
        let mut out = alloc::fresh_with(bp.out_len);
        for block in blocks {
            out.extend_from_slice(&block);
        }
        out
    }

    /// The `count` offsets nearest the origin (excluding it), ordered by
    /// Euclidean distance with deterministic tie-breaking, plus the
    /// origin itself. This is the LAP neighbourhood construction.
    pub fn nearest_neighbourhood(count: usize) -> Vec<(i32, i32)> {
        let mut candidates: Vec<(i32, i32)> = Vec::default();
        // A window comfortably larger than any np we use (np=64 fits in
        // a 9×9 ring set minus centre = 80 candidates; use radius 8).
        let r = 8i32;
        for dy in -r..=r {
            for dx in -r..=r {
                if dy != 0 || dx != 0 {
                    candidates.push((dy, dx));
                }
            }
        }
        candidates.sort_by(|a, b| {
            let da = a.0 * a.0 + a.1 * a.1;
            let db = b.0 * b.0 + b.1 * b.1;
            da.cmp(&db).then(a.0.cmp(&b.0)).then(a.1.cmp(&b.1))
        });
        let mut offsets = alloc::fresh_with(count + 1);
        offsets.push((0, 0));
        offsets.extend(candidates.into_iter().take(count));
        offsets
    }

    /// Number of cached renormalization planes (test/introspection aid).
    pub fn cached_geometries(&self) -> usize {
        self.sums_cache.lock().len()
    }

    /// All offsets within Euclidean distance `radius` of the origin
    /// (inclusive), the LAR disc construction.
    pub fn disc(radius: usize) -> Vec<(i32, i32)> {
        let r = radius as i32;
        let r2 = r * r;
        let mut offsets = Vec::default();
        for dy in -r..=r {
            for dx in -r..=r {
                if dy * dy + dx * dx <= r2 {
                    offsets.push((dy, dx));
                }
            }
        }
        offsets
    }
}

/// Gather (forward) for one border pixel: taps falling outside the
/// plane are skipped and the accumulator is divided by that pixel's
/// in-bounds weight sum.
#[inline]
fn border_gather(
    taps: &[(i32, i32, f32)],
    src: &[f32],
    h: i32,
    w_i: i32,
    w: usize,
    y: i32,
    x: i32,
) -> f32 {
    let mut acc = 0.0f32;
    for &(dy, dx, wt) in taps {
        let (sy, sx) = (y + dy, x + dx);
        if sy >= 0 && sy < h && sx >= 0 && sx < w_i {
            acc += wt * src[(sy as usize) * w + sx as usize];
        }
    }
    acc
}

/// One plane of the forward or adjoint operator. The interior (`yr` ×
/// `xr`) runs without per-tap bounds checks and divides by the full
/// weight sum (bitwise equal to the cached per-pixel sum there); the
/// border runs the clamped path against `sums`. Tap iteration order —
/// and therefore every accumulation order — matches the reference
/// serial loop exactly.
#[allow(clippy::too_many_arguments)]
fn run_plane(
    taps: &[(i32, i32, f32)],
    src: &[f32],
    dst: &mut [f32],
    h: usize,
    w: usize,
    sums: &SumsPlane,
    yr: &Range<i32>,
    xr: &Range<i32>,
    adjoint: bool,
) {
    let (h_i, w_i) = (h as i32, w as i32);
    for y in 0..h_i {
        let fast_row = yr.contains(&y);
        let row_base = (y as usize) * w;
        let (x_lo, x_hi) = if fast_row {
            (xr.start, xr.end)
        } else {
            (0, 0) // whole row takes the border path
        };
        for x in 0..x_lo {
            run_border_pixel(taps, src, dst, h_i, w_i, w, y, x, sums, adjoint);
        }
        if !adjoint {
            for x in x_lo..x_hi {
                let mut acc = 0.0f32;
                for &(dy, dx, wt) in taps {
                    acc += wt * src[((y + dy) as usize) * w + (x + dx) as usize];
                }
                dst[row_base + x as usize] = acc / sums.full;
            }
        } else {
            for x in x_lo..x_hi {
                let scaled = src[row_base + x as usize] / sums.full;
                for &(dy, dx, wt) in taps {
                    dst[((y + dy) as usize) * w + (x + dx) as usize] += wt * scaled;
                }
            }
        }
        for x in x_hi.max(0)..w_i {
            run_border_pixel(taps, src, dst, h_i, w_i, w, y, x, sums, adjoint);
        }
    }
}

#[inline]
#[allow(clippy::too_many_arguments)]
fn run_border_pixel(
    taps: &[(i32, i32, f32)],
    src: &[f32],
    dst: &mut [f32],
    h_i: i32,
    w_i: i32,
    w: usize,
    y: i32,
    x: i32,
    sums: &SumsPlane,
    adjoint: bool,
) {
    let idx = (y as usize) * w + x as usize;
    if !adjoint {
        let acc = border_gather(taps, src, h_i, w_i, w, y, x);
        dst[idx] = acc / sums.sums[idx];
    } else {
        let scaled = src[idx] / sums.sums[idx];
        for &(dy, dx, wt) in taps {
            let (sy, sx) = (y + dy, x + dx);
            if sy >= 0 && sy < h_i && sx >= 0 && sx < w_i {
                dst[(sy as usize) * w + sx as usize] += wt * scaled;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fademl_tensor::TensorRng;
    use proptest::prelude::*;

    fn box3() -> Kernel {
        Kernel::uniform(Kernel::disc(1)).unwrap()
    }

    #[test]
    fn validation() {
        assert!(Kernel::new(vec![]).is_err());
        assert!(Kernel::new(vec![(0, 0, -1.0)]).is_err());
        assert!(Kernel::new(vec![(0, 0, 1.0), (0, 0, 1.0)]).is_err());
        assert!(Kernel::new(vec![(0, 0, 2.0)]).is_ok());
    }

    #[test]
    fn weights_normalized() {
        let k = Kernel::new(vec![(0, 0, 2.0), (0, 1, 2.0)]).unwrap();
        let total: f32 = k.taps().iter().map(|t| t.2).sum();
        assert!((total - 1.0).abs() < 1e-6);
    }

    #[test]
    fn constant_image_is_fixed_point() {
        // Renormalization at borders makes averaging exact everywhere.
        let k = box3();
        let img = Tensor::full(&[3, 5, 7], 0.42);
        let out = k.apply(&img).unwrap();
        for &v in out.as_slice() {
            assert!((v - 0.42).abs() < 1e-6);
        }
    }

    #[test]
    fn smoothing_reduces_variance() {
        let mut rng = TensorRng::seed_from_u64(1);
        let img = rng.uniform(&[1, 16, 16], 0.0, 1.0);
        let out = box3().apply(&img).unwrap();
        let var = |t: &Tensor| {
            let m = t.mean();
            t.map(|x| (x - m) * (x - m)).mean()
        };
        assert!(var(&out) < var(&img));
    }

    #[test]
    fn preserves_mean_approximately() {
        let mut rng = TensorRng::seed_from_u64(2);
        let img = rng.uniform(&[1, 12, 12], 0.0, 1.0);
        let out = box3().apply(&img).unwrap();
        assert!((out.mean() - img.mean()).abs() < 0.02);
    }

    #[test]
    fn backward_is_exact_adjoint() {
        // <K x, y> == <x, Kᵀ y> for random x, y.
        let k = Kernel::uniform(Kernel::nearest_neighbourhood(16)).unwrap();
        let mut rng = TensorRng::seed_from_u64(3);
        let x = rng.uniform(&[2, 7, 6], -1.0, 1.0);
        let y = rng.uniform(&[2, 7, 6], -1.0, 1.0);
        let lhs = k.apply(&x).unwrap().dot(&y).unwrap();
        let rhs = x.dot(&k.backward(&y).unwrap()).unwrap();
        assert!((lhs - rhs).abs() < 1e-4, "{lhs} vs {rhs}");
    }

    #[test]
    fn batch_equals_per_image() {
        let k = box3();
        let mut rng = TensorRng::seed_from_u64(4);
        let a = rng.uniform(&[3, 8, 8], 0.0, 1.0);
        let b = rng.uniform(&[3, 8, 8], 0.0, 1.0);
        let batch = Tensor::stack(&[a.clone(), b.clone()]).unwrap();
        let batched = k.apply(&batch).unwrap();
        assert_eq!(batched.index_batch(0).unwrap(), k.apply(&a).unwrap());
        assert_eq!(batched.index_batch(1).unwrap(), k.apply(&b).unwrap());
    }

    #[test]
    fn nearest_neighbourhood_structure() {
        let n4 = Kernel::nearest_neighbourhood(4);
        assert_eq!(n4.len(), 5); // centre + 4
        assert!(n4.contains(&(0, 0)));
        assert!(n4.contains(&(0, 1)) && n4.contains(&(1, 0)));
        assert!(!n4.contains(&(1, 1))); // diagonal is farther
        let n8 = Kernel::nearest_neighbourhood(8);
        assert!(n8.contains(&(1, 1))); // Moore neighbourhood
                                       // Monotone growth and determinism.
        assert_eq!(Kernel::nearest_neighbourhood(64).len(), 65);
        assert_eq!(n8, Kernel::nearest_neighbourhood(8));
    }

    #[test]
    fn disc_sizes() {
        assert_eq!(Kernel::disc(0).len(), 1);
        assert_eq!(Kernel::disc(1).len(), 5); // centre + von Neumann
        assert_eq!(Kernel::disc(2).len(), 13);
        // Discs grow with radius.
        for r in 1..5 {
            assert!(Kernel::disc(r + 1).len() > Kernel::disc(r).len());
        }
    }

    #[test]
    fn disc_kernels_are_symmetric() {
        for r in 1..=5 {
            let k = Kernel::uniform(Kernel::disc(r)).unwrap();
            assert!(k.is_symmetric(), "disc({r}) not symmetric");
        }
    }

    #[test]
    fn rejects_bad_rank() {
        let k = box3();
        assert!(k.apply(&Tensor::ones(&[4, 4])).is_err());
        assert!(k.backward(&Tensor::ones(&[4])).is_err());
    }

    #[test]
    fn renorm_plane_is_cached_per_geometry() {
        let k = box3();
        assert_eq!(k.cached_geometries(), 0);
        let img = Tensor::ones(&[1, 6, 6]);
        k.apply(&img).unwrap();
        assert_eq!(k.cached_geometries(), 1);
        // Same geometry → no new plane; both directions share it.
        k.apply(&img).unwrap();
        k.backward(&img).unwrap();
        assert_eq!(k.cached_geometries(), 1);
        k.apply(&Tensor::ones(&[1, 7, 7])).unwrap();
        assert_eq!(k.cached_geometries(), 2);
        // Clones share the already-computed planes.
        assert_eq!(k.clone().cached_geometries(), 2);
    }

    #[test]
    fn degenerate_geometry_is_typed_error_not_nan() {
        // Both taps sit 3 rows away, so on a 2×2 plane no pixel can
        // reach either — the old code divided by zero there.
        let k = Kernel::uniform(vec![(3, 0), (-3, 0)]).unwrap();
        let img = Tensor::ones(&[1, 2, 2]);
        for result in [k.apply(&img), k.backward(&img)] {
            match result {
                Err(FilterError::DegenerateGeometry { reason }) => {
                    assert!(reason.contains("2x2"), "unhelpful reason: {reason}");
                }
                other => panic!("expected DegenerateGeometry, got {other:?}"),
            }
        }
        // A big enough plane keeps the same kernel valid.
        assert!(k.apply(&Tensor::ones(&[1, 8, 8])).is_ok());
    }

    #[test]
    fn interior_fast_path_matches_checked_reference() {
        // Asymmetric kernel so interior bounds differ per side; compare
        // against an all-checked reference computed tap-by-tap.
        let k = Kernel::new(vec![(-2, 0, 1.0), (0, 1, 2.0), (1, -1, 0.5), (0, 0, 1.0)]).unwrap();
        let mut rng = TensorRng::seed_from_u64(11);
        let img = rng.uniform(&[2, 9, 8], -1.0, 1.0);
        let out = k.apply(&img).unwrap();
        let (h, w) = (9i32, 8i32);
        let src = img.as_slice();
        for p in 0..2usize {
            let base = p * 72;
            for y in 0..h {
                for x in 0..w {
                    let mut acc = 0.0f32;
                    let mut sum = 0.0f32;
                    for &(dy, dx, wt) in k.taps() {
                        let (sy, sx) = (y + dy, x + dx);
                        if sy >= 0 && sy < h && sx >= 0 && sx < w {
                            acc += wt * src[base + (sy * w + sx) as usize];
                            sum += wt;
                        }
                    }
                    let idx = base + (y * w + x) as usize;
                    let expect = acc / sum;
                    assert_eq!(
                        out.as_slice()[idx].to_bits(),
                        expect.to_bits(),
                        "mismatch at plane {p} ({y}, {x})"
                    );
                }
            }
        }
    }

    proptest! {
        /// Output of an averaging kernel stays within the input range.
        #[test]
        fn output_within_input_range(seed in 0u64..500) {
            let k = box3();
            let mut rng = TensorRng::seed_from_u64(seed);
            let img = rng.uniform(&[1, 6, 6], -2.0, 3.0);
            let out = k.apply(&img).unwrap();
            prop_assert!(out.max().unwrap() <= img.max().unwrap() + 1e-5);
            prop_assert!(out.min().unwrap() >= img.min().unwrap() - 1e-5);
        }

        /// Linearity: K(a·x + b·y) == a·Kx + b·Ky.
        #[test]
        fn kernel_is_linear(seed in 0u64..500, a in -2.0f32..2.0, b in -2.0f32..2.0) {
            let k = box3();
            let mut rng = TensorRng::seed_from_u64(seed);
            let x = rng.uniform(&[1, 5, 5], -1.0, 1.0);
            let y = rng.uniform(&[1, 5, 5], -1.0, 1.0);
            let lhs = k.apply(&x.scale(a).add(&y.scale(b)).unwrap()).unwrap();
            let rhs = k.apply(&x).unwrap().scale(a).add(&k.apply(&y).unwrap().scale(b)).unwrap();
            for (p, q) in lhs.as_slice().iter().zip(rhs.as_slice()) {
                prop_assert!((p - q).abs() < 1e-4);
            }
        }
    }
}
