//! Shared machinery for linear neighbourhood filters.
//!
//! A [`Kernel`] is a set of `(dy, dx, weight)` taps. At image borders
//! the out-of-bounds taps are dropped and the remaining weights are
//! renormalized, so the filter stays an average (constant images map to
//! themselves everywhere). The backward pass scatters with the *same*
//! per-output renormalization, making it the exact adjoint of the
//! forward operator.

use fademl_tensor::Tensor;

use crate::filter::check_image_rank;
use crate::{FilterError, Result};

/// A linear neighbourhood-averaging kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct Kernel {
    taps: Vec<(i32, i32, f32)>,
}

impl Kernel {
    /// Creates a kernel from taps. Weights are normalized to sum to 1.
    ///
    /// # Errors
    ///
    /// Returns [`FilterError::InvalidParameter`] for an empty tap list,
    /// non-positive weights, or duplicate offsets.
    pub fn new(taps: Vec<(i32, i32, f32)>) -> Result<Self> {
        if taps.is_empty() {
            return Err(FilterError::InvalidParameter {
                reason: "kernel needs at least one tap".into(),
            });
        }
        let mut seen = std::collections::HashSet::new();
        let mut sum = 0.0f32;
        for &(dy, dx, w) in &taps {
            if w <= 0.0 {
                return Err(FilterError::InvalidParameter {
                    reason: format!("non-positive tap weight {w} at ({dy}, {dx})"),
                });
            }
            if !seen.insert((dy, dx)) {
                return Err(FilterError::InvalidParameter {
                    reason: format!("duplicate tap offset ({dy}, {dx})"),
                });
            }
            sum += w;
        }
        let taps = taps
            .into_iter()
            .map(|(dy, dx, w)| (dy, dx, w / sum))
            .collect();
        Ok(Kernel { taps })
    }

    /// A uniform kernel over the given offsets.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Kernel::new`].
    pub fn uniform(offsets: Vec<(i32, i32)>) -> Result<Self> {
        Kernel::new(offsets.into_iter().map(|(dy, dx)| (dy, dx, 1.0)).collect())
    }

    /// Number of taps.
    pub fn len(&self) -> usize {
        self.taps.len()
    }

    /// `true` if the kernel has no taps (never constructible).
    pub fn is_empty(&self) -> bool {
        self.taps.is_empty()
    }

    /// The taps (normalized weights).
    pub fn taps(&self) -> &[(i32, i32, f32)] {
        &self.taps
    }

    /// `true` if the tap set is symmetric under negation of offsets with
    /// equal weights (then the unrenormalized operator is self-adjoint).
    pub fn is_symmetric(&self) -> bool {
        self.taps.iter().all(|&(dy, dx, w)| {
            self.taps
                .iter()
                .any(|&(ey, ex, v)| ey == -dy && ex == -dx && (v - w).abs() < 1e-6)
        })
    }

    /// Per-pixel in-bounds weight sums for an `h × w` plane.
    fn weight_sums(&self, h: usize, w: usize) -> Vec<f32> {
        let mut sums = vec![0.0f32; h * w];
        for y in 0..h as i32 {
            for x in 0..w as i32 {
                let mut s = 0.0;
                for &(dy, dx, wt) in &self.taps {
                    let (sy, sx) = (y + dy, x + dx);
                    if sy >= 0 && sy < h as i32 && sx >= 0 && sx < w as i32 {
                        s += wt;
                    }
                }
                sums[(y as usize) * w + x as usize] = s;
            }
        }
        sums
    }

    fn plane_geometry(image: &Tensor) -> (usize, usize, usize) {
        let dims = image.dims();
        let (h, w) = (dims[dims.len() - 2], dims[dims.len() - 1]);
        let planes = image.numel() / (h * w);
        (planes, h, w)
    }

    /// Applies the kernel to every channel plane of a `[C, H, W]` or
    /// `[N, C, H, W]` tensor.
    ///
    /// # Errors
    ///
    /// Returns [`FilterError::UnsupportedRank`] for other ranks.
    pub fn apply(&self, image: &Tensor) -> Result<Tensor> {
        check_image_rank(image)?;
        let (planes, h, w) = Self::plane_geometry(image);
        let sums = self.weight_sums(h, w);
        let src = image.as_slice();
        let mut out = vec![0.0f32; src.len()];
        for p in 0..planes {
            let base = p * h * w;
            for y in 0..h as i32 {
                for x in 0..w as i32 {
                    let mut acc = 0.0f32;
                    for &(dy, dx, wt) in &self.taps {
                        let (sy, sx) = (y + dy, x + dx);
                        if sy >= 0 && sy < h as i32 && sx >= 0 && sx < w as i32 {
                            acc += wt * src[base + (sy as usize) * w + sx as usize];
                        }
                    }
                    let idx = base + (y as usize) * w + x as usize;
                    out[idx] = acc / sums[idx - base];
                }
            }
        }
        Ok(Tensor::from_vec(out, image.shape().clone())?)
    }

    /// Exact adjoint of [`Kernel::apply`]: scatters each output gradient
    /// through the same renormalized taps.
    ///
    /// # Errors
    ///
    /// Returns [`FilterError::UnsupportedRank`] for bad ranks or a shape
    /// error when `grad_out` differs from the forward shape.
    pub fn backward(&self, grad_out: &Tensor) -> Result<Tensor> {
        check_image_rank(grad_out)?;
        let (planes, h, w) = Self::plane_geometry(grad_out);
        let sums = self.weight_sums(h, w);
        let g = grad_out.as_slice();
        let mut out = vec![0.0f32; g.len()];
        for p in 0..planes {
            let base = p * h * w;
            for y in 0..h as i32 {
                for x in 0..w as i32 {
                    let idx = base + (y as usize) * w + x as usize;
                    let scaled = g[idx] / sums[idx - base];
                    for &(dy, dx, wt) in &self.taps {
                        let (sy, sx) = (y + dy, x + dx);
                        if sy >= 0 && sy < h as i32 && sx >= 0 && sx < w as i32 {
                            out[base + (sy as usize) * w + sx as usize] += wt * scaled;
                        }
                    }
                }
            }
        }
        Ok(Tensor::from_vec(out, grad_out.shape().clone())?)
    }

    /// The `count` offsets nearest the origin (excluding it), ordered by
    /// Euclidean distance with deterministic tie-breaking, plus the
    /// origin itself. This is the LAP neighbourhood construction.
    pub fn nearest_neighbourhood(count: usize) -> Vec<(i32, i32)> {
        let mut candidates: Vec<(i32, i32)> = Vec::new();
        // A window comfortably larger than any np we use (np=64 fits in
        // a 9×9 ring set minus centre = 80 candidates; use radius 8).
        let r = 8i32;
        for dy in -r..=r {
            for dx in -r..=r {
                if dy != 0 || dx != 0 {
                    candidates.push((dy, dx));
                }
            }
        }
        candidates.sort_by(|a, b| {
            let da = a.0 * a.0 + a.1 * a.1;
            let db = b.0 * b.0 + b.1 * b.1;
            da.cmp(&db).then(a.0.cmp(&b.0)).then(a.1.cmp(&b.1))
        });
        let mut offsets = vec![(0, 0)];
        offsets.extend(candidates.into_iter().take(count));
        offsets
    }

    /// All offsets within Euclidean distance `radius` of the origin
    /// (inclusive), the LAR disc construction.
    pub fn disc(radius: usize) -> Vec<(i32, i32)> {
        let r = radius as i32;
        let r2 = r * r;
        let mut offsets = Vec::new();
        for dy in -r..=r {
            for dx in -r..=r {
                if dy * dy + dx * dx <= r2 {
                    offsets.push((dy, dx));
                }
            }
        }
        offsets
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fademl_tensor::TensorRng;
    use proptest::prelude::*;

    fn box3() -> Kernel {
        Kernel::uniform(Kernel::disc(1)).unwrap()
    }

    #[test]
    fn validation() {
        assert!(Kernel::new(vec![]).is_err());
        assert!(Kernel::new(vec![(0, 0, -1.0)]).is_err());
        assert!(Kernel::new(vec![(0, 0, 1.0), (0, 0, 1.0)]).is_err());
        assert!(Kernel::new(vec![(0, 0, 2.0)]).is_ok());
    }

    #[test]
    fn weights_normalized() {
        let k = Kernel::new(vec![(0, 0, 2.0), (0, 1, 2.0)]).unwrap();
        let total: f32 = k.taps().iter().map(|t| t.2).sum();
        assert!((total - 1.0).abs() < 1e-6);
    }

    #[test]
    fn constant_image_is_fixed_point() {
        // Renormalization at borders makes averaging exact everywhere.
        let k = box3();
        let img = Tensor::full(&[3, 5, 7], 0.42);
        let out = k.apply(&img).unwrap();
        for &v in out.as_slice() {
            assert!((v - 0.42).abs() < 1e-6);
        }
    }

    #[test]
    fn smoothing_reduces_variance() {
        let mut rng = TensorRng::seed_from_u64(1);
        let img = rng.uniform(&[1, 16, 16], 0.0, 1.0);
        let out = box3().apply(&img).unwrap();
        let var = |t: &Tensor| {
            let m = t.mean();
            t.map(|x| (x - m) * (x - m)).mean()
        };
        assert!(var(&out) < var(&img));
    }

    #[test]
    fn preserves_mean_approximately() {
        let mut rng = TensorRng::seed_from_u64(2);
        let img = rng.uniform(&[1, 12, 12], 0.0, 1.0);
        let out = box3().apply(&img).unwrap();
        assert!((out.mean() - img.mean()).abs() < 0.02);
    }

    #[test]
    fn backward_is_exact_adjoint() {
        // <K x, y> == <x, Kᵀ y> for random x, y.
        let k = Kernel::uniform(Kernel::nearest_neighbourhood(16)).unwrap();
        let mut rng = TensorRng::seed_from_u64(3);
        let x = rng.uniform(&[2, 7, 6], -1.0, 1.0);
        let y = rng.uniform(&[2, 7, 6], -1.0, 1.0);
        let lhs = k.apply(&x).unwrap().dot(&y).unwrap();
        let rhs = x.dot(&k.backward(&y).unwrap()).unwrap();
        assert!((lhs - rhs).abs() < 1e-4, "{lhs} vs {rhs}");
    }

    #[test]
    fn batch_equals_per_image() {
        let k = box3();
        let mut rng = TensorRng::seed_from_u64(4);
        let a = rng.uniform(&[3, 8, 8], 0.0, 1.0);
        let b = rng.uniform(&[3, 8, 8], 0.0, 1.0);
        let batch = Tensor::stack(&[a.clone(), b.clone()]).unwrap();
        let batched = k.apply(&batch).unwrap();
        assert_eq!(batched.index_batch(0).unwrap(), k.apply(&a).unwrap());
        assert_eq!(batched.index_batch(1).unwrap(), k.apply(&b).unwrap());
    }

    #[test]
    fn nearest_neighbourhood_structure() {
        let n4 = Kernel::nearest_neighbourhood(4);
        assert_eq!(n4.len(), 5); // centre + 4
        assert!(n4.contains(&(0, 0)));
        assert!(n4.contains(&(0, 1)) && n4.contains(&(1, 0)));
        assert!(!n4.contains(&(1, 1))); // diagonal is farther
        let n8 = Kernel::nearest_neighbourhood(8);
        assert!(n8.contains(&(1, 1))); // Moore neighbourhood
                                       // Monotone growth and determinism.
        assert_eq!(Kernel::nearest_neighbourhood(64).len(), 65);
        assert_eq!(n8, Kernel::nearest_neighbourhood(8));
    }

    #[test]
    fn disc_sizes() {
        assert_eq!(Kernel::disc(0).len(), 1);
        assert_eq!(Kernel::disc(1).len(), 5); // centre + von Neumann
        assert_eq!(Kernel::disc(2).len(), 13);
        // Discs grow with radius.
        for r in 1..5 {
            assert!(Kernel::disc(r + 1).len() > Kernel::disc(r).len());
        }
    }

    #[test]
    fn disc_kernels_are_symmetric() {
        for r in 1..=5 {
            let k = Kernel::uniform(Kernel::disc(r)).unwrap();
            assert!(k.is_symmetric(), "disc({r}) not symmetric");
        }
    }

    #[test]
    fn rejects_bad_rank() {
        let k = box3();
        assert!(k.apply(&Tensor::ones(&[4, 4])).is_err());
        assert!(k.backward(&Tensor::ones(&[4])).is_err());
    }

    proptest! {
        /// Output of an averaging kernel stays within the input range.
        #[test]
        fn output_within_input_range(seed in 0u64..500) {
            let k = box3();
            let mut rng = TensorRng::seed_from_u64(seed);
            let img = rng.uniform(&[1, 6, 6], -2.0, 3.0);
            let out = k.apply(&img).unwrap();
            prop_assert!(out.max().unwrap() <= img.max().unwrap() + 1e-5);
            prop_assert!(out.min().unwrap() >= img.min().unwrap() - 1e-5);
        }

        /// Linearity: K(a·x + b·y) == a·Kx + b·Ky.
        #[test]
        fn kernel_is_linear(seed in 0u64..500, a in -2.0f32..2.0, b in -2.0f32..2.0) {
            let k = box3();
            let mut rng = TensorRng::seed_from_u64(seed);
            let x = rng.uniform(&[1, 5, 5], -1.0, 1.0);
            let y = rng.uniform(&[1, 5, 5], -1.0, 1.0);
            let lhs = k.apply(&x.scale(a).add(&y.scale(b)).unwrap()).unwrap();
            let rhs = k.apply(&x).unwrap().scale(a).add(&k.apply(&y).unwrap().scale(b)).unwrap();
            for (p, q) in lhs.as_slice().iter().zip(rhs.as_slice()) {
                prop_assert!((p - q).abs() < 1e-4);
            }
        }
    }
}
