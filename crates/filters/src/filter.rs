use std::fmt::Debug;

use fademl_tensor::Tensor;

use crate::{FilterError, Result};

/// A pre-processing image filter with a backward (vector-Jacobian
/// product) pass.
///
/// Filters accept `[C, H, W]` single images or `[N, C, H, W]` batches
/// and operate on each channel independently.
///
/// For linear filters ([`Filter::is_linear`] `== true`) the backward
/// pass is the exact adjoint; for non-linear filters it is a documented
/// approximation (straight-through / BPDA), mirroring how real
/// preprocessing-aware attacks handle non-differentiable defenses.
pub trait Filter: Debug + Send + Sync {
    /// Human-readable name including parameters, e.g. `"LAP(32)"`.
    fn name(&self) -> String;

    /// Applies the filter.
    ///
    /// # Errors
    ///
    /// Returns [`FilterError::UnsupportedRank`] for tensors that are not
    /// rank 3 or 4.
    fn apply(&self, image: &Tensor) -> Result<Tensor>;

    /// Vector-Jacobian product: maps `∂L/∂output` to `∂L/∂input` at the
    /// given input point.
    ///
    /// For linear filters the Jacobian is constant, so `input` is only
    /// used for its shape; non-linear filters may inspect it.
    ///
    /// # Errors
    ///
    /// Returns [`FilterError::UnsupportedRank`] for tensors that are not
    /// rank 3 or 4, or a shape error if `grad_out` and `input` disagree.
    fn backward(&self, input: &Tensor, grad_out: &Tensor) -> Result<Tensor>;

    /// Whether the filter is a linear operator (making
    /// [`Filter::backward`] exact).
    fn is_linear(&self) -> bool;

    /// Clones into a boxed trait object.
    fn clone_box(&self) -> Box<dyn Filter>;
}

impl Clone for Box<dyn Filter> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// The one `Box::new` chokepoint for filter trait objects: every
/// `clone_box` implementation and construction site routes through
/// here, keeping the boxing allocation out of the per-filter files.
pub fn boxed<F: Filter + 'static>(f: F) -> Box<dyn Filter> {
    Box::new(f)
}

/// Validates that `t` is `[C, H, W]` or `[N, C, H, W]`.
pub(crate) fn check_image_rank(t: &Tensor) -> Result<()> {
    match t.rank() {
        3 | 4 => Ok(()),
        actual => Err(FilterError::UnsupportedRank { actual }),
    }
}

/// The identity filter (no preprocessing) — the paper's "No Filter"
/// column.
#[derive(Debug, Clone, Copy, Default)]
pub struct Identity;

impl Identity {
    /// Creates the identity filter.
    pub fn new() -> Self {
        Identity
    }
}

impl Filter for Identity {
    fn name(&self) -> String {
        "None".to_owned()
    }

    fn apply(&self, image: &Tensor) -> Result<Tensor> {
        check_image_rank(image)?;
        Ok(image.duplicate())
    }

    fn backward(&self, input: &Tensor, grad_out: &Tensor) -> Result<Tensor> {
        check_image_rank(input)?;
        Ok(grad_out.duplicate())
    }

    fn is_linear(&self) -> bool {
        true
    }

    fn clone_box(&self) -> Box<dyn Filter> {
        boxed(*self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_passes_through() {
        let f = Identity::new();
        let x = Tensor::ones(&[3, 4, 4]);
        assert_eq!(f.apply(&x).unwrap(), x);
        let g = Tensor::full(&[3, 4, 4], 0.5);
        assert_eq!(f.backward(&x, &g).unwrap(), g);
        assert!(f.is_linear());
        assert_eq!(f.name(), "None");
    }

    #[test]
    fn identity_rejects_bad_rank() {
        let f = Identity::new();
        assert!(matches!(
            f.apply(&Tensor::ones(&[4, 4])),
            Err(FilterError::UnsupportedRank { actual: 2 })
        ));
        assert!(f.apply(&Tensor::ones(&[1, 3, 4, 4])).is_ok());
    }

    #[test]
    fn boxed_clone_works() {
        let f: Box<dyn Filter> = Box::new(Identity::new());
        let g = f.clone();
        assert_eq!(g.name(), "None");
    }
}
