use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{BitDepth, Filter, Gaussian, Identity, Lap, Lar, Median, Result};

/// A declarative filter configuration — the unit of the paper's filter
/// sweeps (`No Filter, LAP(4..64), LAR(1..5)` in Figs. 7 and 9).
///
/// # Example
///
/// ```
/// use fademl_filters::FilterSpec;
///
/// # fn main() -> Result<(), fademl_filters::FilterError> {
/// let sweep = FilterSpec::paper_sweep();
/// assert_eq!(sweep.len(), 11); // None + 5 LAP + 5 LAR
/// let filter = sweep[1].build()?;
/// assert_eq!(filter.name(), "LAP(4)");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum FilterSpec {
    /// No pre-processing.
    None,
    /// Local average with `np` neighbours.
    Lap {
        /// Neighbour count.
        np: usize,
    },
    /// Local average over the disc of radius `r`.
    Lar {
        /// Disc radius in pixels.
        r: usize,
    },
    /// Gaussian blur.
    Gaussian {
        /// Standard deviation in pixels.
        sigma: f32,
    },
    /// Median over a square window.
    Median {
        /// Window edge length (odd).
        window: usize,
    },
    /// Bit-depth feature squeezing (Xu et al., the paper's reference 10).
    BitDepth {
        /// Bits per channel (1..=7).
        bits: u8,
    },
}

impl FilterSpec {
    /// Builds the concrete filter.
    ///
    /// # Errors
    ///
    /// Propagates parameter-validation errors from the filter
    /// constructors.
    pub fn build(&self) -> Result<Box<dyn Filter>> {
        use crate::filter::boxed;
        Ok(match *self {
            FilterSpec::None => boxed(Identity::new()),
            FilterSpec::Lap { np } => boxed(Lap::new(np)?),
            FilterSpec::Lar { r } => boxed(Lar::new(r)?),
            FilterSpec::Gaussian { sigma } => boxed(Gaussian::new(sigma)?),
            FilterSpec::Median { window } => boxed(Median::new(window)?),
            FilterSpec::BitDepth { bits } => boxed(BitDepth::new(bits)?),
        })
    }

    /// The 11 configurations of the paper's Figs. 7 and 9:
    /// `None`, `LAP(4..64)`, `LAR(1..5)`.
    pub fn paper_sweep() -> Vec<FilterSpec> {
        let mut specs = Vec::default();
        specs.push(FilterSpec::None);
        specs.extend(Lap::PAPER_SWEEP.iter().map(|&np| FilterSpec::Lap { np }));
        specs.extend(Lar::PAPER_SWEEP.iter().map(|&r| FilterSpec::Lar { r }));
        specs
    }

    /// Just the LAP sweep with a leading `None` (one paper sub-plot).
    pub fn lap_sweep() -> Vec<FilterSpec> {
        let mut specs = Vec::default();
        specs.push(FilterSpec::None);
        specs.extend(Lap::PAPER_SWEEP.iter().map(|&np| FilterSpec::Lap { np }));
        specs
    }

    /// Just the LAR sweep with a leading `None` (one paper sub-plot).
    pub fn lar_sweep() -> Vec<FilterSpec> {
        let mut specs = Vec::default();
        specs.push(FilterSpec::None);
        specs.extend(Lar::PAPER_SWEEP.iter().map(|&r| FilterSpec::Lar { r }));
        specs
    }
}

impl Default for FilterSpec {
    /// No filtering.
    fn default() -> Self {
        FilterSpec::None
    }
}

impl fmt::Display for FilterSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FilterSpec::None => write!(f, "None"),
            FilterSpec::Lap { np } => write!(f, "LAP({np})"),
            FilterSpec::Lar { r } => write!(f, "LAR({r})"),
            FilterSpec::Gaussian { sigma } => write!(f, "Gauss({sigma:.2})"),
            FilterSpec::Median { window } => write!(f, "Median({window})"),
            FilterSpec::BitDepth { bits } => write!(f, "BitDepth({bits})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_every_variant() {
        for spec in [
            FilterSpec::None,
            FilterSpec::Lap { np: 8 },
            FilterSpec::Lar { r: 2 },
            FilterSpec::Gaussian { sigma: 1.0 },
            FilterSpec::Median { window: 3 },
            FilterSpec::BitDepth { bits: 4 },
        ] {
            let filter = spec.build().unwrap();
            assert!(!filter.name().is_empty());
        }
    }

    #[test]
    fn invalid_parameters_propagate() {
        assert!(FilterSpec::Lap { np: 0 }.build().is_err());
        assert!(FilterSpec::Lar { r: 0 }.build().is_err());
        assert!(FilterSpec::Gaussian { sigma: -1.0 }.build().is_err());
        assert!(FilterSpec::Median { window: 4 }.build().is_err());
        assert!(FilterSpec::BitDepth { bits: 0 }.build().is_err());
        assert!(FilterSpec::BitDepth { bits: 8 }.build().is_err());
    }

    #[test]
    fn paper_sweep_matches_figure_layout() {
        let sweep = FilterSpec::paper_sweep();
        assert_eq!(sweep.len(), 11);
        assert_eq!(sweep[0], FilterSpec::None);
        assert_eq!(sweep[1], FilterSpec::Lap { np: 4 });
        assert_eq!(sweep[5], FilterSpec::Lap { np: 64 });
        assert_eq!(sweep[6], FilterSpec::Lar { r: 1 });
        assert_eq!(sweep[10], FilterSpec::Lar { r: 5 });
    }

    #[test]
    fn sub_sweeps() {
        assert_eq!(FilterSpec::lap_sweep().len(), 6);
        assert_eq!(FilterSpec::lar_sweep().len(), 6);
    }

    #[test]
    fn display_matches_filter_names() {
        for spec in FilterSpec::paper_sweep() {
            assert_eq!(spec.to_string(), spec.build().unwrap().name());
        }
    }

    #[test]
    fn default_is_none() {
        assert_eq!(FilterSpec::default(), FilterSpec::None);
    }
}
