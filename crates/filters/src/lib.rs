//! Pre-processing noise filters — the defense the paper studies and the
//! stage the FAdeML attack differentiates through.
//!
//! The paper's two filter families are implemented exactly as described
//! in §III-A:
//!
//! - **LAP** ([`Lap`]): *local average with neighbourhood pixels* — each
//!   pixel is replaced by the uniform average of itself and its `np`
//!   nearest neighbours, `np ∈ {4, 8, 16, 32, 64}`.
//! - **LAR** ([`Lar`]): *local average with radius* — the uniform average
//!   over the disc of radius `r ∈ {1..5}` pixels.
//!
//! Both are linear operators, so their vector-Jacobian products
//! ([`Filter::backward`]) are exact — which is precisely the property
//! the FAdeML attack exploits. [`Gaussian`] is provided as a third
//! linear smoother and [`Median`] as a *non-linear* one whose backward
//! pass falls back to a straight-through (BPDA-style) estimate.
//!
//! # Example
//!
//! ```
//! use fademl_filters::{Filter, FilterSpec};
//! use fademl_tensor::Tensor;
//!
//! # fn main() -> Result<(), fademl_filters::FilterError> {
//! let lap32 = FilterSpec::Lap { np: 32 }.build()?;
//! let image = Tensor::ones(&[3, 16, 16]);
//! let smoothed = lap32.apply(&image)?;
//! assert_eq!(smoothed.dims(), image.dims());
//! // Averaging a constant image is the identity.
//! assert!((smoothed.sub(&image)?.norm_linf()) < 1e-6);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

mod chain;
mod error;
mod filter;
mod gaussian;
mod kernel;
mod lap;
mod lar;
mod median;
mod spec;
mod squeeze;

pub use chain::FilterChain;
pub use error::FilterError;
pub use filter::{Filter, Identity};
pub use gaussian::Gaussian;
pub use kernel::Kernel;
pub use lap::Lap;
pub use lar::Lar;
pub use median::Median;
pub use spec::FilterSpec;
pub use squeeze::BitDepth;

/// Convenient result alias for fallible filter operations.
pub type Result<T> = std::result::Result<T, FilterError>;
