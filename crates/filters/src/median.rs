use fademl_tensor::plan::alloc;
use fademl_tensor::Tensor;

use crate::filter::check_image_rank;
use crate::{Filter, FilterError, Result};

/// Median filter over a square window — a *non-linear* smoother.
///
/// Included as an extension beyond the paper's LAP/LAR: median filtering
/// is the classic counter to salt-and-pepper noise, and because it is
/// non-differentiable it exercises FAdeML's straight-through (BPDA)
/// gradient fallback. [`Filter::backward`] returns the incoming gradient
/// unchanged, the standard Backward-Pass Differentiable Approximation
/// for rank filters.
#[derive(Debug, Clone, Copy)]
pub struct Median {
    window: usize,
}

impl Median {
    /// Creates a median filter over a `window × window` neighbourhood.
    ///
    /// # Errors
    ///
    /// Returns [`FilterError::InvalidParameter`] unless `window` is odd
    /// and in `3..=9`.
    pub fn new(window: usize) -> Result<Self> {
        if window.is_multiple_of(2) || !(3..=9).contains(&window) {
            return Err(FilterError::InvalidParameter {
                reason: format!("median window must be odd and in 3..=9, got {window}"),
            });
        }
        Ok(Median { window })
    }

    /// The configured window edge length.
    pub fn window(&self) -> usize {
        self.window
    }
}

impl Filter for Median {
    fn name(&self) -> String {
        format!("Median({})", self.window)
    }

    fn apply(&self, image: &Tensor) -> Result<Tensor> {
        check_image_rank(image)?;
        let dims = image.dims();
        let (h, w) = (dims[dims.len() - 2], dims[dims.len() - 1]);
        let planes = image.numel() / (h * w);
        let r = (self.window / 2) as i32;
        let src = image.as_slice();
        let mut out = alloc::fresh_vec(src.len());
        // The gather window leases from the scratch arena, and the
        // in-place unstable sort allocates nothing — a warm call's only
        // allocation is the output buffer itself. (`sort_by` on a Vec
        // heap-allocates a merge buffer for windows over 20 elements.)
        let mut buf = alloc::scratch_f32(self.window * self.window);
        for p in 0..planes {
            let base = p * h * w;
            for y in 0..h as i32 {
                for x in 0..w as i32 {
                    let mut cnt = 0usize;
                    for dy in -r..=r {
                        for dx in -r..=r {
                            let (sy, sx) = (y + dy, x + dx);
                            if sy >= 0 && sy < h as i32 && sx >= 0 && sx < w as i32 {
                                if let Some(slot) = buf.as_mut_slice().get_mut(cnt) {
                                    *slot = src[base + (sy as usize) * w + sx as usize];
                                }
                                cnt += 1;
                            }
                        }
                    }
                    let (window, _) = buf.as_mut_slice().split_at_mut(cnt);
                    window.sort_unstable_by(|a, b| {
                        a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal)
                    });
                    let mid = cnt / 2;
                    let median = if cnt % 2 == 1 {
                        window[mid]
                    } else {
                        0.5 * (window[mid - 1] + window[mid])
                    };
                    out[base + (y as usize) * w + x as usize] = median;
                }
            }
        }
        Ok(Tensor::from_vec(out, image.shape().duplicate())?)
    }

    fn backward(&self, input: &Tensor, grad_out: &Tensor) -> Result<Tensor> {
        check_image_rank(input)?;
        // Straight-through estimator (BPDA): treat the median as the
        // identity for gradient purposes.
        Ok(grad_out.duplicate())
    }

    fn is_linear(&self) -> bool {
        false
    }

    fn clone_box(&self) -> Box<dyn Filter> {
        crate::filter::boxed(*self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fademl_tensor::TensorRng;

    #[test]
    fn construction_bounds() {
        assert!(Median::new(2).is_err());
        assert!(Median::new(1).is_err());
        assert!(Median::new(11).is_err());
        assert!(Median::new(3).is_ok());
        assert!(Median::new(5).is_ok());
    }

    #[test]
    fn kills_salt_and_pepper_impulse() {
        let mut img = Tensor::full(&[1, 9, 9], 0.5);
        img.set(&[0, 4, 4], 1.0).unwrap(); // salt
        img.set(&[0, 2, 2], 0.0).unwrap(); // pepper
        let out = Median::new(3).unwrap().apply(&img).unwrap();
        assert_eq!(out.get(&[0, 4, 4]).unwrap(), 0.5);
        assert_eq!(out.get(&[0, 2, 2]).unwrap(), 0.5);
    }

    #[test]
    fn constant_image_fixed_point() {
        let img = Tensor::full(&[3, 7, 7], 0.3);
        let out = Median::new(5).unwrap().apply(&img).unwrap();
        for &v in out.as_slice() {
            assert_eq!(v, 0.3);
        }
    }

    #[test]
    fn is_not_linear() {
        // Median(x + y) != Median(x) + Median(y) in general.
        let m = Median::new(3).unwrap();
        assert!(!m.is_linear());
        // 1×3 rows: median(x)[1] = 0 and median(y)[1] = 0, but their sum
        // has two ones in the window so median(x+y)[1] = 1.
        let x = Tensor::from_vec(vec![0.0, 1.0, 0.0], [1, 1, 3].into()).unwrap();
        let y = Tensor::from_vec(vec![1.0, 0.0, 0.0], [1, 1, 3].into()).unwrap();
        let lhs = m.apply(&x.add(&y).unwrap()).unwrap();
        let rhs = m.apply(&x).unwrap().add(&m.apply(&y).unwrap()).unwrap();
        assert_ne!(lhs, rhs);
        assert_eq!(lhs.get(&[0, 0, 1]).unwrap(), 1.0);
        assert_eq!(rhs.get(&[0, 0, 1]).unwrap(), 0.0);
    }

    #[test]
    fn backward_is_straight_through() {
        let m = Median::new(3).unwrap();
        let mut rng = TensorRng::seed_from_u64(1);
        let x = rng.uniform(&[1, 6, 6], 0.0, 1.0);
        let g = rng.uniform(&[1, 6, 6], -1.0, 1.0);
        assert_eq!(m.backward(&x, &g).unwrap(), g);
    }

    #[test]
    fn preserves_step_edges_better_than_average() {
        // A sharp vertical edge survives a median but is softened by LAP.
        use crate::Lap;
        let mut img = Tensor::zeros(&[1, 8, 8]);
        for y in 0..8 {
            for x in 4..8 {
                img.set(&[0, y, x], 1.0).unwrap();
            }
        }
        let med = Median::new(3).unwrap().apply(&img).unwrap();
        let lap = Lap::new(8).unwrap().apply(&img).unwrap();
        // Column 3 (just left of the edge, interior row).
        let med_v = med.get(&[0, 4, 3]).unwrap();
        let lap_v = lap.get(&[0, 4, 3]).unwrap();
        assert_eq!(med_v, 0.0, "median blurred the edge");
        assert!(lap_v > 0.2, "average should bleed across the edge");
    }

    #[test]
    fn named() {
        assert_eq!(Median::new(5).unwrap().name(), "Median(5)");
        assert_eq!(Median::new(5).unwrap().window(), 5);
    }
}
