//! Thread-count invariance for the pre-processing filters: `apply` and
//! `backward` partition over planes on the `fademl_tensor::par` pool
//! and must stay bit-identical at any thread count — the defended
//! pipeline's predictions (and the paper's figure sweeps) may never
//! depend on the host's core count.

use std::sync::Mutex;

use fademl_filters::FilterSpec;
use fademl_tensor::{par, TensorRng};
use proptest::{prop_assert_eq, proptest, ProptestConfig};

static THREADS_GUARD: Mutex<()> = Mutex::new(());

const SWEEP: [usize; 4] = [1, 2, 4, 7];

fn sweep_bits(op: impl Fn() -> Vec<f32>) -> Vec<Vec<u32>> {
    let _guard = THREADS_GUARD.lock().unwrap_or_else(|e| e.into_inner());
    let runs = SWEEP
        .iter()
        .map(|&t| {
            par::set_threads(t);
            op().iter().map(|v| v.to_bits()).collect()
        })
        .collect();
    par::set_threads(1);
    runs
}

#[test]
fn paper_sweep_filters_invariant_on_batched_input() {
    let mut rng = TensorRng::seed_from_u64(3);
    // 8 samples × 3 channels = 24 planes: more planes than workers at
    // every sweep point, with a remainder at t=7.
    let image = rng.uniform(&[8, 3, 32, 32], 0.0, 1.0);
    let grad = rng.uniform(&[8, 3, 32, 32], -1.0, 1.0);
    for spec in FilterSpec::paper_sweep() {
        let filter = spec.build().expect("paper sweep builds");
        let fwd = sweep_bits(|| filter.apply(&image).expect("apply").into_vec());
        let bwd = sweep_bits(|| filter.backward(&image, &grad).expect("backward").into_vec());
        for run in &fwd[1..] {
            assert_eq!(run, &fwd[0], "{spec}: apply diverged across threads");
        }
        for run in &bwd[1..] {
            assert_eq!(run, &bwd[0], "{spec}: backward diverged across threads");
        }
    }
}

#[test]
fn single_plane_and_tiny_images_invariant() {
    let mut rng = TensorRng::seed_from_u64(5);
    let lap = FilterSpec::Lap { np: 8 }.build().expect("LAP builds");
    // Fewer planes than workers, and images where the border path
    // dominates (no interior fast path at all on 3×3).
    let shapes: [&[usize]; 3] = [&[1, 3, 3], &[1, 5, 7], &[2, 1, 4, 4]];
    for dims in shapes {
        let image = rng.uniform(dims, 0.0, 1.0);
        let runs = sweep_bits(|| lap.apply(&image).expect("apply").into_vec());
        for run in &runs[1..] {
            assert_eq!(run, &runs[0], "{dims:?}: apply diverged across threads");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random geometry: LAP and LAR forward/backward bits never depend
    /// on the thread count.
    #[test]
    fn filter_bits_invariant(
        seed in 0u64..1_000_000,
        n in 1usize..5,
        c in 1usize..4,
        h in 4usize..16,
        w in 4usize..16,
        np_pick in 0usize..3,
    ) {
        let np = [4, 8, 24][np_pick];
        let filter = (FilterSpec::Lap { np }).build().expect("LAP builds");
        let mut rng = TensorRng::seed_from_u64(seed);
        let image = rng.uniform(&[n, c, h, w], 0.0, 1.0);
        let grad = rng.uniform(&[n, c, h, w], -1.0, 1.0);
        let runs = sweep_bits(|| {
            let mut all = filter.apply(&image).expect("apply").into_vec();
            all.extend(filter.backward(&image, &grad).expect("backward").into_vec());
            all
        });
        for run in &runs[1..] {
            prop_assert_eq!(run, &runs[0]);
        }
    }
}
