use std::fmt;

use serde::{Deserialize, Serialize};

/// The paper's three threat models (Fig. 2), describing *where* the
/// attacker can inject the adversarial image into the deployed pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ThreatModel {
    /// The attacker has access to the pre-processing filter's **output**
    /// and writes the perturbed image directly into the DNN's input
    /// buffer — the filter never touches the adversarial content.
    I,
    /// The attacker manipulates the scene **before acquisition**: the
    /// camera re-acquires the perturbed image (adding sensor noise) and
    /// the full pipeline — filter included — runs on it.
    II,
    /// The attacker perturbs the **acquired** digital image before it
    /// reaches the pipeline: no fresh sensor noise, but the filter still
    /// runs on the adversarial image.
    III,
}

impl ThreatModel {
    /// All three threat models, in paper order.
    pub const ALL: [ThreatModel; 3] = [ThreatModel::I, ThreatModel::II, ThreatModel::III];

    /// Whether the deployed pre-processing filter is applied to the
    /// adversarial image under this threat model.
    pub fn filter_applies(self) -> bool {
        !matches!(self, ThreatModel::I)
    }

    /// Whether fresh acquisition (sensor) noise is added to the
    /// adversarial image under this threat model.
    pub fn reacquires(self) -> bool {
        matches!(self, ThreatModel::II)
    }
}

impl fmt::Display for ThreatModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ThreatModel::I => write!(f, "TM-I"),
            ThreatModel::II => write!(f, "TM-II"),
            ThreatModel::III => write!(f, "TM-III"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_semantics_match_paper() {
        assert!(!ThreatModel::I.filter_applies());
        assert!(ThreatModel::II.filter_applies());
        assert!(ThreatModel::III.filter_applies());
    }

    #[test]
    fn only_tm2_reacquires() {
        assert!(!ThreatModel::I.reacquires());
        assert!(ThreatModel::II.reacquires());
        assert!(!ThreatModel::III.reacquires());
    }

    #[test]
    fn display_names() {
        assert_eq!(ThreatModel::I.to_string(), "TM-I");
        assert_eq!(ThreatModel::III.to_string(), "TM-III");
        assert_eq!(ThreatModel::ALL.len(), 3);
    }
}
