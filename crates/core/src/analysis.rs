//! The paper's §III analysis methodology (Fig. 3): craft an adversarial
//! example, evaluate it under Threat Model I and under Threat Models
//! II/III, and compare the two top-5 prediction profiles with the Eq. 2
//! cost function.

use fademl_attacks::{Attack, AttackSurface, ImperceptibilityReport};
use fademl_tensor::Tensor;

use crate::cost::CostBreakdown;
use crate::{FademlError, InferencePipeline, Result, Scenario, ThreatModel, Verdict};

/// The full record of one analysis run for one (attack, scenario,
/// filter) cell.
#[derive(Debug, Clone)]
pub struct AnalysisOutcome {
    /// The scenario that was attacked.
    pub scenario: Scenario,
    /// Name of the attack used.
    pub attack: String,
    /// The filter deployed in the victim pipeline.
    pub filter: String,
    /// Verdict when the adversarial image bypasses the filter (TM-I).
    pub tm1: Verdict,
    /// Verdict when the adversarial image passes through the filter
    /// (TM-II or TM-III as requested).
    pub tm23: Verdict,
    /// Eq. 2 comparison of the two verdicts.
    pub cost: CostBreakdown,
    /// Whether the targeted misclassification held under TM-I.
    pub success_tm1: bool,
    /// Whether it held under TM-II/III (the paper's headline question).
    pub success_tm23: bool,
    /// How visible the perturbation is.
    pub imperceptibility: ImperceptibilityReport,
    /// Attack iterations spent.
    pub iterations: usize,
}

/// Runs the §III methodology for one scenario.
///
/// `craft_surface` is the attacker's view (bare DNN for the classical
/// Threat-Model-I attacks; filter-aware for FAdeML). `pipeline` is the
/// deployed victim, and `eval_threat` selects II or III for the
/// filtered evaluation.
///
/// # Errors
///
/// Returns [`FademlError::InvalidConfig`] if `eval_threat` is TM-I, and
/// propagates attack/pipeline errors.
pub fn analyze_scenario(
    attack: &dyn Attack,
    craft_surface: &mut AttackSurface,
    pipeline: &InferencePipeline,
    scenario: &Scenario,
    source_image: &Tensor,
    eval_threat: ThreatModel,
) -> Result<AnalysisOutcome> {
    if !eval_threat.filter_applies() {
        return Err(FademlError::InvalidConfig {
            reason: "eval_threat must be Threat Model II or III".into(),
        });
    }
    let adv = attack.run(craft_surface, source_image, scenario.goal())?;
    let tm1 = pipeline.classify(&adv.adversarial, ThreatModel::I)?;
    let tm23 = pipeline.classify(&adv.adversarial, eval_threat)?;
    let cost = CostBreakdown::between(&tm1.probabilities, &tm23.probabilities)?;
    let imperceptibility = ImperceptibilityReport::between(source_image, &adv.adversarial)?;
    Ok(AnalysisOutcome {
        scenario: *scenario,
        attack: attack.name(),
        filter: pipeline.filter_spec().to_string(),
        success_tm1: tm1.class == scenario.target.index(),
        success_tm23: tm23.class == scenario.target.index(),
        tm1,
        tm23,
        cost,
        imperceptibility,
        iterations: adv.iterations,
    })
}

/// Compact single-line summary used by the experiment tables.
impl AnalysisOutcome {
    /// e.g. `"S1 FGSM vs LAP(8): TM-I 3 (82.1%) | TM-II/III 14 (60.3%) | cost 0.12"`.
    pub fn summary_line(&self) -> String {
        format!(
            "S{} {} vs {}: TM-I {} ({:.1}%) | TM-II/III {} ({:.1}%) | cost {:+.3}",
            self.scenario.id,
            self.attack,
            self.filter,
            self.tm1.class,
            self.tm1.confidence * 100.0,
            self.tm23.class,
            self.tm23.confidence * 100.0,
            self.cost.cost,
        )
    }

    /// `true` when the filter changed the winning class — the paper's
    /// "attack neutralized" signal.
    pub fn filter_changed_top1(&self) -> bool {
        !self.cost.top1_agrees()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::{ExperimentSetup, SetupProfile};
    use fademl_attacks::Fgsm;
    use fademl_filters::FilterSpec;
    use std::sync::OnceLock;

    fn prepared() -> &'static crate::setup::PreparedSetup {
        static CELL: OnceLock<crate::setup::PreparedSetup> = OnceLock::new();
        CELL.get_or_init(|| {
            ExperimentSetup::profile(SetupProfile::Smoke)
                .prepare()
                .unwrap()
        })
    }

    #[test]
    fn analysis_produces_consistent_outcome() {
        let p = prepared();
        let pipeline = InferencePipeline::new(p.model.clone(), FilterSpec::Lap { np: 8 }).unwrap();
        let scenario = Scenario::paper_scenarios()[0];
        let image = p.test.first_of_class(scenario.source).unwrap();
        let mut surface = AttackSurface::new(p.model.clone());
        let attack = Fgsm::new(0.08).unwrap();
        let outcome = analyze_scenario(
            &attack,
            &mut surface,
            &pipeline,
            &scenario,
            &image,
            ThreatModel::III,
        )
        .unwrap();
        assert_eq!(outcome.scenario.id, 1);
        assert!(outcome.attack.contains("FGSM"));
        assert_eq!(outcome.filter, "LAP(8)");
        assert_eq!(
            outcome.success_tm1,
            outcome.tm1.class == scenario.target.index()
        );
        assert!(outcome.imperceptibility.noise_linf <= 0.08 + 1e-5);
        let line = outcome.summary_line();
        assert!(line.contains("S1"));
        assert!(line.contains("LAP(8)"));
    }

    #[test]
    fn rejects_tm1_as_eval_threat() {
        let p = prepared();
        let pipeline = InferencePipeline::new(p.model.clone(), FilterSpec::None).unwrap();
        let scenario = Scenario::paper_scenarios()[0];
        let image = p.test.first_of_class(scenario.source).unwrap();
        let mut surface = AttackSurface::new(p.model.clone());
        let attack = Fgsm::new(0.05).unwrap();
        let result = analyze_scenario(
            &attack,
            &mut surface,
            &pipeline,
            &scenario,
            &image,
            ThreatModel::I,
        );
        assert!(matches!(result, Err(FademlError::InvalidConfig { .. })));
    }

    #[test]
    fn identity_filter_keeps_views_identical() {
        // With FilterSpec::None and TM-III (no fresh noise), the two
        // views coincide, so the Eq. 2 cost is zero.
        let p = prepared();
        let pipeline = InferencePipeline::new(p.model.clone(), FilterSpec::None).unwrap();
        let scenario = Scenario::paper_scenarios()[1];
        let image = p.test.first_of_class(scenario.source).unwrap();
        let mut surface = AttackSurface::new(p.model.clone());
        let attack = Fgsm::new(0.05).unwrap();
        let outcome = analyze_scenario(
            &attack,
            &mut surface,
            &pipeline,
            &scenario,
            &image,
            ThreatModel::III,
        )
        .unwrap();
        assert!(outcome.cost.cost.abs() < 1e-6);
        assert!(!outcome.filter_changed_top1());
        assert_eq!(outcome.success_tm1, outcome.success_tm23);
    }
}
