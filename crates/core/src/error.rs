use std::error::Error;
use std::fmt;

use fademl_attacks::AttackError;
use fademl_data::DataError;
use fademl_filters::FilterError;
use fademl_nn::NnError;
use fademl_tensor::TensorError;

/// Top-level error type for the FAdeML experiment framework.
#[derive(Debug)]
#[non_exhaustive]
pub enum FademlError {
    /// A tensor operation failed.
    Tensor(TensorError),
    /// The neural network failed.
    Network(NnError),
    /// Dataset generation failed.
    Data(DataError),
    /// A pre-processing filter failed.
    Filter(FilterError),
    /// An attack failed.
    Attack(AttackError),
    /// An experiment configuration was invalid.
    InvalidConfig {
        /// Human-readable description of the invalid value.
        reason: String,
    },
    /// An input tensor was rejected before inference (e.g. non-finite
    /// values that would poison every activation downstream).
    InvalidInput {
        /// Human-readable description of the offending value.
        reason: String,
    },
    /// Reading or writing cached artifacts failed.
    Io(std::io::Error),
    /// A persisted artifact (stage ledger, cached result) failed its
    /// integrity checks and cannot be trusted.
    Corrupt {
        /// Human-readable description of what failed verification.
        reason: String,
    },
}

impl fmt::Display for FademlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FademlError::Tensor(e) => write!(f, "tensor error: {e}"),
            FademlError::Network(e) => write!(f, "network error: {e}"),
            FademlError::Data(e) => write!(f, "dataset error: {e}"),
            FademlError::Filter(e) => write!(f, "filter error: {e}"),
            FademlError::Attack(e) => write!(f, "attack error: {e}"),
            FademlError::InvalidConfig { reason } => {
                write!(f, "invalid experiment configuration: {reason}")
            }
            FademlError::InvalidInput { reason } => {
                write!(f, "invalid inference input: {reason}")
            }
            FademlError::Io(e) => write!(f, "i/o error: {e}"),
            FademlError::Corrupt { reason } => {
                write!(f, "corrupt artifact: {reason}")
            }
        }
    }
}

impl Error for FademlError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FademlError::Tensor(e) => Some(e),
            FademlError::Network(e) => Some(e),
            FademlError::Data(e) => Some(e),
            FademlError::Filter(e) => Some(e),
            FademlError::Attack(e) => Some(e),
            FademlError::Io(e) => Some(e),
            FademlError::InvalidConfig { .. }
            | FademlError::InvalidInput { .. }
            | FademlError::Corrupt { .. } => None,
        }
    }
}

impl From<TensorError> for FademlError {
    fn from(e: TensorError) -> Self {
        FademlError::Tensor(e)
    }
}

impl From<NnError> for FademlError {
    fn from(e: NnError) -> Self {
        FademlError::Network(e)
    }
}

impl From<DataError> for FademlError {
    fn from(e: DataError) -> Self {
        FademlError::Data(e)
    }
}

impl From<FilterError> for FademlError {
    fn from(e: FilterError) -> Self {
        FademlError::Filter(e)
    }
}

impl From<AttackError> for FademlError {
    fn from(e: AttackError) -> Self {
        FademlError::Attack(e)
    }
}

impl From<std::io::Error> for FademlError {
    fn from(e: std::io::Error) -> Self {
        FademlError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_sources() {
        let e = FademlError::from(TensorError::EmptyTensor { op: "x" });
        assert!(e.source().is_some());
        let e = FademlError::InvalidConfig {
            reason: "bad".into(),
        };
        assert!(e.source().is_none());
        assert!(e.to_string().contains("bad"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FademlError>();
    }
}
