//! The paper's Eq. 2 cost function.
//!
//! `f(cost) = Σₙ₌₁⁵ P(Cₙ) − P(C*ₙ)` compares the top-5 prediction mass
//! of the same adversarial example evaluated under Threat Model I
//! (attacker's view, no filter) and Threat Models II/III (deployed
//! view, filter applied). A large cost means the filter substantially
//! changed what the network believes — the signal the FAdeML
//! optimization loop (§IV step 5) feeds back into noise refinement.

use fademl_tensor::Tensor;

use crate::{FademlError, Result};

/// Number of ranks in the paper's cost function.
pub const TOP_K: usize = 5;

/// Computes Eq. 2 over two probability vectors.
///
/// `p_tm1` is the class distribution under Threat Model I; `p_tm23`
/// under Threat Model II or III. Both must be probability vectors of
/// the same length (≥ 5 classes). `Cₙ` are the top-5 classes of the
/// TM-I view and `C*ₙ` the top-5 classes of the TM-II/III view, so the
/// result is `Σ P_tm1(Cₙ) − P_tm23(C*ₙ)`.
///
/// # Errors
///
/// Returns [`FademlError::InvalidConfig`] for length mismatches or
/// fewer than 5 classes.
pub fn top5_cost(p_tm1: &Tensor, p_tm23: &Tensor) -> Result<f32> {
    if p_tm1.dims() != p_tm23.dims() {
        return Err(FademlError::InvalidConfig {
            reason: format!(
                "probability vectors differ in shape: {:?} vs {:?}",
                p_tm1.dims(),
                p_tm23.dims()
            ),
        });
    }
    if p_tm1.numel() < TOP_K {
        return Err(FademlError::InvalidConfig {
            reason: format!("need at least {TOP_K} classes, got {}", p_tm1.numel()),
        });
    }
    let mass = |p: &Tensor| -> f32 { p.top_k(TOP_K).iter().map(|&c| p.as_slice()[c]).sum() };
    Ok(mass(p_tm1) - mass(p_tm23))
}

/// Per-rank breakdown of the Eq. 2 comparison: the top-5 classes and
/// probabilities under both views.
#[derive(Debug, Clone, PartialEq)]
pub struct CostBreakdown {
    /// Top-5 classes under Threat Model I.
    pub tm1_classes: Vec<usize>,
    /// Their probabilities.
    pub tm1_probs: Vec<f32>,
    /// Top-5 classes under Threat Model II/III.
    pub tm23_classes: Vec<usize>,
    /// Their probabilities.
    pub tm23_probs: Vec<f32>,
    /// The Eq. 2 scalar.
    pub cost: f32,
}

impl CostBreakdown {
    /// Computes the breakdown for two probability vectors.
    ///
    /// # Errors
    ///
    /// Same conditions as [`top5_cost`].
    pub fn between(p_tm1: &Tensor, p_tm23: &Tensor) -> Result<Self> {
        let cost = top5_cost(p_tm1, p_tm23)?;
        let tm1_classes = p_tm1.top_k(TOP_K);
        let tm23_classes = p_tm23.top_k(TOP_K);
        Ok(CostBreakdown {
            tm1_probs: tm1_classes.iter().map(|&c| p_tm1.as_slice()[c]).collect(),
            tm23_probs: tm23_classes.iter().map(|&c| p_tm23.as_slice()[c]).collect(),
            tm1_classes,
            tm23_classes,
            cost,
        })
    }

    /// `true` if the two views agree on the winning class.
    pub fn top1_agrees(&self) -> bool {
        self.tm1_classes[0] == self.tm23_classes[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fademl_tensor::Shape;

    fn probs(v: &[f32]) -> Tensor {
        Tensor::from_vec(v.to_vec(), Shape::new(vec![v.len()])).unwrap()
    }

    #[test]
    fn identical_distributions_cost_zero() {
        let p = probs(&[0.5, 0.2, 0.1, 0.1, 0.05, 0.05]);
        assert_eq!(top5_cost(&p, &p).unwrap(), 0.0);
    }

    #[test]
    fn concentrated_vs_diffuse() {
        // TM-I very confident (top-5 mass ≈ 1), TM-II/III diffuse over
        // 10 classes (top-5 mass = 0.5): cost ≈ 0.5.
        let tm1 = probs(&[0.96, 0.01, 0.01, 0.01, 0.01, 0.0, 0.0, 0.0, 0.0, 0.0]);
        let tm23 = probs(&[0.1; 10]);
        let cost = top5_cost(&tm1, &tm23).unwrap();
        assert!((cost - 0.5).abs() < 1e-5);
    }

    #[test]
    fn cost_is_antisymmetric() {
        let a = probs(&[0.9, 0.05, 0.02, 0.01, 0.01, 0.01]);
        let b = probs(&[0.3, 0.3, 0.1, 0.1, 0.1, 0.1]);
        let ab = top5_cost(&a, &b).unwrap();
        let ba = top5_cost(&b, &a).unwrap();
        assert!((ab + ba).abs() < 1e-6);
    }

    #[test]
    fn validation() {
        let a = probs(&[0.5, 0.5]);
        assert!(top5_cost(&a, &a).is_err()); // fewer than 5 classes
        let b = probs(&[0.2; 5]);
        let c = probs(&[0.1; 10]);
        assert!(top5_cost(&b, &c).is_err()); // shape mismatch
    }

    #[test]
    fn breakdown_ranks_descending() {
        let tm1 = probs(&[0.05, 0.5, 0.2, 0.1, 0.1, 0.05]);
        let tm23 = probs(&[0.4, 0.1, 0.2, 0.1, 0.1, 0.1]);
        let bd = CostBreakdown::between(&tm1, &tm23).unwrap();
        assert_eq!(bd.tm1_classes[0], 1);
        assert_eq!(bd.tm23_classes[0], 0);
        assert!(!bd.top1_agrees());
        for w in bd.tm1_probs.windows(2) {
            assert!(w[0] >= w[1]);
        }
        assert!((bd.cost - top5_cost(&tm1, &tm23).unwrap()).abs() < 1e-6);
    }

    #[test]
    fn breakdown_agreement() {
        let p = probs(&[0.5, 0.2, 0.1, 0.1, 0.05, 0.05]);
        let bd = CostBreakdown::between(&p, &p).unwrap();
        assert!(bd.top1_agrees());
    }
}
