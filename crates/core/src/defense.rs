//! Adversarial training — the training-time defense the paper's
//! conclusion calls for ("inspire researchers to develop ML
//! architectures that are effective yet can resist adversarial
//! examples").
//!
//! Each minibatch is augmented with FGSM examples crafted against the
//! *current* model state (Goodfellow et al.'s original recipe), so the
//! decision boundary is pushed away from the ε-neighbourhood of the
//! training data. The robustness evaluation helpers quantify the gain.

use fademl_attacks::{Attack, AttackGoal, AttackSurface, Fgsm};
use fademl_nn::{CrossEntropyLoss, Loss, OptimizerKind, Sequential, TrainConfig};
use fademl_tensor::{Tensor, TensorRng};

use crate::{FademlError, Result};

/// Configuration for adversarially augmented training.
#[derive(Debug, Clone, PartialEq)]
pub struct AdversarialTrainingConfig {
    /// The underlying optimization schedule.
    pub base: TrainConfig,
    /// FGSM budget used for the on-the-fly adversarial examples.
    pub epsilon: f32,
    /// Fraction of every minibatch replaced by adversarial versions
    /// (0.5 is the classic half-clean/half-adversarial mix).
    pub adversarial_fraction: f32,
}

impl Default for AdversarialTrainingConfig {
    fn default() -> Self {
        AdversarialTrainingConfig {
            base: TrainConfig::default(),
            epsilon: 0.06,
            adversarial_fraction: 0.5,
        }
    }
}

/// Trains `model` with FGSM adversarial augmentation.
///
/// # Errors
///
/// Returns [`FademlError::InvalidConfig`] for an out-of-range
/// `adversarial_fraction`/`epsilon` or degenerate base config, and
/// propagates model/attack errors.
pub fn adversarial_fit(
    model: &mut Sequential,
    images: &Tensor,
    labels: &[usize],
    config: &AdversarialTrainingConfig,
) -> Result<()> {
    if !(0.0..=1.0).contains(&config.adversarial_fraction) {
        return Err(FademlError::InvalidConfig {
            reason: format!(
                "adversarial_fraction must be in [0, 1], got {}",
                config.adversarial_fraction
            ),
        });
    }
    if config.base.epochs == 0 || config.base.batch_size == 0 {
        return Err(FademlError::InvalidConfig {
            reason: "epochs and batch_size must be positive".into(),
        });
    }
    let n = images.dims().first().copied().unwrap_or(0);
    if n == 0 || n != labels.len() {
        return Err(FademlError::InvalidConfig {
            reason: format!("{} labels for {} images", labels.len(), n),
        });
    }
    let fgsm = Fgsm::new(config.epsilon).map_err(FademlError::from)?;
    let loss = CrossEntropyLoss::new();
    let mut optimizer: Box<dyn fademl_nn::Optimizer> = match config.base.optimizer {
        OptimizerKind::SgdMomentum { lr } => Box::new(fademl_nn::Sgd::with_momentum(lr, 0.9)),
        OptimizerKind::Adam { lr } => Box::new(fademl_nn::Adam::new(lr)),
        _ => Box::new(fademl_nn::Adam::new(1e-3)),
    };
    let mut rng = TensorRng::seed_from_u64(config.base.seed);
    let mut order: Vec<usize> = (0..n).collect();

    for _ in 0..config.base.epochs {
        rng.shuffle(&mut order);
        for chunk in order.chunks(config.base.batch_size) {
            // Split the chunk: the leading part is adversarially
            // perturbed against the current model, the rest stays clean.
            let adv_count = ((chunk.len() as f32) * config.adversarial_fraction).round() as usize;
            let mut batch_images = Vec::with_capacity(chunk.len());
            let mut batch_labels = Vec::with_capacity(chunk.len());
            // A fresh surface per batch sees the current weights.
            let mut surface = AttackSurface::new(model.clone());
            for (k, &i) in chunk.iter().enumerate() {
                let image = images.index_batch(i)?;
                let label = labels[i];
                if k < adv_count {
                    let adv = fgsm
                        .run(
                            &mut surface,
                            &image,
                            AttackGoal::Untargeted { source: label },
                        )
                        .map_err(FademlError::from)?;
                    batch_images.push(adv.adversarial);
                } else {
                    batch_images.push(image);
                }
                batch_labels.push(label);
            }
            let batch = Tensor::stack(&batch_images)?;
            model.zero_grad();
            let logits = model.forward_train(&batch)?;
            let lv = loss.compute(&logits, &batch_labels)?;
            model.backward(&lv.grad)?;
            optimizer.step(&mut model.params_mut())?;
        }
    }
    Ok(())
}

/// Top-1 *robust accuracy*: the fraction of samples still classified
/// correctly after a per-sample untargeted FGSM attack at `epsilon`.
///
/// # Errors
///
/// Propagates attack/model errors; returns
/// [`FademlError::InvalidConfig`] for mismatched labels.
pub fn robust_accuracy(
    model: &Sequential,
    images: &Tensor,
    labels: &[usize],
    epsilon: f32,
) -> Result<f32> {
    let n = images.dims().first().copied().unwrap_or(0);
    if n != labels.len() {
        return Err(FademlError::InvalidConfig {
            reason: format!("{} labels for {} images", labels.len(), n),
        });
    }
    if n == 0 {
        return Ok(0.0);
    }
    let fgsm = Fgsm::new(epsilon).map_err(FademlError::from)?;
    let mut surface = AttackSurface::new(model.clone());
    let mut hits = 0usize;
    for (i, &label) in labels.iter().enumerate() {
        let image = images.index_batch(i)?;
        let adv = fgsm
            .run(
                &mut surface,
                &image,
                AttackGoal::Untargeted { source: label },
            )
            .map_err(FademlError::from)?;
        let (predicted, _) = surface
            .predict(&adv.adversarial)
            .map_err(FademlError::from)?;
        if predicted == label {
            hits += 1;
        }
    }
    Ok(hits as f32 / n as f32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fademl_data::{DatasetConfig, SignDataset};
    use fademl_nn::metrics::top1_accuracy;
    use fademl_nn::vgg::VggConfig;

    fn small_dataset() -> SignDataset {
        SignDataset::generate(&DatasetConfig {
            samples_per_class: 6,
            image_size: 16,
            seed: 5,
            ..DatasetConfig::default()
        })
        .unwrap()
    }

    fn tiny_model(seed: u64) -> Sequential {
        let mut rng = TensorRng::seed_from_u64(seed);
        VggConfig {
            stage_channels: vec![8, 16],
            in_channels: 3,
            input_size: 16,
            classes: 43,
            batch_norm: false,
            dropout: None,
        }
        .build(&mut rng)
        .unwrap()
    }

    #[test]
    fn config_validation() {
        let ds = small_dataset();
        let mut model = tiny_model(1);
        let bad_fraction = AdversarialTrainingConfig {
            adversarial_fraction: 1.5,
            ..AdversarialTrainingConfig::default()
        };
        assert!(adversarial_fit(&mut model, ds.images(), ds.labels(), &bad_fraction).is_err());
        let bad_epochs = AdversarialTrainingConfig {
            base: TrainConfig {
                epochs: 0,
                ..TrainConfig::default()
            },
            ..AdversarialTrainingConfig::default()
        };
        assert!(adversarial_fit(&mut model, ds.images(), ds.labels(), &bad_epochs).is_err());
        assert!(adversarial_fit(&mut model, ds.images(), &[0, 1], &Default::default()).is_err());
    }

    #[test]
    fn adversarial_training_improves_robust_accuracy() {
        let ds = small_dataset();
        let epsilon = 0.03f32;
        let base = TrainConfig {
            epochs: 16,
            batch_size: 32,
            optimizer: OptimizerKind::Adam { lr: 3e-3 },
            seed: 5,
            ..TrainConfig::default()
        };

        // Plain training.
        let mut plain = tiny_model(9);
        let mut trainer = fademl_nn::Trainer::new(base.clone());
        trainer.fit(&mut plain, ds.images(), ds.labels()).unwrap();

        // Adversarial training with identical budget.
        let mut hardened = tiny_model(9);
        adversarial_fit(
            &mut hardened,
            ds.images(),
            ds.labels(),
            &AdversarialTrainingConfig {
                base,
                epsilon,
                adversarial_fraction: 0.5,
            },
        )
        .unwrap();

        let plain_robust = robust_accuracy(&plain, ds.images(), ds.labels(), epsilon).unwrap();
        let hardened_robust =
            robust_accuracy(&hardened, ds.images(), ds.labels(), epsilon).unwrap();
        assert!(
            hardened_robust > plain_robust,
            "adversarial training did not help: {plain_robust:.2} → {hardened_robust:.2}"
        );
        // And it must not destroy clean accuracy.
        let hardened_clean = top1_accuracy(&hardened, ds.images(), ds.labels()).unwrap();
        assert!(
            hardened_clean > 0.4,
            "hardened clean accuracy collapsed to {hardened_clean:.2}"
        );
    }

    #[test]
    fn robust_accuracy_bounds() {
        let ds = small_dataset();
        let model = tiny_model(2);
        let r = robust_accuracy(&model, ds.images(), ds.labels(), 0.05).unwrap();
        assert!((0.0..=1.0).contains(&r));
        assert!(robust_accuracy(&model, ds.images(), &[1, 2], 0.05).is_err());
    }
}
