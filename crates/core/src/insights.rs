//! Quantitative verification of the paper's *Key Insights* (§III-C and
//! §IV-B):
//!
//! 1. Gradient-based adversarial noise is removed by LAP/LAR smoothing,
//!    though classification confidence still suffers.
//! 2. Top-5 accuracy rises with filter strength up to an interior
//!    optimum (paper: `np = 32`, `r = 3..4`) and falls beyond it.
//! 3. A successful attack must model the pre-processing stages — the
//!    filter-aware FAdeML attacks survive where blind attacks die.
//!
//! These functions turn experiment results into checkable statements so
//! the insights become regression tests rather than prose.

use fademl_filters::FilterSpec;

use crate::experiments::fig7::Fig7Result;
use crate::experiments::fig9::Fig9Result;
use crate::experiments::AccuracyGrid;
use crate::{FademlError, Result};

/// One accuracy-vs-strength series for a single filter family.
#[derive(Debug, Clone, PartialEq)]
pub struct HumpSeries {
    /// The filter-strength parameter (`np` for LAP, `r` for LAR).
    pub params: Vec<usize>,
    /// Top-5 accuracy at each strength.
    pub accuracies: Vec<f32>,
}

/// Which filter family a series sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FilterFamily {
    /// Local average with `np` neighbours.
    Lap,
    /// Local average with radius `r`.
    Lar,
}

impl HumpSeries {
    /// Extracts the series for `family` and `attack` from an accuracy
    /// grid, ordered by increasing filter strength.
    ///
    /// # Errors
    ///
    /// Returns [`FademlError::InvalidConfig`] if the grid has no cells
    /// for that family/attack.
    pub fn extract(grid: &AccuracyGrid, family: FilterFamily, attack: &str) -> Result<Self> {
        let mut pairs: Vec<(usize, f32)> = grid
            .cells
            .iter()
            .filter(|c| c.attack == attack)
            .filter_map(|c| match (family, c.filter) {
                (FilterFamily::Lap, FilterSpec::Lap { np }) => Some((np, c.top5_accuracy)),
                (FilterFamily::Lar, FilterSpec::Lar { r }) => Some((r, c.top5_accuracy)),
                _ => None,
            })
            .collect();
        if pairs.is_empty() {
            return Err(FademlError::InvalidConfig {
                reason: format!("no {family:?} cells for attack {attack:?} in grid"),
            });
        }
        pairs.sort_by_key(|(p, _)| *p);
        Ok(HumpSeries {
            params: pairs.iter().map(|(p, _)| *p).collect(),
            accuracies: pairs.iter().map(|(_, a)| *a).collect(),
        })
    }

    /// The filter strength at which accuracy peaks (first maximum).
    pub fn peak_param(&self) -> usize {
        let mut best = 0usize;
        for (i, &a) in self.accuracies.iter().enumerate() {
            if a > self.accuracies[best] {
                best = i;
            }
        }
        self.params[best]
    }

    /// `true` if the series falls at the strong-filter end — the
    /// degradation half of the paper's hump (insight 2's "beyond this
    /// threshold the accuracy starts to decrease").
    pub fn degrades_at_strong_end(&self) -> bool {
        match (self.accuracies.first(), self.accuracies.last()) {
            (Some(_), Some(&last)) => {
                let max = self
                    .accuracies
                    .iter()
                    .copied()
                    .fold(f32::NEG_INFINITY, f32::max);
                last < max
            }
            _ => false,
        }
    }
}

/// Quantified statements of the three key insights for one paired
/// Fig. 7 / Fig. 9 run.
#[derive(Debug, Clone, PartialEq)]
pub struct KeyInsights {
    /// Insight 1a: targeted success rate of the blind attacks through
    /// the filters (paper: ≈ 0).
    pub blind_filtered_success: f32,
    /// Insight 1b: mean confidence loss the surviving true class pays
    /// under filtering (paper: "confidence is still affected").
    pub mean_confidence_drop: f32,
    /// Insight 2: per-(scenario, attack) LAP peak strengths.
    pub lap_peaks: Vec<usize>,
    /// Insight 2: per-(scenario, attack) LAR peak strengths.
    pub lar_peaks: Vec<usize>,
    /// Insight 3: FAdeML's filtered success rate (paper: high).
    pub fademl_filtered_success: f32,
}

impl KeyInsights {
    /// Derives the insight numbers from paired experiment results.
    ///
    /// # Errors
    ///
    /// Returns [`FademlError::InvalidConfig`] if the grids lack LAP/LAR
    /// cells.
    pub fn derive(fig7: &Fig7Result, fig9: &Fig9Result) -> Result<Self> {
        // Confidence drop: TM-I confidence minus filtered confidence over
        // all non-trivial Fig. 7 cells.
        let mut drops = Vec::new();
        for cell in &fig7.cells {
            if cell.filter != FilterSpec::None {
                drops.push(cell.tm1_confidence - cell.tm23_confidence);
            }
        }
        let mean_confidence_drop = if drops.is_empty() {
            0.0
        } else {
            drops.iter().sum::<f32>() / drops.len() as f32
        };

        let mut lap_peaks = Vec::new();
        let mut lar_peaks = Vec::new();
        for grid in &fig7.grids {
            for attack in crate::experiments::AttackParams::labels() {
                if let Ok(series) = HumpSeries::extract(grid, FilterFamily::Lap, attack) {
                    lap_peaks.push(series.peak_param());
                }
                if let Ok(series) = HumpSeries::extract(grid, FilterFamily::Lar, attack) {
                    lar_peaks.push(series.peak_param());
                }
            }
        }
        if lap_peaks.is_empty() && lar_peaks.is_empty() {
            return Err(FademlError::InvalidConfig {
                reason: "fig7 grids contain no LAP or LAR accuracy cells".into(),
            });
        }
        Ok(KeyInsights {
            blind_filtered_success: fig7.filtered_success_rate(),
            mean_confidence_drop,
            lap_peaks,
            lar_peaks,
            fademl_filtered_success: fig9.filtered_success_rate(),
        })
    }

    /// Insight 3 holds when FAdeML beats the blind attacks through the
    /// same filters.
    pub fn filter_awareness_pays(&self) -> bool {
        self.fademl_filtered_success > self.blind_filtered_success
    }

    /// A short human-readable digest.
    pub fn summary(&self) -> String {
        format!(
            "blind filtered success {:.0}% | FAdeML filtered success {:.0}% | \
             mean confidence drop {:+.1}pp | LAP peaks {:?} | LAR peaks {:?}",
            self.blind_filtered_success * 100.0,
            self.fademl_filtered_success * 100.0,
            self.mean_confidence_drop * 100.0,
            self.lap_peaks,
            self.lar_peaks,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::{AccuracyCell, AccuracyGrid};
    use crate::Scenario;

    fn grid_with(cells: Vec<(FilterSpec, &str, f32)>) -> AccuracyGrid {
        AccuracyGrid {
            scenario: Scenario::paper_scenarios()[0],
            cells: cells
                .into_iter()
                .map(|(filter, attack, top5_accuracy)| AccuracyCell {
                    filter,
                    attack: attack.to_owned(),
                    top5_accuracy,
                })
                .collect(),
        }
    }

    #[test]
    fn extracts_sorted_series() {
        let grid = grid_with(vec![
            (FilterSpec::Lap { np: 64 }, "FGSM", 0.5),
            (FilterSpec::Lap { np: 4 }, "FGSM", 0.7),
            (FilterSpec::Lap { np: 32 }, "FGSM", 0.9),
            (FilterSpec::Lar { r: 2 }, "FGSM", 0.6),
            (FilterSpec::None, "FGSM", 0.8),
        ]);
        let series = HumpSeries::extract(&grid, FilterFamily::Lap, "FGSM").unwrap();
        assert_eq!(series.params, vec![4, 32, 64]);
        assert_eq!(series.accuracies, vec![0.7, 0.9, 0.5]);
        assert_eq!(series.peak_param(), 32);
        assert!(series.degrades_at_strong_end());
    }

    #[test]
    fn missing_cells_error() {
        let grid = grid_with(vec![(FilterSpec::None, "FGSM", 0.8)]);
        assert!(HumpSeries::extract(&grid, FilterFamily::Lap, "FGSM").is_err());
        assert!(HumpSeries::extract(&grid, FilterFamily::Lar, "BIM").is_err());
    }

    #[test]
    fn monotone_series_has_no_interior_degradation() {
        let grid = grid_with(vec![
            (FilterSpec::Lar { r: 1 }, "BIM", 0.5),
            (FilterSpec::Lar { r: 2 }, "BIM", 0.6),
            (FilterSpec::Lar { r: 3 }, "BIM", 0.7),
        ]);
        let series = HumpSeries::extract(&grid, FilterFamily::Lar, "BIM").unwrap();
        assert_eq!(series.peak_param(), 3);
        assert!(!series.degrades_at_strong_end());
    }
}
