//! Detect-under-attack: the triage detector evaluated on a streaming
//! serving workload.
//!
//! The serving stack's admission triage (see `fademl-serve`) scores
//! every image with a multi-scale isolation forest fitted on clean
//! traffic. This experiment answers the question that design stands on:
//! *can the detector separate adversarial frames from ordinary
//! frame-to-frame drift?* A correlated [`FrameStream`] models the
//! camera; FGSM and filter-aware FAdeML perturbations are mixed into
//! alternating segments; every frame is scored and the resulting
//! (label, score) population is swept into a ROC curve and a
//! rank-statistic AUC.
//!
//! The sweep is resumable through the same [`StageLedger`] journal the
//! figure experiments use: the fitted detector and every scored segment
//! are recorded as independent stages, so a killed run re-fits nothing
//! and re-scores only the segment it died in.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::path::Path;

use fademl_attacks::{Attack, AttackGoal, AttackSurface, Fademl, Fgsm};
use fademl_data::{ClassId, FrameStream, StreamConfig};
use fademl_detect::{Detector, DetectorConfig};
use fademl_filters::FilterSpec;
use fademl_tensor::io::{ByteReader, ByteWriter};
use fademl_tensor::Tensor;

use super::resume::{experiment_fingerprint, ResumeReport, StageLedger};
use super::AttackParams;
use crate::setup::PreparedSetup;
use crate::{FademlError, Result, ThreatModel};

/// Knobs of the detect-under-attack sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectionParams {
    /// Clean frames used to fit the detector.
    pub fit_frames: usize,
    /// Scored segments; segment `i` carries [`SegmentKind::cycle`]`(i)`.
    pub segments: usize,
    /// Frames per scored segment.
    pub frames_per_segment: usize,
    /// Isolation-forest fit configuration.
    pub detector: DetectorConfig,
    /// The deployed filter the FAdeML segments craft against.
    pub deployed_filter: FilterSpec,
    /// Base seed for the frame streams (fit and per-segment).
    pub stream_seed: u64,
}

impl Default for DetectionParams {
    fn default() -> Self {
        DetectionParams {
            fit_frames: 96,
            segments: 6,
            frames_per_segment: 16,
            detector: DetectorConfig::default(),
            deployed_filter: FilterSpec::Lap { np: 8 },
            stream_seed: 0xFADE_000D,
        }
    }
}

impl DetectionParams {
    fn validate(&self) -> Result<()> {
        if self.fit_frames == 0 || self.segments == 0 || self.frames_per_segment == 0 {
            return Err(FademlError::InvalidConfig {
                reason: "detection sweep sizes must all be positive".into(),
            });
        }
        self.detector.validate().map_err(detect_config)?;
        self.deployed_filter.build()?;
        Ok(())
    }
}

/// What a scored segment's frames carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentKind {
    /// Unperturbed frames — the negative population.
    Clean,
    /// Frames carrying FGSM noise crafted against the bare DNN.
    Fgsm,
    /// Frames carrying FAdeML noise crafted against `filter ∘ DNN`.
    Fademl,
}

impl SegmentKind {
    /// The kind of segment `index` — clean and attacked segments
    /// alternate so both populations grow with the sweep length.
    pub fn cycle(index: usize) -> SegmentKind {
        match index % 3 {
            0 => SegmentKind::Clean,
            1 => SegmentKind::Fgsm,
            _ => SegmentKind::Fademl,
        }
    }

    /// Stable display label.
    pub fn label(&self) -> &'static str {
        match self {
            SegmentKind::Clean => "clean",
            SegmentKind::Fgsm => "FGSM",
            SegmentKind::Fademl => "FAdeML",
        }
    }

    fn is_adversarial(&self) -> bool {
        !matches!(self, SegmentKind::Clean)
    }
}

/// One point of the ROC sweep: flag when `score >= threshold`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RocPoint {
    /// Decision threshold on the isolation score.
    pub threshold: f32,
    /// True-positive rate (adversarial frames flagged).
    pub tpr: f32,
    /// False-positive rate (clean frames flagged).
    pub fpr: f32,
}

/// Per-segment accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentOutcome {
    /// What the segment carried.
    pub kind: SegmentKind,
    /// Frames scored.
    pub frames: usize,
    /// Mean isolation score over the segment.
    pub mean_score: f32,
}

/// The sweep's result.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectionResult {
    /// Rank-statistic (Mann–Whitney) AUC of the score as an
    /// adversarial-vs-clean discriminator; 0.5 is chance.
    pub auc: f32,
    /// ROC curve, thresholds descending (so points run (0,0) → (1,1)).
    pub roc: Vec<RocPoint>,
    /// Clean frames scored.
    pub clean_frames: usize,
    /// Adversarial frames scored.
    pub adversarial_frames: usize,
    /// Mean score over the clean population.
    pub mean_clean_score: f32,
    /// Mean score over the adversarial population.
    pub mean_adversarial_score: f32,
    /// Per-segment breakdown, in stream order.
    pub segments: Vec<SegmentOutcome>,
}

pub(crate) fn detect_config(e: fademl_detect::DetectError) -> FademlError {
    FademlError::InvalidConfig {
        reason: format!("detector: {e}"),
    }
}

pub(crate) fn detect_corrupt(e: fademl_detect::DetectError) -> FademlError {
    FademlError::Corrupt {
        reason: format!("recorded detector rejected: {e}"),
    }
}

pub(crate) fn detect_score(e: fademl_detect::DetectError) -> FademlError {
    FademlError::InvalidInput {
        reason: format!("detector scoring failed: {e}"),
    }
}

pub(crate) fn truncated(_: std::io::Error) -> FademlError {
    FademlError::Corrupt {
        reason: "detection stage value truncated mid-field".into(),
    }
}

/// Everything that influences a stage output, folded over the base
/// figure fingerprint so a ledger written under different detection
/// knobs (or a different victim) recomputes instead of being trusted.
pub(crate) fn detection_fingerprint(
    prepared: &PreparedSetup,
    params: &DetectionParams,
    attack: &AttackParams,
) -> u64 {
    let base = experiment_fingerprint(
        "detection",
        prepared,
        attack,
        &[params.deployed_filter],
        params.fit_frames,
        ThreatModel::III,
    );
    let mut h = DefaultHasher::new();
    base.hash(&mut h);
    params.segments.hash(&mut h);
    params.frames_per_segment.hash(&mut h);
    params.detector.trees.hash(&mut h);
    params.detector.subsample.hash(&mut h);
    params.detector.scales.hash(&mut h);
    params.detector.seed.hash(&mut h);
    params.stream_seed.hash(&mut h);
    h.finish()
}

/// The victim's input edge length, recovered from the prepared splits.
pub(crate) fn frame_size(prepared: &PreparedSetup) -> Result<usize> {
    let dims = prepared.train.images().dims();
    match dims {
        &[_, _, h, w] if h == w && h > 0 => Ok(h),
        _ => Err(FademlError::InvalidConfig {
            reason: format!("prepared dataset has unusable image shape {dims:?}"),
        }),
    }
}

fn stream(class: ClassId, size: usize, seed: u64) -> Result<FrameStream> {
    FrameStream::new(StreamConfig {
        class,
        image_size: size,
        seed,
        ..StreamConfig::default()
    })
    .map_err(FademlError::from)
}

/// Crafts the segment's additive noise once, on its first clean frame —
/// the attacker perturbs the feed, not each frame independently.
fn segment_noise(
    prepared: &PreparedSetup,
    params: &DetectionParams,
    attack: &AttackParams,
    kind: SegmentKind,
    source: &Tensor,
) -> Result<Option<Tensor>> {
    let goal = AttackGoal::Untargeted {
        source: ClassId::STOP.index(),
    };
    match kind {
        SegmentKind::Clean => Ok(None),
        SegmentKind::Fgsm => {
            let fgsm = Fgsm::new(attack.epsilon)?;
            let mut surface = AttackSurface::new(prepared.model.clone());
            Ok(Some(fgsm.run(&mut surface, source, goal)?.noise))
        }
        SegmentKind::Fademl => {
            let base = Fgsm::new(attack.epsilon)?;
            let aware = Fademl::new(Box::new(base), attack.fademl_rounds, attack.fademl_eta)?;
            let mut surface =
                AttackSurface::with_filter(prepared.model.clone(), params.deployed_filter.build()?);
            Ok(Some(aware.run(&mut surface, source, goal)?.noise))
        }
    }
}

/// Scores one segment: a fresh correlated stream, the segment's noise
/// (if adversarial) applied to every frame, one detector score each.
fn score_segment(
    prepared: &PreparedSetup,
    params: &DetectionParams,
    attack: &AttackParams,
    detector: &Detector,
    index: usize,
    size: usize,
) -> Result<Vec<f32>> {
    let kind = SegmentKind::cycle(index);
    let mut feed = stream(
        ClassId::STOP,
        size,
        params.stream_seed.wrapping_add(1 + index as u64),
    )?;
    let frames = feed.take_frames(params.frames_per_segment)?;
    let noise = segment_noise(prepared, params, attack, kind, &frames[0])?;
    let mut scores = Vec::with_capacity(frames.len());
    for frame in &frames {
        let scored = match &noise {
            None => detector.score_image(frame),
            Some(noise) => detector.score_image(&frame.add(noise)?.clamp(0.0, 1.0)),
        };
        scores.push(scored.map_err(detect_score)?);
    }
    Ok(scores)
}

fn encode_scores(scores: &[f32]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u64(scores.len() as u64);
    for &score in scores {
        w.put_f32(score);
    }
    w.into_bytes()
}

fn decode_scores(bytes: &[u8]) -> Result<Vec<f32>> {
    let mut r = ByteReader::new(bytes);
    let n = r.get_u64().map_err(truncated)? as usize;
    if n > bytes.len() {
        return Err(FademlError::Corrupt {
            reason: "detection stage score count exceeds record size".into(),
        });
    }
    let mut scores = Vec::with_capacity(n);
    for _ in 0..n {
        scores.push(r.get_f32().map_err(truncated)?);
    }
    Ok(scores)
}

/// Mann–Whitney AUC with average-rank tie handling: the probability a
/// random adversarial frame outscores a random clean one.
pub(crate) fn rank_auc(labeled: &[(bool, f32)]) -> f32 {
    let mut order: Vec<usize> = (0..labeled.len()).collect();
    order.sort_by(|&a, &b| {
        labeled[a]
            .1
            .partial_cmp(&labeled[b].1)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut adv_rank_sum = 0.0f64;
    let (mut n_adv, mut n_clean) = (0usize, 0usize);
    let mut i = 0usize;
    while i < order.len() {
        // Average ranks across a tie group so equal scores contribute
        // symmetrically regardless of sort order.
        let mut j = i;
        while j < order.len() && labeled[order[j]].1 == labeled[order[i]].1 {
            j += 1;
        }
        let mean_rank = ((i + 1 + j) as f64) / 2.0;
        for &idx in &order[i..j] {
            if labeled[idx].0 {
                adv_rank_sum += mean_rank;
                n_adv += 1;
            } else {
                n_clean += 1;
            }
        }
        i = j;
    }
    if n_adv == 0 || n_clean == 0 {
        return 0.5;
    }
    let u = adv_rank_sum - (n_adv as f64) * (n_adv as f64 + 1.0) / 2.0;
    (u / (n_adv as f64 * n_clean as f64)) as f32
}

/// Sweeps every distinct observed score as a threshold, descending, and
/// brackets the curve with its (0,0) and (1,1) endpoints.
fn roc_sweep(labeled: &[(bool, f32)]) -> Vec<RocPoint> {
    let n_adv = labeled.iter().filter(|(adv, _)| *adv).count().max(1) as f32;
    let n_clean = labeled.iter().filter(|(adv, _)| !*adv).count().max(1) as f32;
    let mut thresholds: Vec<f32> = labeled.iter().map(|&(_, s)| s).collect();
    thresholds.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
    thresholds.dedup();
    let mut roc = vec![RocPoint {
        threshold: f32::INFINITY,
        tpr: 0.0,
        fpr: 0.0,
    }];
    for t in thresholds {
        let tp = labeled.iter().filter(|&&(adv, s)| adv && s >= t).count();
        let fp = labeled.iter().filter(|&&(adv, s)| !adv && s >= t).count();
        roc.push(RocPoint {
            threshold: t,
            tpr: tp as f32 / n_adv,
            fpr: fp as f32 / n_clean,
        });
    }
    roc
}

fn mean(values: impl Iterator<Item = f32>) -> f32 {
    let (mut sum, mut n) = (0.0f64, 0usize);
    for v in values {
        sum += f64::from(v);
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        (sum / n as f64) as f32
    }
}

/// Runs the resumable detect-under-attack sweep.
///
/// Stages journaled to `ledger_path`: `"fit"` (the serialized detector)
/// plus one `"segment/i"` per scored segment. A rerun under identical
/// parameters and victim reuses every recorded stage.
///
/// # Errors
///
/// Propagates configuration, attack, detector and ledger errors.
pub fn run_detection_resumable(
    prepared: &PreparedSetup,
    params: &DetectionParams,
    attack: &AttackParams,
    ledger_path: &Path,
) -> Result<ResumeReport<DetectionResult>> {
    params.validate()?;
    let size = frame_size(prepared)?;
    let fingerprint = detection_fingerprint(prepared, params, attack);
    let ledger = StageLedger::open(ledger_path, fingerprint)?;
    let mut reused = 0usize;

    let detector = match ledger.get("fit") {
        Some(bytes) => {
            reused += 1;
            Detector::from_bytes(&bytes).map_err(detect_corrupt)?
        }
        None => {
            let mut feed = stream(ClassId::STOP, size, params.stream_seed)?;
            let clean = feed.take_frames(params.fit_frames)?;
            let detector = Detector::fit_images(&clean, &params.detector).map_err(detect_config)?;
            ledger.record("fit", &detector.to_bytes())?;
            detector
        }
    };

    let mut labeled = Vec::with_capacity(params.segments * params.frames_per_segment);
    let mut segments = Vec::with_capacity(params.segments);
    for index in 0..params.segments {
        let key = format!("segment/{index}");
        let scores = match ledger.get(&key) {
            Some(bytes) => {
                reused += 1;
                decode_scores(&bytes)?
            }
            None => {
                let scores = score_segment(prepared, params, attack, &detector, index, size)?;
                ledger.record(&key, &encode_scores(&scores))?;
                scores
            }
        };
        let kind = SegmentKind::cycle(index);
        segments.push(SegmentOutcome {
            kind,
            frames: scores.len(),
            mean_score: mean(scores.iter().copied()),
        });
        labeled.extend(scores.into_iter().map(|s| (kind.is_adversarial(), s)));
    }

    let result = DetectionResult {
        auc: rank_auc(&labeled),
        roc: roc_sweep(&labeled),
        clean_frames: labeled.iter().filter(|(adv, _)| !*adv).count(),
        adversarial_frames: labeled.iter().filter(|(adv, _)| *adv).count(),
        mean_clean_score: mean(labeled.iter().filter(|(adv, _)| !*adv).map(|&(_, s)| s)),
        mean_adversarial_score: mean(labeled.iter().filter(|(adv, _)| *adv).map(|&(_, s)| s)),
        segments,
    };
    Ok(ResumeReport {
        result,
        stages_total: 1 + params.segments,
        stages_reused: reused,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::{ExperimentSetup, SetupProfile};
    use std::fs;
    use std::path::PathBuf;
    use std::sync::OnceLock;

    fn ledger_file(tag: &str) -> PathBuf {
        let path =
            std::env::temp_dir().join(format!("fademl_detection_{tag}_{}.fjl", std::process::id()));
        let _ = fs::remove_file(&path);
        path
    }

    fn prepared() -> &'static PreparedSetup {
        static CELL: OnceLock<PreparedSetup> = OnceLock::new();
        CELL.get_or_init(|| {
            ExperimentSetup::profile(SetupProfile::Smoke)
                .prepare()
                .unwrap()
        })
    }

    fn tiny_params() -> DetectionParams {
        DetectionParams {
            fit_frames: 32,
            segments: 3,
            frames_per_segment: 6,
            detector: DetectorConfig {
                trees: 16,
                subsample: 16,
                scales: 2,
                seed: 9,
            },
            ..DetectionParams::default()
        }
    }

    fn cheap_attack() -> AttackParams {
        AttackParams {
            epsilon: 0.15,
            fademl_rounds: 1,
            ..AttackParams::default()
        }
    }

    #[test]
    fn detection_sweep_separates_attack_from_drift() {
        let path = ledger_file("auc");
        let report =
            run_detection_resumable(prepared(), &tiny_params(), &cheap_attack(), &path).unwrap();
        assert_eq!(report.stages_total, 4);
        assert_eq!(report.stages_reused, 0);
        let r = &report.result;
        assert_eq!(r.clean_frames, 6);
        assert_eq!(r.adversarial_frames, 12);
        assert!(
            r.auc > 0.5,
            "detector must beat chance on FGSM/FAdeML frames: auc {}",
            r.auc
        );
        assert!(r.mean_adversarial_score > r.mean_clean_score);
        // ROC runs (0,0) → (1,1) and is monotone in both axes.
        let first = r.roc.first().unwrap();
        let last = r.roc.last().unwrap();
        assert_eq!((first.tpr, first.fpr), (0.0, 0.0));
        assert_eq!((last.tpr, last.fpr), (1.0, 1.0));
        for pair in r.roc.windows(2) {
            assert!(pair[1].tpr >= pair[0].tpr && pair[1].fpr >= pair[0].fpr);
        }
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn rerun_reuses_every_stage_and_reproduces_the_result() {
        let path = ledger_file("rerun");
        let first =
            run_detection_resumable(prepared(), &tiny_params(), &cheap_attack(), &path).unwrap();
        let second =
            run_detection_resumable(prepared(), &tiny_params(), &cheap_attack(), &path).unwrap();
        assert_eq!(second.stages_reused, second.stages_total);
        assert_eq!(second.result, first.result);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn killed_run_resumes_from_recorded_stages() {
        // Simulate a kill after the fit and the first segment: copy just
        // those records into a fresh ledger and resume from it.
        let full_path = ledger_file("kill_full");
        let partial_path = ledger_file("kill_partial");
        let params = tiny_params();
        let attack = cheap_attack();
        run_detection_resumable(prepared(), &params, &attack, &full_path).unwrap();

        let fingerprint = detection_fingerprint(prepared(), &params, &attack);
        let full = StageLedger::open(&full_path, fingerprint).unwrap();
        let partial = StageLedger::open(&partial_path, fingerprint).unwrap();
        for key in ["fit", "segment/0"] {
            partial.record(key, &full.get(key).unwrap()).unwrap();
        }
        drop(partial);

        let resumed = run_detection_resumable(prepared(), &params, &attack, &partial_path).unwrap();
        assert_eq!(resumed.stages_reused, 2);
        assert_eq!(resumed.stages_total, 4);
        let _ = fs::remove_file(&full_path);
        let _ = fs::remove_file(&partial_path);
    }

    #[test]
    fn changed_parameters_invalidate_the_ledger() {
        let path = ledger_file("fp");
        let attack = cheap_attack();
        run_detection_resumable(prepared(), &tiny_params(), &attack, &path).unwrap();
        let shifted = DetectionParams {
            stream_seed: 0xBEEF,
            ..tiny_params()
        };
        let rerun = run_detection_resumable(prepared(), &shifted, &attack, &path).unwrap();
        assert_eq!(rerun.stages_reused, 0, "foreign-fingerprint stages reused");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn invalid_params_are_refused() {
        let path = ledger_file("invalid");
        for params in [
            DetectionParams {
                segments: 0,
                ..tiny_params()
            },
            DetectionParams {
                detector: DetectorConfig {
                    trees: 0,
                    ..DetectorConfig::default()
                },
                ..tiny_params()
            },
        ] {
            assert!(matches!(
                run_detection_resumable(prepared(), &params, &cheap_attack(), &path),
                Err(FademlError::InvalidConfig { .. })
            ));
        }
    }

    #[test]
    fn rank_auc_handles_degenerate_populations() {
        assert_eq!(rank_auc(&[]), 0.5);
        assert_eq!(rank_auc(&[(true, 0.9), (true, 0.8)]), 0.5);
        // Perfect separation and perfect inversion.
        assert_eq!(rank_auc(&[(false, 0.1), (true, 0.9)]), 1.0);
        assert_eq!(rank_auc(&[(false, 0.9), (true, 0.1)]), 0.0);
        // All-tied scores are chance.
        assert_eq!(rank_auc(&[(false, 0.5), (true, 0.5)]), 0.5);
    }
}
