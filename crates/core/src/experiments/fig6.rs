//! **Fig. 6** — overall top-5 accuracy of the victim on the test set,
//! clean vs under each attack (no pre-processing filter). The paper
//! reports the attacks cost up to ~10 percentage points of top-5
//! accuracy even though each image looks unchanged.

use fademl_filters::FilterSpec;

use super::grid::{accuracy_grid, for_each_scenario_parallel, AccuracyGrid};
use super::AttackParams;
use crate::report::{pct, Table};
use crate::setup::PreparedSetup;
use crate::{Result, Scenario, ThreatModel};

/// Result of the Fig. 6 experiment.
#[derive(Debug, Clone)]
pub struct Fig6Result {
    /// One unfiltered accuracy grid per scenario.
    pub grids: Vec<AccuracyGrid>,
}

impl Fig6Result {
    /// Accuracy for (scenario id, attack label), if present.
    pub fn accuracy(&self, scenario_id: usize, attack: &str) -> Option<f32> {
        self.grids
            .iter()
            .find(|g| g.scenario.id == scenario_id)
            .and_then(|g| g.accuracy(FilterSpec::None, attack))
    }

    /// Renders the paper-style table: rows = attack condition,
    /// columns = scenarios.
    pub fn table(&self) -> Table {
        let mut header = vec!["Condition".to_owned()];
        header.extend(self.grids.iter().map(|g| g.scenario.label()));
        let mut table = Table::new(
            "Fig. 6 — top-5 accuracy without filtering (clean vs attacked)",
            header,
        );
        let mut conditions = vec!["No attack".to_owned()];
        conditions.extend(AttackParams::labels().iter().map(|s| (*s).to_owned()));
        for condition in conditions {
            let mut row = vec![condition.clone()];
            for grid in &self.grids {
                row.push(
                    grid.accuracy(FilterSpec::None, &condition)
                        .map(pct)
                        .unwrap_or_else(|| "-".to_owned()),
                );
            }
            table.push_row(row);
        }
        table
    }
}

/// Runs the Fig. 6 experiment over the first `eval_n` test images per
/// scenario.
///
/// # Errors
///
/// Propagates attack and pipeline errors.
pub fn run(prepared: &PreparedSetup, params: &AttackParams, eval_n: usize) -> Result<Fig6Result> {
    let scenarios = Scenario::paper_scenarios();
    let filters = [FilterSpec::None];
    let grids = for_each_scenario_parallel(&scenarios, |scenario| {
        accuracy_grid(
            prepared,
            params,
            scenario,
            &filters,
            false,
            eval_n,
            ThreatModel::III,
        )
    })?;
    Ok(Fig6Result { grids })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::{ExperimentSetup, SetupProfile};
    use std::sync::OnceLock;

    fn prepared() -> &'static PreparedSetup {
        static CELL: OnceLock<PreparedSetup> = OnceLock::new();
        CELL.get_or_init(|| {
            ExperimentSetup::profile(SetupProfile::Smoke)
                .prepare()
                .unwrap()
        })
    }

    fn cheap_params() -> AttackParams {
        AttackParams {
            epsilon: 0.12,
            bim_iterations: 4,
            lbfgs_iterations: 5,
            ..AttackParams::default()
        }
    }

    #[test]
    fn grid_shape_and_ranges() {
        let result = run(prepared(), &cheap_params(), 6).unwrap();
        assert_eq!(result.grids.len(), 5);
        for grid in &result.grids {
            assert_eq!(grid.cells.len(), 4); // no-attack + 3 attacks
            for cell in &grid.cells {
                assert!((0.0..=1.0).contains(&cell.top5_accuracy));
            }
        }
    }

    #[test]
    fn attacks_do_not_increase_accuracy_on_average() {
        // Adversarial perturbation hurts (or at worst roughly ties)
        // top-5 accuracy relative to clean inputs when averaged over all
        // attacks and scenarios. A single (attack, scenario) cell can tie
        // or even flip upward on a tiny sample, so the assertion uses a
        // larger eval sample and a stronger budget than the smoke tests.
        let params = AttackParams {
            epsilon: 0.2,
            bim_iterations: 8,
            lbfgs_iterations: 8,
            ..AttackParams::default()
        };
        let result = run(prepared(), &params, 30).unwrap();
        let mean = |attack: &str| -> f32 {
            let vals: Vec<f32> = (1..=5)
                .filter_map(|sid| result.accuracy(sid, attack))
                .collect();
            vals.iter().sum::<f32>() / vals.len() as f32
        };
        let clean = mean("No attack");
        let attacked: f32 = AttackParams::labels().iter().map(|a| mean(a)).sum::<f32>() / 3.0;
        assert!(
            attacked <= clean + 0.02,
            "mean attacked accuracy {attacked:.3} above clean {clean:.3}"
        );
    }

    #[test]
    fn table_has_four_condition_rows() {
        let result = run(prepared(), &cheap_params(), 4).unwrap();
        let table = result.table();
        assert_eq!(table.len(), 4);
        assert!(table.render().contains("No attack"));
    }
}
