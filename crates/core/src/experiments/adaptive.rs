//! Static vs adaptive detection under drift and attack.
//!
//! The detect-under-attack sweep ([`super::detection`]) asks whether a
//! *freshly fitted* detector separates adversarial frames from drift.
//! This experiment asks the harder operational question the adaptive
//! serving stage is built on: what happens to that separation when the
//! world moves? A scheduled covariate shift ([`DriftSpec`] applied per
//! segment) changes exposure and the sensor noise floor mid-stream,
//! and attack bursts land *after* the shift — exactly when a detector
//! fitted on opening-regime traffic is most wrong.
//!
//! Two arms score the identical frame sequence:
//!
//! - **static** — the initial detector with a fixed threshold, PR 7
//!   style;
//! - **adaptive** — the serving stack's control loop replayed offline:
//!   a [`ThresholdController`] holds the flagged fraction at a budget,
//!   clean-judged frames feed a [`FeatureReservoir`] (every fourth one
//!   is diverted to a held-out validation ring instead), and at every
//!   segment boundary a candidate forest is refitted from the
//!   reservoir, validated on the ring (clean side vs FGSM-perturbed
//!   side), and swapped in only if its held-out AUC does not regress
//!   past the margin.
//!
//! The sweep is resumable through [`StageLedger`]: each segment's
//! record carries the scores *and* the adaptive arm's complete
//! post-segment state (detector artifact, reservoir artifact,
//! threshold, validation ring, refit counters), so a killed run
//! resumes at the first unrecorded segment with bit-identical state.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::path::Path;

use fademl_attacks::{Attack, AttackGoal, AttackSurface, Fademl, Fgsm};
use fademl_data::{ClassId, DriftSpec, FrameStream, StreamConfig};
use fademl_detect::{
    holdout_auc, pyramid_features, ControllerConfig, Detector, DetectorConfig, FeatureReservoir,
    ThresholdController,
};
use fademl_filters::FilterSpec;
use fademl_tensor::io::{ByteReader, ByteWriter};
use fademl_tensor::{Shape, Tensor};

use super::detection::{
    detect_config, detect_corrupt, detect_score, detection_fingerprint, frame_size, rank_auc,
    truncated, DetectionParams,
};
use super::resume::{ResumeReport, StageLedger};
use super::AttackParams;
use crate::setup::PreparedSetup;
use crate::{FademlError, Result};

/// Knobs of the static-vs-adaptive comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveParams {
    /// Clean frames used to fit the initial (and static-arm) detector.
    pub fit_frames: usize,
    /// Total scored segments; each is one control epoch.
    pub segments: usize,
    /// Frames per segment.
    pub frames_per_segment: usize,
    /// First evaluation segment: from here on, segments alternate
    /// attack burst / clean recovery, and their scores enter the AUC
    /// populations. Must lie inside the sweep.
    pub burst_from: usize,
    /// Isolation-forest configuration (the refit rotates its seed by
    /// the detector generation).
    pub detector: DetectorConfig,
    /// Budget feedback loop for the adaptive arm's threshold.
    pub controller: ControllerConfig,
    /// Starting threshold for both arms (the static arm keeps it).
    pub initial_threshold: f32,
    /// Served-clean sample reservoir capacity.
    pub reservoir_capacity: usize,
    /// Seed of the reservoir's replacement stream.
    pub reservoir_seed: u64,
    /// Minimum reservoir fill before a refit is attempted.
    pub min_refit_samples: usize,
    /// Tolerated held-out AUC regression of a candidate vs the
    /// incumbent, in `[0, 1]`.
    pub auc_margin: f32,
    /// Most recent clean frames kept in the validation ring.
    pub holdout_cap: usize,
    /// Covariate-shift schedule, interpreted in *segment* units
    /// (`at_frame`/`ramp_frames` index segments, not frames).
    pub drift: DriftSpec,
    /// The deployed filter the attack bursts craft against.
    pub deployed_filter: FilterSpec,
    /// Base seed for the frame streams.
    pub stream_seed: u64,
}

impl Default for AdaptiveParams {
    fn default() -> Self {
        AdaptiveParams {
            fit_frames: 96,
            segments: 8,
            frames_per_segment: 32,
            burst_from: 4,
            detector: DetectorConfig::default(),
            controller: ControllerConfig::default(),
            initial_threshold: 0.6,
            reservoir_capacity: 256,
            reservoir_seed: 0x5EED_CAFE,
            min_refit_samples: 32,
            auc_margin: 0.05,
            holdout_cap: 16,
            drift: DriftSpec {
                at_frame: 2,
                ramp_frames: 2,
                brightness_shift: -0.3,
                noise_gain: 2.0,
            },
            deployed_filter: FilterSpec::Lap { np: 8 },
            stream_seed: 0xFADE_AD4D,
        }
    }
}

impl AdaptiveParams {
    fn validate(&self) -> Result<()> {
        if self.fit_frames == 0 || self.segments == 0 || self.frames_per_segment == 0 {
            return Err(FademlError::InvalidConfig {
                reason: "adaptive sweep sizes must all be positive".into(),
            });
        }
        if self.burst_from == 0 || self.burst_from >= self.segments {
            return Err(FademlError::InvalidConfig {
                reason: format!(
                    "burst_from must lie in [1, segments): got {} of {}",
                    self.burst_from, self.segments
                ),
            });
        }
        if !(0.0..=1.0).contains(&self.auc_margin) || !self.auc_margin.is_finite() {
            return Err(FademlError::InvalidConfig {
                reason: format!("auc_margin must be in [0, 1], got {}", self.auc_margin),
            });
        }
        if self.min_refit_samples < 2 {
            return Err(FademlError::InvalidConfig {
                reason: "min_refit_samples must be at least 2".into(),
            });
        }
        if self.holdout_cap == 0 {
            return Err(FademlError::InvalidConfig {
                reason: "holdout_cap must be positive".into(),
            });
        }
        if !self.initial_threshold.is_finite() {
            return Err(FademlError::InvalidConfig {
                reason: "initial_threshold must be finite".into(),
            });
        }
        self.detector.validate().map_err(detect_config)?;
        self.controller.validate().map_err(detect_config)?;
        self.deployed_filter.build()?;
        // Delegate reservoir/drift envelope checks to their owners.
        FeatureReservoir::new(
            self.reservoir_capacity,
            fademl_detect::feature_dim(self.detector.scales),
            self.reservoir_seed,
        )
        .map_err(detect_config)?;
        FrameStream::new(StreamConfig {
            drift: Some(self.drift),
            ..StreamConfig::default()
        })
        .map_err(|e| FademlError::InvalidConfig {
            reason: format!("drift schedule: {e}"),
        })?;
        Ok(())
    }

    /// Whether segment `index` carries an attack burst: evaluation
    /// segments alternate burst / clean recovery so the adaptive arm
    /// must hold its budget *and* keep flagging attacks between refits.
    pub fn is_attack_segment(&self, index: usize) -> bool {
        index >= self.burst_from && (index - self.burst_from).is_multiple_of(2)
    }

    /// Drift strength of segment `index` under the segment-granular
    /// schedule.
    pub fn drift_level(&self, index: usize) -> f32 {
        self.drift.level(index as u64)
    }
}

/// One segment of the comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveSegment {
    /// Whether the segment carried an attack burst.
    pub attack: bool,
    /// Drift strength in `[0, 1]` the segment was rendered under.
    pub drift_level: f32,
    /// Frames scored.
    pub frames: usize,
    /// Frames the static arm flagged (fixed threshold).
    pub static_flagged: usize,
    /// Frames the adaptive arm flagged (controller threshold).
    pub adaptive_flagged: usize,
    /// Adaptive threshold after the segment's control epoch.
    pub threshold_after: f32,
    /// Detector generation after the segment's refit attempt.
    pub generation_after: u64,
}

/// Refit accounting across the sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RefitStats {
    /// Refit attempts (reservoir warm enough, validation ring ready).
    pub attempted: u64,
    /// Candidates that passed held-out validation and were swapped in.
    pub swapped: u64,
    /// Candidates refused for regressing the held-out AUC past the
    /// margin (the incumbent kept serving).
    pub rejected: u64,
}

/// The comparison's result.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveResult {
    /// Static arm's Mann–Whitney AUC over the evaluation segments.
    pub static_auc: f32,
    /// Adaptive arm's AUC over the same frames.
    pub adaptive_auc: f32,
    /// Static arm's flagged fraction on *clean* evaluation segments —
    /// the hardened-path load a fixed threshold would demand post-drift.
    pub static_clean_flagged_frac: f32,
    /// Adaptive arm's flagged fraction on the same clean frames.
    pub adaptive_clean_flagged_frac: f32,
    /// The controller's configured hardened-load budget.
    pub budget: f32,
    /// Refit accounting.
    pub refits: RefitStats,
    /// Final detector generation of the adaptive arm.
    pub final_generation: u64,
    /// Final adaptive threshold.
    pub final_threshold: f32,
    /// Per-segment trajectory, in stream order.
    pub segments: Vec<AdaptiveSegment>,
}

/// The adaptive arm's complete state between segments — everything a
/// resumed run must restore bit-identically.
struct ArmState {
    detector: Detector,
    reservoir: FeatureReservoir,
    threshold: f32,
    holdout: Vec<Tensor>,
    refits: RefitStats,
    generation: u64,
}

/// One segment's outputs (recorded to, or replayed from, the ledger).
struct SegmentRecord {
    static_scores: Vec<f32>,
    adaptive_scores: Vec<f32>,
    static_flagged: u64,
    adaptive_flagged: u64,
    threshold_after: f32,
    refits: RefitStats,
    generation: u64,
    detector_bytes: Vec<u8>,
    reservoir_bytes: Vec<u8>,
    holdout: Vec<Tensor>,
}

fn encode_record(record: &SegmentRecord) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u64(record.static_scores.len() as u64);
    for &s in &record.static_scores {
        w.put_f32(s);
    }
    w.put_u64(record.adaptive_scores.len() as u64);
    for &s in &record.adaptive_scores {
        w.put_f32(s);
    }
    w.put_u64(record.static_flagged);
    w.put_u64(record.adaptive_flagged);
    w.put_f32(record.threshold_after);
    w.put_u64(record.refits.attempted);
    w.put_u64(record.refits.swapped);
    w.put_u64(record.refits.rejected);
    w.put_u64(record.generation);
    w.put_u64(record.detector_bytes.len() as u64);
    w.put_bytes(&record.detector_bytes);
    w.put_u64(record.reservoir_bytes.len() as u64);
    w.put_bytes(&record.reservoir_bytes);
    w.put_u64(record.holdout.len() as u64);
    for image in &record.holdout {
        let data = image.as_slice();
        w.put_u64(data.len() as u64);
        for &v in data {
            w.put_f32(v);
        }
    }
    w.into_bytes()
}

fn read_len(r: &mut ByteReader<'_>, bound: usize) -> Result<usize> {
    let n = r.get_u64().map_err(truncated)?;
    let n = usize::try_from(n).map_err(|_| FademlError::Corrupt {
        reason: "adaptive stage length does not fit the platform".into(),
    })?;
    if n > bound {
        return Err(FademlError::Corrupt {
            reason: format!("adaptive stage length {n} exceeds record bound {bound}"),
        });
    }
    Ok(n)
}

fn read_scores(r: &mut ByteReader<'_>, bound: usize) -> Result<Vec<f32>> {
    let n = read_len(r, bound)?;
    let mut scores = Vec::with_capacity(n);
    for _ in 0..n {
        scores.push(r.get_f32().map_err(truncated)?);
    }
    Ok(scores)
}

fn decode_record(bytes: &[u8], size: usize) -> Result<SegmentRecord> {
    let mut r = ByteReader::new(bytes);
    let bound = bytes.len();
    let static_scores = read_scores(&mut r, bound)?;
    let adaptive_scores = read_scores(&mut r, bound)?;
    let static_flagged = r.get_u64().map_err(truncated)?;
    let adaptive_flagged = r.get_u64().map_err(truncated)?;
    let threshold_after = r.get_f32().map_err(truncated)?;
    let refits = RefitStats {
        attempted: r.get_u64().map_err(truncated)?,
        swapped: r.get_u64().map_err(truncated)?,
        rejected: r.get_u64().map_err(truncated)?,
    };
    let generation = r.get_u64().map_err(truncated)?;
    let detector_len = read_len(&mut r, bound)?;
    let detector_bytes = r.get_bytes(detector_len).map_err(truncated)?.to_vec();
    let reservoir_len = read_len(&mut r, bound)?;
    let reservoir_bytes = r.get_bytes(reservoir_len).map_err(truncated)?.to_vec();
    let holdout_count = read_len(&mut r, bound)?;
    let mut holdout = Vec::with_capacity(holdout_count);
    for _ in 0..holdout_count {
        let numel = read_len(&mut r, bound)?;
        if numel != 3 * size * size {
            return Err(FademlError::Corrupt {
                reason: format!(
                    "adaptive holdout image has {numel} values, expected {}",
                    3 * size * size
                ),
            });
        }
        let mut data = Vec::with_capacity(numel);
        for _ in 0..numel {
            data.push(r.get_f32().map_err(truncated)?);
        }
        holdout.push(Tensor::from_vec(data, Shape::new(vec![3, size, size]))?);
    }
    Ok(SegmentRecord {
        static_scores,
        adaptive_scores,
        static_flagged,
        adaptive_flagged,
        threshold_after,
        refits,
        generation,
        detector_bytes,
        reservoir_bytes,
        holdout,
    })
}

/// Everything that influences a stage output. Folds the adaptive knobs
/// over the base detection fingerprint so a ledger written under
/// different control parameters recomputes instead of being trusted.
fn adaptive_fingerprint(
    prepared: &PreparedSetup,
    params: &AdaptiveParams,
    attack: &AttackParams,
) -> u64 {
    let base_params = DetectionParams {
        fit_frames: params.fit_frames,
        segments: params.segments,
        frames_per_segment: params.frames_per_segment,
        detector: params.detector,
        deployed_filter: params.deployed_filter,
        stream_seed: params.stream_seed,
    };
    let base = detection_fingerprint(prepared, &base_params, attack);
    let mut h = DefaultHasher::new();
    "adaptive".hash(&mut h);
    base.hash(&mut h);
    params.burst_from.hash(&mut h);
    params.controller.budget.to_bits().hash(&mut h);
    params.controller.hysteresis.to_bits().hash(&mut h);
    params.controller.step.to_bits().hash(&mut h);
    params.controller.floor.to_bits().hash(&mut h);
    params.controller.ceiling.to_bits().hash(&mut h);
    params.controller.window.hash(&mut h);
    params.initial_threshold.to_bits().hash(&mut h);
    params.reservoir_capacity.hash(&mut h);
    params.reservoir_seed.hash(&mut h);
    params.min_refit_samples.hash(&mut h);
    params.auc_margin.to_bits().hash(&mut h);
    params.holdout_cap.hash(&mut h);
    params.drift.at_frame.hash(&mut h);
    params.drift.ramp_frames.hash(&mut h);
    params.drift.brightness_shift.to_bits().hash(&mut h);
    params.drift.noise_gain.to_bits().hash(&mut h);
    h.finish()
}

/// The per-segment stream: a fresh correlated scene whose *constant*
/// drift strength follows the segment-granular schedule, so a resumed
/// run rebuilds any segment without replaying the ones before it.
fn segment_stream(params: &AdaptiveParams, size: usize, index: usize) -> Result<FrameStream> {
    let level = params.drift_level(index);
    let drift = if level > 0.0 {
        Some(DriftSpec {
            at_frame: 0,
            ramp_frames: 0,
            brightness_shift: params.drift.brightness_shift * level,
            noise_gain: 1.0 + (params.drift.noise_gain - 1.0) * level,
        })
    } else {
        None
    };
    FrameStream::new(StreamConfig {
        class: ClassId::STOP,
        image_size: size,
        drift,
        seed: params.stream_seed.wrapping_add(1000 + index as u64),
        ..StreamConfig::default()
    })
    .map_err(FademlError::from)
}

/// The burst's additive noise: filter-aware FAdeML crafted once on the
/// segment's first frame — the attacker perturbs the feed.
fn burst_noise(
    prepared: &PreparedSetup,
    params: &AdaptiveParams,
    attack: &AttackParams,
    source: &Tensor,
) -> Result<Tensor> {
    let goal = AttackGoal::Untargeted {
        source: ClassId::STOP.index(),
    };
    let base = Fgsm::new(attack.epsilon)?;
    let aware = Fademl::new(Box::new(base), attack.fademl_rounds, attack.fademl_eta)?;
    let mut surface =
        AttackSurface::with_filter(prepared.model.clone(), params.deployed_filter.build()?);
    Ok(aware.run(&mut surface, source, goal)?.noise)
}

/// End-of-segment refit attempt: candidate from the reservoir, held-out
/// validation on the ring (clean vs FGSM-perturbed), swap only if the
/// candidate's AUC holds up.
fn attempt_refit(
    prepared: &PreparedSetup,
    params: &AdaptiveParams,
    attack: &AttackParams,
    state: &mut ArmState,
) -> Result<()> {
    let Some(probe) = state.holdout.first() else {
        return Ok(());
    };
    if state.reservoir.len() < params.min_refit_samples {
        return Ok(());
    }
    state.refits.attempted += 1;
    let mut candidate_config = params.detector;
    candidate_config.seed = params
        .detector
        .seed
        .wrapping_add(state.generation.wrapping_add(1));
    let candidate = state
        .reservoir
        .refit(&candidate_config)
        .map_err(detect_config)?;

    let goal = AttackGoal::Untargeted {
        source: ClassId::STOP.index(),
    };
    let fgsm = Fgsm::new(attack.epsilon)?;
    let mut surface = AttackSurface::new(prepared.model.clone());
    let noise = fgsm.run(&mut surface, probe, goal)?.noise;
    let scales = params.detector.scales;
    let mut clean_side = Vec::with_capacity(state.holdout.len());
    let mut adversarial_side = Vec::with_capacity(state.holdout.len());
    for image in &state.holdout {
        clean_side.push(pyramid_features(image, scales).map_err(detect_score)?);
        let attacked = image.add(&noise)?.clamp(0.0, 1.0);
        adversarial_side.push(pyramid_features(&attacked, scales).map_err(detect_score)?);
    }
    let candidate_auc =
        holdout_auc(&candidate, &clean_side, &adversarial_side).map_err(detect_score)?;
    let incumbent_auc =
        holdout_auc(&state.detector, &clean_side, &adversarial_side).map_err(detect_score)?;
    if candidate_auc >= incumbent_auc - params.auc_margin {
        state.detector = candidate;
        state.generation += 1;
        state.refits.swapped += 1;
    } else {
        state.refits.rejected += 1;
    }
    Ok(())
}

/// Scores one segment through both arms and runs the adaptive arm's
/// end-of-segment control epoch (threshold carry + refit attempt).
fn run_segment(
    prepared: &PreparedSetup,
    params: &AdaptiveParams,
    attack: &AttackParams,
    static_detector: &Detector,
    state: &mut ArmState,
    index: usize,
    size: usize,
) -> Result<SegmentRecord> {
    let mut feed = segment_stream(params, size, index)?;
    let frames = feed.take_frames(params.frames_per_segment)?;
    let noise = if params.is_attack_segment(index) {
        let Some(source) = frames.first() else {
            return Err(FademlError::InvalidConfig {
                reason: "segment produced no frames".into(),
            });
        };
        Some(burst_noise(prepared, params, attack, source)?)
    } else {
        None
    };
    // Each segment is one control epoch: the threshold carries across
    // segments, the observation window restarts with the epoch (so a
    // resumed run and a straight-through run agree exactly).
    let mut controller =
        ThresholdController::new(params.controller, state.threshold).map_err(detect_config)?;
    let scales = params.detector.scales;
    let mut static_scores = Vec::with_capacity(frames.len());
    let mut adaptive_scores = Vec::with_capacity(frames.len());
    let mut static_flagged = 0u64;
    let mut adaptive_flagged = 0u64;
    let mut clean_judged = 0u64;
    for frame in &frames {
        let image = match &noise {
            None => frame.clone(),
            Some(noise) => frame.add(noise)?.clamp(0.0, 1.0),
        };
        let features = pyramid_features(&image, scales).map_err(detect_score)?;
        let static_score = static_detector.score(&features).map_err(detect_score)?;
        let adaptive_score = state.detector.score(&features).map_err(detect_score)?;
        static_scores.push(static_score);
        adaptive_scores.push(adaptive_score);
        if static_score >= params.initial_threshold {
            static_flagged += 1;
        }
        let flagged = adaptive_score >= controller.threshold();
        controller.observe(flagged);
        if flagged {
            adaptive_flagged += 1;
        } else {
            // Clean-judged traffic feeds the refit loop; every fourth
            // frame is held out for validation instead of sampled.
            clean_judged += 1;
            if clean_judged.is_multiple_of(4) {
                state.holdout.push(image);
                if state.holdout.len() > params.holdout_cap {
                    state.holdout.remove(0);
                }
            } else {
                state.reservoir.offer(&features).map_err(detect_config)?;
            }
        }
    }
    state.threshold = controller.threshold();
    attempt_refit(prepared, params, attack, state)?;
    Ok(SegmentRecord {
        static_scores,
        adaptive_scores,
        static_flagged,
        adaptive_flagged,
        threshold_after: state.threshold,
        refits: state.refits,
        generation: state.generation,
        detector_bytes: state.detector.to_bytes(),
        reservoir_bytes: state.reservoir.to_bytes(),
        holdout: state.holdout.clone(),
    })
}

/// Runs the resumable static-vs-adaptive comparison.
///
/// Stages journaled to `ledger_path`: `"fit"` (the initial detector)
/// plus one `"segment/i"` per segment, each carrying the adaptive
/// arm's full post-segment state. A rerun under identical parameters
/// and victim reuses every recorded stage and reproduces the result
/// exactly; a killed run resumes at its first incomplete segment.
///
/// # Errors
///
/// Propagates configuration, attack, detector and ledger errors.
pub fn run_adaptive_resumable(
    prepared: &PreparedSetup,
    params: &AdaptiveParams,
    attack: &AttackParams,
    ledger_path: &Path,
) -> Result<ResumeReport<AdaptiveResult>> {
    params.validate()?;
    let size = frame_size(prepared)?;
    let fingerprint = adaptive_fingerprint(prepared, params, attack);
    let ledger = StageLedger::open(ledger_path, fingerprint)?;
    let mut reused = 0usize;

    let static_detector = match ledger.get("fit") {
        Some(bytes) => {
            reused += 1;
            Detector::from_bytes(&bytes).map_err(detect_corrupt)?
        }
        None => {
            let mut feed = segment_stream(params, size, 0)?;
            // The fit stream is the pre-drift regime under a dedicated
            // seed — never shared with any scored segment.
            feed = FrameStream::new(StreamConfig {
                class: ClassId::STOP,
                image_size: size,
                seed: params.stream_seed,
                ..*feed.config()
            })?;
            let clean = feed.take_frames(params.fit_frames)?;
            let detector = Detector::fit_images(&clean, &params.detector).map_err(detect_config)?;
            ledger.record("fit", &detector.to_bytes())?;
            detector
        }
    };

    let mut state = ArmState {
        detector: Detector::from_bytes(&static_detector.to_bytes()).map_err(detect_corrupt)?,
        reservoir: FeatureReservoir::new(
            params.reservoir_capacity,
            static_detector.feature_dim(),
            params.reservoir_seed,
        )
        .map_err(detect_config)?,
        threshold: params.initial_threshold,
        holdout: Vec::new(),
        refits: RefitStats::default(),
        generation: 0,
    };

    let mut segments = Vec::with_capacity(params.segments);
    let mut static_labeled = Vec::new();
    let mut adaptive_labeled = Vec::new();
    let mut clean_eval = [0u64; 4]; // static flagged, adaptive flagged, static frames, adaptive frames
    for index in 0..params.segments {
        let key = format!("segment/{index}");
        let record = match ledger.get(&key) {
            Some(bytes) => {
                reused += 1;
                let record = decode_record(&bytes, size)?;
                // Restore the adaptive arm exactly where the recorded
                // segment left it.
                state.detector =
                    Detector::from_bytes(&record.detector_bytes).map_err(detect_corrupt)?;
                state.reservoir = FeatureReservoir::from_bytes(&record.reservoir_bytes)
                    .map_err(detect_corrupt)?;
                state.threshold = record.threshold_after;
                state.holdout = record.holdout.clone();
                state.refits = record.refits;
                state.generation = record.generation;
                record
            }
            None => {
                let record = run_segment(
                    prepared,
                    params,
                    attack,
                    &static_detector,
                    &mut state,
                    index,
                    size,
                )?;
                ledger.record(&key, &encode_record(&record))?;
                record
            }
        };
        let attack_segment = params.is_attack_segment(index);
        if index >= params.burst_from {
            static_labeled.extend(record.static_scores.iter().map(|&s| (attack_segment, s)));
            adaptive_labeled.extend(record.adaptive_scores.iter().map(|&s| (attack_segment, s)));
            if !attack_segment {
                let [sf, af, sn, an] = &mut clean_eval;
                *sf += record.static_flagged;
                *af += record.adaptive_flagged;
                *sn += record.static_scores.len() as u64;
                *an += record.adaptive_scores.len() as u64;
            }
        }
        segments.push(AdaptiveSegment {
            attack: attack_segment,
            drift_level: params.drift_level(index),
            frames: record.static_scores.len(),
            static_flagged: usize::try_from(record.static_flagged).unwrap_or(usize::MAX),
            adaptive_flagged: usize::try_from(record.adaptive_flagged).unwrap_or(usize::MAX),
            threshold_after: record.threshold_after,
            generation_after: record.generation,
        });
    }

    let frac = |flagged: u64, total: u64| {
        if total == 0 {
            0.0
        } else {
            (flagged as f64 / total as f64) as f32
        }
    };
    let [sf, af, sn, an] = clean_eval;
    let result = AdaptiveResult {
        static_auc: rank_auc(&static_labeled),
        adaptive_auc: rank_auc(&adaptive_labeled),
        static_clean_flagged_frac: frac(sf, sn),
        adaptive_clean_flagged_frac: frac(af, an),
        budget: params.controller.budget,
        refits: state.refits,
        final_generation: state.generation,
        final_threshold: state.threshold,
        segments,
    };
    Ok(ResumeReport {
        result,
        stages_total: 1 + params.segments,
        stages_reused: reused,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::{ExperimentSetup, SetupProfile};
    use std::fs;
    use std::path::PathBuf;
    use std::sync::OnceLock;

    fn ledger_file(tag: &str) -> PathBuf {
        let path =
            std::env::temp_dir().join(format!("fademl_adaptive_{tag}_{}.fjl", std::process::id()));
        let _ = fs::remove_file(&path);
        path
    }

    fn prepared() -> &'static PreparedSetup {
        static CELL: OnceLock<PreparedSetup> = OnceLock::new();
        CELL.get_or_init(|| {
            ExperimentSetup::profile(SetupProfile::Smoke)
                .prepare()
                .unwrap()
        })
    }

    fn tiny_params() -> AdaptiveParams {
        AdaptiveParams {
            fit_frames: 48,
            segments: 6,
            frames_per_segment: 24,
            burst_from: 3,
            detector: DetectorConfig {
                trees: 16,
                subsample: 16,
                scales: 2,
                seed: 9,
            },
            controller: ControllerConfig {
                budget: 0.1,
                hysteresis: 0.25,
                step: 0.05,
                floor: 0.3,
                ceiling: 0.95,
                window: 12,
            },
            initial_threshold: 0.52,
            reservoir_capacity: 96,
            reservoir_seed: 0x5EED,
            min_refit_samples: 24,
            auc_margin: 0.1,
            holdout_cap: 8,
            drift: DriftSpec {
                at_frame: 1,
                ramp_frames: 2,
                brightness_shift: -0.35,
                noise_gain: 2.5,
            },
            ..AdaptiveParams::default()
        }
    }

    fn cheap_attack() -> AttackParams {
        AttackParams {
            epsilon: 0.15,
            fademl_rounds: 1,
            ..AttackParams::default()
        }
    }

    /// The seeded regression the subsystem's claim rests on: under
    /// drift + attack bursts, the adaptive arm refits, holds its
    /// hardened budget on post-drift clean traffic, and ends with AUC
    /// at least the static arm's.
    #[test]
    fn adaptive_arm_holds_budget_and_auc_under_drift() {
        let path = ledger_file("regression");
        let report =
            run_adaptive_resumable(prepared(), &tiny_params(), &cheap_attack(), &path).unwrap();
        let r = &report.result;
        assert_eq!(report.stages_total, 7);
        assert_eq!(r.segments.len(), 6);
        // The schedule: clean, clean, clean (drifting), burst, clean, burst.
        let attacks: Vec<bool> = r.segments.iter().map(|s| s.attack).collect();
        assert_eq!(attacks, vec![false, false, false, true, false, true]);
        assert!(r.segments.iter().skip(2).all(|s| s.drift_level == 1.0));
        // The refit loop actually ran and deployed at least one refit.
        assert!(r.refits.attempted >= 1);
        assert!(r.refits.swapped >= 1, "refits: {:?}", r.refits);
        assert_eq!(
            r.final_generation, r.refits.swapped,
            "every swap advances the generation exactly once"
        );
        // Budget held on post-drift clean traffic: the controller may
        // overshoot by one window's step-lag, never unboundedly.
        assert!(
            r.adaptive_clean_flagged_frac <= r.budget * 2.0 + 0.1,
            "adaptive clean flagged {} vs budget {}",
            r.adaptive_clean_flagged_frac,
            r.budget
        );
        // The adaptive arm's separation is no worse than the static arm's.
        assert!(
            r.adaptive_auc >= r.static_auc - 1e-6,
            "adaptive {} vs static {}",
            r.adaptive_auc,
            r.static_auc
        );
        assert!(r.adaptive_auc > 0.5, "must beat chance: {}", r.adaptive_auc);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn rerun_reuses_every_stage_and_reproduces_the_result() {
        let path = ledger_file("rerun");
        let first =
            run_adaptive_resumable(prepared(), &tiny_params(), &cheap_attack(), &path).unwrap();
        let second =
            run_adaptive_resumable(prepared(), &tiny_params(), &cheap_attack(), &path).unwrap();
        assert_eq!(second.stages_reused, second.stages_total);
        assert_eq!(second.result, first.result);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn killed_run_resumes_mid_sweep_with_identical_state() {
        let full_path = ledger_file("kill_full");
        let partial_path = ledger_file("kill_partial");
        let params = tiny_params();
        let attack = cheap_attack();
        let full_report = run_adaptive_resumable(prepared(), &params, &attack, &full_path).unwrap();

        // Copy the fit and the first three segments — a kill right
        // after the drift ramp — into a fresh ledger and resume.
        let fingerprint = adaptive_fingerprint(prepared(), &params, &attack);
        let full = StageLedger::open(&full_path, fingerprint).unwrap();
        let partial = StageLedger::open(&partial_path, fingerprint).unwrap();
        for key in ["fit", "segment/0", "segment/1", "segment/2"] {
            partial.record(key, &full.get(key).unwrap()).unwrap();
        }
        drop(partial);

        let resumed = run_adaptive_resumable(prepared(), &params, &attack, &partial_path).unwrap();
        assert_eq!(resumed.stages_reused, 4);
        assert_eq!(
            resumed.result, full_report.result,
            "resumed state must be bit-identical to the straight-through run"
        );
        let _ = fs::remove_file(&full_path);
        let _ = fs::remove_file(&partial_path);
    }

    #[test]
    fn changed_control_knobs_invalidate_the_ledger() {
        let path = ledger_file("fp");
        let attack = cheap_attack();
        run_adaptive_resumable(prepared(), &tiny_params(), &attack, &path).unwrap();
        let shifted = AdaptiveParams {
            auc_margin: 0.2,
            ..tiny_params()
        };
        let rerun = run_adaptive_resumable(prepared(), &shifted, &attack, &path).unwrap();
        assert_eq!(rerun.stages_reused, 0, "foreign-fingerprint stages reused");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn invalid_params_are_refused() {
        let path = ledger_file("invalid");
        for params in [
            AdaptiveParams {
                burst_from: 9,
                ..tiny_params()
            },
            AdaptiveParams {
                burst_from: 0,
                ..tiny_params()
            },
            AdaptiveParams {
                auc_margin: 1.5,
                ..tiny_params()
            },
            AdaptiveParams {
                min_refit_samples: 1,
                ..tiny_params()
            },
            AdaptiveParams {
                holdout_cap: 0,
                ..tiny_params()
            },
            AdaptiveParams {
                drift: DriftSpec {
                    noise_gain: 9.0,
                    ..DriftSpec::default()
                },
                ..tiny_params()
            },
        ] {
            assert!(matches!(
                run_adaptive_resumable(prepared(), &params, &cheap_attack(), &path),
                Err(FademlError::InvalidConfig { .. })
            ));
        }
    }

    #[test]
    fn segment_schedule_is_deterministic() {
        let params = tiny_params();
        assert!(!params.is_attack_segment(0));
        assert!(!params.is_attack_segment(2));
        assert!(params.is_attack_segment(3));
        assert!(!params.is_attack_segment(4));
        assert!(params.is_attack_segment(5));
        assert_eq!(params.drift_level(0), 0.0);
        assert!(params.drift_level(1) > 0.0 && params.drift_level(1) < 1.0);
        assert_eq!(params.drift_level(3), 1.0);
    }
}
