//! **Fig. 9** — the FAdeML filter-aware attacks are *not* neutralized
//! by the LAP/LAR filters: because the noise is optimized through
//! `filter ∘ DNN`, the targeted misclassification survives filtering,
//! at a slightly reduced attack confidence and with a larger impact on
//! overall top-5 accuracy than the filtered classical attacks.

use fademl_filters::FilterSpec;

use super::grid::{
    accuracy_grid, class_name, for_each_scenario_parallel, scenario_cell, AccuracyGrid,
    ScenarioCell,
};
use super::AttackParams;
use crate::report::{pct, Table};
use crate::setup::PreparedSetup;
use crate::{Result, Scenario, ThreatModel};

/// Result of the Fig. 9 experiment.
#[derive(Debug, Clone)]
pub struct Fig9Result {
    /// Demonstration cells: (scenario, FAdeML-attack, filter) panels.
    pub cells: Vec<ScenarioCell>,
    /// Accuracy-vs-filter grids, one per scenario (attacks re-crafted
    /// per filter because FAdeML noise depends on the filter).
    pub grids: Vec<AccuracyGrid>,
    /// Which threat model the filtered evaluation used.
    pub threat: ThreatModel,
}

impl Fig9Result {
    /// Fraction of filtered cells where the targeted misclassification
    /// survived the filter — the paper's headline: high for FAdeML where
    /// Fig. 7's classical attacks are near zero.
    pub fn filtered_success_rate(&self) -> f32 {
        let filtered: Vec<&ScenarioCell> = self
            .cells
            .iter()
            .filter(|c| c.filter != FilterSpec::None)
            .collect();
        if filtered.is_empty() {
            return 0.0;
        }
        filtered.iter().filter(|c| c.success_tm23).count() as f32 / filtered.len() as f32
    }

    /// Renders one per-scenario demonstration table (FAdeML verdicts
    /// through each filter).
    pub fn scenario_table(&self, scenario_id: usize, filters: &[FilterSpec]) -> Table {
        let mut header = vec!["FAdeML attack".to_owned()];
        header.extend(filters.iter().map(|f| f.to_string()));
        let mut table = Table::new(
            format!(
                "Fig. 9 — scenario {scenario_id}: FAdeML verdict through each filter ({})",
                self.threat
            ),
            header,
        );
        for label in AttackParams::labels() {
            let mut row = vec![format!("FAdeML[{label}]")];
            for &filter in filters {
                let cell = self.cells.iter().find(|c| {
                    c.scenario_id == scenario_id && c.attack == label && c.filter == filter
                });
                row.push(match cell {
                    Some(c) => format!(
                        "{} ({}){}",
                        class_name(c.tm23_class),
                        pct(c.tm23_confidence),
                        if c.success_tm23 { " ⚠" } else { "" }
                    ),
                    None => "-".to_owned(),
                });
            }
            table.push_row(row);
        }
        table
    }

    /// Renders the accuracy grid for one scenario.
    pub fn accuracy_table(&self, scenario_id: usize, filters: &[FilterSpec]) -> Table {
        let mut header = vec!["Condition".to_owned()];
        header.extend(filters.iter().map(|f| f.to_string()));
        let mut table = Table::new(
            format!("Fig. 9 — scenario {scenario_id}: top-5 accuracy vs filter (FAdeML)"),
            header,
        );
        if let Some(grid) = self.grids.iter().find(|g| g.scenario.id == scenario_id) {
            let mut conditions = vec!["No attack".to_owned()];
            conditions.extend(AttackParams::labels().iter().map(|s| (*s).to_owned()));
            for condition in conditions {
                let mut row = vec![condition.clone()];
                for &filter in filters {
                    row.push(
                        grid.accuracy(filter, &condition)
                            .map(pct)
                            .unwrap_or_else(|| "-".to_owned()),
                    );
                }
                table.push_row(row);
            }
        }
        table
    }
}

/// Runs the Fig. 9 experiment: the same grid as Fig. 7 but with every
/// attack wrapped in the FAdeML filter-aware loop, crafted against the
/// deployed filter.
///
/// # Errors
///
/// Propagates attack and pipeline errors; returns an error if `threat`
/// is Threat Model I.
pub fn run(
    prepared: &PreparedSetup,
    params: &AttackParams,
    filters: &[FilterSpec],
    eval_n: usize,
    threat: ThreatModel,
) -> Result<Fig9Result> {
    if !threat.filter_applies() {
        return Err(crate::FademlError::InvalidConfig {
            reason: "Fig. 9 requires Threat Model II or III".into(),
        });
    }
    let scenarios = Scenario::paper_scenarios();
    let per_scenario = for_each_scenario_parallel(&scenarios, |scenario| {
        let mut cells = Vec::new();
        for attack_idx in 0..AttackParams::labels().len() {
            for &filter in filters {
                cells.push(scenario_cell(
                    prepared, params, scenario, attack_idx, filter, true, threat,
                )?);
            }
        }
        let grid = accuracy_grid(prepared, params, scenario, filters, true, eval_n, threat)?;
        Ok((cells, grid))
    })?;
    let mut cells = Vec::new();
    let mut grids = Vec::new();
    for (c, g) in per_scenario {
        cells.extend(c);
        grids.push(g);
    }
    Ok(Fig9Result {
        cells,
        grids,
        threat,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::{ExperimentSetup, SetupProfile};
    use std::sync::OnceLock;

    fn prepared() -> &'static PreparedSetup {
        static CELL: OnceLock<PreparedSetup> = OnceLock::new();
        CELL.get_or_init(|| {
            ExperimentSetup::profile(SetupProfile::Smoke)
                .prepare()
                .unwrap()
        })
    }

    fn cheap_params() -> AttackParams {
        AttackParams {
            epsilon: 0.15,
            bim_iterations: 4,
            lbfgs_iterations: 5,
            fademl_rounds: 2,
            ..AttackParams::default()
        }
    }

    fn small_filters() -> Vec<FilterSpec> {
        vec![FilterSpec::Lap { np: 8 }, FilterSpec::Lar { r: 1 }]
    }

    #[test]
    fn rejects_threat_model_one() {
        assert!(run(
            prepared(),
            &cheap_params(),
            &small_filters(),
            3,
            ThreatModel::I
        )
        .is_err());
    }

    #[test]
    fn covers_cells_and_grids() {
        let filters = small_filters();
        let result = run(prepared(), &cheap_params(), &filters, 3, ThreatModel::III).unwrap();
        assert_eq!(result.cells.len(), 5 * 3 * filters.len());
        assert_eq!(result.grids.len(), 5);
    }

    #[test]
    fn fademl_survives_filters_better_than_blind_attacks() {
        // Head-to-head on the same victim, filters and parameters: the
        // filter-aware attacks must keep a higher (or equal) filtered
        // success rate than the blind classical attacks of Fig. 7.
        use super::super::fig7;
        let filters = small_filters();
        let params = cheap_params();
        let blind = fig7::run(prepared(), &params, &filters, 3, ThreatModel::III).unwrap();
        let aware = run(prepared(), &params, &filters, 3, ThreatModel::III).unwrap();
        assert!(
            aware.filtered_success_rate() >= blind.filtered_success_rate(),
            "FAdeML {:.0}% vs blind {:.0}%",
            aware.filtered_success_rate() * 100.0,
            blind.filtered_success_rate() * 100.0
        );
    }

    #[test]
    fn tables_render() {
        let filters = small_filters();
        let result = run(prepared(), &cheap_params(), &filters, 3, ThreatModel::III).unwrap();
        let demo = result.scenario_table(2, &filters);
        assert!(demo.render().contains("FAdeML[FGSM]"));
        let acc = result.accuracy_table(2, &filters);
        assert_eq!(acc.len(), 4);
    }
}
