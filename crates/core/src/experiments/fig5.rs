//! **Fig. 5** — Threat Model I: every library attack achieves every
//! targeted misclassification scenario when the adversarial image is
//! written directly into the DNN input buffer (no filter in the way).

use fademl_filters::FilterSpec;

use super::grid::{class_name, for_each_scenario_parallel, scenario_cell, ScenarioCell};
use super::AttackParams;
use crate::report::{pct, Table};
use crate::setup::PreparedSetup;
use crate::{Result, Scenario, ThreatModel};

/// Result of the Fig. 5 experiment.
#[derive(Debug, Clone)]
pub struct Fig5Result {
    /// One cell per (scenario, attack), all with `FilterSpec::None`.
    pub cells: Vec<ScenarioCell>,
}

impl Fig5Result {
    /// Fraction of (attack, scenario) cells where the targeted
    /// misclassification succeeded (the paper reports all 15 succeed).
    pub fn success_rate(&self) -> f32 {
        if self.cells.is_empty() {
            return 0.0;
        }
        self.cells.iter().filter(|c| c.success_tm1).count() as f32 / self.cells.len() as f32
    }

    /// Renders the paper-style table: rows = attacks, columns = scenarios.
    pub fn table(&self) -> Table {
        let scenarios = Scenario::paper_scenarios();
        let mut header = vec!["Attack".to_owned()];
        header.extend(scenarios.iter().map(|s| s.label()));
        let mut table = Table::new(
            "Fig. 5 — targeted misclassification under Threat Model I (no filter)",
            header,
        );
        for label in AttackParams::labels() {
            let mut row = vec![label.to_owned()];
            for s in &scenarios {
                let cell = self
                    .cells
                    .iter()
                    .find(|c| c.scenario_id == s.id && c.attack == label);
                row.push(match cell {
                    Some(c) => format!(
                        "{} ({}){}",
                        class_name(c.tm1_class),
                        pct(c.tm1_confidence),
                        if c.success_tm1 { " ✓" } else { " ✗" }
                    ),
                    None => "-".to_owned(),
                });
            }
            table.push_row(row);
        }
        table
    }
}

/// Runs the Fig. 5 experiment: 3 attacks × 5 scenarios, crafted and
/// evaluated on the bare DNN.
///
/// # Errors
///
/// Propagates attack and pipeline errors.
pub fn run(prepared: &PreparedSetup, params: &AttackParams) -> Result<Fig5Result> {
    let scenarios = Scenario::paper_scenarios();
    let per_scenario = for_each_scenario_parallel(&scenarios, |scenario| {
        let mut cells = Vec::with_capacity(AttackParams::labels().len());
        for attack_idx in 0..AttackParams::labels().len() {
            cells.push(scenario_cell(
                prepared,
                params,
                scenario,
                attack_idx,
                FilterSpec::None,
                false,
                // With FilterSpec::None the threat model only controls
                // acquisition noise; III keeps the evaluation noise-free.
                ThreatModel::III,
            )?);
        }
        Ok(cells)
    })?;
    Ok(Fig5Result {
        cells: per_scenario.into_iter().flatten().collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::{ExperimentSetup, SetupProfile};
    use std::sync::OnceLock;

    fn prepared() -> &'static PreparedSetup {
        static CELL: OnceLock<PreparedSetup> = OnceLock::new();
        CELL.get_or_init(|| {
            ExperimentSetup::profile(SetupProfile::Smoke)
                .prepare()
                .unwrap()
        })
    }

    fn cheap_params() -> AttackParams {
        AttackParams {
            epsilon: 0.15,
            bim_alpha: 0.03,
            bim_iterations: 6,
            lbfgs_iterations: 8,
            ..AttackParams::default()
        }
    }

    #[test]
    fn produces_all_fifteen_cells() {
        let result = run(prepared(), &cheap_params()).unwrap();
        assert_eq!(result.cells.len(), 15);
        // Every attack × scenario combination appears exactly once.
        for label in AttackParams::labels() {
            for sid in 1..=5 {
                assert_eq!(
                    result
                        .cells
                        .iter()
                        .filter(|c| c.attack == label && c.scenario_id == sid)
                        .count(),
                    1
                );
            }
        }
    }

    #[test]
    fn attacks_usually_succeed_without_filter() {
        // The smoke victim is small, but the majority of the 15 cells
        // should still flip to the target without a filter in the way.
        let result = run(prepared(), &cheap_params()).unwrap();
        assert!(
            result.success_rate() > 0.5,
            "TM-I success rate only {:.0}%",
            result.success_rate() * 100.0
        );
    }

    #[test]
    fn no_filter_means_views_agree() {
        let result = run(prepared(), &cheap_params()).unwrap();
        for cell in &result.cells {
            assert_eq!(cell.filter, FilterSpec::None);
            assert_eq!(cell.tm1_class, cell.tm23_class);
            assert!(cell.cost.abs() < 1e-5);
        }
    }

    #[test]
    fn table_renders_all_rows() {
        let result = run(prepared(), &cheap_params()).unwrap();
        let table = result.table();
        assert_eq!(table.len(), 3);
        let rendered = table.render();
        assert!(rendered.contains("L-BFGS"));
        assert!(rendered.contains("FGSM"));
        assert!(rendered.contains("BIM"));
        assert!(rendered.contains("S1"));
    }
}
