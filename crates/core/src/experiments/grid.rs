//! Shared evaluation machinery for the figure experiments: per-scenario
//! attack cells and accuracy-vs-filter series.

use fademl_attacks::{Attack, AttackSurface, Fademl};
use fademl_data::ClassId;
use fademl_filters::FilterSpec;
use fademl_nn::Sequential;
use fademl_tensor::Tensor;

use super::AttackParams;
use crate::cost::top5_cost;
use crate::setup::PreparedSetup;
use crate::{FademlError, InferencePipeline, Result, Scenario, ThreatModel};

/// One (scenario, attack, filter) demonstration cell — the per-sign
/// panels of Figs. 5, 7 and 9.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioCell {
    /// Scenario number (1-5).
    pub scenario_id: usize,
    /// Attack label (`"L-BFGS"`, `"FGSM"`, `"BIM"`).
    pub attack: String,
    /// Deployed filter.
    pub filter: FilterSpec,
    /// Winning class when the adversarial image bypasses the filter.
    pub tm1_class: usize,
    /// Its confidence.
    pub tm1_confidence: f32,
    /// Winning class when the image passes through the filter.
    pub tm23_class: usize,
    /// Its confidence.
    pub tm23_confidence: f32,
    /// Eq. 2 cost between the two views.
    pub cost: f32,
    /// Targeted misclassification achieved under TM-I.
    pub success_tm1: bool,
    /// Targeted misclassification achieved under TM-II/III.
    pub success_tm23: bool,
    /// L∞ magnitude of the crafted noise.
    pub noise_linf: f32,
}

/// One point of an accuracy-vs-filter series (the bar charts of
/// Figs. 6, 7 and 9).
#[derive(Debug, Clone, PartialEq)]
pub struct AccuracyCell {
    /// Deployed filter.
    pub filter: FilterSpec,
    /// Attack label, or `"No attack"`.
    pub attack: String,
    /// Top-5 accuracy over the evaluation subset.
    pub top5_accuracy: f32,
}

/// A full accuracy grid for one scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct AccuracyGrid {
    /// The scenario whose target class drives the perturbations.
    pub scenario: Scenario,
    /// All (filter, attack) accuracy cells.
    pub cells: Vec<AccuracyCell>,
}

impl AccuracyGrid {
    /// Looks up one cell's accuracy.
    pub fn accuracy(&self, filter: FilterSpec, attack: &str) -> Option<f32> {
        self.cells
            .iter()
            .find(|c| c.filter == filter && c.attack == attack)
            .map(|c| c.top5_accuracy)
    }
}

/// Builds the attacker's crafting context for one attack index.
///
/// For classical (Threat-Model-I) crafting the surface is the bare DNN;
/// for FAdeML crafting it is `filter ∘ DNN` and the attack is wrapped
/// in the [`Fademl`] refinement loop.
fn build_attack_and_surface(
    model: &Sequential,
    params: &AttackParams,
    attack_idx: usize,
    filter_aware: Option<FilterSpec>,
) -> Result<(Box<dyn Attack>, AttackSurface)> {
    let mut library = params.library()?;
    if attack_idx >= library.len() {
        return Err(FademlError::InvalidConfig {
            reason: format!("attack index {attack_idx} out of range"),
        });
    }
    let base = library.swap_remove(attack_idx);
    match filter_aware {
        None => Ok((base, AttackSurface::new(model.clone()))),
        Some(spec) => {
            let surface = AttackSurface::with_filter(model.clone(), spec.build()?);
            let wrapped = Fademl::new(base, params.fademl_rounds, params.fademl_eta)?;
            Ok((Box::new(wrapped), surface))
        }
    }
}

/// Fetches the scenario's source image from the test set, falling back
/// to the training set if the split left the class empty.
fn scenario_image(prepared: &PreparedSetup, class: ClassId) -> Result<Tensor> {
    prepared
        .test
        .first_of_class(class)
        .or_else(|_| prepared.train.first_of_class(class))
        .map_err(FademlError::from)
}

/// Evaluates one (scenario, attack, filter) cell.
///
/// `filter_aware` selects the crafting mode: `false` crafts against the
/// bare DNN (the classical attacks of Figs. 5/7), `true` crafts against
/// the deployed filter (FAdeML, Fig. 9).
///
/// # Errors
///
/// Propagates setup, attack and pipeline errors.
pub fn scenario_cell(
    prepared: &PreparedSetup,
    params: &AttackParams,
    scenario: &Scenario,
    attack_idx: usize,
    filter: FilterSpec,
    filter_aware: bool,
    threat: ThreatModel,
) -> Result<ScenarioCell> {
    let source = scenario_image(prepared, scenario.source)?;
    let aware = if filter_aware { Some(filter) } else { None };
    let (attack, mut surface) =
        build_attack_and_surface(&prepared.model, params, attack_idx, aware)?;
    let adv = attack.run(&mut surface, &source, scenario.goal())?;

    let pipeline = InferencePipeline::new(prepared.model.clone(), filter)?;
    let tm1 = pipeline.classify(&adv.adversarial, ThreatModel::I)?;
    let tm23 = pipeline.classify(&adv.adversarial, threat)?;
    let cost = top5_cost(&tm1.probabilities, &tm23.probabilities)?;
    Ok(ScenarioCell {
        scenario_id: scenario.id,
        attack: AttackParams::labels()[attack_idx].to_owned(),
        filter,
        tm1_class: tm1.class,
        tm1_confidence: tm1.confidence,
        tm23_class: tm23.class,
        tm23_confidence: tm23.confidence,
        cost,
        success_tm1: tm1.class == scenario.target.index(),
        success_tm23: tm23.class == scenario.target.index(),
        noise_linf: adv.noise_linf(),
    })
}

/// Builds the adversarially perturbed evaluation set for one
/// (scenario, attack) pair, the way the paper's Figs. 6/7/9 accuracy
/// bars are produced: the adversarial noise is crafted **once** on the
/// scenario's source image, then that same noise pattern is added to
/// the first `eval_n` test images (clamped into pixel range). The
/// attack noise is tailored to a *different* image, so its effect on
/// the overall dataset is a confidence/accuracy erosion rather than a
/// wholesale misclassification — the paper's "up to 10%" top-5 drop.
///
/// Returns `(adversarial_images, true_labels)`.
///
/// # Errors
///
/// Propagates attack errors; returns
/// [`FademlError::InvalidConfig`] for `eval_n == 0`.
pub fn craft_eval_set(
    prepared: &PreparedSetup,
    params: &AttackParams,
    scenario: &Scenario,
    attack_idx: usize,
    filter_aware: Option<FilterSpec>,
    eval_n: usize,
) -> Result<(Tensor, Vec<usize>)> {
    if eval_n == 0 {
        return Err(FademlError::InvalidConfig {
            reason: "eval_n must be positive".into(),
        });
    }
    let n = eval_n.min(prepared.test.len());
    let source = scenario_image(prepared, scenario.source)?;
    let (attack, mut surface) =
        build_attack_and_surface(&prepared.model, params, attack_idx, filter_aware)?;
    let noise = attack.run(&mut surface, &source, scenario.goal())?.noise;
    let mut adv_images = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let (image, label) = prepared.test.sample(i)?;
        adv_images.push(image.add(&noise)?.clamp(0.0, 1.0));
        labels.push(label);
    }
    Ok((Tensor::stack(&adv_images)?, labels))
}

/// Computes the full accuracy grid for one scenario: top-5 accuracy of
/// the deployed pipeline over an `eval_n`-image subset, for every
/// (filter, attack) combination plus a `"No attack"` baseline column.
///
/// For `filter_aware == false` the adversarial images are crafted once
/// per attack (they do not depend on the filter, matching Fig. 7); for
/// `filter_aware == true` they are re-crafted per filter (FAdeML,
/// Fig. 9).
///
/// # Errors
///
/// Propagates setup, attack and pipeline errors.
pub fn accuracy_grid(
    prepared: &PreparedSetup,
    params: &AttackParams,
    scenario: &Scenario,
    filters: &[FilterSpec],
    filter_aware: bool,
    eval_n: usize,
    threat: ThreatModel,
) -> Result<AccuracyGrid> {
    let n = eval_n.min(prepared.test.len());
    let clean = prepared.test.take(n).map_err(FademlError::from)?;
    let mut cells = Vec::new();

    // Baseline: unattacked images through each filter.
    for &filter in filters {
        let pipeline = InferencePipeline::new(prepared.model.clone(), filter)?;
        let acc = pipeline.top_k_accuracy(clean.images(), clean.labels(), threat, 5)?;
        cells.push(AccuracyCell {
            filter,
            attack: "No attack".to_owned(),
            top5_accuracy: acc,
        });
    }

    for (attack_idx, label) in AttackParams::labels().iter().enumerate() {
        if filter_aware {
            for &filter in filters {
                let (adv, labels) =
                    craft_eval_set(prepared, params, scenario, attack_idx, Some(filter), n)?;
                let pipeline = InferencePipeline::new(prepared.model.clone(), filter)?;
                let acc = pipeline.top_k_accuracy(&adv, &labels, threat, 5)?;
                cells.push(AccuracyCell {
                    filter,
                    attack: (*label).to_owned(),
                    top5_accuracy: acc,
                });
            }
        } else {
            let (adv, labels) = craft_eval_set(prepared, params, scenario, attack_idx, None, n)?;
            for &filter in filters {
                let pipeline = InferencePipeline::new(prepared.model.clone(), filter)?;
                let acc = pipeline.top_k_accuracy(&adv, &labels, threat, 5)?;
                cells.push(AccuracyCell {
                    filter,
                    attack: (*label).to_owned(),
                    top5_accuracy: acc,
                });
            }
        }
    }
    Ok(AccuracyGrid {
        scenario: *scenario,
        cells,
    })
}

/// Runs `job` for every scenario in parallel (one worker per scenario,
/// each with its own model clone) and returns results in scenario order.
///
/// # Errors
///
/// Propagates the first job error encountered.
pub(crate) fn for_each_scenario_parallel<T, F>(scenarios: &[Scenario], job: F) -> Result<Vec<T>>
where
    T: Send,
    F: Fn(&Scenario) -> Result<T> + Sync,
{
    let results = parking_lot::Mutex::new(Vec::<(usize, Result<T>)>::new());
    crossbeam::thread::scope(|scope| {
        for (idx, scenario) in scenarios.iter().enumerate() {
            let results = &results;
            let job = &job;
            scope.spawn(move |_| {
                let outcome = job(scenario);
                results.lock().push((idx, outcome));
            });
        }
    })
    .map_err(|_| FademlError::InvalidConfig {
        reason: "a scenario worker panicked".into(),
    })?;
    let mut collected: Vec<(usize, Result<T>)> = results.into_inner();
    collected.sort_by_key(|(idx, _)| *idx);
    collected.into_iter().map(|(_, r)| r).collect()
}

/// Resolves a dataset class index to its human-readable name.
pub(crate) fn class_name(index: usize) -> String {
    ClassId::new(index)
        .map(|c| c.info().name.to_owned())
        .unwrap_or_else(|_| format!("class {index}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::{ExperimentSetup, SetupProfile};
    use std::sync::OnceLock;

    fn prepared() -> &'static PreparedSetup {
        static CELL: OnceLock<PreparedSetup> = OnceLock::new();
        CELL.get_or_init(|| {
            ExperimentSetup::profile(SetupProfile::Smoke)
                .prepare()
                .unwrap()
        })
    }

    fn cheap_params() -> AttackParams {
        AttackParams {
            bim_iterations: 4,
            lbfgs_iterations: 5,
            fademl_rounds: 1,
            ..AttackParams::default()
        }
    }

    #[test]
    fn scenario_cell_fields_consistent() {
        let cell = scenario_cell(
            prepared(),
            &cheap_params(),
            &Scenario::paper_scenarios()[0],
            1, // FGSM
            FilterSpec::Lap { np: 8 },
            false,
            ThreatModel::III,
        )
        .unwrap();
        assert_eq!(cell.scenario_id, 1);
        assert_eq!(cell.attack, "FGSM");
        assert!(cell.tm1_confidence > 0.0 && cell.tm1_confidence <= 1.0);
        assert!(cell.tm23_confidence > 0.0 && cell.tm23_confidence <= 1.0);
        assert!(cell.noise_linf > 0.0);
        assert_eq!(
            cell.success_tm1,
            cell.tm1_class == Scenario::paper_scenarios()[0].target.index()
        );
    }

    #[test]
    fn rejects_bad_attack_index() {
        let result = scenario_cell(
            prepared(),
            &cheap_params(),
            &Scenario::paper_scenarios()[0],
            7,
            FilterSpec::None,
            false,
            ThreatModel::III,
        );
        assert!(matches!(result, Err(FademlError::InvalidConfig { .. })));
    }

    #[test]
    fn craft_eval_set_shapes() {
        let (adv, labels) = craft_eval_set(
            prepared(),
            &cheap_params(),
            &Scenario::paper_scenarios()[0],
            1,
            None,
            4,
        )
        .unwrap();
        assert_eq!(adv.dims()[0], 4);
        assert_eq!(labels.len(), 4);
        assert!(adv.min().unwrap() >= 0.0 && adv.max().unwrap() <= 1.0);
        assert!(craft_eval_set(
            prepared(),
            &cheap_params(),
            &Scenario::paper_scenarios()[0],
            1,
            None,
            0
        )
        .is_err());
    }

    #[test]
    fn accuracy_grid_covers_all_cells() {
        let filters = [FilterSpec::None, FilterSpec::Lap { np: 8 }];
        let grid = accuracy_grid(
            prepared(),
            &cheap_params(),
            &Scenario::paper_scenarios()[0],
            &filters,
            false,
            4,
            ThreatModel::III,
        )
        .unwrap();
        // (3 attacks + no-attack) × 2 filters.
        assert_eq!(grid.cells.len(), 8);
        for cell in &grid.cells {
            assert!((0.0..=1.0).contains(&cell.top5_accuracy));
        }
        assert!(grid.accuracy(FilterSpec::None, "No attack").is_some());
        assert!(grid.accuracy(FilterSpec::Lap { np: 8 }, "FGSM").is_some());
        assert!(grid.accuracy(FilterSpec::Lar { r: 5 }, "FGSM").is_none());
    }

    #[test]
    fn parallel_scenarios_preserve_order() {
        let scenarios = Scenario::paper_scenarios();
        let ids = for_each_scenario_parallel(&scenarios, |s| Ok(s.id)).unwrap();
        assert_eq!(ids, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn class_name_lookup() {
        assert_eq!(class_name(14), "stop");
        assert_eq!(class_name(999), "class 999");
    }
}
