//! Experiment-level resumability: a per-stage completion ledger so a
//! killed figure sweep restarts at the first incomplete stage instead
//! of from scratch.
//!
//! Each figure experiment decomposes into five independent per-scenario
//! stages. The [`StageLedger`] is an append-only journal: every
//! completed stage is appended as a length-prefixed record carrying its
//! own CRC-32, so a crash mid-append leaves a torn tail that the next
//! open detects, truncates and recomputes — never a silently wrong
//! result. Records also embed a *fingerprint* of everything that
//! influences the stage output (attack parameters, filters, evaluation
//! size, threat model, victim weights); a ledger written under
//! different settings is treated as empty rather than trusted.
//!
//! See `DESIGN.md` §12 for the byte layout and the durability argument.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::fs;
use std::hash::{Hash, Hasher};
use std::io::Write;
use std::path::{Path, PathBuf};

use fademl_data::ClassId;
use fademl_filters::FilterSpec;
use fademl_tensor::io::{crc32, ByteReader, ByteWriter, Crc32};
use parking_lot::Mutex;

use super::fig5::Fig5Result;
use super::fig6::Fig6Result;
use super::fig7::Fig7Result;
use super::fig9::Fig9Result;
use super::grid::{accuracy_grid, for_each_scenario_parallel, scenario_cell};
use super::{AccuracyCell, AccuracyGrid, AttackParams, ScenarioCell};
use crate::setup::PreparedSetup;
use crate::{FademlError, Result, Scenario, ThreatModel};

const MAGIC: &[u8; 8] = b"FADEMLL1";

/// Upper bound on a single record payload. Stage values are a few
/// hundred bytes; anything larger is a corrupt length prefix, not data.
const MAX_PAYLOAD: usize = 16 << 20;

fn corrupt(reason: impl Into<String>) -> FademlError {
    FademlError::Corrupt {
        reason: reason.into(),
    }
}

fn truncated(_: std::io::Error) -> FademlError {
    corrupt("stage value truncated mid-field")
}

// ---------------------------------------------------------------------------
// The ledger
// ---------------------------------------------------------------------------

/// An append-only journal of completed experiment stages.
///
/// Concurrency: appends are serialized by an internal lock, so the
/// per-scenario workers of a figure run can record stages in parallel.
/// Durability: each append is a single `write` followed by `fsync`; a
/// crash between the two leaves a torn tail that the next [`open`]
/// drops and repairs.
///
/// [`open`]: StageLedger::open
#[derive(Debug)]
pub struct StageLedger {
    path: PathBuf,
    fingerprint: u64,
    entries: Mutex<HashMap<String, Vec<u8>>>,
}

impl StageLedger {
    /// Opens (or lazily creates) the ledger at `path`, keeping only
    /// records whose fingerprint matches `fingerprint`.
    ///
    /// A torn tail from a crashed append is truncated away so later
    /// appends land on a well-formed prefix.
    ///
    /// # Errors
    ///
    /// Returns [`FademlError::Corrupt`] if an existing file is not a
    /// stage ledger at all (bad magic), and [`FademlError::Io`] on
    /// read/repair failures.
    pub fn open<P: AsRef<Path>>(path: P, fingerprint: u64) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let mut entries = HashMap::new();
        if path.exists() {
            let bytes = fs::read(&path).map_err(FademlError::Io)?;
            let valid_len = scan_records(&bytes, fingerprint, &mut entries)?;
            if valid_len < bytes.len() {
                let file = fs::OpenOptions::new()
                    .write(true)
                    .open(&path)
                    .map_err(FademlError::Io)?;
                file.set_len(valid_len as u64).map_err(FademlError::Io)?;
                file.sync_all().map_err(FademlError::Io)?;
            }
        }
        Ok(StageLedger {
            path,
            fingerprint,
            entries: Mutex::new(entries),
        })
    }

    /// The recorded value for `key`, if a matching-fingerprint record
    /// exists. Later records for the same key win.
    pub fn get(&self, key: &str) -> Option<Vec<u8>> {
        self.entries.lock().get(key).cloned()
    }

    /// Number of distinct completed stages visible to this fingerprint.
    pub fn completed(&self) -> usize {
        self.entries.lock().len()
    }

    /// Appends one completed stage and syncs it to disk before
    /// returning, so a stage reported as recorded survives a crash.
    ///
    /// # Errors
    ///
    /// Returns [`FademlError::Io`] on append/sync failure and
    /// [`FademlError::InvalidConfig`] for an oversized value.
    pub fn record(&self, key: &str, value: &[u8]) -> Result<()> {
        let mut payload = ByteWriter::new();
        payload.put_u64(self.fingerprint);
        payload.put_str(key);
        payload.put_bytes(value);
        let payload = payload.into_bytes();
        if payload.len() > MAX_PAYLOAD {
            return Err(FademlError::InvalidConfig {
                reason: format!("stage value for {key:?} exceeds {MAX_PAYLOAD} bytes"),
            });
        }
        let mut record = Vec::with_capacity(payload.len() + 8);
        record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        record.extend_from_slice(&payload);
        record.extend_from_slice(&crc32(&payload).to_le_bytes());

        // The lock covers the file append so parallel stage workers
        // never interleave partial records.
        let mut entries = self.entries.lock();
        let mut file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)
            .map_err(FademlError::Io)?;
        if file.metadata().map_err(FademlError::Io)?.len() == 0 {
            file.write_all(MAGIC).map_err(FademlError::Io)?;
        }
        file.write_all(&record).map_err(FademlError::Io)?;
        file.sync_all().map_err(FademlError::Io)?;
        entries.insert(key.to_owned(), value.to_vec());
        Ok(())
    }
}

/// Walks the record stream, filling `entries` with matching-fingerprint
/// records, and returns the byte length of the well-formed prefix.
/// Anything after the first malformed record is untrusted and dropped.
fn scan_records(
    bytes: &[u8],
    fingerprint: u64,
    entries: &mut HashMap<String, Vec<u8>>,
) -> Result<usize> {
    if bytes.len() < MAGIC.len() {
        // A prefix of the magic is a crash during ledger creation;
        // anything else is a foreign file we must not append to.
        return if MAGIC.starts_with(bytes) {
            Ok(0)
        } else {
            Err(corrupt("not a FAdeML stage ledger (bad magic)"))
        };
    }
    if &bytes[..MAGIC.len()] != MAGIC {
        return Err(corrupt("not a FAdeML stage ledger (bad magic)"));
    }
    let mut offset = MAGIC.len();
    loop {
        let rest = &bytes[offset..];
        if rest.len() < 4 {
            break;
        }
        let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
        if len > MAX_PAYLOAD || rest.len() < 4 + len + 4 {
            break;
        }
        let payload = &rest[4..4 + len];
        let stored = &rest[4 + len..4 + len + 4];
        if crc32(payload) != u32::from_le_bytes([stored[0], stored[1], stored[2], stored[3]]) {
            break;
        }
        let mut r = ByteReader::new(payload);
        let parsed = (|| -> std::io::Result<(u64, String, Vec<u8>)> {
            let fp = r.get_u64()?;
            let key = r.get_str()?;
            let value = r.get_bytes(r.remaining())?.to_vec();
            Ok((fp, key, value))
        })();
        match parsed {
            Ok((fp, key, value)) => {
                if fp == fingerprint {
                    entries.insert(key, value);
                }
            }
            // CRC passed but the payload is structurally malformed:
            // treat it and everything after as untrusted.
            Err(_) => break,
        }
        offset += 4 + len + 4;
    }
    Ok(offset)
}

// ---------------------------------------------------------------------------
// Fingerprinting
// ---------------------------------------------------------------------------

/// Stable hash over everything that influences a figure's stage
/// outputs: the figure itself, attack hyper-parameters, filter set,
/// evaluation size, threat model, and a signature of the victim's
/// weights. Stages recorded under a different fingerprint are ignored
/// (recomputed) rather than trusted.
pub fn experiment_fingerprint(
    figure: &str,
    prepared: &PreparedSetup,
    params: &AttackParams,
    filters: &[FilterSpec],
    eval_n: usize,
    threat: ThreatModel,
) -> u64 {
    let mut h = DefaultHasher::new();
    figure.hash(&mut h);
    params.epsilon.to_bits().hash(&mut h);
    params.bim_alpha.to_bits().hash(&mut h);
    params.bim_iterations.hash(&mut h);
    params.lbfgs_c.to_bits().hash(&mut h);
    params.lbfgs_iterations.hash(&mut h);
    params.fademl_rounds.hash(&mut h);
    params.fademl_eta.to_bits().hash(&mut h);
    filters.len().hash(&mut h);
    for filter in filters {
        let mut w = ByteWriter::new();
        put_filter(&mut w, *filter);
        w.into_bytes().hash(&mut h);
    }
    eval_n.hash(&mut h);
    let threat_tag: u8 = match threat {
        ThreatModel::I => 1,
        ThreatModel::II => 2,
        ThreatModel::III => 3,
    };
    threat_tag.hash(&mut h);
    // Victim signature: parameter count plus a CRC over a slice of the
    // leading weights — cheap, and any retrained victim changes it.
    let model_params = prepared.model.params();
    model_params.len().hash(&mut h);
    let mut crc = Crc32::new();
    for param in model_params.iter().take(2) {
        for &x in param.value.as_slice().iter().take(256) {
            crc.update(&x.to_bits().to_le_bytes());
        }
    }
    crc.finish().hash(&mut h);
    h.finish()
}

// ---------------------------------------------------------------------------
// Stage value codecs
// ---------------------------------------------------------------------------

fn put_filter(w: &mut ByteWriter, filter: FilterSpec) {
    match filter {
        FilterSpec::None => w.put_u8(0),
        FilterSpec::Lap { np } => {
            w.put_u8(1);
            w.put_u64(np as u64);
        }
        FilterSpec::Lar { r } => {
            w.put_u8(2);
            w.put_u64(r as u64);
        }
        FilterSpec::Gaussian { sigma } => {
            w.put_u8(3);
            w.put_f32(sigma);
        }
        FilterSpec::Median { window } => {
            w.put_u8(4);
            w.put_u64(window as u64);
        }
        FilterSpec::BitDepth { bits } => {
            w.put_u8(5);
            w.put_u8(bits);
        }
        // Future variants get an opaque tag: the fingerprint still
        // distinguishes them (via the display string) but decode
        // refuses them, so such stages recompute instead of being
        // trusted from an older ledger.
        other => {
            w.put_u8(255);
            w.put_str(&other.to_string());
        }
    }
}

fn get_filter(r: &mut ByteReader) -> Result<FilterSpec> {
    match r.get_u8().map_err(truncated)? {
        0 => Ok(FilterSpec::None),
        1 => Ok(FilterSpec::Lap {
            np: r.get_u64().map_err(truncated)? as usize,
        }),
        2 => Ok(FilterSpec::Lar {
            r: r.get_u64().map_err(truncated)? as usize,
        }),
        3 => Ok(FilterSpec::Gaussian {
            sigma: r.get_f32().map_err(truncated)?,
        }),
        4 => Ok(FilterSpec::Median {
            window: r.get_u64().map_err(truncated)? as usize,
        }),
        5 => Ok(FilterSpec::BitDepth {
            bits: r.get_u8().map_err(truncated)?,
        }),
        tag => Err(corrupt(format!("unknown or unsupported filter tag {tag}"))),
    }
}

fn put_scenario_cell(w: &mut ByteWriter, cell: &ScenarioCell) {
    w.put_u64(cell.scenario_id as u64);
    w.put_str(&cell.attack);
    put_filter(w, cell.filter);
    w.put_u64(cell.tm1_class as u64);
    w.put_f32(cell.tm1_confidence);
    w.put_u64(cell.tm23_class as u64);
    w.put_f32(cell.tm23_confidence);
    w.put_f32(cell.cost);
    w.put_u8(u8::from(cell.success_tm1));
    w.put_u8(u8::from(cell.success_tm23));
    w.put_f32(cell.noise_linf);
}

fn get_scenario_cell(r: &mut ByteReader) -> Result<ScenarioCell> {
    Ok(ScenarioCell {
        scenario_id: r.get_u64().map_err(truncated)? as usize,
        attack: r.get_str().map_err(truncated)?,
        filter: get_filter(r)?,
        tm1_class: r.get_u64().map_err(truncated)? as usize,
        tm1_confidence: r.get_f32().map_err(truncated)?,
        tm23_class: r.get_u64().map_err(truncated)? as usize,
        tm23_confidence: r.get_f32().map_err(truncated)?,
        cost: r.get_f32().map_err(truncated)?,
        success_tm1: r.get_u8().map_err(truncated)? != 0,
        success_tm23: r.get_u8().map_err(truncated)? != 0,
        noise_linf: r.get_f32().map_err(truncated)?,
    })
}

fn put_scenario(w: &mut ByteWriter, scenario: &Scenario) {
    w.put_u64(scenario.id as u64);
    w.put_u32(scenario.source.index() as u32);
    w.put_u32(scenario.target.index() as u32);
}

fn get_scenario(r: &mut ByteReader) -> Result<Scenario> {
    let id = r.get_u64().map_err(truncated)? as usize;
    let source = r.get_u32().map_err(truncated)? as usize;
    let target = r.get_u32().map_err(truncated)? as usize;
    Ok(Scenario {
        id,
        source: ClassId::new(source).map_err(|_| corrupt("scenario source class out of range"))?,
        target: ClassId::new(target).map_err(|_| corrupt("scenario target class out of range"))?,
    })
}

fn put_grid(w: &mut ByteWriter, grid: &AccuracyGrid) {
    put_scenario(w, &grid.scenario);
    w.put_u32(grid.cells.len() as u32);
    for cell in &grid.cells {
        put_filter(w, cell.filter);
        w.put_str(&cell.attack);
        w.put_f32(cell.top5_accuracy);
    }
}

fn get_grid(r: &mut ByteReader) -> Result<AccuracyGrid> {
    let scenario = get_scenario(r)?;
    let count = r.get_u32().map_err(truncated)? as usize;
    if count > r.remaining() {
        return Err(corrupt("accuracy grid claims more cells than bytes"));
    }
    let mut cells = Vec::with_capacity(count);
    for _ in 0..count {
        cells.push(AccuracyCell {
            filter: get_filter(r)?,
            attack: r.get_str().map_err(truncated)?,
            top5_accuracy: r.get_f32().map_err(truncated)?,
        });
    }
    Ok(AccuracyGrid { scenario, cells })
}

fn put_cells(w: &mut ByteWriter, cells: &[ScenarioCell]) {
    w.put_u32(cells.len() as u32);
    for cell in cells {
        put_scenario_cell(w, cell);
    }
}

fn get_cells(r: &mut ByteReader) -> Result<Vec<ScenarioCell>> {
    let count = r.get_u32().map_err(truncated)? as usize;
    if count > r.remaining() {
        return Err(corrupt("cell list claims more cells than bytes"));
    }
    let mut cells = Vec::with_capacity(count);
    for _ in 0..count {
        cells.push(get_scenario_cell(r)?);
    }
    Ok(cells)
}

fn finish_decode<T>(r: &ByteReader, value: T) -> Result<T> {
    if r.remaining() != 0 {
        return Err(corrupt("trailing bytes after stage value"));
    }
    Ok(value)
}

fn encode_cells_value(cells: &[ScenarioCell]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    put_cells(&mut w, cells);
    w.into_bytes()
}

fn decode_cells_value(bytes: &[u8]) -> Result<Vec<ScenarioCell>> {
    let mut r = ByteReader::new(bytes);
    let cells = get_cells(&mut r)?;
    finish_decode(&r, cells)
}

fn encode_grid_value(grid: &AccuracyGrid) -> Vec<u8> {
    let mut w = ByteWriter::new();
    put_grid(&mut w, grid);
    w.into_bytes()
}

fn decode_grid_value(bytes: &[u8]) -> Result<AccuracyGrid> {
    let mut r = ByteReader::new(bytes);
    let grid = get_grid(&mut r)?;
    finish_decode(&r, grid)
}

fn encode_stage_value(stage: &(Vec<ScenarioCell>, AccuracyGrid)) -> Vec<u8> {
    let mut w = ByteWriter::new();
    put_cells(&mut w, &stage.0);
    put_grid(&mut w, &stage.1);
    w.into_bytes()
}

fn decode_stage_value(bytes: &[u8]) -> Result<(Vec<ScenarioCell>, AccuracyGrid)> {
    let mut r = ByteReader::new(bytes);
    let cells = get_cells(&mut r)?;
    let grid = get_grid(&mut r)?;
    finish_decode(&r, (cells, grid))
}

// ---------------------------------------------------------------------------
// Resumable figure runners
// ---------------------------------------------------------------------------

/// Outcome of a resumable figure run.
#[derive(Debug, Clone)]
pub struct ResumeReport<T> {
    /// The figure result, identical in shape to the non-resumable run.
    pub result: T,
    /// Total per-scenario stages in the sweep.
    pub stages_total: usize,
    /// Stages loaded from the ledger instead of recomputed.
    pub stages_reused: usize,
}

/// Runs one stage per scenario, reusing recorded stages and appending
/// each freshly computed one to the ledger *before* moving on, so a
/// kill at any point preserves every finished stage.
fn resumable_stages<T, D, E, C>(
    ledger: &StageLedger,
    prefix: &str,
    decode: D,
    encode: E,
    compute: C,
) -> Result<(Vec<T>, usize)>
where
    T: Send,
    D: Fn(&[u8]) -> Result<T>,
    E: Fn(&T) -> Vec<u8> + Sync,
    C: Fn(&Scenario) -> Result<T> + Sync,
{
    let slots: Vec<(Scenario, Option<T>)> = Scenario::paper_scenarios()
        .into_iter()
        .map(|scenario| {
            // A record that fails to decode is treated as absent: the
            // worst case is recomputation, never a wrong figure.
            let cached = ledger
                .get(&format!("{prefix}/s{}", scenario.id))
                .and_then(|bytes| decode(&bytes).ok());
            (scenario, cached)
        })
        .collect();
    let reused = slots.iter().filter(|(_, cached)| cached.is_some()).count();
    let pending: Vec<Scenario> = slots
        .iter()
        .filter(|(_, cached)| cached.is_none())
        .map(|(scenario, _)| *scenario)
        .collect();
    let computed = for_each_scenario_parallel(&pending, |scenario| {
        let value = compute(scenario)?;
        ledger.record(&format!("{prefix}/s{}", scenario.id), &encode(&value))?;
        Ok(value)
    })?;
    let mut fresh = computed.into_iter();
    let results = slots
        .into_iter()
        .map(|(_, cached)| match cached {
            Some(value) => value,
            // Pending scenarios come back in the order they went in.
            None => fresh
                .next()
                .expect("one computed stage per pending scenario"),
        })
        .collect();
    Ok((results, reused))
}

/// Resumable [`fig5`](super::fig5): per-scenario stages journaled to
/// `ledger_path`.
///
/// # Errors
///
/// Propagates attack, pipeline and ledger errors.
pub fn run_fig5_resumable(
    prepared: &PreparedSetup,
    params: &AttackParams,
    ledger_path: &Path,
) -> Result<ResumeReport<Fig5Result>> {
    let fingerprint = experiment_fingerprint("fig5", prepared, params, &[], 0, ThreatModel::III);
    let ledger = StageLedger::open(ledger_path, fingerprint)?;
    let (stages, reused) = resumable_stages(
        &ledger,
        "fig5",
        decode_cells_value,
        |cells| encode_cells_value(cells),
        |scenario| {
            let mut cells = Vec::with_capacity(AttackParams::labels().len());
            for attack_idx in 0..AttackParams::labels().len() {
                cells.push(scenario_cell(
                    prepared,
                    params,
                    scenario,
                    attack_idx,
                    FilterSpec::None,
                    false,
                    ThreatModel::III,
                )?);
            }
            Ok(cells)
        },
    )?;
    let stages_total = stages.len();
    Ok(ResumeReport {
        result: Fig5Result {
            cells: stages.into_iter().flatten().collect(),
        },
        stages_total,
        stages_reused: reused,
    })
}

/// Resumable [`fig6`](super::fig6).
///
/// # Errors
///
/// Propagates attack, pipeline and ledger errors.
pub fn run_fig6_resumable(
    prepared: &PreparedSetup,
    params: &AttackParams,
    eval_n: usize,
    ledger_path: &Path,
) -> Result<ResumeReport<Fig6Result>> {
    let filters = [FilterSpec::None];
    let fingerprint =
        experiment_fingerprint("fig6", prepared, params, &filters, eval_n, ThreatModel::III);
    let ledger = StageLedger::open(ledger_path, fingerprint)?;
    let (grids, reused) = resumable_stages(
        &ledger,
        "fig6",
        decode_grid_value,
        encode_grid_value,
        |scenario| {
            accuracy_grid(
                prepared,
                params,
                scenario,
                &filters,
                false,
                eval_n,
                ThreatModel::III,
            )
        },
    )?;
    let stages_total = grids.len();
    Ok(ResumeReport {
        result: Fig6Result { grids },
        stages_total,
        stages_reused: reused,
    })
}

/// Resumable [`fig7`](super::fig7).
///
/// # Errors
///
/// Propagates attack, pipeline and ledger errors; returns an error if
/// `threat` is Threat Model I.
pub fn run_fig7_resumable(
    prepared: &PreparedSetup,
    params: &AttackParams,
    filters: &[FilterSpec],
    eval_n: usize,
    threat: ThreatModel,
    ledger_path: &Path,
) -> Result<ResumeReport<Fig7Result>> {
    if !threat.filter_applies() {
        return Err(FademlError::InvalidConfig {
            reason: "Fig. 7 requires Threat Model II or III".into(),
        });
    }
    let fingerprint = experiment_fingerprint("fig7", prepared, params, filters, eval_n, threat);
    let ledger = StageLedger::open(ledger_path, fingerprint)?;
    let (stages, reused) = resumable_stages(
        &ledger,
        "fig7",
        decode_stage_value,
        encode_stage_value,
        |scenario| {
            let mut cells = Vec::new();
            for attack_idx in 0..AttackParams::labels().len() {
                for &filter in filters {
                    cells.push(scenario_cell(
                        prepared, params, scenario, attack_idx, filter, false, threat,
                    )?);
                }
            }
            let grid = accuracy_grid(prepared, params, scenario, filters, false, eval_n, threat)?;
            Ok((cells, grid))
        },
    )?;
    let stages_total = stages.len();
    let mut cells = Vec::new();
    let mut grids = Vec::new();
    for (c, g) in stages {
        cells.extend(c);
        grids.push(g);
    }
    Ok(ResumeReport {
        result: Fig7Result {
            cells,
            grids,
            threat,
        },
        stages_total,
        stages_reused: reused,
    })
}

/// Resumable [`fig9`](super::fig9).
///
/// # Errors
///
/// Propagates attack, pipeline and ledger errors; returns an error if
/// `threat` is Threat Model I.
pub fn run_fig9_resumable(
    prepared: &PreparedSetup,
    params: &AttackParams,
    filters: &[FilterSpec],
    eval_n: usize,
    threat: ThreatModel,
    ledger_path: &Path,
) -> Result<ResumeReport<Fig9Result>> {
    if !threat.filter_applies() {
        return Err(FademlError::InvalidConfig {
            reason: "Fig. 9 requires Threat Model II or III".into(),
        });
    }
    let fingerprint = experiment_fingerprint("fig9", prepared, params, filters, eval_n, threat);
    let ledger = StageLedger::open(ledger_path, fingerprint)?;
    let (stages, reused) = resumable_stages(
        &ledger,
        "fig9",
        decode_stage_value,
        encode_stage_value,
        |scenario| {
            let mut cells = Vec::new();
            for attack_idx in 0..AttackParams::labels().len() {
                for &filter in filters {
                    cells.push(scenario_cell(
                        prepared, params, scenario, attack_idx, filter, true, threat,
                    )?);
                }
            }
            let grid = accuracy_grid(prepared, params, scenario, filters, true, eval_n, threat)?;
            Ok((cells, grid))
        },
    )?;
    let stages_total = stages.len();
    let mut cells = Vec::new();
    let mut grids = Vec::new();
    for (c, g) in stages {
        cells.extend(c);
        grids.push(g);
    }
    Ok(ResumeReport {
        result: Fig9Result {
            cells,
            grids,
            threat,
        },
        stages_total,
        stages_reused: reused,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::{ExperimentSetup, SetupProfile};
    use fademl_tensor::io::atomic_write;
    use std::sync::OnceLock;

    fn ledger_file(tag: &str) -> PathBuf {
        let path =
            std::env::temp_dir().join(format!("fademl_ledger_{tag}_{}.fjl", std::process::id()));
        let _ = fs::remove_file(&path);
        path
    }

    fn prepared() -> &'static PreparedSetup {
        static CELL: OnceLock<PreparedSetup> = OnceLock::new();
        CELL.get_or_init(|| {
            ExperimentSetup::profile(SetupProfile::Smoke)
                .prepare()
                .unwrap()
        })
    }

    fn cheap_params() -> AttackParams {
        AttackParams {
            epsilon: 0.15,
            bim_alpha: 0.03,
            bim_iterations: 4,
            lbfgs_iterations: 5,
            fademl_rounds: 1,
            ..AttackParams::default()
        }
    }

    #[test]
    fn ledger_round_trip_survives_reopen() {
        let path = ledger_file("round");
        let ledger = StageLedger::open(&path, 42).unwrap();
        assert_eq!(ledger.completed(), 0);
        ledger.record("a", b"alpha").unwrap();
        ledger.record("b", b"beta").unwrap();
        ledger.record("a", b"alpha-v2").unwrap(); // last writer wins
        assert_eq!(ledger.get("a").as_deref(), Some(&b"alpha-v2"[..]));

        let reopened = StageLedger::open(&path, 42).unwrap();
        assert_eq!(reopened.completed(), 2);
        assert_eq!(reopened.get("a").as_deref(), Some(&b"alpha-v2"[..]));
        assert_eq!(reopened.get("b").as_deref(), Some(&b"beta"[..]));
        assert_eq!(reopened.get("missing"), None);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_tolerated_and_repaired() {
        let path = ledger_file("torn");
        let ledger = StageLedger::open(&path, 7).unwrap();
        ledger.record("a", b"one").unwrap();
        ledger.record("b", b"two").unwrap();
        // Crash mid-append: a partial length prefix dangles at the end.
        let mut file = fs::OpenOptions::new().append(true).open(&path).unwrap();
        file.write_all(&[0x07, 0x00]).unwrap();
        drop(file);

        let reopened = StageLedger::open(&path, 7).unwrap();
        assert_eq!(reopened.completed(), 2);
        // The torn bytes were truncated, so a fresh append parses.
        reopened.record("c", b"three").unwrap();
        let again = StageLedger::open(&path, 7).unwrap();
        assert_eq!(again.completed(), 3);
        assert_eq!(again.get("c").as_deref(), Some(&b"three"[..]));
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn mid_record_corruption_drops_only_the_suffix() {
        let path = ledger_file("rot");
        let ledger = StageLedger::open(&path, 7).unwrap();
        ledger.record("a", b"keep-me").unwrap();
        let keep = fs::metadata(&path).unwrap().len() as usize;
        ledger.record("b", b"rot-me").unwrap();

        let mut bytes = fs::read(&path).unwrap();
        bytes[keep + 6] ^= 0xFF;
        atomic_write(&path, &bytes).unwrap();

        let reopened = StageLedger::open(&path, 7).unwrap();
        assert_eq!(reopened.completed(), 1);
        assert_eq!(reopened.get("a").as_deref(), Some(&b"keep-me"[..]));
        assert_eq!(reopened.get("b"), None);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn wrong_magic_is_a_typed_corrupt_error() {
        let path = ledger_file("magic");
        atomic_write(&path, b"NOTALEDGERFILE").unwrap();
        match StageLedger::open(&path, 1) {
            Err(FademlError::Corrupt { .. }) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn fingerprint_gates_reuse() {
        let path = ledger_file("fp");
        let first = StageLedger::open(&path, 1).unwrap();
        first.record("stage", b"under-one").unwrap();

        let other = StageLedger::open(&path, 2).unwrap();
        assert_eq!(other.completed(), 0);
        assert_eq!(other.get("stage"), None);
        other.record("stage", b"under-two").unwrap();

        // Both histories coexist; each fingerprint sees only its own.
        let one = StageLedger::open(&path, 1).unwrap();
        assert_eq!(one.get("stage").as_deref(), Some(&b"under-one"[..]));
        let two = StageLedger::open(&path, 2).unwrap();
        assert_eq!(two.get("stage").as_deref(), Some(&b"under-two"[..]));
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn stage_value_codecs_round_trip() {
        let filters = [
            FilterSpec::None,
            FilterSpec::Lap { np: 8 },
            FilterSpec::Lar { r: 3 },
            FilterSpec::Gaussian { sigma: 1.25 },
            FilterSpec::Median { window: 3 },
            FilterSpec::BitDepth { bits: 4 },
        ];
        let cells: Vec<ScenarioCell> = filters
            .iter()
            .enumerate()
            .map(|(i, &filter)| ScenarioCell {
                scenario_id: i + 1,
                attack: format!("attack-{i}"),
                filter,
                tm1_class: 14,
                tm1_confidence: 0.75,
                tm23_class: 3,
                tm23_confidence: 0.5,
                cost: 0.125,
                success_tm1: i % 2 == 0,
                success_tm23: i % 2 == 1,
                noise_linf: 0.08,
            })
            .collect();
        let decoded = decode_cells_value(&encode_cells_value(&cells)).unwrap();
        assert_eq!(decoded, cells);

        let grid = AccuracyGrid {
            scenario: Scenario::paper_scenarios()[2],
            cells: vec![
                AccuracyCell {
                    filter: FilterSpec::Lap { np: 16 },
                    attack: "No attack".to_owned(),
                    top5_accuracy: 0.9375,
                },
                AccuracyCell {
                    filter: FilterSpec::None,
                    attack: "FGSM".to_owned(),
                    top5_accuracy: 0.5,
                },
            ],
        };
        let decoded = decode_grid_value(&encode_grid_value(&grid)).unwrap();
        assert_eq!(decoded, grid);

        let stage = (cells, grid);
        let decoded = decode_stage_value(&encode_stage_value(&stage)).unwrap();
        assert_eq!(decoded, stage);

        // Truncation anywhere is a typed error, and trailing garbage is
        // rejected rather than silently ignored.
        let bytes = encode_stage_value(&stage);
        for cut in [0, 1, bytes.len() / 2, bytes.len() - 1] {
            assert!(matches!(
                decode_stage_value(&bytes[..cut]),
                Err(FademlError::Corrupt { .. })
            ));
        }
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(matches!(
            decode_stage_value(&padded),
            Err(FademlError::Corrupt { .. })
        ));
    }

    #[test]
    fn fingerprint_distinguishes_configs() {
        let p = prepared();
        let params = cheap_params();
        let base = experiment_fingerprint("fig7", p, &params, &[], 4, ThreatModel::III);
        assert_eq!(
            base,
            experiment_fingerprint("fig7", p, &params, &[], 4, ThreatModel::III)
        );
        assert_ne!(
            base,
            experiment_fingerprint("fig9", p, &params, &[], 4, ThreatModel::III)
        );
        let mut other = params;
        other.epsilon += 0.01;
        assert_ne!(
            base,
            experiment_fingerprint("fig7", p, &other, &[], 4, ThreatModel::III)
        );
        assert_ne!(
            base,
            experiment_fingerprint("fig7", p, &params, &[], 5, ThreatModel::III)
        );
        assert_ne!(
            base,
            experiment_fingerprint("fig7", p, &params, &[], 4, ThreatModel::II)
        );
        assert_ne!(
            base,
            experiment_fingerprint(
                "fig7",
                p,
                &params,
                &[FilterSpec::Lap { np: 8 }],
                4,
                ThreatModel::III
            )
        );
    }

    #[test]
    fn fig5_resumable_reuses_completed_stages() {
        let path = ledger_file("fig5");
        let first = run_fig5_resumable(prepared(), &cheap_params(), &path).unwrap();
        assert_eq!(first.stages_total, 5);
        assert_eq!(first.stages_reused, 0);
        assert_eq!(first.result.cells.len(), 15);

        let second = run_fig5_resumable(prepared(), &cheap_params(), &path).unwrap();
        assert_eq!(second.stages_reused, 5);
        assert_eq!(second.result.cells, first.result.cells);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn killed_sweep_restarts_at_first_incomplete_stage() {
        let path = ledger_file("fig5_kill");
        let reference = run_fig5_resumable(prepared(), &cheap_params(), &path).unwrap();

        // Simulate a kill partway through: chop the journal mid-record.
        let bytes = fs::read(&path).unwrap();
        atomic_write(&path, &bytes[..bytes.len() * 3 / 5]).unwrap();

        let resumed = run_fig5_resumable(prepared(), &cheap_params(), &path).unwrap();
        assert!(
            resumed.stages_reused >= 1 && resumed.stages_reused < 5,
            "truncation should leave a partial ledger, reused {}",
            resumed.stages_reused
        );
        // The attacks are deterministic under TM-III, so the resumed
        // sweep reproduces the uninterrupted result exactly.
        assert_eq!(resumed.result.cells, reference.result.cells);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn fig6_and_fig7_resumable_reuse() {
        let path6 = ledger_file("fig6");
        let first = run_fig6_resumable(prepared(), &cheap_params(), 3, &path6).unwrap();
        assert_eq!(first.stages_reused, 0);
        let second = run_fig6_resumable(prepared(), &cheap_params(), 3, &path6).unwrap();
        assert_eq!(second.stages_reused, 5);
        assert_eq!(second.result.grids, first.result.grids);
        let _ = fs::remove_file(&path6);

        let filters = [FilterSpec::None, FilterSpec::Lap { np: 8 }];
        let path7 = ledger_file("fig7");
        assert!(run_fig7_resumable(
            prepared(),
            &cheap_params(),
            &filters,
            3,
            ThreatModel::I,
            &path7
        )
        .is_err());
        let first = run_fig7_resumable(
            prepared(),
            &cheap_params(),
            &filters,
            3,
            ThreatModel::III,
            &path7,
        )
        .unwrap();
        assert_eq!(first.stages_reused, 0);
        assert_eq!(first.result.cells.len(), 5 * 3 * filters.len());
        let second = run_fig7_resumable(
            prepared(),
            &cheap_params(),
            &filters,
            3,
            ThreatModel::III,
            &path7,
        )
        .unwrap();
        assert_eq!(second.stages_reused, 5);
        assert_eq!(second.result.cells, first.result.cells);
        assert_eq!(second.result.grids, first.result.grids);
        let _ = fs::remove_file(&path7);
    }

    #[test]
    fn fig9_resumable_reuses() {
        let filters = [FilterSpec::Lap { np: 8 }];
        let path = ledger_file("fig9");
        let first = run_fig9_resumable(
            prepared(),
            &cheap_params(),
            &filters,
            2,
            ThreatModel::III,
            &path,
        )
        .unwrap();
        assert_eq!(first.stages_reused, 0);
        assert_eq!(first.result.cells.len(), 5 * 3);
        let second = run_fig9_resumable(
            prepared(),
            &cheap_params(),
            &filters,
            2,
            ThreatModel::III,
            &path,
        )
        .unwrap();
        assert_eq!(second.stages_reused, 5);
        assert_eq!(second.result.cells, first.result.cells);
        let _ = fs::remove_file(&path);
    }
}
