//! **Fig. 7** — Threat Models II/III: the LAP/LAR smoothing filters
//! neutralize the classical attacks (the target class no longer wins
//! once the adversarial image passes through the filter), at the cost
//! of a confidence/accuracy reduction. Top-5 accuracy vs filter
//! strength is hump-shaped: mild smoothing removes sensor noise and
//! helps, heavy smoothing destroys class features and hurts.

use fademl_filters::FilterSpec;

use super::grid::{
    accuracy_grid, class_name, for_each_scenario_parallel, scenario_cell, AccuracyGrid,
    ScenarioCell,
};
use super::AttackParams;
use crate::report::{pct, Table};
use crate::setup::PreparedSetup;
use crate::{Result, Scenario, ThreatModel};

/// Result of the Fig. 7 experiment.
#[derive(Debug, Clone)]
pub struct Fig7Result {
    /// Demonstration cells: (scenario, attack, filter) sign panels.
    pub cells: Vec<ScenarioCell>,
    /// Accuracy-vs-filter grids, one per scenario.
    pub grids: Vec<AccuracyGrid>,
    /// Which threat model the filtered evaluation used.
    pub threat: ThreatModel,
}

impl Fig7Result {
    /// Fraction of filtered cells where the targeted misclassification
    /// *survived* the filter (the paper's expectation: near zero for the
    /// classical attacks).
    pub fn filtered_success_rate(&self) -> f32 {
        let filtered: Vec<&ScenarioCell> = self
            .cells
            .iter()
            .filter(|c| c.filter != FilterSpec::None)
            .collect();
        if filtered.is_empty() {
            return 0.0;
        }
        filtered.iter().filter(|c| c.success_tm23).count() as f32 / filtered.len() as f32
    }

    /// Renders one per-scenario demonstration table: rows = attacks,
    /// columns = filters, cells = the class the pipeline reports.
    pub fn scenario_table(&self, scenario_id: usize, filters: &[FilterSpec]) -> Table {
        let mut header = vec!["Attack".to_owned()];
        header.extend(filters.iter().map(|f| f.to_string()));
        let mut table = Table::new(
            format!(
                "Fig. 7 — scenario {scenario_id}: pipeline verdict through each filter ({})",
                self.threat
            ),
            header,
        );
        for label in AttackParams::labels() {
            let mut row = vec![label.to_owned()];
            for &filter in filters {
                let cell = self.cells.iter().find(|c| {
                    c.scenario_id == scenario_id && c.attack == label && c.filter == filter
                });
                row.push(match cell {
                    Some(c) => format!(
                        "{} ({}){}",
                        class_name(c.tm23_class),
                        pct(c.tm23_confidence),
                        if c.success_tm23 { " ⚠" } else { "" }
                    ),
                    None => "-".to_owned(),
                });
            }
            table.push_row(row);
        }
        table
    }

    /// Renders the accuracy grid for one scenario: rows = attack
    /// condition, columns = filters.
    pub fn accuracy_table(&self, scenario_id: usize, filters: &[FilterSpec]) -> Table {
        let mut header = vec!["Condition".to_owned()];
        header.extend(filters.iter().map(|f| f.to_string()));
        let mut table = Table::new(
            format!("Fig. 7 — scenario {scenario_id}: top-5 accuracy vs filter"),
            header,
        );
        if let Some(grid) = self.grids.iter().find(|g| g.scenario.id == scenario_id) {
            let mut conditions = vec!["No attack".to_owned()];
            conditions.extend(AttackParams::labels().iter().map(|s| (*s).to_owned()));
            for condition in conditions {
                let mut row = vec![condition.clone()];
                for &filter in filters {
                    row.push(
                        grid.accuracy(filter, &condition)
                            .map(pct)
                            .unwrap_or_else(|| "-".to_owned()),
                    );
                }
                table.push_row(row);
            }
        }
        table
    }
}

/// Runs the Fig. 7 experiment: classical attacks crafted on the bare
/// DNN, evaluated through every filter of `filters` under `threat`
/// (II or III), with accuracy grids over `eval_n` test images.
///
/// # Errors
///
/// Propagates attack and pipeline errors; returns an error if `threat`
/// is Threat Model I.
pub fn run(
    prepared: &PreparedSetup,
    params: &AttackParams,
    filters: &[FilterSpec],
    eval_n: usize,
    threat: ThreatModel,
) -> Result<Fig7Result> {
    if !threat.filter_applies() {
        return Err(crate::FademlError::InvalidConfig {
            reason: "Fig. 7 requires Threat Model II or III".into(),
        });
    }
    let scenarios = Scenario::paper_scenarios();
    let per_scenario = for_each_scenario_parallel(&scenarios, |scenario| {
        let mut cells = Vec::new();
        for attack_idx in 0..AttackParams::labels().len() {
            for &filter in filters {
                cells.push(scenario_cell(
                    prepared, params, scenario, attack_idx, filter, false, threat,
                )?);
            }
        }
        let grid = accuracy_grid(prepared, params, scenario, filters, false, eval_n, threat)?;
        Ok((cells, grid))
    })?;
    let mut cells = Vec::new();
    let mut grids = Vec::new();
    for (c, g) in per_scenario {
        cells.extend(c);
        grids.push(g);
    }
    Ok(Fig7Result {
        cells,
        grids,
        threat,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::{ExperimentSetup, SetupProfile};
    use std::sync::OnceLock;

    fn prepared() -> &'static PreparedSetup {
        static CELL: OnceLock<PreparedSetup> = OnceLock::new();
        CELL.get_or_init(|| {
            ExperimentSetup::profile(SetupProfile::Smoke)
                .prepare()
                .unwrap()
        })
    }

    fn cheap_params() -> AttackParams {
        AttackParams {
            epsilon: 0.12,
            bim_iterations: 4,
            lbfgs_iterations: 5,
            ..AttackParams::default()
        }
    }

    fn small_filters() -> Vec<FilterSpec> {
        vec![
            FilterSpec::None,
            FilterSpec::Lap { np: 8 },
            FilterSpec::Lar { r: 2 },
        ]
    }

    #[test]
    fn rejects_threat_model_one() {
        assert!(run(
            prepared(),
            &cheap_params(),
            &small_filters(),
            4,
            ThreatModel::I
        )
        .is_err());
    }

    #[test]
    fn covers_every_cell_and_grid() {
        let filters = small_filters();
        let result = run(prepared(), &cheap_params(), &filters, 4, ThreatModel::III).unwrap();
        // 5 scenarios × 3 attacks × 3 filters.
        assert_eq!(result.cells.len(), 45);
        assert_eq!(result.grids.len(), 5);
        for grid in &result.grids {
            assert_eq!(grid.cells.len(), 4 * filters.len());
        }
    }

    #[test]
    fn filters_reduce_attack_success() {
        // The filtered success rate must be strictly below the unfiltered
        // TM-I success rate of the same cells.
        let filters = small_filters();
        let result = run(prepared(), &cheap_params(), &filters, 4, ThreatModel::III).unwrap();
        let tm1_successes = result
            .cells
            .iter()
            .filter(|c| c.filter != FilterSpec::None && c.success_tm1)
            .count();
        let tm23_successes = result
            .cells
            .iter()
            .filter(|c| c.filter != FilterSpec::None && c.success_tm23)
            .count();
        assert!(
            tm23_successes <= tm1_successes,
            "filtering should not help the attacker: {tm23_successes} > {tm1_successes}"
        );
    }

    #[test]
    fn tables_render() {
        let filters = small_filters();
        let result = run(prepared(), &cheap_params(), &filters, 4, ThreatModel::III).unwrap();
        let demo = result.scenario_table(1, &filters);
        assert_eq!(demo.len(), 3);
        assert!(demo.render().contains("LAP(8)"));
        let acc = result.accuracy_table(1, &filters);
        assert_eq!(acc.len(), 4);
        assert!(acc.render().contains("No attack"));
    }
}
