//! Figure-by-figure experiment runners.
//!
//! Each submodule regenerates one quantitative artifact of the paper's
//! evaluation (see `DESIGN.md` §3 and `EXPERIMENTS.md`):
//!
//! - [`fig5`] — Threat Model I: all three classical attacks achieve all
//!   five targeted misclassification scenarios.
//! - [`fig6`] — overall top-5 accuracy under attack (no filter).
//! - [`fig7`] — Threat Models II/III: LAP/LAR filters neutralize the
//!   classical attacks; accuracy vs filter strength is hump-shaped.
//! - [`fig9`] — the FAdeML filter-aware attacks survive the same filters.
//!
//! [`resume`] adds crash-resumable variants of every runner: completed
//! per-scenario stages are journaled to a [`StageLedger`] so a killed
//! sweep restarts at the first incomplete stage.
//!
//! [`detection`] extends the suite past the paper: a detect-under-attack
//! sweep scoring the serving stack's triage detector (ROC/AUC) on a
//! correlated frame stream with FGSM/FAdeML segments mixed in.
//!
//! [`adaptive`] closes the loop: the same stream now drifts mid-sweep
//! and an online-refitting arm (reservoir, budgeted threshold
//! controller, validated hot swap) is compared against the static
//! detector it replaces.

pub mod adaptive;
pub mod detection;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig9;
mod grid;
pub mod resume;

pub use adaptive::{
    run_adaptive_resumable, AdaptiveParams, AdaptiveResult, AdaptiveSegment, RefitStats,
};
pub use detection::{
    run_detection_resumable, DetectionParams, DetectionResult, RocPoint, SegmentKind,
    SegmentOutcome,
};
pub use grid::{AccuracyCell, AccuracyGrid, ScenarioCell};
pub use resume::{ResumeReport, StageLedger};

use fademl_attacks::{Attack, Bim, Fgsm, LbfgsAttack};

use crate::Result;

/// Attack hyper-parameters shared by all experiments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttackParams {
    /// FGSM step / BIM ball radius / noise magnitude scale.
    pub epsilon: f32,
    /// BIM per-step size.
    pub bim_alpha: f32,
    /// BIM iteration cap.
    pub bim_iterations: usize,
    /// L-BFGS noise-norm weight `c`.
    pub lbfgs_c: f32,
    /// L-BFGS iteration cap.
    pub lbfgs_iterations: usize,
    /// FAdeML refinement rounds.
    pub fademl_rounds: usize,
    /// FAdeML noise scaling factor η.
    pub fademl_eta: f32,
}

impl Default for AttackParams {
    fn default() -> Self {
        AttackParams {
            epsilon: 0.08,
            bim_alpha: 0.015,
            bim_iterations: 12,
            lbfgs_c: 0.02,
            lbfgs_iterations: 20,
            fademl_rounds: 2,
            fademl_eta: 1.0,
        }
    }
}

impl AttackParams {
    /// The paper's attack library in figure order: L-BFGS, FGSM, BIM.
    ///
    /// # Errors
    ///
    /// Propagates attack-construction errors for invalid parameters.
    pub fn library(&self) -> Result<Vec<Box<dyn Attack>>> {
        Ok(vec![
            Box::new(LbfgsAttack::new(self.lbfgs_c, self.lbfgs_iterations)?),
            Box::new(Fgsm::new(self.epsilon)?),
            Box::new(Bim::new(self.epsilon, self.bim_alpha, self.bim_iterations)?),
        ])
    }

    /// Short labels matching [`AttackParams::library`] order.
    pub fn labels() -> [&'static str; 3] {
        ["L-BFGS", "FGSM", "BIM"]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_matches_paper_order() {
        let params = AttackParams::default();
        let attacks = params.library().unwrap();
        assert_eq!(attacks.len(), 3);
        assert!(attacks[0].name().contains("L-BFGS"));
        assert!(attacks[1].name().contains("FGSM"));
        assert!(attacks[2].name().contains("BIM"));
        assert_eq!(AttackParams::labels().len(), 3);
    }

    #[test]
    fn invalid_params_propagate() {
        let bad = AttackParams {
            epsilon: -1.0,
            ..AttackParams::default()
        };
        assert!(bad.library().is_err());
    }
}
