use std::fmt;

use fademl_attacks::AttackGoal;
use fademl_data::ClassId;

/// One of the paper's five targeted-misclassification scenarios
/// (§III-A "Payload").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Scenario {
    /// Scenario number (1-5, matching the paper's figures).
    pub id: usize,
    /// The true class of the attacked image.
    pub source: ClassId,
    /// The class the attacker wants reported.
    pub target: ClassId,
}

impl Scenario {
    /// The paper's five scenarios:
    ///
    /// 1. stop → 60 km/h
    /// 2. 30 km/h → 80 km/h
    /// 3. turn left → turn right
    /// 4. turn right → turn left
    /// 5. no entry → 60 km/h
    pub fn paper_scenarios() -> Vec<Scenario> {
        vec![
            Scenario {
                id: 1,
                source: ClassId::STOP,
                target: ClassId::SPEED_60,
            },
            Scenario {
                id: 2,
                source: ClassId::SPEED_30,
                target: ClassId::SPEED_80,
            },
            Scenario {
                id: 3,
                source: ClassId::TURN_LEFT,
                target: ClassId::TURN_RIGHT,
            },
            Scenario {
                id: 4,
                source: ClassId::TURN_RIGHT,
                target: ClassId::TURN_LEFT,
            },
            Scenario {
                id: 5,
                source: ClassId::NO_ENTRY,
                target: ClassId::SPEED_60,
            },
        ]
    }

    /// The targeted attack goal for this scenario.
    pub fn goal(&self) -> AttackGoal {
        AttackGoal::Targeted {
            class: self.target.index(),
        }
    }

    /// A short label like `"S1: stop → speed limit 60"`.
    pub fn label(&self) -> String {
        format!(
            "S{}: {} → {}",
            self.id,
            self.source.info().name,
            self.target.info().name
        )
    }
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_scenarios_matching_paper() {
        let scenarios = Scenario::paper_scenarios();
        assert_eq!(scenarios.len(), 5);
        assert_eq!(scenarios[0].source, ClassId::STOP);
        assert_eq!(scenarios[0].target, ClassId::SPEED_60);
        assert_eq!(scenarios[1].source, ClassId::SPEED_30);
        assert_eq!(scenarios[1].target, ClassId::SPEED_80);
        assert_eq!(scenarios[2].source, ClassId::TURN_LEFT);
        assert_eq!(scenarios[2].target, ClassId::TURN_RIGHT);
        assert_eq!(scenarios[3].source, ClassId::TURN_RIGHT);
        assert_eq!(scenarios[3].target, ClassId::TURN_LEFT);
        assert_eq!(scenarios[4].source, ClassId::NO_ENTRY);
        assert_eq!(scenarios[4].target, ClassId::SPEED_60);
        // IDs are 1-based and sequential.
        for (i, s) in scenarios.iter().enumerate() {
            assert_eq!(s.id, i + 1);
            assert_ne!(s.source, s.target);
        }
    }

    #[test]
    fn goal_targets_the_right_class() {
        let s = &Scenario::paper_scenarios()[0];
        assert_eq!(
            s.goal(),
            AttackGoal::Targeted {
                class: ClassId::SPEED_60.index()
            }
        );
    }

    #[test]
    fn label_is_readable() {
        let s = &Scenario::paper_scenarios()[0];
        assert_eq!(s.label(), "S1: stop → speed limit 60");
        assert_eq!(s.to_string(), s.label());
    }
}
