//! Plain-text table rendering for experiment output, matching the
//! row/column layout of the paper's figures.

use std::fmt::Write as _;

/// A simple column-aligned text table.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: Vec<String>) -> Self {
        Table {
            title: title.into(),
            header,
            rows: Vec::new(),
        }
    }

    /// Appends a row. Rows shorter than the header are padded with
    /// empty cells; longer rows are truncated to the header width.
    pub fn push_row(&mut self, mut row: Vec<String>) {
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Renders the table as RFC-4180-style CSV (fields containing
    /// commas, quotes or newlines are quoted; quotes are doubled) for
    /// downstream plotting.
    pub fn to_csv(&self) -> String {
        let escape = |cell: &str| -> String {
            if cell.contains([',', '"', '\n']) {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_owned()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .header
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Renders the table as aligned plain text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::from("| ");
            for (cell, w) in cells.iter().zip(widths) {
                let pad = w - cell.chars().count();
                s.push_str(cell);
                s.push_str(&" ".repeat(pad));
                s.push_str(" | ");
            }
            s.trim_end().to_owned()
        };
        let _ = writeln!(out, "{}", line(&self.header, &widths));
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        let _ = writeln!(out, "{}", line(&sep, &widths));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }
}

impl Extend<Vec<String>> for Table {
    fn extend<I: IntoIterator<Item = Vec<String>>>(&mut self, iter: I) {
        for row in iter {
            self.push_row(row);
        }
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.render())
    }
}

/// Formats a fraction as a percentage with one decimal, e.g. `"93.4%"`.
pub fn pct(fraction: f32) -> String {
    format!("{:.1}%", fraction * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo", vec!["attack".into(), "accuracy".into()]);
        t.push_row(vec!["FGSM".into(), "93.4%".into()]);
        t.push_row(vec!["L-BFGS".into(), "91.0%".into()]);
        let rendered = t.render();
        assert!(rendered.contains("## demo"));
        assert!(rendered.contains("| attack "));
        assert!(rendered.contains("| FGSM   "));
        // Every data line has the same length (alignment).
        let lines: Vec<&str> = rendered.lines().skip(1).collect();
        let lens: Vec<usize> = lines.iter().map(|l| l.chars().count()).collect();
        assert!(lens.windows(2).all(|w| w[0] == w[1]), "{rendered}");
    }

    #[test]
    fn pads_and_truncates_rows() {
        let mut t = Table::new("t", vec!["a".into(), "b".into()]);
        t.push_row(vec!["x".into()]);
        t.push_row(vec!["1".into(), "2".into(), "3".into()]);
        assert_eq!(t.rows()[0].len(), 2);
        assert_eq!(t.rows()[1].len(), 2);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_escapes_specials() {
        let mut t = Table::new("t", vec!["a".into(), "b".into()]);
        t.push_row(vec!["plain".into(), "has,comma".into()]);
        t.push_row(vec!["quote\"d".into(), "multi\nline".into()]);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "a,b");
        assert_eq!(lines[1], "plain,\"has,comma\"");
        assert!(lines[2].starts_with("\"quote\"\"d\""));
        assert!(csv.contains("\"multi\nline\""));
    }

    #[test]
    fn pct_formatting() {
        assert_eq!(pct(0.934), "93.4%");
        assert_eq!(pct(1.0), "100.0%");
        assert_eq!(pct(0.0), "0.0%");
    }

    #[test]
    fn extend_pushes_rows_with_padding() {
        let mut t = Table::new("t", vec!["a".into(), "b".into()]);
        t.extend(vec![vec!["1".into()], vec!["2".into(), "3".into()]]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.rows()[0].len(), 2); // padded
    }

    #[test]
    fn display_matches_render() {
        let t = Table::new("x", vec!["h".into()]);
        assert_eq!(t.to_string(), t.render());
        assert_eq!(t.title(), "x");
    }
}
