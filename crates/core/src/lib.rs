//! **FAdeML** — a full reproduction of *"FAdeML: Understanding the
//! Impact of Pre-Processing Noise Filtering on Adversarial Machine
//! Learning"* (Khalid et al., DATE 2019) in pure Rust.
//!
//! The paper studies a camera → pre-processing-noise-filter → buffer →
//! DNN inference pipeline and shows (1) that classical gradient attacks
//! (L-BFGS, FGSM, BIM) are neutralized by LAP/LAR smoothing filters
//! under realistic threat models, and (2) that an attacker who models
//! the filter inside the optimization loop — the FAdeML attack —
//! defeats that defense.
//!
//! This crate ties the substrate crates together:
//!
//! | Piece | Where |
//! |-------|-------|
//! | Threat models I/II/III (paper Fig. 2) | [`ThreatModel`] |
//! | The deployed pipeline (filter ∘ DNN) | [`InferencePipeline`] |
//! | The five misclassification scenarios | [`Scenario`] |
//! | The Eq. 2 top-5 cost function | [`cost`] |
//! | Victim training & caching | [`setup`] |
//! | The §III analysis methodology | [`analysis`] |
//! | Figure-by-figure experiment runners | [`experiments`] |
//!
//! # Quickstart
//!
//! ```no_run
//! use fademl::setup::{ExperimentSetup, SetupProfile};
//! use fademl::{InferencePipeline, Scenario, ThreatModel};
//! use fademl_attacks::{Attack, AttackGoal, AttackSurface, Fgsm};
//! use fademl_filters::FilterSpec;
//!
//! # fn main() -> Result<(), fademl::FademlError> {
//! // Train (or load) a victim model on SynSign-43.
//! let prepared = ExperimentSetup::profile(SetupProfile::Smoke).prepare()?;
//!
//! // Build the deployed pipeline with a LAP(32) pre-processing filter.
//! let pipeline = InferencePipeline::new(
//!     prepared.model.clone(),
//!     FilterSpec::Lap { np: 32 },
//! )?;
//!
//! // Craft a stop-sign → 60 km/h attack against the bare DNN…
//! let scenario = &Scenario::paper_scenarios()[0];
//! let stop = prepared.test.first_of_class(scenario.source)?;
//! let mut surface = AttackSurface::new(prepared.model.clone());
//! let adv = Fgsm::new(0.06)?.run(&mut surface, &stop, scenario.goal())?;
//!
//! // …and observe that the filter neutralizes it under Threat Model II.
//! let verdict = pipeline.classify(&adv.adversarial, ThreatModel::II)?;
//! println!("through the filter the sign reads as class {}", verdict.class);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod analysis;
pub mod cost;
pub mod defense;
mod error;
pub mod experiments;
pub mod insights;
mod pipeline;
pub mod report;
mod scenario;
pub mod setup;
mod threat;

pub use error::FademlError;
/// Training checkpoint/resume subsystem (re-exported from
/// [`fademl_nn`]): versioned on-disk snapshots with CRC integrity
/// trailers, retained generations and newest-intact recovery.
pub use fademl_nn::checkpoint;
/// Weight artifact codec (re-exported from [`fademl_nn`]): the
/// `FADEMLW2` CRC-trailed binary format used for victim caching and
/// zero-downtime weight swaps in the serving layer.
pub use fademl_nn::serialize;
pub use pipeline::{Detection, InferencePipeline, Verdict};
pub use scenario::Scenario;
pub use threat::ThreatModel;

/// Convenient result alias for fallible operations in this crate.
pub type Result<T> = std::result::Result<T, FademlError>;
