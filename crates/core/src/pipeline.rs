use fademl_data::NoiseModel;
use fademl_filters::{Filter, FilterSpec};
use fademl_nn::metrics::{predict_top_k, Prediction};
use fademl_nn::Sequential;
use fademl_tensor::{Tensor, TensorRng};

use crate::{FademlError, Result, ThreatModel};

/// What the deployed pipeline reports for one image.
#[derive(Debug, Clone, PartialEq)]
pub struct Verdict {
    /// Winning class index.
    pub class: usize,
    /// Confidence (softmax probability of the winner).
    pub confidence: f32,
    /// Full top-5 ranking.
    pub top5: Prediction,
    /// Full class-probability vector.
    pub probabilities: Tensor,
}

/// The deployed inference pipeline of the paper's Fig. 2: data
/// acquisition → pre-processing noise filter → input buffer → DNN.
///
/// The pipeline is the *defender's* object; the attacker's view of it is
/// an [`AttackSurface`](fademl_attacks::AttackSurface). Where an
/// adversarial image enters is controlled by the [`ThreatModel`]:
///
/// - **TM-I**: straight into the DNN buffer — the filter is bypassed.
/// - **TM-II**: re-acquired by the sensor (fresh acquisition noise) and
///   passed through the filter.
/// - **TM-III**: injected after acquisition but before the filter — the
///   filter runs, no fresh sensor noise.
#[derive(Debug, Clone)]
pub struct InferencePipeline {
    model: Sequential,
    filter: Box<dyn Filter>,
    filter_spec: FilterSpec,
    acquisition_noise: NoiseModel,
    noise_seed: u64,
}

impl InferencePipeline {
    /// Builds a pipeline from a trained model and a filter spec, with
    /// the default sensor-noise profile for TM-II re-acquisition.
    ///
    /// # Errors
    ///
    /// Propagates filter construction errors.
    pub fn new(model: Sequential, filter_spec: FilterSpec) -> Result<Self> {
        Ok(InferencePipeline {
            model,
            filter: filter_spec.build()?,
            filter_spec,
            acquisition_noise: NoiseModel::sensor(),
            noise_seed: 0xACC0_57ED,
        })
    }

    /// Replaces the TM-II acquisition-noise profile (builder style).
    #[must_use]
    pub fn with_acquisition_noise(mut self, noise: NoiseModel) -> Self {
        self.acquisition_noise = noise;
        self
    }

    /// The pipeline's filter configuration.
    pub fn filter_spec(&self) -> FilterSpec {
        self.filter_spec
    }

    /// The victim model.
    pub fn model(&self) -> &Sequential {
        &self.model
    }

    /// Runs the pipeline stages an image would traverse under `threat`
    /// and returns the tensor that reaches the DNN input buffer.
    ///
    /// # Errors
    ///
    /// Propagates filter errors.
    pub fn stage_input(&self, image: &Tensor, threat: ThreatModel) -> Result<Tensor> {
        let mut x = image.clone();
        if threat.reacquires() {
            // Deterministic per-image noise: seed derived from content so
            // repeated classification of the same image is reproducible.
            let fingerprint = x
                .as_slice()
                .iter()
                .fold(0u64, |acc, &v| acc.wrapping_mul(31).wrapping_add(v.to_bits() as u64));
            let mut rng = TensorRng::seed_from_u64(self.noise_seed ^ fingerprint);
            x = self.acquisition_noise.apply(&x, &mut rng);
        }
        if threat.filter_applies() {
            x = self.filter.apply(&x)?;
        }
        Ok(x)
    }

    /// Classifies a single `[C, H, W]` image entering under `threat`.
    ///
    /// # Errors
    ///
    /// Returns [`FademlError::InvalidConfig`] for non-rank-3 input, plus
    /// any filter/model error.
    pub fn classify(&self, image: &Tensor, threat: ThreatModel) -> Result<Verdict> {
        if image.rank() != 3 {
            return Err(FademlError::InvalidConfig {
                reason: format!("expected a [C, H, W] image, got {:?}", image.dims()),
            });
        }
        let staged = self.stage_input(image, threat)?;
        let batch = staged.unsqueeze_batch();
        let probabilities = self.model.predict_proba(&batch)?.row(0)?;
        let top5 = predict_top_k(&self.model, &batch, 5)?.remove(0);
        Ok(Verdict {
            class: top5.class(),
            confidence: top5.confidence(),
            top5,
            probabilities,
        })
    }

    /// Top-`k` accuracy of the pipeline over a batch entering under
    /// `threat` (the paper's headline metric uses `k = 5`).
    ///
    /// # Errors
    ///
    /// Returns [`FademlError::InvalidConfig`] when labels and batch
    /// disagree, plus any filter/model error.
    pub fn top_k_accuracy(
        &self,
        images: &Tensor,
        labels: &[usize],
        threat: ThreatModel,
        k: usize,
    ) -> Result<f32> {
        if images.rank() != 4 || images.dims()[0] != labels.len() {
            return Err(FademlError::InvalidConfig {
                reason: format!(
                    "need [n, c, h, w] images matching {} labels, got {:?}",
                    labels.len(),
                    images.dims()
                ),
            });
        }
        if labels.is_empty() {
            return Ok(0.0);
        }
        let mut hits = 0usize;
        for (i, &label) in labels.iter().enumerate() {
            let verdict = self.classify(&images.index_batch(i)?, threat)?;
            if verdict.probabilities.top_k(k).contains(&label) {
                hits += 1;
            }
        }
        Ok(hits as f32 / labels.len() as f32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fademl_nn::vgg::VggConfig;

    fn pipeline(spec: FilterSpec) -> InferencePipeline {
        let mut rng = TensorRng::seed_from_u64(1);
        let model = VggConfig::tiny(3, 16, 6).build(&mut rng).unwrap();
        InferencePipeline::new(model, spec).unwrap()
    }

    #[test]
    fn tm1_bypasses_filter() {
        let p = pipeline(FilterSpec::Lap { np: 32 });
        let mut rng = TensorRng::seed_from_u64(2);
        let img = rng.uniform(&[3, 16, 16], 0.0, 1.0);
        let staged = p.stage_input(&img, ThreatModel::I).unwrap();
        assert_eq!(staged, img);
    }

    #[test]
    fn tm3_filters_without_noise() {
        let p = pipeline(FilterSpec::Lap { np: 8 });
        let mut rng = TensorRng::seed_from_u64(3);
        let img = rng.uniform(&[3, 16, 16], 0.0, 1.0);
        let staged = p.stage_input(&img, ThreatModel::III).unwrap();
        assert_ne!(staged, img);
        // Deterministic: same image, same staging.
        assert_eq!(staged, p.stage_input(&img, ThreatModel::III).unwrap());
    }

    #[test]
    fn tm2_adds_noise_then_filters() {
        let p = pipeline(FilterSpec::Lap { np: 8 });
        let mut rng = TensorRng::seed_from_u64(4);
        let img = rng.uniform(&[3, 16, 16], 0.2, 0.8);
        let tm2 = p.stage_input(&img, ThreatModel::II).unwrap();
        let tm3 = p.stage_input(&img, ThreatModel::III).unwrap();
        assert_ne!(tm2, tm3); // sensor noise distinguishes II from III
        // Still reproducible.
        assert_eq!(tm2, p.stage_input(&img, ThreatModel::II).unwrap());
    }

    #[test]
    fn classify_returns_consistent_verdict() {
        let p = pipeline(FilterSpec::None);
        let mut rng = TensorRng::seed_from_u64(5);
        let img = rng.uniform(&[3, 16, 16], 0.0, 1.0);
        let v = p.classify(&img, ThreatModel::I).unwrap();
        assert!(v.class < 6);
        assert_eq!(v.class, v.top5.top_classes[0]);
        assert!((v.confidence - v.top5.top_probs[0]).abs() < 1e-6);
        let psum: f32 = v.probabilities.as_slice().iter().sum();
        assert!((psum - 1.0).abs() < 1e-5);
    }

    #[test]
    fn classify_rejects_batches() {
        let p = pipeline(FilterSpec::None);
        assert!(p.classify(&Tensor::zeros(&[1, 3, 16, 16]), ThreatModel::I).is_err());
    }

    #[test]
    fn accuracy_counts_topk_hits() {
        let p = pipeline(FilterSpec::None);
        let mut rng = TensorRng::seed_from_u64(6);
        let images = rng.uniform(&[4, 3, 16, 16], 0.0, 1.0);
        // With k = 6 classes and top-6 every label hits.
        let acc = p
            .top_k_accuracy(&images, &[0, 1, 2, 3], ThreatModel::I, 6)
            .unwrap();
        assert_eq!(acc, 1.0);
        assert!(p
            .top_k_accuracy(&images, &[0, 1], ThreatModel::I, 5)
            .is_err());
    }

    #[test]
    fn filter_spec_accessor() {
        let p = pipeline(FilterSpec::Lar { r: 2 });
        assert_eq!(p.filter_spec(), FilterSpec::Lar { r: 2 });
    }
}
